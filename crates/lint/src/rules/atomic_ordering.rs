//! `atomic-ordering` — every atomic memory ordering in the workspace is
//! deliberate.
//!
//! The parallel runtime's work-stealing cursor, the server's shutdown
//! latch, and the query engine's admission CAS all encode their
//! happens-before edges in `Ordering` arguments; a wrong one is a data
//! race that no test reliably catches. This rule audits every
//! `load`/`store`/`swap`/`compare_exchange*`/`fetch_*` call that names
//! an `Ordering` and flags three hazards:
//!
//! * **`SeqCst`** — the workspace publishes exclusively through
//!   acquire/release pairs; `SeqCst` either hides a missing pairing or
//!   taxes the fast path for a global order nothing relies on. Use
//!   `Relaxed` for counters, `Release`/`Acquire`/`AcqRel` for
//!   publication, or justify the global order with an allow.
//! * **`Relaxed` CAS success** — a `compare_exchange`/`fetch_update`
//!   that publishes data must succeed with at least `Release`
//!   (`AcqRel` when the loop also reads the published value);
//!   deliberately relaxed counters take a justified allow.
//! * **Unpaired release/acquire sides** — per crate, sites are grouped
//!   by the atomic field they touch: an `Acquire` load whose field is
//!   only ever written `Relaxed` acquires nothing, and a `Release`
//!   write nobody `Acquire`-loads releases to nobody. Either the other
//!   side upgrades or this side downgrades.

use crate::ast::{Call, Span};
use crate::parser::calls_in;
use crate::symbols::crate_of;
use crate::workspace::Workspace;
use crate::{Finding, Lint};
use std::collections::BTreeMap;

/// See the module docs.
pub struct AtomicOrdering;

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic methods that take at least one `Ordering`.
const ATOMIC_METHODS: [&str; 15] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_not",
];

/// How one call reads/writes its atomic.
#[derive(Clone, Copy, PartialEq)]
enum OpKind {
    /// `load`: read only.
    Read,
    /// `store`: write only.
    Write,
    /// `swap`/`fetch_*`: one ordering covering both sides.
    Rmw,
    /// `compare_exchange*`/`fetch_update`: separate success (write) and
    /// failure (read) orderings.
    Cas,
}

struct Site {
    path: String,
    span: Span,
    op: OpKind,
    /// `(ordering name, ordering token span)` in argument order.
    orderings: Vec<(String, Span)>,
    method: String,
}

impl Lint for AtomicOrdering {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }

    fn description(&self) -> &'static str {
        "atomic orderings are deliberate: no SeqCst, no Relaxed CAS success, \
         and release/acquire sides pair up per field"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        // (crate, field) -> sites touching that atomic.
        let mut fields: BTreeMap<(String, String), Vec<Site>> = BTreeMap::new();

        for file in &ws.files {
            if file.test_file {
                continue;
            }
            let code = file.code_tokens();
            let krate = crate_of(&file.rel_path);
            for f in file.parsed.fns_with_bodies() {
                let (open, close) = f.body.unwrap_or((0, 0));
                for call in calls_in(&code, open, close) {
                    if !call.is_method || !ATOMIC_METHODS.contains(&call.method.as_str()) {
                        continue;
                    }
                    if file.is_test_line(call.span.line) {
                        continue;
                    }
                    let orderings = call_orderings(&code, &call);
                    if orderings.is_empty() {
                        // `Vec::swap`, `io::Read::read` and friends: same
                        // method names, no `Ordering` argument.
                        continue;
                    }
                    let op = match call.method.as_str() {
                        "load" => OpKind::Read,
                        "store" => OpKind::Write,
                        "compare_exchange" | "compare_exchange_weak" | "fetch_update" => {
                            OpKind::Cas
                        }
                        _ => OpKind::Rmw,
                    };
                    let key = call
                        .chain
                        .last()
                        .map(|s| s.trim_end_matches("()").trim_end_matches("[]").to_string())
                        .unwrap_or_default();
                    let site = Site {
                        path: file.rel_path.clone(),
                        span: call.span,
                        op,
                        orderings,
                        method: call.method.clone(),
                    };

                    // Hazard 1: any SeqCst.
                    for (name, at) in &site.orderings {
                        if name == "SeqCst" {
                            findings.push(Finding {
                                rule: self.name(),
                                path: file.rel_path.clone(),
                                line: at.line,
                                col: at.col,
                                message: format!(
                                    "SeqCst ordering on `{key}.{}`: this workspace \
                                     synchronizes through release/acquire pairs; use \
                                     Relaxed for counters, Release/Acquire/AcqRel for \
                                     publication, or justify the global order with \
                                     `// lint:allow(atomic-ordering): <why>`",
                                    site.method
                                ),
                            });
                        }
                    }
                    // Hazard 2: Relaxed CAS success ordering.
                    if site.op == OpKind::Cas
                        && site.orderings.first().is_some_and(|(n, _)| n == "Relaxed")
                    {
                        findings.push(Finding {
                            rule: self.name(),
                            path: file.rel_path.clone(),
                            line: site.span.line,
                            col: site.span.col,
                            message: format!(
                                "`{}` on `{key}` succeeds with Relaxed: a CAS that \
                                 publishes data needs Release (or AcqRel) on success; \
                                 a deliberately relaxed counter takes \
                                 `// lint:allow(atomic-ordering): <why>`",
                                site.method
                            ),
                        });
                    }
                    if !key.is_empty() {
                        fields.entry((krate.clone(), key)).or_default().push(site);
                    }
                }
            }
        }

        // Hazard 3: unpaired release/acquire sides, per (crate, field).
        for ((krate, key), sites) in &fields {
            let read_orders: Vec<&str> = sites.iter().flat_map(Site::read_orderings).collect();
            let write_orders: Vec<&str> = sites.iter().flat_map(Site::write_orderings).collect();
            let has_acquire_read = read_orders
                .iter()
                .any(|o| matches!(*o, "Acquire" | "AcqRel" | "SeqCst"));
            let has_release_write = write_orders
                .iter()
                .any(|o| matches!(*o, "Release" | "AcqRel" | "SeqCst"));
            if has_acquire_read && !write_orders.is_empty() && !has_release_write {
                for site in sites {
                    if site.write_orderings().next().is_some() {
                        findings.push(Finding {
                            rule: self.name(),
                            path: site.path.clone(),
                            line: site.span.line,
                            col: site.span.col,
                            message: format!(
                                "`{key}` is Acquire-loaded in crate `{krate}` but every \
                                 write (like this `{}`) is Relaxed: the load acquires \
                                 nothing — publish with Release, or downgrade the loads",
                                site.method
                            ),
                        });
                    }
                }
            }
            if has_release_write && !read_orders.is_empty() && !has_acquire_read {
                for site in sites {
                    if site
                        .write_orderings()
                        .any(|o| matches!(o, "Release" | "AcqRel" | "SeqCst"))
                    {
                        findings.push(Finding {
                            rule: self.name(),
                            path: site.path.clone(),
                            line: site.span.line,
                            col: site.span.col,
                            message: format!(
                                "Release-ordered `{}` of `{key}` is never \
                                 Acquire-loaded in crate `{krate}`: nothing pairs with \
                                 the release — upgrade a load or relax this write",
                                site.method
                            ),
                        });
                    }
                }
            }
        }
        findings
    }
}

impl Site {
    /// Orderings governing this site's read side.
    fn read_orderings(&self) -> impl Iterator<Item = &str> {
        let picks: Vec<&str> = match self.op {
            OpKind::Read | OpKind::Rmw => self.orderings.iter().map(|(n, _)| n.as_str()).collect(),
            // CAS: the failure/fetch ordering is the second one.
            OpKind::Cas => self
                .orderings
                .get(1)
                .map(|(n, _)| n.as_str())
                .into_iter()
                .collect(),
            OpKind::Write => Vec::new(),
        };
        picks.into_iter()
    }

    /// Orderings governing this site's write side.
    fn write_orderings(&self) -> impl Iterator<Item = &str> {
        let picks: Vec<&str> = match self.op {
            OpKind::Write | OpKind::Rmw => self.orderings.iter().map(|(n, _)| n.as_str()).collect(),
            // CAS: the success/set ordering comes first.
            OpKind::Cas => self
                .orderings
                .first()
                .map(|(n, _)| n.as_str())
                .into_iter()
                .collect(),
            OpKind::Read => Vec::new(),
        };
        picks.into_iter()
    }
}

/// The `Ordering` idents among a call's arguments, in argument order.
fn call_orderings(code: &[&crate::lexer::Token], call: &Call) -> Vec<(String, Span)> {
    let mut found = Vec::new();
    for &(start, end) in &call.args {
        for i in start..end.min(code.len()) {
            let t = code[i];
            if t.kind == crate::lexer::TokenKind::Ident
                && ORDERINGS.contains(&t.text.as_str())
                && code.get(i.wrapping_sub(1)).is_none_or(|p| !p.is_punct("."))
            {
                found.push((
                    t.text.clone(),
                    Span {
                        line: t.line,
                        col: t.col,
                    },
                ));
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::workspace;

    fn check_at(path: &str, src: &str) -> Vec<Finding> {
        AtomicOrdering.check(&workspace(&[(path, src)]))
    }

    const PRELUDE: &str = "use std::sync::atomic::{AtomicUsize, Ordering};\n";

    #[test]
    fn flags_seqcst() {
        let src =
            format!("{PRELUDE}pub fn f(a: &AtomicUsize) {{ a.store(1, Ordering::SeqCst); }}\n");
        let found = check_at("crates/x/src/lib.rs", &src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("SeqCst"));
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn flags_relaxed_cas_success() {
        let src = format!(
            "{PRELUDE}pub fn f(a: &AtomicUsize) {{\n\
             let _ = a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);\n\
             }}\n"
        );
        let found = check_at("crates/x/src/lib.rs", &src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("Relaxed"));
    }

    #[test]
    fn flags_acquire_load_of_relaxed_only_writes() {
        let src = format!(
            "{PRELUDE}pub fn w(a: &AtomicUsize) {{ a.store(1, Ordering::Relaxed); }}\n\
             pub fn r(a: &AtomicUsize) -> usize {{ a.load(Ordering::Acquire) }}\n"
        );
        let found = check_at("crates/x/src/lib.rs", &src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("acquires nothing"));
    }

    #[test]
    fn flags_release_store_nobody_acquires() {
        let src = format!(
            "{PRELUDE}pub fn w(a: &AtomicUsize) {{ a.store(1, Ordering::Release); }}\n\
             pub fn r(a: &AtomicUsize) -> usize {{ a.load(Ordering::Relaxed) }}\n"
        );
        let found = check_at("crates/x/src/lib.rs", &src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("never"));
    }

    #[test]
    fn paired_and_relaxed_counters_pass() {
        let src = format!(
            "{PRELUDE}pub fn publish(a: &AtomicUsize) {{ a.store(1, Ordering::Release); }}\n\
             pub fn consume(a: &AtomicUsize) -> usize {{ a.load(Ordering::Acquire) }}\n\
             pub fn count(c: &AtomicUsize) {{ c.fetch_add(1, Ordering::Relaxed); }}\n\
             pub fn peek(c: &AtomicUsize) -> usize {{ c.load(Ordering::Relaxed) }}\n\
             pub fn claim(a: &AtomicUsize) {{\n\
             let _ = a.fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| Some(n + 1));\n\
             let _ = a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);\n\
             }}\n"
        );
        assert!(check_at("crates/x/src/lib.rs", &src).is_empty());
    }

    #[test]
    fn non_atomic_swap_and_test_scope_are_exempt() {
        let src = "pub fn f(v: &mut Vec<u32>) { v.swap(0, 1); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::sync::atomic::{AtomicUsize, Ordering};\n\
                       fn t(a: &AtomicUsize) { a.store(1, Ordering::SeqCst); }\n\
                   }\n";
        assert!(check_at("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn fields_are_grouped_per_crate_not_globally() {
        // Same field name in two crates: each crate pairs on its own.
        let ws = workspace(&[
            (
                "crates/a/src/lib.rs",
                "use std::sync::atomic::{AtomicUsize, Ordering};\n\
                 pub fn w(a: &AtomicUsize) { a.store(1, Ordering::Release); }\n\
                 pub fn r(a: &AtomicUsize) -> usize { a.load(Ordering::Acquire) }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "use std::sync::atomic::{AtomicUsize, Ordering};\n\
                 pub fn w(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); }\n\
                 pub fn r(a: &AtomicUsize) -> usize { a.load(Ordering::Relaxed) }\n",
            ),
        ]);
        assert!(AtomicOrdering.check(&ws).is_empty());
    }
}
