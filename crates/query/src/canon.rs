//! Canonical spec serialization and the `u64` cache key.
//!
//! Two requests that mean the same thing must hit the same cache line no
//! matter how they were spelled. [`QuerySpec::from_pairs`] already
//! normalizes *values* (defaults filled, `8`/`8.0` both parsed to one
//! `f64`, case-folded rosters); this module normalizes *presentation*:
//! every field is emitted in one fixed order, absent optionals print as
//! `-`, and floats use Rust's shortest-roundtrip display. The FNV-1a
//! hash of that string is the cache key — 64-bit, stable across runs,
//! and dependency-free.

use crate::spec::{domain_label, metric_label, QuerySpec};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes bytes with FNV-1a (64-bit).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn push_opt_f64(out: &mut String, field: &str, value: Option<f64>) {
    use std::fmt::Write;
    match value {
        Some(n) => {
            let _ = write!(out, "{field}={n};");
        }
        None => {
            let _ = write!(out, "{field}=-;");
        }
    }
}

/// Renders a validated spec in canonical form: fixed field order,
/// defaults included, absent optionals as `-`, floats via shortest
/// roundtrip display.
pub fn canonical_string(spec: &QuerySpec) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(128);
    let _ = write!(out, "kind={};", spec.kind.label());
    let _ = write!(
        out,
        "workload={};",
        spec.workload.map_or("-", |w| w.abbrev())
    );
    let _ = write!(out, "node={};", spec.node);
    let _ = write!(out, "lanes={};", spec.lanes);
    let _ = write!(out, "simplification={};", spec.simplification);
    let _ = write!(out, "heterogeneity={};", spec.heterogeneity);
    let _ = write!(out, "domain={};", spec.domain.map_or("-", domain_label));
    let _ = write!(out, "metric={};", metric_label(spec.metric));
    let _ = write!(out, "horizon={};", spec.horizon);
    push_opt_f64(&mut out, "reported", spec.reported);
    push_opt_f64(&mut out, "physical", spec.physical);
    push_opt_f64(&mut out, "physical_base", spec.physical_base);
    out
}

/// The stable cache key of a spec: FNV-1a over [`canonical_string`].
pub fn cache_key(spec: &QuerySpec) -> u64 {
    fnv1a(canonical_string(spec).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::QuerySpec;

    fn spec(kv: &[(&str, &str)]) -> QuerySpec {
        let pairs: Vec<(String, String)> = kv
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        QuerySpec::from_pairs(&pairs).unwrap()
    }

    /// Every permutation of a field set canonicalizes to one key.
    #[test]
    fn key_is_field_order_insensitive() {
        let fields: [(&str, &str); 5] = [
            ("workload", "fft"),
            ("node", "7nm"),
            ("lanes", "8"),
            ("simplification", "3"),
            ("heterogeneity", "true"),
        ];
        let reference = cache_key(&spec(&fields));
        // Walk a full permutation enumeration (5! = 120) via Heap's
        // algorithm rather than trusting a couple of hand-picked orders.
        let mut perm = fields;
        let mut stack = [0usize; 5];
        let mut i = 0;
        let mut seen = 1usize;
        while i < perm.len() {
            if stack[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(stack[i], i);
                }
                assert_eq!(cache_key(&spec(&perm)), reference, "{perm:?}");
                seen += 1;
                stack[i] += 1;
                i = 0;
            } else {
                stack[i] = 0;
                i += 1;
            }
        }
        assert_eq!(seen, 120);
    }

    /// Filling defaults is idempotent: a spec spelled with its defaults
    /// explicit collides with the spec that omitted them, and
    /// re-canonicalizing a canonical spec is a fixed point.
    #[test]
    fn default_filling_is_idempotent() {
        let implicit = spec(&[("workload", "fft")]);
        let explicit = spec(&[
            ("kind", "point"),
            ("workload", "fft"),
            ("node", "45nm"),
            ("lanes", "1"),
            ("simplification", "1"),
            ("heterogeneity", "false"),
        ]);
        assert_eq!(canonical_string(&implicit), canonical_string(&explicit));
        assert_eq!(cache_key(&implicit), cache_key(&explicit));
        // Fixed point: canonicalizing twice changes nothing.
        assert_eq!(
            canonical_string(&implicit),
            canonical_string(&implicit.clone())
        );
    }

    /// `8` and `8.0` (and exponent spellings) are one design point.
    #[test]
    fn float_formatting_collides_to_one_key() {
        let plain = spec(&[("kind", "projection"), ("domain", "gpu"), ("horizon", "8")]);
        let decimal = spec(&[
            ("kind", "projection"),
            ("domain", "gpu"),
            ("horizon", "8.0"),
        ]);
        let exponent = spec(&[
            ("kind", "projection"),
            ("domain", "gpu"),
            ("horizon", "8e0"),
        ]);
        assert_eq!(cache_key(&plain), cache_key(&decimal));
        assert_eq!(cache_key(&plain), cache_key(&exponent));
        // And a genuinely different horizon does not collide.
        let other = spec(&[
            ("kind", "projection"),
            ("domain", "gpu"),
            ("horizon", "8.5"),
        ]);
        assert_ne!(cache_key(&plain), cache_key(&other));
    }

    #[test]
    fn distinct_specs_get_distinct_keys() {
        let a = spec(&[("workload", "fft")]);
        let b = spec(&[("workload", "aes")]);
        let c = spec(&[("kind", "sweep"), ("workload", "fft")]);
        assert_ne!(cache_key(&a), cache_key(&b));
        assert_ne!(cache_key(&a), cache_key(&c));
    }

    #[test]
    fn fnv_matches_the_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
