//! CMOS device-scaling model for the Accelerator Wall reproduction.
//!
//! The paper (Section III, Fig. 3a) models how transistor-level properties —
//! supply voltage, gate capacitance, switching speed, dynamic power, and
//! leakage — change across process nodes, using the Stillmaker & Baas
//! scaling equations for 180 nm → 7 nm and the IRDS 2017 projection for
//! 5 nm. This crate embeds that model as a per-node parameter table plus the
//! derived quantities every other crate consumes:
//!
//! * **frequency potential** — how much faster a gate switches than at the
//!   45 nm reference,
//! * **dynamic energy per operation** — the `C · VDD²` product, relative,
//! * **dynamic power at fixed frequency** — same product (power = E · f),
//! * **leakage per transistor** — relative static power contribution,
//! * **density** — transistors per unit area, `∝ 1/node²`.
//!
//! All relative quantities are normalized to [`TechNode::N45`], the paper's
//! reference node for the potential model.
//!
//! # Example
//!
//! ```
//! use accelwall_cmos::TechNode;
//!
//! let n5 = TechNode::N5;
//! // A 5 nm gate switches ~2.3x faster than a 45 nm gate...
//! assert!(n5.frequency_potential() > 2.0);
//! // ...and spends ~21x less energy per operation.
//! assert!(1.0 / n5.dynamic_energy_rel() > 20.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod scaling;

pub use scaling::{fig3a_series, ScalingMetric};

use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A CMOS process node covered by the model.
///
/// Spans every node that appears in the paper's case studies (180 nm video
/// decoders through 16 nm GPUs and Bitcoin ASICs) and its projections
/// (down to the IRDS-projected 5 nm "final" node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // variants are self-describing: N<feature size in nm>
pub enum TechNode {
    N180,
    N130,
    N110,
    N90,
    N65,
    N55,
    N45,
    N40,
    N32,
    N28,
    N22,
    N20,
    N16,
    N14,
    N12,
    N10,
    N7,
    N5,
}

/// Device-level parameters of a node, relative to the 45 nm reference
/// (except `vdd_volts`, which is absolute).
///
/// The values are calibrated to the published Stillmaker & Baas curves and
/// the IRDS 2017 5 nm projection, i.e. the same sources as the paper's
/// Fig. 3a.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeParams {
    /// Feature size in nanometers.
    pub nanometers: f64,
    /// Nominal supply voltage in volts.
    pub vdd_volts: f64,
    /// Gate capacitance relative to 45 nm (scales with feature size).
    pub capacitance_rel: f64,
    /// Gate delay relative to 45 nm (smaller is faster; improvement slows
    /// at advanced nodes).
    pub gate_delay_rel: f64,
    /// Sub-threshold + gate leakage per transistor relative to 45 nm.
    /// Declines far slower than dynamic energy — the root of the
    /// dark-silicon power wall the paper's TDP model captures.
    pub leakage_per_transistor_rel: f64,
}

/// Reference VDD at the 45 nm node, used to normalize `C · V²` products.
const VDD_45NM: f64 = 1.0;

/// One row per node: (node, nm, VDD, C_rel, delay_rel, leak_rel).
const TABLE: &[(TechNode, NodeParams)] = &[
    (TechNode::N180, np(180.0, 1.80, 4.000, 4.17, 3.00)),
    (TechNode::N130, np(130.0, 1.30, 2.889, 2.86, 2.40)),
    (TechNode::N110, np(110.0, 1.20, 2.444, 2.44, 2.10)),
    (TechNode::N90, np(90.0, 1.10, 2.000, 1.96, 1.80)),
    (TechNode::N65, np(65.0, 1.10, 1.444, 1.41, 1.40)),
    (TechNode::N55, np(55.0, 1.00, 1.222, 1.22, 1.20)),
    (TechNode::N45, np(45.0, 1.00, 1.000, 1.00, 1.00)),
    (TechNode::N40, np(40.0, 0.99, 0.889, 0.93, 0.93)),
    (TechNode::N32, np(32.0, 0.97, 0.711, 0.83, 0.82)),
    (TechNode::N28, np(28.0, 0.95, 0.622, 0.77, 0.75)),
    (TechNode::N22, np(22.0, 0.90, 0.489, 0.69, 0.66)),
    (TechNode::N20, np(20.0, 0.88, 0.444, 0.66, 0.62)),
    (TechNode::N16, np(16.0, 0.85, 0.356, 0.60, 0.55)),
    (TechNode::N14, np(14.0, 0.82, 0.311, 0.57, 0.51)),
    (TechNode::N12, np(12.0, 0.80, 0.267, 0.54, 0.47)),
    (TechNode::N10, np(10.0, 0.75, 0.222, 0.51, 0.42)),
    (TechNode::N7, np(7.0, 0.70, 0.156, 0.47, 0.36)),
    (TechNode::N5, np(5.0, 0.65, 0.111, 0.44, 0.30)),
];

const fn np(nm: f64, vdd: f64, cap: f64, delay: f64, leak: f64) -> NodeParams {
    NodeParams {
        nanometers: nm,
        vdd_volts: vdd,
        capacitance_rel: cap,
        gate_delay_rel: delay,
        leakage_per_transistor_rel: leak,
    }
}

impl TechNode {
    /// All nodes in the model, from oldest (180 nm) to newest (5 nm).
    pub fn all() -> &'static [TechNode] {
        const ALL: [TechNode; 18] = [
            TechNode::N180,
            TechNode::N130,
            TechNode::N110,
            TechNode::N90,
            TechNode::N65,
            TechNode::N55,
            TechNode::N45,
            TechNode::N40,
            TechNode::N32,
            TechNode::N28,
            TechNode::N22,
            TechNode::N20,
            TechNode::N16,
            TechNode::N14,
            TechNode::N12,
            TechNode::N10,
            TechNode::N7,
            TechNode::N5,
        ];
        &ALL
    }

    /// The node subset swept by the paper's design-space exploration
    /// (Table III): 45, 32, 22, 14, 10, 7, 5 nm.
    pub fn sweep_nodes() -> &'static [TechNode] {
        const SWEEP: [TechNode; 7] = [
            TechNode::N45,
            TechNode::N32,
            TechNode::N22,
            TechNode::N14,
            TechNode::N10,
            TechNode::N7,
            TechNode::N5,
        ];
        &SWEEP
    }

    /// Looks a node up by feature size in nanometers.
    ///
    /// ```
    /// use accelwall_cmos::TechNode;
    /// assert_eq!(TechNode::from_nanometers(28.0), Some(TechNode::N28));
    /// assert_eq!(TechNode::from_nanometers(6.0), None);
    /// ```
    pub fn from_nanometers(nm: f64) -> Option<TechNode> {
        TABLE
            .iter()
            .find(|(_, p)| p.nanometers == nm)
            .map(|(n, _)| *n)
    }

    /// Feature size in nanometers.
    pub fn nanometers(self) -> f64 {
        self.params().nanometers
    }

    /// Device parameters of this node.
    pub fn params(self) -> &'static NodeParams {
        &TABLE
            .iter()
            .find(|(n, _)| *n == self)
            // lint:allow(no-panic-paths): TABLE covers every TechNode; all_nodes_ordered_oldest_to_newest exercises params() for each variant
            .expect("every variant is in the table")
            .1
    }

    /// Switching-speed potential relative to 45 nm (reciprocal gate delay).
    pub fn frequency_potential(self) -> f64 {
        1.0 / self.params().gate_delay_rel
    }

    /// Dynamic energy per operation relative to 45 nm: the `C · VDD²`
    /// product, normalized.
    pub fn dynamic_energy_rel(self) -> f64 {
        let p = self.params();
        p.capacitance_rel * (p.vdd_volts / VDD_45NM).powi(2)
    }

    /// Dynamic power at a fixed clock frequency relative to 45 nm.
    ///
    /// Power is energy × frequency, so at fixed frequency this equals
    /// [`dynamic_energy_rel`](Self::dynamic_energy_rel).
    pub fn dynamic_power_rel(self) -> f64 {
        self.dynamic_energy_rel()
    }

    /// Leakage power per transistor relative to 45 nm.
    pub fn leakage_rel(self) -> f64 {
        self.params().leakage_per_transistor_rel
    }

    /// Transistor density relative to 45 nm (`∝ 1/node²`).
    ///
    /// ```
    /// use accelwall_cmos::TechNode;
    /// assert!((TechNode::N5.density_rel() - 81.0).abs() < 1e-9);
    /// ```
    pub fn density_rel(self) -> f64 {
        let nm = self.nanometers();
        (45.0 / nm) * (45.0 / nm)
    }

    /// The paper's transistor-density factor `D = A / N²` in mm²/nm² for a
    /// die of `area_mm2` fabricated at this node (x-axis of Fig. 3b).
    pub fn density_factor(self, area_mm2: f64) -> f64 {
        area_mm2 / (self.nanometers() * self.nanometers())
    }

    /// "Transistor speed × density" potential relative to 45 nm — the
    /// headline physical-capability scalar the paper attributes CMOS-driven
    /// gains to for area-limited chips.
    pub fn transistor_potential(self) -> f64 {
        self.density_rel() * self.frequency_potential()
    }

    /// Year the node reached volume production (7 nm and 5 nm are the
    /// roadmap projections the paper worked with; 5 nm was "not
    /// commercially available yet" at publication).
    pub fn intro_year(self) -> u32 {
        match self {
            TechNode::N180 => 1999,
            TechNode::N130 => 2001,
            TechNode::N110 => 2003,
            TechNode::N90 => 2004,
            TechNode::N65 => 2006,
            TechNode::N55 => 2008,
            TechNode::N45 => 2008,
            TechNode::N40 => 2009,
            TechNode::N32 => 2010,
            TechNode::N28 => 2011,
            TechNode::N22 => 2012,
            TechNode::N20 => 2014,
            TechNode::N16 => 2015,
            TechNode::N14 => 2015,
            TechNode::N12 => 2017,
            TechNode::N10 => 2017,
            TechNode::N7 => 2019,
            TechNode::N5 => 2021,
        }
    }

    /// The newest node in volume production by `year`, if any node existed.
    pub fn newest_by_year(year: u32) -> Option<TechNode> {
        TechNode::all()
            .iter()
            .copied()
            .rev()
            .find(|n| n.intro_year() <= year)
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.nanometers() as u32)
    }
}

/// Error returned when parsing a [`TechNode`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTechNodeError {
    input: String,
}

impl fmt::Display for ParseTechNodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown CMOS node {:?}; expected e.g. \"28nm\"",
            self.input
        )
    }
}

impl Error for ParseTechNodeError {}

impl FromStr for TechNode {
    type Err = ParseTechNodeError;

    /// Parses strings like `"28nm"`, `"28 nm"`, or `"28"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim().trim_end_matches("nm").trim();
        trimmed
            .parse::<f64>()
            .ok()
            .and_then(TechNode::from_nanometers)
            .ok_or_else(|| ParseTechNodeError {
                input: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_node_is_unity() {
        let n = TechNode::N45;
        assert_eq!(n.frequency_potential(), 1.0);
        assert_eq!(n.dynamic_energy_rel(), 1.0);
        assert_eq!(n.leakage_rel(), 1.0);
        assert_eq!(n.density_rel(), 1.0);
    }

    #[test]
    fn all_nodes_ordered_oldest_to_newest() {
        let nodes = TechNode::all();
        assert_eq!(nodes.len(), 18);
        assert!(nodes
            .windows(2)
            .all(|w| w[0].nanometers() > w[1].nanometers()));
    }

    #[test]
    fn frequency_potential_monotonically_improves() {
        let nodes = TechNode::all();
        assert!(nodes
            .windows(2)
            .all(|w| w[0].frequency_potential() < w[1].frequency_potential()));
    }

    #[test]
    fn dynamic_energy_monotonically_declines() {
        let nodes = TechNode::all();
        assert!(nodes
            .windows(2)
            .all(|w| w[0].dynamic_energy_rel() > w[1].dynamic_energy_rel()));
    }

    #[test]
    fn leakage_declines_slower_than_dynamic_energy() {
        // The dark-silicon premise: static power scales worse than dynamic.
        for &n in TechNode::all() {
            if n.nanometers() < 45.0 {
                assert!(
                    n.leakage_rel() > n.dynamic_energy_rel(),
                    "{n}: leakage should decline slower than dynamic energy"
                );
            }
        }
    }

    #[test]
    fn five_nm_headline_ratios() {
        // 45 -> 5 nm: ~21x energy efficiency per op, ~2.3x speed, 81x density.
        let n5 = TechNode::N5;
        let ee = 1.0 / n5.dynamic_energy_rel();
        assert!((20.0..23.0).contains(&ee), "energy ratio {ee}");
        assert!((2.0..2.5).contains(&n5.frequency_potential()));
        assert!((n5.density_rel() - 81.0).abs() < 1e-9);
    }

    #[test]
    fn density_factor_matches_paper_example() {
        // Paper: large 5 nm chips reach D <= 30 and ~100G transistors.
        // An 800 mm2 die at 5 nm has D = 800 / 25 = 32 mm2/nm2.
        let d = TechNode::N5.density_factor(800.0);
        assert!((d - 32.0).abs() < 1e-9);
    }

    #[test]
    fn from_nanometers_roundtrips() {
        for &n in TechNode::all() {
            assert_eq!(TechNode::from_nanometers(n.nanometers()), Some(n));
        }
    }

    #[test]
    fn parse_from_str_variants() {
        assert_eq!("28nm".parse::<TechNode>().unwrap(), TechNode::N28);
        assert_eq!("28 nm".parse::<TechNode>().unwrap(), TechNode::N28);
        assert_eq!("28".parse::<TechNode>().unwrap(), TechNode::N28);
        assert!("6nm".parse::<TechNode>().is_err());
        assert!("abc".parse::<TechNode>().is_err());
    }

    #[test]
    fn display_formats_with_suffix() {
        assert_eq!(TechNode::N7.to_string(), "7nm");
        assert_eq!(TechNode::N180.to_string(), "180nm");
    }

    #[test]
    fn vdd_declines_with_scaling() {
        let nodes = TechNode::all();
        assert!(nodes
            .windows(2)
            .all(|w| w[0].params().vdd_volts >= w[1].params().vdd_volts));
    }

    #[test]
    fn sweep_nodes_are_table_iii() {
        let nm: Vec<f64> = TechNode::sweep_nodes()
            .iter()
            .map(|n| n.nanometers())
            .collect();
        assert_eq!(nm, vec![45.0, 32.0, 22.0, 14.0, 10.0, 7.0, 5.0]);
    }

    #[test]
    fn intro_years_are_monotone() {
        let nodes = TechNode::all();
        assert!(nodes
            .windows(2)
            .all(|w| w[0].intro_year() <= w[1].intro_year()));
        assert_eq!(TechNode::N5.intro_year(), 2021);
    }

    #[test]
    fn newest_by_year_tracks_the_roadmap() {
        assert_eq!(TechNode::newest_by_year(1998), None);
        assert_eq!(TechNode::newest_by_year(2005), Some(TechNode::N90));
        assert_eq!(TechNode::newest_by_year(2013), Some(TechNode::N22));
        assert_eq!(TechNode::newest_by_year(2030), Some(TechNode::N5));
    }

    #[test]
    fn transistor_potential_compounds_density_and_speed() {
        let n5 = TechNode::N5;
        let expected = n5.density_rel() * n5.frequency_potential();
        assert_eq!(n5.transistor_potential(), expected);
        assert!(
            expected > 150.0,
            "5nm potential should exceed 150x: {expected}"
        );
    }
}
