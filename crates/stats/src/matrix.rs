//! A small dense matrix with a Gaussian-elimination solver.
//!
//! This is the only piece of linear algebra the reproduction needs: the
//! normal equations of polynomial least squares (Fig. 5's quadratic trend
//! curves) reduce to solving a tiny symmetric positive-definite system, and
//! partial-pivoted Gaussian elimination is more than adequate at degree ≤ 4.

use crate::{Result, StatsError};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = value;
    }

    /// Solves the square system `self * x = rhs` by Gaussian elimination with
    /// partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Singular`] when a pivot collapses below
    /// `1e-12` (rank-deficient system) and [`StatsError::LengthMismatch`]
    /// when `rhs` does not match the row count. The matrix must be square;
    /// a non-square matrix yields [`StatsError::Singular`] as well since no
    /// unique solution exists.
    pub fn solve(&self, rhs: &[f64]) -> Result<Vec<f64>> {
        if self.rows != self.cols {
            return Err(StatsError::Singular);
        }
        if rhs.len() != self.rows {
            return Err(StatsError::LengthMismatch {
                xs: self.rows,
                ys: rhs.len(),
            });
        }
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut b = rhs.to_vec();

        for col in 0..n {
            // Partial pivot: find the largest |a[r][col]| for r >= col.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a[r1 * n + col].abs().total_cmp(&a[r2 * n + col].abs()))
                // lint:allow(no-panic-paths): col < n, so the range col..n is never empty
                .expect("non-empty pivot range");
            if a[pivot_row * n + col].abs() < 1e-12 {
                return Err(StatsError::Singular);
            }
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                b.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / pivot;
                // lint:allow(float-hygiene): exact-zero skip is purely an optimization; any nonzero factor must eliminate
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                // lint:allow(determinism): Gaussian elimination is inherently sequential; row order is fixed by the algorithm, never by thread count
                b[row] -= factor * b[col];
            }
        }

        // Back substitution.
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = b[row];
            for k in (row + 1)..n {
                // lint:allow(determinism): back substitution walks columns in a fixed order; the accumulation is never chunked
                acc -= a[row * n + k] * x[k];
            }
            x[row] = acc / a[row * n + row];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let m = Matrix::from_rows(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let x = m.solve(&[3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_2x2_system() {
        // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
        let m = Matrix::from_rows(2, 2, &[2.0, 1.0, 1.0, -1.0]);
        let x = m.solve(&[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solves_3x3_requiring_pivot() {
        // First pivot is zero, forcing a row swap.
        let m = Matrix::from_rows(3, 3, &[0.0, 1.0, 1.0, 2.0, 0.0, 1.0, 1.0, 1.0, 0.0]);
        // Solution x = (1, 2, 3): rhs = (5, 5, 3).
        let x = m.solve(&[5.0, 5.0, 3.0]).unwrap();
        for (got, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-10, "got {got}, want {want}");
        }
    }

    #[test]
    fn reports_singular() {
        let m = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(m.solve(&[1.0, 2.0]), Err(StatsError::Singular));
    }

    #[test]
    fn rejects_rhs_mismatch() {
        let m = Matrix::zeros(2, 2);
        assert!(matches!(
            m.solve(&[1.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "dimensions must be non-zero")]
    fn zero_dimension_panics() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 9.5);
        assert_eq!(m.get(1, 2), 9.5);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }
}
