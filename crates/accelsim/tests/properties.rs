//! Randomized tests of the simulator and scheduler over randomly
//! generated dataflow graphs and design points, driven by the
//! deterministic [`Rng`] from `accelwall-stats`.

use accelwall_accelsim::{
    run_sweep_lowered, schedule, schedule_reference, simulate, simulate_lowered, DesignConfig,
    SweepSpace,
};
use accelwall_cmos::TechNode;
use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};
use accelwall_stats::Rng;
use accelwall_workloads::Workload;
use std::sync::Arc;

const OPS: [Op; 10] = [
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Min,
    Op::Max,
    Op::Abs,
    Op::Xor,
    Op::Sqrt,
    Op::Select,
    Op::Copy,
];

const CASES: u64 = 96;

fn build(inputs: usize, ops: &[(u8, u8, u8, u8)]) -> Dfg {
    let mut b = DfgBuilder::new("random");
    let mut nodes: Vec<NodeId> = (0..inputs).map(|i| b.input(format!("x{i}"))).collect();
    for &(op_sel, a_sel, b_sel, c_sel) in ops {
        let op = OPS[op_sel as usize % OPS.len()];
        let pick = |sel: u8, n: usize| sel as usize % n;
        let n = nodes.len();
        let operands: Vec<NodeId> = (0..op.arity())
            .map(|k| nodes[pick([a_sel, b_sel, c_sel][k], n)])
            .collect();
        nodes.push(b.op(op, &operands));
    }
    let tail = nodes.len().saturating_sub(2);
    for (k, &n) in nodes[tail..].iter().enumerate() {
        b.output(format!("o{k}"), n);
    }
    b.build().expect("random graphs are valid by construction")
}

/// Draws a random `(inputs, ops)` graph recipe; operand selectors index
/// already-existing nodes, so the graph is a DAG by construction.
fn arb_graph(rng: &mut Rng) -> (usize, Vec<(u8, u8, u8, u8)>) {
    let inputs = rng.range(1, 6) as usize;
    let n_ops = rng.range(1, 80) as usize;
    let ops = (0..n_ops)
        .map(|_| {
            (
                rng.below(256) as u8,
                rng.below(256) as u8,
                rng.below(256) as u8,
                rng.below(256) as u8,
            )
        })
        .collect();
    (inputs, ops)
}

fn arb_config(rng: &mut Rng) -> DesignConfig {
    let nodes = TechNode::sweep_nodes();
    let node = nodes[rng.index(nodes.len())];
    let p_exp = rng.below(16) as u32;
    let s = rng.range(1, 14) as u32;
    let het = rng.flip();
    DesignConfig::new(node, 1 << p_exp, s, het)
}

#[test]
fn simulate_is_total_and_sane() {
    let mut rng = Rng::seed(0xACCE_0001);
    for _ in 0..CASES {
        let (inputs, ops) = arb_graph(&mut rng);
        let config = arb_config(&mut rng);
        let dfg = build(inputs, &ops);
        let r = simulate(&dfg, &config).unwrap();
        assert!(r.cycles >= 1.0);
        assert!(r.runtime_s > 0.0);
        assert!(r.dynamic_energy_j > 0.0);
        assert!(r.leakage_w > 0.0);
        assert!(r.power_w().is_finite());
        assert!(r.cycles >= r.critical_path_cycles - 1e-9);
        assert_eq!(r.ops, dfg.stats().computes as u64);
    }
}

#[test]
fn scheduler_is_total_and_dependence_safe() {
    let mut rng = Rng::seed(0xACCE_0002);
    for _ in 0..CASES {
        let (inputs, ops) = arb_graph(&mut rng);
        let config = arb_config(&mut rng);
        let dfg = build(inputs, &ops);
        let s = schedule(&dfg, &config).unwrap();
        assert!(s.respects_dependences(&dfg));
        assert!(s.makespan >= 1);
        assert!(s.peak_lanes_busy <= config.partition_factor);
        assert!(s.utilization > 0.0 && s.utilization <= 1.0 + 1e-9);
        // Every node got a slot.
        for id in dfg.ids() {
            assert!(s.finish_cycle[id.index()] > s.start_cycle[id.index()]);
        }
    }
}

#[test]
fn bound_lower_bounds_schedule_without_fusion() {
    let mut rng = Rng::seed(0xACCE_0003);
    for _ in 0..CASES {
        let (inputs, ops) = arb_graph(&mut rng);
        let p_exp = rng.below(12) as u32;
        let s = rng.range(1, 14) as u32;
        let dfg = build(inputs, &ops);
        let config = DesignConfig::new(TechNode::N45, 1 << p_exp, s, false);
        let bound = simulate(&dfg, &config).unwrap().cycles;
        let actual = schedule(&dfg, &config).unwrap().makespan as f64;
        assert!(
            actual >= bound * 0.99 - 1.0,
            "scheduled {actual} below bound {bound}"
        );
        assert!(
            actual <= 2.0 * bound + 8.0,
            "scheduled {actual} breaks Graham vs bound {bound}"
        );
    }
}

#[test]
fn lowered_scheduler_is_bit_identical_to_the_reference_on_random_graphs() {
    // `schedule` runs the flat bytecode scheduler; `schedule_reference`
    // keeps the original adjacency-list walk verbatim. The two must agree
    // on every field of every schedule — start cycles, finish cycles,
    // makespan, peak occupancy, and utilization (an f64, compared
    // exactly).
    let mut rng = Rng::seed(0xACCE_0006);
    for _ in 0..CASES {
        let (inputs, ops) = arb_graph(&mut rng);
        let config = arb_config(&mut rng);
        let dfg = build(inputs, &ops);
        let lowered = schedule(&dfg, &config).unwrap();
        let reference = schedule_reference(&dfg, &config).unwrap();
        assert_eq!(lowered, reference, "{config:?}");
        assert_eq!(
            lowered.utilization.to_bits(),
            reference.utilization.to_bits()
        );
    }
}

#[test]
fn lowered_scheduler_is_bit_identical_to_the_reference_on_registry_workloads() {
    let configs = [
        DesignConfig::baseline(),
        DesignConfig::new(TechNode::N45, 64, 1, false),
        DesignConfig::new(TechNode::N7, 256, 5, true),
        DesignConfig::new(TechNode::N5, 4096, 13, true),
    ];
    for &w in Workload::all() {
        let dfg = w.default_instance();
        for config in configs {
            let lowered = schedule(&dfg, &config).unwrap();
            let reference = schedule_reference(&dfg, &config).unwrap();
            assert_eq!(lowered, reference, "{w} {config:?}");
        }
    }
}

#[test]
fn hoisted_sweep_is_bit_identical_to_per_point_simulation_on_random_graphs() {
    // The sweep hoists the kernel walk out of the partitioning axis; a
    // point-by-point `simulate_lowered` repeats the whole walk per point.
    // Every report field must still match to the bit.
    let mut rng = Rng::seed(0xACCE_0007);
    let space = SweepSpace::coarse();
    for _ in 0..24 {
        let (inputs, ops) = arb_graph(&mut rng);
        let dfg = build(inputs, &ops);
        let program = Arc::new(dfg.lower());
        let points = run_sweep_lowered(&program, &space).unwrap();
        assert_eq!(points.len(), space.len());
        for (point, config) in points.iter().zip(space.configs()) {
            assert_eq!(point.config, config, "sweep must keep config order");
            let direct = simulate_lowered(&program, &config).unwrap();
            assert_eq!(point.report, direct, "{config:?}");
        }
    }
}

#[test]
fn hoisted_sweep_is_bit_identical_to_per_point_simulation_on_registry_workloads() {
    let space = SweepSpace::coarse();
    for &w in Workload::all() {
        let program = Arc::new(w.default_instance().lower());
        let points = run_sweep_lowered(&program, &space).unwrap();
        for (point, config) in points.iter().zip(space.configs()) {
            let direct = simulate_lowered(&program, &config).unwrap();
            assert_eq!(point.report, direct, "{w} {config:?}");
        }
    }
}

#[test]
fn bytecode_vm_matches_the_tree_walking_oracle_on_registry_workloads() {
    // Deterministic pseudo-random inputs per workload; the register
    // machine and the legacy recursive interpreter must agree on every
    // output bit (or return the identical error).
    let mut rng = Rng::seed(0xACCE_0008);
    for &w in Workload::all() {
        let dfg = w.default_instance();
        let program = dfg.lower();
        let inputs: std::collections::HashMap<String, f64> = program
            .input_slots()
            .iter()
            .map(|(name, _)| (name.clone(), rng.uniform(-4.0, 4.0)))
            .collect();
        let vm = program.evaluate(&inputs);
        let oracle = dfg.evaluate_reference(&inputs);
        assert_eq!(vm, oracle, "{w}");
        if let (Ok(vm), Ok(oracle)) = (&vm, &oracle) {
            for (name, value) in vm {
                assert_eq!(value.to_bits(), oracle[name].to_bits(), "{w} {name}");
            }
        }
    }
}

#[test]
fn energy_scales_linearly_with_width() {
    // Halving the datapath (degree 9 = 16 bits) halves dynamic energy
    // exactly in the model — until serialization multiplies passes.
    let mut rng = Rng::seed(0xACCE_0004);
    for _ in 0..CASES {
        let (inputs, ops) = arb_graph(&mut rng);
        let p_exp = rng.below(8) as u32;
        let dfg = build(inputs, &ops);
        let full = simulate(
            &dfg,
            &DesignConfig::new(TechNode::N45, 1 << p_exp, 1, false),
        )
        .unwrap();
        let s5 = simulate(
            &dfg,
            &DesignConfig::new(TechNode::N45, 1 << p_exp, 5, false),
        )
        .unwrap();
        // Width 24/32 = 0.75, same pass count.
        assert!((s5.dynamic_energy_j / full.dynamic_energy_j - 0.75).abs() < 1e-9);
    }
}

#[test]
fn leakage_independent_of_clock_schedule() {
    let mut rng = Rng::seed(0xACCE_0005);
    for _ in 0..CASES {
        let (inputs, ops) = arb_graph(&mut rng);
        let dfg = build(inputs, &ops);
        let a = simulate(&dfg, &DesignConfig::new(TechNode::N7, 4, 1, false)).unwrap();
        let b = simulate(&dfg, &DesignConfig::new(TechNode::N7, 4, 1, true)).unwrap();
        // Fusion changes cycles, not area/leakage.
        assert_eq!(a.leakage_w, b.leakage_w);
        assert_eq!(a.area_units, b.area_units);
    }
}
