//! Graph-processing kernels: BFS and SSP (Bellman-Ford relaxation).
//!
//! Both kernels run level-synchronous relaxation sweeps over a *fixed*
//! topology — the hardware analogue of an accelerator synthesized for one
//! graph structure (as in processing-in-memory BFS engines). Topologies are
//! generated deterministically from the node count so the DFG and the
//! reference kernel agree.

use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};

/// Deterministic pseudo-random digraph. Node `v` always points at
/// `(v + 1) mod n` — a Hamiltonian ring guaranteeing strong connectivity —
/// plus `degree − 1` scattered chords `(v·(2k+3) + 7k + 2) mod n`
/// (self-loops and duplicates removed).
pub fn topology(n: usize, degree: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|v| {
            let mut adj = vec![(v + 1) % n];
            for k in 0..degree.saturating_sub(1) {
                adj.push((v * (2 * k + 3) + 7 * k + 2) % n);
            }
            adj.sort_unstable();
            adj.dedup();
            adj.retain(|&u| u != v);
            adj
        })
        .collect()
}

/// Deterministic edge weight for edge `v → u`.
pub fn edge_weight(v: usize, u: usize) -> f64 {
    ((v * 31 + u * 17) % 9 + 1) as f64
}

/// Level-synchronous BFS distance computation, unrolled for `levels`
/// sweeps over the [`topology`] of `n` nodes with out-degree `degree`.
///
/// Inputs `d0_{v}`: the initial distance vector (0 at the source, a large
/// sentinel elsewhere). Each sweep relaxes
/// `d[v] = min(d[v], min over in-neighbors u of d[u] + 1)`.
/// With `levels ≥` the graph's eccentricity the result is exact BFS.
/// Outputs `dist{v}`.
///
/// # Panics
///
/// Panics if `n < 2` or `levels == 0`.
pub fn build_bfs(n: usize, levels: usize) -> Dfg {
    assert!(n >= 2 && levels > 0, "BFS needs nodes and sweeps");
    build_relaxation(
        format!("bfs_n{n}_l{levels}"),
        n,
        levels,
        &topology(n, 3),
        RelaxKind::Unit,
    )
}

/// Bellman-Ford single-source shortest paths over the weighted
/// [`topology`]; same relaxation structure as BFS but with per-edge weight
/// inputs `w{v}_{u}`.
///
/// # Panics
///
/// Panics if `n < 2` or `sweeps == 0`.
pub fn build_ssp(n: usize, sweeps: usize) -> Dfg {
    assert!(n >= 2 && sweeps > 0, "SSP needs nodes and sweeps");
    build_relaxation(
        format!("ssp_n{n}_l{sweeps}"),
        n,
        sweeps,
        &topology(n, 3),
        RelaxKind::Weighted,
    )
}

enum RelaxKind {
    Unit,
    Weighted,
}

fn build_relaxation(
    name: String,
    n: usize,
    levels: usize,
    adj: &[Vec<usize>],
    kind: RelaxKind,
) -> Dfg {
    let mut b = DfgBuilder::new(name);
    let one = b.input("one"); // unit edge cost for BFS
    let mut dist: Vec<NodeId> = (0..n).map(|v| b.input(format!("d0_{v}"))).collect();
    // Pre-register weight inputs (once per edge, reused across sweeps).
    let mut weights = std::collections::HashMap::new();
    if matches!(kind, RelaxKind::Weighted) {
        for (v, outs) in adj.iter().enumerate() {
            for &u in outs {
                weights.insert((v, u), b.input(format!("w{v}_{u}")));
            }
        }
    }
    // Incoming adjacency: relax each node from its in-neighbors.
    let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, outs) in adj.iter().enumerate() {
        for &u in outs {
            incoming[u].push(v);
        }
    }
    for _ in 0..levels {
        let mut next = Vec::with_capacity(n);
        for (u, ins) in incoming.iter().enumerate() {
            let mut candidates = vec![dist[u]];
            for &v in ins {
                let cost = match kind {
                    RelaxKind::Unit => one,
                    RelaxKind::Weighted => weights[&(v, u)],
                };
                candidates.push(b.op(Op::Add, &[dist[v], cost]));
            }
            next.push(b.reduce(Op::Min, &candidates));
        }
        dist = next;
    }
    for (v, &d) in dist.iter().enumerate() {
        b.output(format!("dist{v}"), d);
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("relaxation graph is structurally valid")
}

/// Reference relaxation sweeps (unit costs = BFS; else Bellman-Ford).
pub fn relaxation_reference(
    adj: &[Vec<usize>],
    init: &[f64],
    sweeps: usize,
    weight: impl Fn(usize, usize) -> f64,
) -> Vec<f64> {
    let mut dist = init.to_vec();
    for _ in 0..sweeps {
        let mut next = dist.clone();
        for (v, outs) in adj.iter().enumerate() {
            for &u in outs {
                next[u] = next[u].min(dist[v] + weight(v, u));
            }
        }
        dist = next;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    const SENTINEL: f64 = 1e9;

    fn init_dist(n: usize) -> Vec<f64> {
        let mut d = vec![SENTINEL; n];
        d[0] = 0.0;
        d
    }

    #[test]
    fn bfs_matches_reference_sweeps() {
        let (n, levels) = (12, 4);
        let g = build_bfs(n, levels);
        let init = init_dist(n);
        let mut inputs = HashMap::from([("one".to_string(), 1.0)]);
        for (v, &d) in init.iter().enumerate() {
            inputs.insert(format!("d0_{v}"), d);
        }
        let out = g.evaluate(&inputs).unwrap();
        let expected = relaxation_reference(&topology(n, 3), &init, levels, |_, _| 1.0);
        for (v, &e) in expected.iter().enumerate() {
            assert_eq!(out[&format!("dist{v}")], e, "node {v}");
        }
    }

    #[test]
    fn bfs_with_enough_levels_is_exact() {
        let n = 12;
        let adj = topology(n, 3);
        // Ground truth via an actual queue-based BFS.
        let mut exact = vec![usize::MAX; n];
        exact[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if exact[u] == usize::MAX {
                    exact[u] = exact[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        let relaxed = relaxation_reference(&adj, &init_dist(n), n, |_, _| 1.0);
        for v in 0..n {
            assert_eq!(relaxed[v] as usize, exact[v], "node {v}");
        }
    }

    #[test]
    fn ssp_matches_reference_sweeps() {
        let (n, sweeps) = (10, 3);
        let g = build_ssp(n, sweeps);
        let adj = topology(n, 3);
        let init = init_dist(n);
        let mut inputs = HashMap::from([("one".to_string(), 1.0)]);
        for (v, &d) in init.iter().enumerate() {
            inputs.insert(format!("d0_{v}"), d);
        }
        for (v, outs) in adj.iter().enumerate() {
            for &u in outs {
                inputs.insert(format!("w{v}_{u}"), edge_weight(v, u));
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        let expected = relaxation_reference(&adj, &init, sweeps, edge_weight);
        for (v, &e) in expected.iter().enumerate() {
            assert_eq!(out[&format!("dist{v}")], e, "node {v}");
        }
    }

    #[test]
    fn topology_is_simple_and_in_range() {
        for (v, outs) in topology(16, 4).iter().enumerate() {
            assert!(outs.iter().all(|&u| u < 16 && u != v));
            let mut sorted = outs.clone();
            sorted.dedup();
            assert_eq!(&sorted, outs);
        }
    }

    #[test]
    fn sweeps_serialize_depth() {
        // Each sweep is a dependent phase: depth grows with sweep count.
        let d2 = build_bfs(12, 2).stats().depth;
        let d4 = build_bfs(12, 4).stats().depth;
        assert!(d4 > d2);
    }
}
