//! Graph analyses: stages, depth, working sets, path counts.
//!
//! These compute exactly the quantities Section V-B defines on the DFG:
//! the depth `D` (longest computation path, counted in vertices), the
//! per-stage working sets `WS_s`, and the size of the computation-path set
//! `P` (counted without enumeration — path counts grow exponentially).

use crate::graph::{Dfg, NodeId, NodeKind};

/// Summary statistics of a DFG, in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfgStats {
    /// `|V|` — total vertices.
    pub vertices: usize,
    /// `|E|` — total edges.
    pub edges: usize,
    /// `|V_IN|` — input variables.
    pub inputs: usize,
    /// `|V_OUT|` — output variables.
    pub outputs: usize,
    /// `|V_CMP|` — computation vertices.
    pub computes: usize,
    /// `D` — vertices on the longest input-to-output computation path.
    pub depth: usize,
    /// Number of *compute* stages (ASAP levels occupied by computation
    /// vertices); the Fig. 11 example has 2.
    pub compute_stages: usize,
    /// `max_s |WS_s|` — the largest per-stage working set: the maximum
    /// number of values that must be held concurrently between stages
    /// (live values), which bounds both minimal storage and exploitable
    /// parallelism (Table II).
    pub max_working_set: usize,
    /// Widest single stage (vertices scheduled at one ASAP level) — the
    /// graph's intrinsic parallelism ceiling.
    pub max_stage_width: usize,
    /// `|P|` — number of computation paths, saturating at `u128::MAX`.
    pub path_count: u128,
}

impl Dfg {
    /// ASAP level of every node: inputs at level 0, every other node one
    /// past its latest operand. Node ids ascend topologically, so one pass
    /// suffices.
    pub fn asap_levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let base = node
                .operands
                .iter()
                .map(|o| levels[o.index()])
                .max()
                .map_or(0, |m| m + 1);
            // Outputs sit at their operand's level + 1 like any consumer;
            // they represent writing the variable out.
            levels[i] = base;
        }
        levels
    }

    /// The paper's depth `D`: vertices on the longest path from an input
    /// to an output (the Fig. 11 example has `D = 4`: input, two stages,
    /// output).
    pub fn depth(&self) -> usize {
        self.asap_levels()
            .iter()
            .zip(&self.nodes)
            .filter(|(_, n)| matches!(n.kind, NodeKind::Output(_)))
            .map(|(l, _)| l + 1)
            .max()
            .unwrap_or(0)
    }

    /// Nodes at each ASAP level, level-major.
    pub fn stages(&self) -> Vec<Vec<NodeId>> {
        let levels = self.asap_levels();
        let max = levels.iter().copied().max().unwrap_or(0);
        let mut stages = vec![Vec::new(); max + 1];
        for (i, &l) in levels.iter().enumerate() {
            stages[l].push(NodeId(i));
        }
        stages
    }

    /// The live working set after each stage: values produced at or before
    /// stage `s` that are still consumed after `s`. The maximum over `s` is
    /// the paper's `max |WS_s|`.
    pub fn working_sets(&self) -> Vec<usize> {
        let levels = self.asap_levels();
        let max_level = levels.iter().copied().max().unwrap_or(0);
        // last_use[i] = the latest level at which node i's value is consumed.
        let mut last_use = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for op in &node.operands {
                last_use[op.index()] = last_use[op.index()].max(levels[i]);
            }
        }
        (0..=max_level)
            .map(|s| {
                (0..self.nodes.len())
                    .filter(|&i| {
                        !matches!(self.nodes[i].kind, NodeKind::Output(_))
                            && levels[i] <= s
                            && last_use[i] > s
                    })
                    .count()
            })
            .collect()
    }

    /// Number of input-to-output computation paths `|P|`, by dynamic
    /// programming over the topological order; saturates at `u128::MAX`.
    pub fn path_count(&self) -> u128 {
        let mut paths_to = vec![0u128; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            paths_to[i] = match node.kind {
                NodeKind::Input(_) => 1,
                _ => node
                    .operands
                    .iter()
                    .fold(0u128, |acc, o| acc.saturating_add(paths_to[o.index()])),
            };
        }
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Output(_)))
            .fold(0u128, |acc, (i, _)| acc.saturating_add(paths_to[i]))
    }

    /// All summary statistics in one pass.
    pub fn stats(&self) -> DfgStats {
        let levels = self.asap_levels();
        let compute_levels: std::collections::BTreeSet<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Compute(_)))
            .map(|(i, _)| levels[i])
            .collect();
        let mut width = std::collections::HashMap::new();
        for &l in &levels {
            *width.entry(l).or_insert(0usize) += 1;
        }
        DfgStats {
            vertices: self.vertex_count(),
            edges: self.edge_count(),
            inputs: self.input_ids().len(),
            outputs: self.output_ids().len(),
            computes: self.compute_ids().len(),
            depth: self.depth(),
            compute_stages: compute_levels.len(),
            max_working_set: self.working_sets().into_iter().max().unwrap_or(0),
            max_stage_width: width.values().copied().max().unwrap_or(0),
            path_count: self.path_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, Op};

    /// The Fig. 11 example: 3 inputs, 2 compute stages, 2 outputs.
    fn fig11() -> Dfg {
        let mut b = DfgBuilder::new("fig11");
        let d1 = b.input("d1");
        let d2 = b.input("d2");
        let d3 = b.input("d3");
        let s1a = b.op(Op::Add, &[d1, d2]);
        let s1b = b.op(Op::Div, &[d2, d3]);
        let s2a = b.op(Op::Sub, &[s1a, s1b]);
        let s2b = b.op(Op::Add, &[s1b, d3]);
        b.output("o1", s2a);
        b.output("o2", s2b);
        b.build().unwrap()
    }

    #[test]
    fn fig11_stats() {
        let g = fig11();
        let s = g.stats();
        assert_eq!(s.vertices, 9);
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.computes, 4);
        assert_eq!(s.compute_stages, 2);
        // Longest path: input -> stage1 -> stage2 -> output = 4 vertices.
        assert_eq!(s.depth, 4);
        assert_eq!(s.edges, 2 * 4 + 2);
    }

    #[test]
    fn fig11_path_count() {
        // Paths to o1: d1->s1a->s2a, d2->s1a->s2a, d2->s1b->s2a, d3->s1b->s2a.
        // Paths to o2: d2->s1b->s2b, d3->s1b->s2b, d3->s2b.
        assert_eq!(fig11().path_count(), 7);
    }

    #[test]
    fn working_sets_track_live_values() {
        let g = fig11();
        let ws = g.working_sets();
        // After stage 0 (inputs ready): d1, d2, d3 all still consumed.
        assert_eq!(ws[0], 3);
        // After stage 1: s1a, s1b live; d3 still feeds s2b.
        assert_eq!(ws[1], 3);
        // After stage 2: s2a, s2b live until written to outputs.
        assert_eq!(ws[2], 2);
        assert_eq!(g.stats().max_working_set, 3);
    }

    #[test]
    fn chain_depth_counts_vertices() {
        let mut b = DfgBuilder::new("chain");
        let x = b.input("x");
        let a = b.op(Op::Neg, &[x]);
        let c = b.op(Op::Neg, &[a]);
        let d = b.op(Op::Neg, &[c]);
        b.output("o", d);
        let g = b.build().unwrap();
        assert_eq!(g.depth(), 5); // in, 3 ops, out
        assert_eq!(g.path_count(), 1);
        assert_eq!(g.stats().max_working_set, 1);
    }

    #[test]
    fn wide_graph_stage_width() {
        let mut b = DfgBuilder::new("wide");
        let inputs: Vec<_> = (0..16).map(|i| b.input(format!("x{i}"))).collect();
        let negs: Vec<_> = inputs.iter().map(|&i| b.op(Op::Neg, &[i])).collect();
        for (i, &n) in negs.iter().enumerate() {
            b.output(format!("o{i}"), n);
        }
        let g = b.build().unwrap();
        let s = g.stats();
        assert_eq!(s.max_stage_width, 16);
        assert_eq!(s.depth, 3);
        assert_eq!(s.max_working_set, 16);
        assert_eq!(s.path_count, 16);
    }

    #[test]
    fn diamond_reconvergence() {
        let mut b = DfgBuilder::new("diamond");
        let x = b.input("x");
        let l = b.op(Op::Neg, &[x]);
        let r = b.op(Op::Abs, &[x]);
        let j = b.op(Op::Add, &[l, r]);
        b.output("o", j);
        let g = b.build().unwrap();
        assert_eq!(g.path_count(), 2);
        assert_eq!(g.depth(), 4);
    }

    #[test]
    fn stages_cover_all_nodes() {
        let g = fig11();
        let total: usize = g.stages().iter().map(Vec::len).sum();
        assert_eq!(total, g.vertex_count());
    }
}
