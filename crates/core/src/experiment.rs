//! The [`Experiment`] trait: one reproducible paper target.
//!
//! Every figure, table, and analysis the paper reports is modeled as an
//! experiment — a named, self-describing unit that turns the shared
//! inputs in a [`Ctx`] into an [`Artifact`] carrying both a JSON document
//! (for external plotting) and the human-readable rendering the CLI
//! prints. The [`crate::registry`] owns the full roster and schedules
//! experiments across threads in declared-dependency order.
//!
//! See `DESIGN.md` ("Adding a new experiment") for the recipe.

use crate::cache::Ctx;
use crate::error::Result;
use crate::json::Value;

/// The output of one experiment run: the same result in two renderings.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Machine-readable rows/series, emitted by `accelwall <id> --json`.
    pub json: Value,
    /// Human-readable rendering, emitted by `accelwall <id>`. Lines are
    /// newline-terminated; the CLI prints it verbatim.
    pub text: String,
}

impl Artifact {
    /// Bundles the two renderings of a result.
    pub fn new(json: Value, text: String) -> Artifact {
        Artifact { json, text }
    }
}

/// One regeneration target (a figure, table, or analysis of the paper).
///
/// Implementations are stateless unit structs: all inputs come from the
/// [`Ctx`], which memoizes anything shared between experiments (the chip
/// corpus, the potential model, per-workload sweeps) so a full `all` run
/// computes each shared input exactly once no matter how many experiments
/// read it, or on how many threads.
pub trait Experiment: Send + Sync {
    /// The CLI target name (`fig3b`, `table5`, `wall`, ...).
    fn id(&self) -> &'static str;

    /// One-line description shown by `accelwall list`.
    fn description(&self) -> &'static str;

    /// Ids of experiments whose results this one summarizes or extends.
    ///
    /// The registry runs dependencies in earlier waves, so `all` output
    /// reads in logical order and shared sweeps are warm before the
    /// experiments that fan out over them. An empty slice (the default)
    /// means the experiment can run in the first wave.
    fn deps(&self) -> &'static [&'static str] {
        &[]
    }

    /// Computes the artifact from the shared inputs.
    ///
    /// # Errors
    ///
    /// Returns the unified [`crate::error::Error`] for any layer failure.
    fn run(&self, ctx: &Ctx) -> Result<Artifact>;
}
