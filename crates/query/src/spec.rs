//! Typed query specifications and strict field validation.
//!
//! All three front ends — CLI flags, `GET /query?...` query strings, and
//! `POST /query` JSON bodies — reduce their input to `(field, value)`
//! string pairs and converge on [`QuerySpec::from_pairs`]. Unknown and
//! duplicate fields are rejected with the full roster, values are
//! validated against the workload/CMOS registries, and fields that do
//! not apply to the requested kind are refused rather than ignored.

use std::collections::BTreeSet;
use std::str::FromStr;

use accelwall_accelsim::sim::{MAX_PARTITION, MAX_SIMPLIFICATION};
use accelwall_cmos::TechNode;
use accelwall_projection::{Domain, TargetMetric};
use accelwall_workloads::Workload;

use crate::QueryError;

/// The shape of question a spec asks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Simulate one (workload, node, knob vector) design point.
    Point,
    /// Enumerate a workload's full Table III design-space sweep.
    Sweep,
    /// Project a domain's accelerator wall, optionally scaling the 5 nm
    /// physical limit by a horizon factor.
    Projection,
    /// Evaluate Eq. 1 CSR or the Eq. 2 gain decomposition.
    Csr,
}

impl QueryKind {
    /// Every kind, in schema order.
    pub fn all() -> &'static [QueryKind] {
        const ALL: [QueryKind; 4] = [
            QueryKind::Point,
            QueryKind::Sweep,
            QueryKind::Projection,
            QueryKind::Csr,
        ];
        &ALL
    }

    /// The wire spelling of the kind.
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Point => "point",
            QueryKind::Sweep => "sweep",
            QueryKind::Projection => "projection",
            QueryKind::Csr => "csr",
        }
    }
}

/// Every field a spec may carry, in canonical (and schema) order.
pub const FIELDS: &[&str] = &[
    "kind",
    "workload",
    "node",
    "lanes",
    "simplification",
    "heterogeneity",
    "domain",
    "metric",
    "horizon",
    "reported",
    "physical",
    "physical_base",
];

/// A validated, default-filled what-if query.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Which question is being asked.
    pub kind: QueryKind,
    /// Target workload (point and sweep kinds).
    pub workload: Option<Workload>,
    /// CMOS process node of a point query.
    pub node: TechNode,
    /// Partitioning factor (parallel lanes) of a point query.
    pub lanes: u64,
    /// Table III simplification degree of a point query.
    pub simplification: u32,
    /// Whether the point design fuses dependent ops (heterogeneity).
    pub heterogeneity: bool,
    /// Projected domain (projection kind).
    pub domain: Option<Domain>,
    /// Projected target function.
    pub metric: TargetMetric,
    /// Scale factor applied to the domain's 5 nm physical limit before
    /// projecting — `1` is the paper's wall, `>1` asks "what if CMOS
    /// went further".
    pub horizon: f64,
    /// Reported end-to-end gain (csr kind).
    pub reported: Option<f64>,
    /// Physical (CMOS-driven) gain (csr kind).
    pub physical: Option<f64>,
    /// Second chip's physical gain; present switches Eq. 1 CSR to the
    /// Eq. 2 decomposition.
    pub physical_base: Option<f64>,
}

impl Default for QuerySpec {
    fn default() -> Self {
        QuerySpec {
            kind: QueryKind::Point,
            workload: None,
            node: TechNode::N45,
            lanes: 1,
            simplification: 1,
            heterogeneity: false,
            domain: None,
            metric: TargetMetric::Performance,
            horizon: 1.0,
            reported: None,
            physical: None,
            physical_base: None,
        }
    }
}

fn invalid(msg: impl Into<String>) -> QueryError {
    QueryError::Invalid(msg.into())
}

fn workload_roster() -> String {
    Workload::all()
        .iter()
        .map(|w| w.abbrev().to_ascii_lowercase())
        .collect::<Vec<_>>()
        .join(", ")
}

fn parse_workload(value: &str) -> Result<Workload, QueryError> {
    Workload::all()
        .iter()
        .copied()
        .find(|w| w.abbrev().eq_ignore_ascii_case(value))
        .ok_or_else(|| {
            invalid(format!(
                "unknown workload {value:?}; known workloads: {}",
                workload_roster()
            ))
        })
}

fn parse_domain(value: &str) -> Result<Domain, QueryError> {
    match value.to_ascii_lowercase().as_str() {
        "video" | "video-decoding" => Ok(Domain::VideoDecoding),
        "gpu" | "gpu-graphics" => Ok(Domain::GpuGraphics),
        "fpga" | "fpga-cnn" => Ok(Domain::FpgaCnn),
        "bitcoin" | "bitcoin-mining" => Ok(Domain::BitcoinMining),
        _ => Err(invalid(format!(
            "unknown domain {value:?}; known domains: video, gpu, fpga, bitcoin"
        ))),
    }
}

/// The wire spelling of a domain (the short roster form).
pub fn domain_label(domain: Domain) -> &'static str {
    match domain {
        Domain::VideoDecoding => "video",
        Domain::GpuGraphics => "gpu",
        Domain::FpgaCnn => "fpga",
        Domain::BitcoinMining => "bitcoin",
    }
}

/// The wire spelling of a target metric.
pub fn metric_label(metric: TargetMetric) -> &'static str {
    match metric {
        TargetMetric::Performance => "performance",
        TargetMetric::EnergyEfficiency => "efficiency",
    }
}

fn parse_metric(value: &str) -> Result<TargetMetric, QueryError> {
    match value.to_ascii_lowercase().as_str() {
        "performance" | "perf" => Ok(TargetMetric::Performance),
        "efficiency" | "energy-efficiency" => Ok(TargetMetric::EnergyEfficiency),
        _ => Err(invalid(format!(
            "unknown metric {value:?}; known metrics: performance, efficiency"
        ))),
    }
}

fn parse_bool(field: &str, value: &str) -> Result<bool, QueryError> {
    match value {
        "true" | "1" => Ok(true),
        "false" | "0" => Ok(false),
        _ => Err(invalid(format!(
            "field {field:?} wants true/false, got {value:?}"
        ))),
    }
}

fn parse_positive_f64(field: &str, value: &str) -> Result<f64, QueryError> {
    let n: f64 = value
        .parse()
        .map_err(|_| invalid(format!("field {field:?} wants a number, got {value:?}")))?;
    if n.is_finite() && n > 0.0 {
        Ok(n)
    } else {
        Err(invalid(format!(
            "field {field:?} wants a finite positive number, got {value:?}"
        )))
    }
}

impl QuerySpec {
    /// Builds and validates a spec from `(field, value)` pairs, the
    /// common denominator of the CLI, query-string, and JSON front ends.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::Invalid`] on unknown or duplicate fields,
    /// out-of-roster values, out-of-range knobs, missing required
    /// fields, or fields that do not apply to the requested kind.
    pub fn from_pairs(pairs: &[(String, String)]) -> Result<QuerySpec, QueryError> {
        let mut spec = QuerySpec::default();
        let mut provided = BTreeSet::new();
        for (field, value) in pairs {
            if !FIELDS.contains(&field.as_str()) {
                return Err(invalid(format!(
                    "unknown field {field:?}; known fields: {}",
                    FIELDS.join(", ")
                )));
            }
            if !provided.insert(field.as_str()) {
                return Err(invalid(format!("duplicate field {field:?}")));
            }
            match field.as_str() {
                "kind" => {
                    spec.kind = QueryKind::all()
                        .iter()
                        .copied()
                        .find(|k| k.label().eq_ignore_ascii_case(value))
                        .ok_or_else(|| {
                            invalid(format!(
                                "unknown kind {value:?}; known kinds: point, sweep, projection, csr"
                            ))
                        })?;
                }
                "workload" => spec.workload = Some(parse_workload(value)?),
                "node" => {
                    spec.node = TechNode::from_str(value).map_err(|e| invalid(e.to_string()))?;
                }
                "lanes" => {
                    let lanes: u64 = value.parse().map_err(|_| {
                        invalid(format!("field \"lanes\" wants an integer, got {value:?}"))
                    })?;
                    if lanes == 0 || lanes > MAX_PARTITION || !lanes.is_power_of_two() {
                        return Err(invalid(format!(
                            "field \"lanes\" wants a power of two in 1..={MAX_PARTITION}, \
                             got {value}"
                        )));
                    }
                    spec.lanes = lanes;
                }
                "simplification" => {
                    let degree: u32 = value.parse().map_err(|_| {
                        invalid(format!(
                            "field \"simplification\" wants an integer, got {value:?}"
                        ))
                    })?;
                    if degree == 0 || degree > MAX_SIMPLIFICATION {
                        return Err(invalid(format!(
                            "field \"simplification\" wants a degree in \
                             1..={MAX_SIMPLIFICATION}, got {value}"
                        )));
                    }
                    spec.simplification = degree;
                }
                "heterogeneity" => spec.heterogeneity = parse_bool(field, value)?,
                "domain" => spec.domain = Some(parse_domain(value)?),
                "metric" => spec.metric = parse_metric(value)?,
                "horizon" => spec.horizon = parse_positive_f64(field, value)?,
                "reported" => spec.reported = Some(parse_positive_f64(field, value)?),
                "physical" => spec.physical = Some(parse_positive_f64(field, value)?),
                "physical_base" => spec.physical_base = Some(parse_positive_f64(field, value)?),
                _ => unreachable!("field roster checked above"),
            }
        }
        spec.check_applicability(&provided)?;
        Ok(spec)
    }

    /// Fields a kind accepts beyond `kind` itself.
    fn applicable(kind: QueryKind) -> &'static [&'static str] {
        match kind {
            QueryKind::Point => &[
                "workload",
                "node",
                "lanes",
                "simplification",
                "heterogeneity",
            ],
            QueryKind::Sweep => &["workload"],
            QueryKind::Projection => &["domain", "metric", "horizon"],
            QueryKind::Csr => &["reported", "physical", "physical_base"],
        }
    }

    /// Fields a kind cannot answer without.
    fn required(kind: QueryKind) -> &'static [&'static str] {
        match kind {
            QueryKind::Point | QueryKind::Sweep => &["workload"],
            QueryKind::Projection => &["domain"],
            QueryKind::Csr => &["reported", "physical"],
        }
    }

    fn check_applicability(&self, provided: &BTreeSet<&str>) -> Result<(), QueryError> {
        let allowed = Self::applicable(self.kind);
        for &field in provided {
            if field != "kind" && !allowed.contains(&field) {
                return Err(invalid(format!(
                    "field {field:?} does not apply to kind {:?}; \
                     applicable fields: kind, {}",
                    self.kind.label(),
                    allowed.join(", ")
                )));
            }
        }
        for &field in Self::required(self.kind) {
            if !provided.contains(field) {
                return Err(invalid(format!(
                    "kind {:?} requires field {field:?}",
                    self.kind.label()
                )));
            }
        }
        Ok(())
    }

    /// The registry target this spec exactly shadows, if any. Shadowed
    /// specs are delegated to the `ArtifactCache`, so their response is
    /// byte-identical to the registry target's.
    pub fn shadows(&self) -> Option<&'static str> {
        if self.kind == QueryKind::Sweep && self.workload == Some(Workload::S3d) {
            Some("fig13")
        } else {
            None
        }
    }

    /// Rough cost of answering this spec, in admission-control units: a
    /// point prices one design configuration, a sweep prices the whole
    /// Table III space.
    pub fn cost_units(&self) -> u64 {
        match self.kind {
            QueryKind::Point => 1,
            QueryKind::Projection | QueryKind::Csr => 1,
            QueryKind::Sweep => 64,
        }
    }
}

/// Splits a raw URL query string (`a=1&b=2`, percent-encoded) into
/// `(field, value)` pairs ready for [`QuerySpec::from_pairs`].
///
/// # Errors
///
/// Returns [`QueryError::Invalid`] on missing `=`, empty field names, or
/// malformed percent escapes.
pub fn pairs_from_query(raw: &str) -> Result<Vec<(String, String)>, QueryError> {
    let mut pairs = Vec::new();
    for piece in raw.split('&') {
        if piece.is_empty() {
            continue;
        }
        let (field, value) = piece
            .split_once('=')
            .ok_or_else(|| invalid(format!("query parameter {piece:?} is missing '='")))?;
        if field.is_empty() {
            return Err(invalid("query parameter with an empty field name"));
        }
        pairs.push((percent_decode(field)?, percent_decode(value)?));
    }
    Ok(pairs)
}

fn percent_decode(s: &str) -> Result<String, QueryError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| invalid(format!("malformed percent escape in {s:?}")))?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| invalid(format!("percent escapes in {s:?} are not UTF-8")))
}

/// Flattens a parsed JSON body (`POST /query`) into `(field, value)`
/// pairs. The body must be one flat object; numbers are normalized via
/// Rust's shortest-roundtrip `f64` display, so `8` and `8.0` arrive at
/// [`QuerySpec::from_pairs`] spelled identically.
///
/// # Errors
///
/// Returns [`QueryError::Invalid`] when the body is not an object or a
/// member is an array/object/null.
pub fn pairs_from_json(
    body: &accelerator_wall::json::Value,
) -> Result<Vec<(String, String)>, QueryError> {
    use accelerator_wall::json::Value;
    let members = body
        .as_object()
        .ok_or_else(|| invalid("request body must be a JSON object of query fields"))?;
    let mut pairs = Vec::with_capacity(members.len());
    for (field, value) in members {
        let rendered = match value {
            Value::String(s) => s.clone(),
            Value::Number(n) => format!("{n}"),
            Value::Bool(b) => b.to_string(),
            _ => {
                return Err(invalid(format!(
                    "field {field:?} must be a string, number, or boolean"
                )))
            }
        };
        pairs.push((field.clone(), rendered));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(kv: &[(&str, &str)]) -> Vec<(String, String)> {
        kv.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parses_a_point_spec_with_defaults() {
        let spec = QuerySpec::from_pairs(&pairs(&[("workload", "fft"), ("node", "7nm")])).unwrap();
        assert_eq!(spec.kind, QueryKind::Point);
        assert_eq!(spec.workload, Some(Workload::Fft));
        assert_eq!(spec.node, TechNode::N7);
        assert_eq!(spec.lanes, 1);
        assert_eq!(spec.simplification, 1);
        assert!(!spec.heterogeneity);
    }

    #[test]
    fn rejects_unknown_and_duplicate_fields_with_roster() {
        let err = QuerySpec::from_pairs(&pairs(&[("wrkload", "fft")])).unwrap_err();
        assert!(err.to_string().contains("known fields"), "{err}");
        assert!(err.to_string().contains("physical_base"), "{err}");
        let err =
            QuerySpec::from_pairs(&pairs(&[("workload", "fft"), ("workload", "aes")])).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_out_of_roster_values() {
        for (field, value) in [
            ("workload", "quake"),
            ("node", "6nm"),
            ("lanes", "3"),
            ("lanes", "1048576"),
            ("simplification", "14"),
            ("heterogeneity", "maybe"),
        ] {
            let mut kv = vec![("workload", "fft")];
            if field == "workload" {
                kv.clear();
            }
            kv.push((field, value));
            let err = QuerySpec::from_pairs(&pairs(&kv)).unwrap_err();
            assert!(
                matches!(err, QueryError::Invalid(_)),
                "{field}={value}: {err}"
            );
        }
    }

    #[test]
    fn enforces_the_kind_applicability_matrix() {
        // A projection field on a point query is refused, not ignored.
        let err =
            QuerySpec::from_pairs(&pairs(&[("workload", "fft"), ("horizon", "2")])).unwrap_err();
        assert!(err.to_string().contains("does not apply"), "{err}");
        // Required fields are named.
        let err = QuerySpec::from_pairs(&pairs(&[("kind", "projection")])).unwrap_err();
        assert!(
            err.to_string().contains("requires field \"domain\""),
            "{err}"
        );
        let err =
            QuerySpec::from_pairs(&pairs(&[("kind", "csr"), ("reported", "510")])).unwrap_err();
        assert!(
            err.to_string().contains("requires field \"physical\""),
            "{err}"
        );
    }

    #[test]
    fn query_strings_percent_decode_and_reject_malformed_pieces() {
        let got = pairs_from_query("workload=fft&node=7%6Em&lanes=8").unwrap();
        assert_eq!(
            got,
            pairs(&[("workload", "fft"), ("node", "7nm"), ("lanes", "8")])
        );
        assert!(pairs_from_query("workload").is_err());
        assert!(pairs_from_query("=fft").is_err());
        assert!(pairs_from_query("node=7%Gm").is_err());
    }

    #[test]
    fn json_bodies_flatten_with_number_normalization() {
        use accelerator_wall::json::Value;
        let body =
            Value::parse(r#"{"workload": "fft", "lanes": 8.0, "heterogeneity": true}"#).unwrap();
        let got = pairs_from_json(&body).unwrap();
        assert_eq!(
            got,
            pairs(&[
                ("workload", "fft"),
                ("lanes", "8"),
                ("heterogeneity", "true")
            ])
        );
        assert!(pairs_from_json(&Value::parse("[1]").unwrap()).is_err());
        assert!(pairs_from_json(&Value::parse(r#"{"workload": null}"#).unwrap()).is_err());
    }

    #[test]
    fn only_the_full_s3d_sweep_shadows_fig13() {
        let spec =
            QuerySpec::from_pairs(&pairs(&[("kind", "sweep"), ("workload", "s3d")])).unwrap();
        assert_eq!(spec.shadows(), Some("fig13"));
        let spec =
            QuerySpec::from_pairs(&pairs(&[("kind", "sweep"), ("workload", "fft")])).unwrap();
        assert_eq!(spec.shadows(), None);
        let spec = QuerySpec::from_pairs(&pairs(&[("workload", "s3d")])).unwrap();
        assert_eq!(spec.shadows(), None);
    }
}
