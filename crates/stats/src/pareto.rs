//! Pareto-frontier extraction.
//!
//! The paper's projection study (Section VII) fits its Linear and
//! Logarithmic models to the *Pareto frontier* of each domain's scatter of
//! (physical capability, observed gain) points: for every level of physical
//! capability, only the best-achieving chip matters when asking "what is
//! attainable". A point is on that frontier when no other chip achieves at
//! least its gain with at most its physical capability — i.e. the frontier
//! minimizes capability while maximizing gain, and both coordinates are
//! strictly increasing along it.

/// A point in the (x = capability, y = gain) plane, with an opaque index
/// back into the caller's dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Index of this point in the input slice.
    pub index: usize,
    /// Capability coordinate (e.g. physical performance potential).
    pub x: f64,
    /// Gain coordinate (e.g. reported throughput gain).
    pub y: f64,
}

/// Extracts the Pareto frontier of a point set under (minimize `x`,
/// maximize `y`): the subset in which no point is dominated by another with
/// `x <=` and `y >=` (one strictly better).
///
/// The result is sorted by ascending `x`, and both `x` and `y` are strictly
/// increasing along it — exactly the record curve of "best gain attained at
/// each capability level" that the projection models are fitted to.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`](crate::StatsError::LengthMismatch)
/// for unpaired inputs,
/// [`StatsError::NotEnoughData`](crate::StatsError::NotEnoughData) for an
/// empty input, and
/// [`StatsError::NonFinite`](crate::StatsError::NonFinite) if any
/// coordinate is NaN or infinite.
///
/// # Example
///
/// ```
/// use accelwall_stats::pareto_frontier;
/// let xs = [1.0, 2.0, 2.0, 3.0];
/// let ys = [5.0, 4.0, 6.0, 7.0];
/// let front = pareto_frontier(&xs, &ys).unwrap();
/// let pairs: Vec<(f64, f64)> = front.iter().map(|p| (p.x, p.y)).collect();
/// // (2.0, 4.0) is dominated by (2.0, 6.0); everything else is a record.
/// assert_eq!(pairs, vec![(1.0, 5.0), (2.0, 6.0), (3.0, 7.0)]);
/// ```
pub fn pareto_frontier(xs: &[f64], ys: &[f64]) -> crate::Result<Vec<ParetoPoint>> {
    crate::check_paired(xs, ys, 1)?;
    let mut points: Vec<ParetoPoint> = xs
        .iter()
        .zip(ys)
        .enumerate()
        .map(|(index, (&x, &y))| ParetoPoint { index, x, y })
        .collect();
    // Sort by ascending x, breaking ties by descending y; then sweep,
    // keeping points whose y strictly exceeds the running maximum. A point
    // survives iff no point with smaller-or-equal x reaches its y.
    // `total_cmp` keeps the comparator total even if a NaN ever slips
    // past the finiteness check above.
    points.sort_by(|a, b| a.x.total_cmp(&b.x).then(b.y.total_cmp(&a.y)));
    let mut frontier: Vec<ParetoPoint> = Vec::new();
    let mut best_y = f64::NEG_INFINITY;
    for p in points {
        if p.y > best_y {
            best_y = p.y;
            frontier.push(p);
        }
    }
    Ok(frontier)
}

/// Returns `true` if point `a` dominates point `b` under (minimize x,
/// maximize y): `a` needs at most `b`'s capability, achieves at least `b`'s
/// gain, and is strictly better on one axis.
pub fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.0 && a.1 >= b.1 && (a.0 < b.0 || a.1 > b.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StatsError;

    #[test]
    fn single_point_is_its_own_frontier() {
        let f = pareto_frontier(&[1.0], &[1.0]).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].index, 0);
    }

    #[test]
    fn dominated_points_removed() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [10.0, 5.0, 20.0];
        // (2,5) is dominated by (1,10): less capability, more gain.
        let f = pareto_frontier(&xs, &ys).unwrap();
        let pairs: Vec<(f64, f64)> = f.iter().map(|p| (p.x, p.y)).collect();
        assert_eq!(pairs, vec![(1.0, 10.0), (3.0, 20.0)]);
    }

    #[test]
    fn decreasing_gains_collapse_to_first_point() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [30.0, 20.0, 10.0];
        // The cheapest chip achieves the best gain; it dominates the rest.
        let f = pareto_frontier(&xs, &ys).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].x, f[0].y), (1.0, 30.0));
    }

    #[test]
    fn frontier_coordinates_strictly_increasing() {
        let xs = [1.0, 1.5, 2.0, 2.5, 3.0];
        let ys = [1.0, 4.0, 2.0, 4.0, 3.0];
        let f = pareto_frontier(&xs, &ys).unwrap();
        let pairs: Vec<(f64, f64)> = f.iter().map(|p| (p.x, p.y)).collect();
        assert_eq!(pairs, vec![(1.0, 1.0), (1.5, 4.0)]);
        assert!(f.windows(2).all(|w| w[0].y < w[1].y && w[0].x < w[1].x));
    }

    #[test]
    fn equal_x_keeps_best_y() {
        let f = pareto_frontier(&[2.0, 2.0], &[1.0, 9.0]).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].y, 9.0);
        assert_eq!(f[0].index, 1);
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert!(pareto_frontier(&[], &[]).is_err());
        assert_eq!(
            pareto_frontier(&[f64::NAN], &[1.0]),
            Err(StatsError::NonFinite)
        );
    }

    #[test]
    fn dominates_relation() {
        assert!(dominates((1.0, 2.0), (2.0, 2.0)));
        assert!(dominates((2.0, 3.0), (2.0, 1.0)));
        assert!(!dominates((2.0, 2.0), (2.0, 2.0)));
        assert!(!dominates((2.0, 2.0), (1.0, 3.0)));
    }
}
