//! Property-based tests spanning crate boundaries.

use accelerator_wall::prelude::*;
use proptest::prelude::*;

fn arb_node() -> impl Strategy<Value = TechNode> {
    prop::sample::select(TechNode::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn potential_monotone_in_die_area(
        node in arb_node(),
        die in 10.0f64..400.0,
        factor in 1.1f64..4.0,
    ) {
        // More silicon never reduces the area-limited budget.
        let model = PotentialModel::paper();
        let small = ChipSpec::new(node, die, 1.0, 1e4);
        let large = ChipSpec::new(node, die * factor, 1.0, 1e4);
        prop_assert!(
            model.area_limited_transistors(&large)
                > model.area_limited_transistors(&small)
        );
    }

    #[test]
    fn potential_monotone_in_tdp(
        die in 50.0f64..800.0,
        tdp in 20.0f64..400.0,
        factor in 1.1f64..4.0,
    ) {
        let model = PotentialModel::paper();
        let node = TechNode::N7;
        let lean = ChipSpec::new(node, die, 1.0, tdp);
        let fat = ChipSpec::new(node, die, 1.0, tdp * factor);
        prop_assert!(
            model.power_limited_transistors(&fat)
                >= model.power_limited_transistors(&lean)
        );
        prop_assert!(model.throughput(&fat) >= model.throughput(&lean));
    }

    #[test]
    fn csr_decomposition_identity(
        reported in 1e-3f64..1e6,
        phys_a in 1e-3f64..1e6,
        phys_b in 1e-3f64..1e6,
    ) {
        let d = decompose(reported, phys_a, phys_b).unwrap();
        prop_assert!((d.specialization * d.cmos - d.reported).abs() <= 1e-9 * d.reported);
    }

    #[test]
    fn simulator_runtime_monotone_in_partitioning(
        p_exp in 0u32..18,
        s in 1u32..13,
        node in prop::sample::select(TechNode::sweep_nodes().to_vec()),
    ) {
        let dfg = Workload::Red.default_instance();
        let a = simulate(&dfg, &DesignConfig::new(node, 1 << p_exp, s, true)).unwrap();
        let b = simulate(&dfg, &DesignConfig::new(node, 1 << (p_exp + 1), s, true)).unwrap();
        prop_assert!(b.cycles <= a.cycles + 1e-9);
        prop_assert!(b.critical_path_cycles == a.critical_path_cycles);
    }

    #[test]
    fn simulator_energy_monotone_in_node(
        p_exp in 0u32..12,
        s in 1u32..13,
    ) {
        // Same schedule, newer node: strictly less dynamic energy.
        let dfg = Workload::Sad.default_instance();
        let old = simulate(&dfg, &DesignConfig::new(TechNode::N45, 1 << p_exp, s, false)).unwrap();
        let new = simulate(&dfg, &DesignConfig::new(TechNode::N5, 1 << p_exp, s, false)).unwrap();
        prop_assert!(new.dynamic_energy_j < old.dynamic_energy_j);
        prop_assert_eq!(new.cycles, old.cycles);
    }

    #[test]
    fn relation_matrix_antisymmetry_on_random_observations(
        seed in 0u64..1000,
        n_arch in 2usize..6,
    ) {
        // Multiplicatively consistent gains: relations must recover scale
        // ratios and satisfy gain(x,y) * gain(y,x) = 1.
        let mut obs = ArchObservations::new();
        let scale = |i: usize| 1.0 + (i as f64) * 1.7 + (seed % 7) as f64 * 0.1;
        for i in 0..n_arch {
            for app in 0..6 {
                let t = 1.0 + app as f64;
                obs.add(&format!("arch{i}"), &format!("app{app}"), scale(i) * t).unwrap();
            }
        }
        let m = RelationMatrix::build(&obs, 5).unwrap();
        for i in 0..n_arch {
            for j in 0..n_arch {
                let g = m.gain(&format!("arch{i}"), &format!("arch{j}")).unwrap().unwrap();
                let back = m.gain(&format!("arch{j}"), &format!("arch{i}")).unwrap().unwrap();
                prop_assert!((g * back - 1.0).abs() < 1e-9);
                prop_assert!((g - scale(i) / scale(j)).abs() < 1e-6 * (1.0 + g));
            }
        }
    }

    #[test]
    fn workload_dfgs_scale_sanely(reps in 1usize..4) {
        // Building repeatedly is deterministic.
        let a = Workload::Fft.default_instance();
        for _ in 0..reps {
            let b = Workload::Fft.default_instance();
            prop_assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn table2_bounds_are_monotone_in_graph_size(n in 2usize..6) {
        // A larger reduction has larger (or equal) evaluated bounds in
        // every Table II cell.
        use accelerator_wall::dfg::limits::table2;
        let small = accelerator_wall::workloads::simple::build_reduction(1 << n).stats();
        let large = accelerator_wall::workloads::simple::build_reduction(1 << (n + 1)).stats();
        for cell in table2() {
            prop_assert!(
                cell.time.evaluate(&large) >= cell.time.evaluate(&small),
                "{:?}/{:?}", cell.component, cell.concept
            );
            prop_assert!(cell.space.evaluate(&large) >= cell.space.evaluate(&small));
        }
    }
}
