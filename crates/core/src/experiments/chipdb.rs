//! Chip-corpus experiments: the transistor-budget fits of Figs. 3b–3c.
//!
//! Both read the synthetic datasheet corpus through [`Ctx::corpus`], so
//! a full pipeline run generates the 2613 records once.

use accelwall_chipdb::{fit, NodeGroup};

use super::outln;
use crate::cache::Ctx;
use crate::error::Result;
use crate::experiment::{Artifact, Experiment};
use crate::json::Value;

/// Fig. 3b — transistor count vs density factor, fitted on the corpus.
pub struct Fig3b;

impl Experiment for Fig3b {
    fn id(&self) -> &'static str {
        "fig3b"
    }

    fn description(&self) -> &'static str {
        "transistor count vs density factor fit"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact> {
        let corpus = ctx.corpus();
        let fit = ctx.density_fit()?;
        let json = Value::object([
            ("corpus_records", Value::from(corpus.len())),
            (
                "fitted",
                Value::object([
                    ("coefficient", Value::from(fit.coefficient)),
                    ("exponent", Value::from(fit.exponent)),
                    ("r_squared", Value::from(fit.r_squared)),
                ]),
            ),
            (
                "paper",
                Value::object([
                    ("coefficient", Value::from(4.99e9)),
                    ("exponent", Value::from(0.877)),
                ]),
            ),
        ]);
        let mut text = String::new();
        outln!(
            text,
            "Fig. 3b — transistor count vs density factor D = area/node^2"
        );
        outln!(
            text,
            "corpus: {} synthetic datasheets (1612 CPUs + 1001 GPUs)",
            corpus.len()
        );
        outln!(
            text,
            "fitted:  TC(D) = {:.3e} * D^{:.3}   (R^2 = {:.3})",
            fit.coefficient,
            fit.exponent,
            fit.r_squared
        );
        outln!(text, "paper:   TC(D) = 4.990e9 * D^0.877");
        for d in [0.01, 0.1, 1.0, 10.0, 32.0] {
            outln!(text, "  D = {d:>6}: TC = {:.3e}", fit.eval(d));
        }
        Ok(Artifact::new(json, text))
    }
}

/// Fig. 3c — per-node-group TDP power laws, paper vs corpus-fitted.
pub struct Fig3c;

impl Experiment for Fig3c {
    fn id(&self) -> &'static str {
        "fig3c"
    }

    fn description(&self) -> &'static str {
        "TDP power laws per node group"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact> {
        let corpus = ctx.corpus();
        let mut rows = Vec::new();
        for &group in NodeGroup::all() {
            let published = group.paper_tdp_law();
            // Sparse groups legitimately fail to fit; the figure marks
            // them projection-only instead of failing the experiment.
            let fitted = fit::tdp_fit(corpus, group).ok();
            rows.push((group, published, fitted));
        }
        let json = rows
            .iter()
            .map(|(g, p, f)| {
                Value::object([
                    ("group", Value::from(g.to_string())),
                    (
                        "paper",
                        Value::object([
                            ("c", Value::from(p.coefficient)),
                            ("e", Value::from(p.exponent)),
                        ]),
                    ),
                    (
                        "fitted",
                        Value::from(f.map(|f| {
                            Value::object([
                                ("c", Value::from(f.coefficient)),
                                ("e", Value::from(f.exponent)),
                            ])
                        })),
                    ),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(
            text,
            "Fig. 3c — transistors[G] x freq[GHz] = c * TDP^e per node group"
        );
        outln!(
            text,
            "{:<12} {:>20} {:>24}",
            "group",
            "paper c*TDP^e",
            "corpus-fitted c*TDP^e"
        );
        for (g, p, f) in &rows {
            let fitted = f.map_or_else(
                || "(projection only)".to_string(),
                |f| format!("{:.3}*TDP^{:.3}", f.coefficient, f.exponent),
            );
            outln!(
                text,
                "{:<12} {:>20} {:>24}",
                g.to_string(),
                format!("{:.2}*TDP^{:.3}", p.coefficient, p.exponent),
                fitted
            );
        }
        Ok(Artifact::new(json, text))
    }
}
