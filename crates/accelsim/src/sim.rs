//! The simulator core: design configuration, scheduling model, and report.

use crate::fu::{self, FuCost};
use crate::{Result, SimError};
use accelwall_cmos::TechNode;
use accelwall_dfg::{Dfg, Program, VertexClass};

/// Reference clock of every design point, in GHz. The paper's sweep holds
/// frequency fixed and lets CMOS speed show up as deeper operator fusion
/// (more gates per cycle), matching its Fig. 13 narrative.
pub const CLOCK_GHZ: f64 = 1.0;

/// Bits of datapath precision the workloads actually need; narrowing below
/// this forces multi-pass serialization.
pub const REQUIRED_PRECISION_BITS: u32 = 24;

/// Largest Table III partitioning factor (2¹⁹).
pub const MAX_PARTITION: u64 = 524_288;

/// Largest Table III simplification degree.
pub const MAX_SIMPLIFICATION: u32 = 13;

/// One point in the Table III design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignConfig {
    /// CMOS process node.
    pub node: TechNode,
    /// Partitioning factor: parallel issue lanes and memory ports
    /// (1, 2, 4, … 524288).
    pub partition_factor: u64,
    /// Simplification degree 1–13: each degree sheds 2 bits of datapath
    /// width starting from 32.
    pub simplification_degree: u32,
    /// Whether heterogeneous operator fusion is enabled.
    pub heterogeneity: bool,
}

impl DesignConfig {
    /// Creates a configuration.
    pub fn new(
        node: TechNode,
        partition_factor: u64,
        simplification_degree: u32,
        heterogeneity: bool,
    ) -> Self {
        DesignConfig {
            node,
            partition_factor,
            simplification_degree,
            heterogeneity,
        }
    }

    /// The unoptimized reference: 45 nm, no partitioning, no
    /// simplification, no fusion — the normalization point of Fig. 14.
    pub fn baseline() -> Self {
        DesignConfig::new(TechNode::N45, 1, 1, false)
    }

    /// Validates the Table III ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending knob:
    /// partition factor must be a power of two in `1..=524288`, the
    /// simplification degree in `1..=13`.
    pub fn validate(&self) -> Result<()> {
        if self.partition_factor == 0
            || self.partition_factor > MAX_PARTITION
            || !self.partition_factor.is_power_of_two()
        {
            return Err(SimError::InvalidConfig {
                knob: "partition_factor",
                value: self.partition_factor.to_string(),
            });
        }
        if self.simplification_degree == 0 || self.simplification_degree > MAX_SIMPLIFICATION {
            return Err(SimError::InvalidConfig {
                knob: "simplification_degree",
                value: self.simplification_degree.to_string(),
            });
        }
        Ok(())
    }

    /// Datapath width in bits after simplification.
    pub fn datapath_bits(&self) -> u32 {
        32 - 2 * (self.simplification_degree - 1)
    }

    /// Fraction of the full-width datapath that remains (energy/area
    /// scale).
    pub fn width_factor(&self) -> f64 {
        f64::from(self.datapath_bits()) / 32.0
    }

    /// Serial passes an operation needs at this width.
    pub fn serial_passes(&self) -> u32 {
        REQUIRED_PRECISION_BITS.div_ceil(self.datapath_bits())
    }

    /// Fusion window: how many dependent single-cycle ops fit in one clock.
    /// Faster transistors fit longer chains; without heterogeneity the
    /// window is 1.
    pub fn fusion_window(&self) -> u32 {
        if self.heterogeneity {
            ((2.0 * self.node.frequency_potential()).round() as u32).max(1)
        } else {
            1
        }
    }
}

impl Default for DesignConfig {
    fn default() -> Self {
        DesignConfig::baseline()
    }
}

/// The simulator's verdict on one (graph, configuration) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// Total schedule length in clock cycles.
    pub cycles: f64,
    /// Wall-clock runtime in seconds at the reference clock.
    pub runtime_s: f64,
    /// Dynamic energy of the run in joules.
    pub dynamic_energy_j: f64,
    /// Leakage power in watts.
    pub leakage_w: f64,
    /// Accelerator area in normalized adder units.
    pub area_units: f64,
    /// Computation operations executed (graph compute vertices).
    pub ops: u64,
    /// Critical-path length in cycles (the partitioning asymptote).
    pub critical_path_cycles: f64,
}

impl SimReport {
    /// Average power: dynamic plus leakage, in watts.
    pub fn power_w(&self) -> f64 {
        self.dynamic_energy_j / self.runtime_s + self.leakage_w
    }

    /// Total energy: dynamic plus leaked, in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.dynamic_energy_j + self.leakage_w * self.runtime_s
    }

    /// Throughput in operations per second.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.runtime_s
    }

    /// Energy efficiency in operations per joule.
    pub fn energy_efficiency(&self) -> f64 {
        self.ops as f64 / self.total_energy_j()
    }
}

/// Partition-independent quantities of one graph under one
/// `(node, simplification, heterogeneity)` combination — everything the
/// per-node cost walk produces. The sweep hoists this walk out of the
/// partitioning loop: none of these depend on `partition_factor`, so one
/// kernel pass prices a whole row of Table III points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PointKernel {
    /// Critical-path length in cycles (the partitioning asymptote).
    pub(crate) critical_path: f64,
    /// Total issue-slot work in cycles.
    pub(crate) work_cycles: f64,
    /// Total dynamic energy in picojoules before node scaling.
    pub(crate) dynamic_pj: f64,
}

/// Config-independent cost constants of one lowered graph: the FU-class
/// lane area, the scratchpad area, and the op count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct GraphCosts {
    pub(crate) lane_area: f64,
    pub(crate) sram_area: f64,
    pub(crate) ops: u64,
}

/// Computes the config-independent cost constants of `program`.
pub(crate) fn graph_costs(program: &Program) -> GraphCosts {
    let mut classes = std::collections::BTreeSet::new();
    for (v, &class) in program.classes().iter().enumerate() {
        if class == VertexClass::Compute {
            classes.insert(class_key(program.opcode(v)));
        }
    }
    let stats = program.stats();
    GraphCosts {
        // Area: each lane instantiates one FU per op class present, plus
        // the scratchpad sized to the largest working set (banking
        // replicates ports, not capacity).
        lane_area: classes.iter().map(|k| class_area(*k)).sum(),
        sram_area: stats.max_working_set as f64 * fu::SRAM_WORD_AREA_UNITS,
        ops: stats.computes as u64,
    }
}

/// The per-node cost walk: critical path, total work, and dynamic energy
/// of `program` under `config`'s fusion window, serialization passes, and
/// datapath width. One forward pass over the flat arrays.
pub(crate) fn point_kernel(program: &Program, config: &DesignConfig) -> PointKernel {
    let window = f64::from(config.fusion_window());
    let passes = f64::from(config.serial_passes());
    let width = config.width_factor();

    // Per-node costs along the critical path (cp) and in total work.
    let mut finish = vec![0.0f64; program.vertex_count()];
    let mut work_cycles = 0.0f64;
    let mut dynamic_pj = 0.0f64;

    for v in 0..program.vertex_count() {
        let ready = program
            .operands(v)
            .iter()
            .map(|&o| finish[o as usize])
            .fold(0.0f64, f64::max);
        match program.class(v) {
            VertexClass::Input => {
                // One port access; streams through the `lanes` ports.
                finish[v] = 1.0;
                work_cycles += 1.0;
                dynamic_pj += fu::ACCESS_ENERGY_PJ * width;
            }
            VertexClass::Output => {
                finish[v] = ready + 1.0;
                work_cycles += 1.0;
                dynamic_pj += fu::ACCESS_ENERGY_PJ * width;
            }
            VertexClass::Compute => {
                let c: FuCost = fu::cost(program.opcode(v));
                let (cp_cost, slot_cost) = if c.fusible {
                    (passes / window, passes / window)
                } else {
                    // Pipelined/iterative units: full latency on the path,
                    // one issue slot per pass.
                    (f64::from(c.latency_cycles) * passes, passes)
                };
                finish[v] = ready + cp_cost;
                work_cycles += slot_cost;
                dynamic_pj += c.energy_pj * width * passes;
            }
        }
    }

    PointKernel {
        critical_path: finish.iter().copied().fold(0.0f64, f64::max).max(1.0),
        work_cycles,
        dynamic_pj,
    }
}

/// Assembles the final [`SimReport`] of one design point from its hoisted
/// kernel quantities — the only place `partition_factor` enters, O(1) per
/// point. The expressions are kept verbatim from the original monolithic
/// walk so reports stay bit-identical.
pub(crate) fn assemble_report(
    kernel: &PointKernel,
    costs: &GraphCosts,
    config: &DesignConfig,
) -> SimReport {
    let lanes = config.partition_factor as f64;
    let width = config.width_factor();
    let cycles = kernel.critical_path.max(kernel.work_cycles / lanes);
    let runtime_s = cycles / (CLOCK_GHZ * 1e9);
    let area_units = (costs.lane_area * lanes + costs.sram_area) * width;
    let dynamic_energy_j = kernel.dynamic_pj * 1e-12 * config.node.dynamic_energy_rel();
    // A normalized area unit holds a fixed transistor count, so leakage
    // scales with the per-transistor leakage of the node alone.
    let leakage_w = area_units * fu::LEAK_UW_PER_AREA_UNIT * 1e-6 * config.node.leakage_rel();
    SimReport {
        cycles,
        runtime_s,
        dynamic_energy_j,
        leakage_w,
        area_units,
        ops: costs.ops,
        critical_path_cycles: kernel.critical_path,
    }
}

/// Runs the analytical schedule of a lowered `program` under `config`.
///
/// The model is the standard pre-RTL bound pair:
/// `cycles = max(critical path, work / lanes)`, with per-op costs from the
/// FU library scaled by fusion, serialization, and CMOS node — the same
/// quantities Aladdin extracts from its dynamic trace. The walk reads
/// only the flat SoA arrays; callers pricing many points over one graph
/// (the sweep, the attribution toggle chain) share one lowered program.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for out-of-range knobs and
/// [`SimError::EmptyGraph`] for graphs without compute vertices.
pub fn simulate_lowered(program: &Program, config: &DesignConfig) -> Result<SimReport> {
    config.validate()?;
    if program.stats().computes == 0 {
        return Err(SimError::EmptyGraph);
    }
    let kernel = point_kernel(program, config);
    let costs = graph_costs(program);
    Ok(assemble_report(&kernel, &costs, config))
}

/// Runs the analytical schedule of `dfg` under `config` — the front-end
/// convenience over [`simulate_lowered`] that lowers per call. Hot loops
/// should lower once with [`Dfg::lower`] and share the program.
///
/// # Errors
///
/// Same as [`simulate_lowered`].
pub fn simulate(dfg: &Dfg, config: &DesignConfig) -> Result<SimReport> {
    simulate_lowered(&dfg.lower(), config)
}

/// Collapses ops into FU classes so a lane holds one unit per class.
fn class_key(op: accelwall_dfg::Op) -> u8 {
    use accelwall_dfg::Op;
    match op {
        Op::Add | Op::Sub | Op::Min | Op::Max | Op::Abs | Op::Neg => 0,
        Op::And | Op::Or | Op::Xor | Op::Not | Op::Shl | Op::Shr => 1,
        Op::CmpLt | Op::CmpEq | Op::Select | Op::Copy => 2,
        Op::Mul => 3,
        Op::Div | Op::Mod => 4,
        Op::Sqrt => 5,
        Op::Sigmoid => 6,
        Op::Lut { .. } => 7,
    }
}

fn class_area(key: u8) -> f64 {
    use accelwall_dfg::Op;
    let representative = match key {
        0 => Op::Add,
        1 => Op::Xor,
        2 => Op::Select,
        3 => Op::Mul,
        4 => Op::Div,
        5 => Op::Sqrt,
        6 => Op::Sigmoid,
        _ => Op::Lut { table: 0 },
    };
    fu::cost(representative).area_units
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelwall_workloads::Workload;

    fn s3d() -> Dfg {
        Workload::S3d.default_instance()
    }

    #[test]
    fn baseline_runs() {
        let r = simulate(&s3d(), &DesignConfig::baseline()).unwrap();
        assert!(r.cycles > 100.0);
        assert!(r.runtime_s > 0.0);
        assert!(r.power_w() > 0.0);
        assert!(r.ops > 100);
    }

    #[test]
    fn partitioning_improves_runtime_until_critical_path() {
        let g = s3d();
        let mut last = f64::INFINITY;
        let mut plateaued = false;
        for p in [1u64, 4, 16, 64, 256, 1024, 4096] {
            let r = simulate(&g, &DesignConfig::new(TechNode::N45, p, 1, false)).unwrap();
            assert!(r.cycles <= last + 1e-9, "partitioning must not hurt");
            if (r.cycles - r.critical_path_cycles).abs() < 1e-9 {
                plateaued = true;
            }
            last = r.cycles;
        }
        assert!(plateaued, "runtime should hit the critical-path asymptote");
    }

    #[test]
    fn over_partitioning_wastes_leakage() {
        // Paper: "old nodes experience diminishing returns due to
        // underutilized partitioned resources."
        let g = s3d();
        let modest = simulate(&g, &DesignConfig::new(TechNode::N45, 256, 1, false)).unwrap();
        let absurd = simulate(
            &g,
            &DesignConfig::new(TechNode::N45, MAX_PARTITION, 1, false),
        )
        .unwrap();
        assert_eq!(absurd.cycles, absurd.critical_path_cycles);
        assert!(absurd.leakage_w > 100.0 * modest.leakage_w);
        assert!(absurd.energy_efficiency() < modest.energy_efficiency());
    }

    #[test]
    fn simplification_saves_power_not_runtime_at_low_degree() {
        let g = s3d();
        let plain = simulate(&g, &DesignConfig::new(TechNode::N45, 16, 1, false)).unwrap();
        let simp = simulate(&g, &DesignConfig::new(TechNode::N45, 16, 5, false)).unwrap();
        assert_eq!(plain.cycles, simp.cycles, "width 24 needs no extra passes");
        assert!(simp.dynamic_energy_j < plain.dynamic_energy_j);
        assert!(simp.leakage_w < plain.leakage_w);
    }

    #[test]
    fn extreme_simplification_serializes() {
        let g = s3d();
        let simp5 = simulate(&g, &DesignConfig::new(TechNode::N45, 16, 5, false)).unwrap();
        let simp13 = simulate(&g, &DesignConfig::new(TechNode::N45, 16, 13, false)).unwrap();
        // Width 8 needs ceil(24/8) = 3 passes.
        assert!(simp13.cycles > 2.0 * simp5.cycles);
    }

    #[test]
    fn heterogeneity_shortens_the_critical_path() {
        let g = s3d();
        let base = simulate(
            &g,
            &DesignConfig::new(TechNode::N45, MAX_PARTITION, 1, false),
        )
        .unwrap();
        let fused = simulate(
            &g,
            &DesignConfig::new(TechNode::N45, MAX_PARTITION, 1, true),
        )
        .unwrap();
        assert!(fused.critical_path_cycles < base.critical_path_cycles);
    }

    #[test]
    fn newer_nodes_fuse_deeper() {
        let c45 = DesignConfig::new(TechNode::N45, 1, 1, true);
        let c5 = DesignConfig::new(TechNode::N5, 1, 1, true);
        assert!(c5.fusion_window() > c45.fusion_window());
        assert_eq!(DesignConfig::baseline().fusion_window(), 1);
    }

    #[test]
    fn cmos_scaling_cuts_energy_and_leakage() {
        let g = s3d();
        let old = simulate(&g, &DesignConfig::new(TechNode::N45, 64, 1, false)).unwrap();
        let new = simulate(&g, &DesignConfig::new(TechNode::N5, 64, 1, false)).unwrap();
        assert!(new.dynamic_energy_j < 0.1 * old.dynamic_energy_j);
        assert!(new.leakage_w < old.leakage_w);
        assert_eq!(new.cycles, old.cycles, "same schedule without fusion");
    }

    #[test]
    fn config_validation() {
        assert!(DesignConfig::new(TechNode::N45, 3, 1, false)
            .validate()
            .is_err());
        assert!(DesignConfig::new(TechNode::N45, 0, 1, false)
            .validate()
            .is_err());
        assert!(DesignConfig::new(TechNode::N45, 1, 0, false)
            .validate()
            .is_err());
        assert!(DesignConfig::new(TechNode::N45, 1, 14, false)
            .validate()
            .is_err());
        assert!(DesignConfig::new(TechNode::N45, 1 << 19, 13, true)
            .validate()
            .is_ok());
    }

    #[test]
    fn datapath_width_schedule() {
        assert_eq!(
            DesignConfig::new(TechNode::N45, 1, 1, false).datapath_bits(),
            32
        );
        assert_eq!(
            DesignConfig::new(TechNode::N45, 1, 5, false).datapath_bits(),
            24
        );
        assert_eq!(
            DesignConfig::new(TechNode::N45, 1, 13, false).datapath_bits(),
            8
        );
        assert_eq!(
            DesignConfig::new(TechNode::N45, 1, 13, false).serial_passes(),
            3
        );
    }

    #[test]
    fn work_conservation_across_partitioning() {
        // Total ops never change with the knobs; only their schedule does.
        let g = s3d();
        let a = simulate(&g, &DesignConfig::new(TechNode::N45, 1, 1, false)).unwrap();
        let b = simulate(&g, &DesignConfig::new(TechNode::N7, 4096, 7, true)).unwrap();
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn all_workloads_simulate_across_extreme_configs() {
        for &w in Workload::all() {
            let g = w.default_instance();
            for config in [
                DesignConfig::baseline(),
                DesignConfig::new(TechNode::N5, MAX_PARTITION, 13, true),
                DesignConfig::new(TechNode::N22, 64, 7, true),
            ] {
                let r = simulate(&g, &config).unwrap();
                assert!(r.runtime_s > 0.0 && r.power_w() > 0.0, "{w} {config:?}");
            }
        }
    }
}
