//! The lowering pass: compiles a built [`Dfg`] into a flat [`Program`].
//!
//! Lowering is a handful of linear passes over the node list:
//!
//! 1. flatten node kinds into the parallel `classes`/`opcodes` arrays and
//!    collect the input/output slot maps (id-ascending, so positional
//!    evaluation can walk them with a cursor);
//! 2. flatten the operand lists into a CSR in-edge pool, then invert it
//!    with a counting sort into the CSR out-edge (consumer) pool —
//!    filling in id order keeps every consumer row ascending, which is
//!    the same visit order the legacy per-node `Vec<Vec<_>>` tables had;
//! 3. one forward pass for ASAP levels, one backward pass for
//!    remaining-path heights (ids ascend topologically, so neither needs
//!    a worklist);
//! 4. precompute the summary [`DfgStats`] over the flat arrays, so sweep
//!    consumers stop re-deriving them per design point.
//!
//! The pass is infallible: every structural error is caught by
//! [`DfgBuilder::build`](crate::DfgBuilder::build) before a `Dfg` can
//! exist. Ids are narrowed to `u32` — a graph with 2³² vertices would
//! exhaust memory in the front-end representation long before reaching
//! this pass.

use crate::graph::{Dfg, NodeKind, Op};
use crate::program::{Program, VertexClass};

impl Dfg {
    /// Compiles the graph into its immutable, flat [`Program`] form.
    ///
    /// Hot paths should lower once and share the result (`Arc<Program>`);
    /// the pass itself is `O(|V| + |E| + depth·|V|)`, dominated by the
    /// working-set statistics.
    ///
    /// ```
    /// use accelwall_dfg::{DfgBuilder, Op};
    /// let mut b = DfgBuilder::new("t");
    /// let x = b.input("x");
    /// let y = b.op(Op::Neg, &[x]);
    /// b.output("o", y);
    /// let g = b.build().unwrap();
    /// let p = g.lower();
    /// assert_eq!(p.vertex_count(), g.vertex_count());
    /// assert_eq!(p.stats(), g.stats());
    /// ```
    pub fn lower(&self) -> Program {
        let n = self.nodes.len();

        let mut classes = Vec::with_capacity(n);
        let mut opcodes = Vec::with_capacity(n);
        let mut input_slots = Vec::new();
        let mut output_slots = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            match &node.kind {
                NodeKind::Input(name) => {
                    classes.push(VertexClass::Input);
                    opcodes.push(Op::Copy);
                    input_slots.push((name.clone(), i as u32));
                }
                NodeKind::Compute(op) => {
                    classes.push(VertexClass::Compute);
                    opcodes.push(*op);
                }
                NodeKind::Output(name) => {
                    classes.push(VertexClass::Output);
                    opcodes.push(Op::Copy);
                    output_slots.push((name.clone(), i as u32));
                }
            }
        }

        // In-edges: flatten the operand lists row by row.
        let edge_count = self.edge_count();
        let mut operand_offsets = Vec::with_capacity(n + 1);
        let mut operand_pool = Vec::with_capacity(edge_count);
        operand_offsets.push(0u32);
        for node in &self.nodes {
            for op in &node.operands {
                operand_pool.push(op.index() as u32);
            }
            operand_offsets.push(operand_pool.len() as u32);
        }

        // Out-edges: invert with a counting sort. Filling while scanning
        // consumers in ascending id order leaves every row ascending.
        let mut consumer_offsets = vec![0u32; n + 1];
        for &producer in &operand_pool {
            consumer_offsets[producer as usize + 1] += 1;
        }
        for v in 0..n {
            consumer_offsets[v + 1] += consumer_offsets[v];
        }
        let mut consumer_pool = vec![0u32; edge_count];
        let mut cursor: Vec<u32> = consumer_offsets[..n].to_vec();
        for (i, node) in self.nodes.iter().enumerate() {
            for op in &node.operands {
                let slot = &mut cursor[op.index()];
                consumer_pool[*slot as usize] = i as u32;
                *slot += 1;
            }
        }

        // ASAP levels: one forward pass (ids ascend topologically).
        let mut levels = vec![0u32; n];
        for v in 0..n {
            let row = &operand_pool[operand_offsets[v] as usize..operand_offsets[v + 1] as usize];
            levels[v] = row
                .iter()
                .map(|&o| levels[o as usize])
                .max()
                .map_or(0, |m| m + 1);
        }

        // Remaining-path heights: one backward pass over the out-edges.
        let mut heights = vec![0u32; n];
        for v in (0..n).rev() {
            let row =
                &consumer_pool[consumer_offsets[v] as usize..consumer_offsets[v + 1] as usize];
            let downstream = row.iter().map(|&c| heights[c as usize]).max().unwrap_or(0);
            heights[v] = downstream + 1;
        }

        let mut program = Program {
            name: self.name.clone(),
            classes,
            opcodes,
            operand_offsets,
            operand_pool,
            consumer_offsets,
            consumer_pool,
            levels,
            heights,
            input_slots,
            output_slots,
            tables: self.tables.clone(),
            stats: crate::analysis::DfgStats {
                vertices: 0,
                edges: 0,
                inputs: 0,
                outputs: 0,
                computes: 0,
                depth: 0,
                compute_stages: 0,
                max_working_set: 0,
                max_stage_width: 0,
                path_count: 0,
            },
        };
        program.stats = program.compute_stats();
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;

    fn fig11() -> Dfg {
        let mut b = DfgBuilder::new("fig11");
        let d1 = b.input("d1");
        let d2 = b.input("d2");
        let d3 = b.input("d3");
        let s1a = b.op(Op::Add, &[d1, d2]);
        let s1b = b.op(Op::Div, &[d2, d3]);
        let s2a = b.op(Op::Sub, &[s1a, s1b]);
        let s2b = b.op(Op::Add, &[s1b, d3]);
        b.output("o1", s2a);
        b.output("o2", s2b);
        b.build().unwrap()
    }

    #[test]
    fn lowering_preserves_counts_and_stats() {
        let g = fig11();
        let p = g.lower();
        assert_eq!(p.name(), g.name());
        assert_eq!(p.vertex_count(), g.vertex_count());
        assert_eq!(p.edge_count(), g.edge_count());
        assert_eq!(p.stats(), g.stats());
    }

    #[test]
    fn operand_rows_match_the_front_end() {
        let g = fig11();
        let p = g.lower();
        for id in g.ids() {
            let want: Vec<u32> = g
                .node(id)
                .operands
                .iter()
                .map(|o| o.index() as u32)
                .collect();
            assert_eq!(p.operands(id.index()), want.as_slice(), "{id}");
        }
    }

    #[test]
    fn consumer_rows_are_the_exact_inverse_in_id_order() {
        let g = fig11();
        let p = g.lower();
        // Rebuild the legacy Vec<Vec<usize>> consumer table and compare.
        let mut legacy: Vec<Vec<u32>> = vec![Vec::new(); g.vertex_count()];
        for id in g.ids() {
            for op in &g.node(id).operands {
                legacy[op.index()].push(id.index() as u32);
            }
        }
        for (v, row) in legacy.iter().enumerate() {
            assert_eq!(p.consumers(v), row.as_slice(), "n{v}");
        }
    }

    #[test]
    fn levels_match_the_front_end_analysis() {
        let g = fig11();
        let p = g.lower();
        let want: Vec<u32> = g.asap_levels().iter().map(|&l| l as u32).collect();
        assert_eq!(p.levels(), want.as_slice());
    }

    #[test]
    fn duplicate_operands_keep_multiplicity() {
        let mut b = DfgBuilder::new("dup");
        let x = b.input("x");
        let sq = b.op(Op::Mul, &[x, x]);
        b.output("o", sq);
        let p = b.build().unwrap().lower();
        assert_eq!(p.operands(1), &[0, 0]);
        assert_eq!(p.consumers(0), &[1, 1]);
        assert_eq!(p.run(&[3.0]).unwrap(), vec![9.0]);
    }
}
