//! The Fig. 3d chip-gains grid: physical throughput and energy-efficiency
//! gains across nodes, die sizes, and TDP zones at a fixed 1 GHz clock.

use crate::model::{ChipSpec, PotentialModel};
use accelwall_cmos::TechNode;
use std::fmt;

/// The four power-envelope zones of Fig. 3d.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TdpZone {
    /// Below 50 W.
    Below50W,
    /// 50 W – 200 W.
    W50To200,
    /// 200 W – 800 W.
    W200To800,
    /// Above 800 W.
    Above800W,
}

impl TdpZone {
    /// All zones, coolest first (the figure's marker order).
    pub fn all() -> &'static [TdpZone] {
        const ALL: [TdpZone; 4] = [
            TdpZone::Below50W,
            TdpZone::W50To200,
            TdpZone::W200To800,
            TdpZone::Above800W,
        ];
        &ALL
    }

    /// The power budget used when evaluating a zone: its upper envelope
    /// (1600 W stands in for the unbounded ">800 W" zone).
    pub fn budget_w(self) -> f64 {
        match self {
            TdpZone::Below50W => 50.0,
            TdpZone::W50To200 => 200.0,
            TdpZone::W200To800 => 800.0,
            TdpZone::Above800W => 1600.0,
        }
    }
}

impl fmt::Display for TdpZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TdpZone::Below50W => "<50W",
            TdpZone::W50To200 => "50W-200W",
            TdpZone::W200To800 => "200W-800W",
            TdpZone::Above800W => ">800W",
        };
        f.write_str(s)
    }
}

/// Die sizes swept by Fig. 3d, in mm².
pub const FIG3D_DIES: [f64; 6] = [25.0, 50.0, 100.0, 200.0, 400.0, 800.0];

/// Nodes swept by Fig. 3d.
pub fn fig3d_nodes() -> &'static [TechNode] {
    const NODES: [TechNode; 6] = [
        TechNode::N45,
        TechNode::N28,
        TechNode::N16,
        TechNode::N10,
        TechNode::N7,
        TechNode::N5,
    ];
    &NODES
}

/// One cell of the Fig. 3d grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3dRow {
    /// CMOS node of the cell.
    pub node: TechNode,
    /// Die area in mm².
    pub die_mm2: f64,
    /// Power-envelope zone.
    pub zone: TdpZone,
    /// Relative throughput vs the 25 mm² 45 nm reference.
    pub throughput_gain: f64,
    /// Relative energy efficiency vs the reference.
    pub efficiency_gain: f64,
}

/// Regenerates the full Fig. 3d grid at `f_chip = 1 GHz`, normalized to the
/// 25 mm² 45 nm reference as in the paper.
///
/// ```
/// use accelwall_potential::{fig3d_grid, PotentialModel};
/// let rows = fig3d_grid(&PotentialModel::paper());
/// assert_eq!(rows.len(), 6 * 6 * 4); // nodes x dies x zones
/// ```
pub fn fig3d_grid(model: &PotentialModel) -> Vec<Fig3dRow> {
    let baseline = PotentialModel::reference_spec();
    let mut rows = Vec::new();
    for &node in fig3d_nodes() {
        for &die in &FIG3D_DIES {
            for &zone in TdpZone::all() {
                let spec = ChipSpec::new(node, die, 1.0, zone.budget_w());
                rows.push(Fig3dRow {
                    node,
                    die_mm2: die,
                    zone,
                    throughput_gain: model.throughput_gain(&spec, &baseline),
                    efficiency_gain: model.efficiency_gain(&spec, &baseline),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_positivity() {
        let rows = fig3d_grid(&PotentialModel::paper());
        assert_eq!(rows.len(), 144);
        assert!(rows
            .iter()
            .all(|r| r.throughput_gain > 0.0 && r.efficiency_gain > 0.0));
    }

    #[test]
    fn throughput_monotone_in_power_budget() {
        // At fixed node and die, a larger envelope can only help.
        let rows = fig3d_grid(&PotentialModel::paper());
        for &node in fig3d_nodes() {
            for &die in &FIG3D_DIES {
                let cell: Vec<&Fig3dRow> = rows
                    .iter()
                    .filter(|r| r.node == node && r.die_mm2 == die)
                    .collect();
                assert!(cell
                    .windows(2)
                    .all(|w| w[0].throughput_gain <= w[1].throughput_gain + 1e-9));
            }
        }
    }

    #[test]
    fn power_constraints_cap_large_chip_gains() {
        // Paper: "power constraints cap the gains of large chips."
        let rows = fig3d_grid(&PotentialModel::paper());
        let capped = rows
            .iter()
            .find(|r| r.node == TechNode::N5 && r.die_mm2 == 800.0 && r.zone == TdpZone::W200To800)
            .unwrap();
        let open = rows
            .iter()
            .find(|r| r.node == TechNode::N5 && r.die_mm2 == 800.0 && r.zone == TdpZone::Above800W)
            .unwrap();
        assert!(capped.throughput_gain < open.throughput_gain);
        assert!(
            (240.0..360.0).contains(&capped.throughput_gain),
            "800 mm² 5 nm at 800 W should land near 300x: {}",
            capped.throughput_gain
        );
    }

    #[test]
    fn zone_budgets_ascend() {
        let budgets: Vec<f64> = TdpZone::all().iter().map(|z| z.budget_w()).collect();
        assert!(budgets.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn zone_labels_match_figure() {
        assert_eq!(TdpZone::Below50W.to_string(), "<50W");
        assert_eq!(TdpZone::Above800W.to_string(), ">800W");
    }
}
