//! The potential model proper: transistor budgets, throughput, power,
//! and energy efficiency of a chip from its physical datasheet facts.

use crate::{PotentialError, Result};
use accelwall_chipdb::fit::{self, NodeGroup};
use accelwall_chipdb::ChipRecord;
use accelwall_cmos::TechNode;
use accelwall_stats::PowerLaw;
use std::collections::HashMap;

/// Per-transistor dynamic power at the 45 nm reference, in watts per
/// transistor per GHz of clock (≈ 0.1 fJ per switched transistor after
/// activity weighting). Calibrated so the 25 mm² reference chip at 1 GHz
/// dissipates ~10 W of dynamic power.
const DYN_W_PER_TRANSISTOR_GHZ_45: f64 = 1e-7;

/// Per-transistor leakage at the 45 nm reference, in watts (≈ 10 nW):
/// about a tenth of the dynamic power at 1 GHz, matching the static/dynamic
/// split of mid-2000s designs.
const LEAK_W_PER_TRANSISTOR_45: f64 = 1e-8;

/// TDP scale for nodes older than the Fig. 3c groups (pre-dark-silicon,
/// where power tracked switched capacitance linearly): watts per
/// (billion transistors × GHz), at 45 nm energy, before node scaling.
/// Set to match the dynamic-power calibration above
/// (1e-7 W per transistor per GHz = 100 W per billion·GHz).
const CLASSIC_W_PER_CAP: f64 = 100.0;

/// A chip's physical description — the four inputs of the paper's model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipSpec {
    /// Fabrication node.
    pub node: TechNode,
    /// Die area in mm².
    pub die_area_mm2: f64,
    /// Operating frequency in GHz.
    pub freq_ghz: f64,
    /// Thermal design power in watts.
    pub tdp_w: f64,
}

impl ChipSpec {
    /// Creates a spec.
    ///
    /// Use [`ChipSpec::validate`] (or any [`PotentialModel`] method, which
    /// validates internally via debug assertions) to check physical sanity.
    pub fn new(node: TechNode, die_area_mm2: f64, freq_ghz: f64, tdp_w: f64) -> Self {
        ChipSpec {
            node,
            die_area_mm2,
            freq_ghz,
            tdp_w,
        }
    }

    /// Builds a spec from a datasheet record.
    pub fn from_record(record: &ChipRecord) -> Self {
        ChipSpec {
            node: record.node,
            die_area_mm2: record.die_area_mm2,
            freq_ghz: record.freq_mhz / 1e3,
            tdp_w: record.tdp_w,
        }
    }

    /// Checks that every field is physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`PotentialError::InvalidSpec`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !(self.die_area_mm2 > 0.0 && self.die_area_mm2.is_finite()) {
            return Err(PotentialError::InvalidSpec {
                field: "die_area_mm2",
                value: self.die_area_mm2,
            });
        }
        if !(self.freq_ghz > 0.0 && self.freq_ghz.is_finite()) {
            return Err(PotentialError::InvalidSpec {
                field: "freq_ghz",
                value: self.freq_ghz,
            });
        }
        if !(self.tdp_w > 0.0 && self.tdp_w.is_finite()) {
            return Err(PotentialError::InvalidSpec {
                field: "tdp_w",
                value: self.tdp_w,
            });
        }
        Ok(())
    }
}

/// The application-independent CMOS potential model.
///
/// Combines the Fig. 3b transistor-count law, the Fig. 3c power-budget laws,
/// and the Fig. 3a device-scaling table into the physical throughput and
/// energy-efficiency estimates of Fig. 3d.
#[derive(Debug, Clone)]
pub struct PotentialModel {
    tc_law: PowerLaw,
    tdp_laws: HashMap<NodeGroup, PowerLaw>,
    /// Whether dark (power-gated-off) transistors still contribute leakage
    /// to the power term of energy efficiency. On by default; the ablation
    /// bench quantifies its effect.
    pub dark_silicon_leakage: bool,
}

impl PotentialModel {
    /// The model built from the paper's *published* fits — the canonical
    /// configuration used by every figure reproduction.
    pub fn paper() -> Self {
        let tdp_laws = NodeGroup::all()
            .iter()
            .map(|&g| (g, g.paper_tdp_law()))
            .collect();
        PotentialModel {
            tc_law: fit::PAPER_TC_LAW,
            tdp_laws,
            dark_silicon_leakage: true,
        }
    }

    /// Builds the model by fitting a datasheet corpus, exactly as the paper
    /// constructed its model from 2613 scraped datasheets. Node groups with
    /// too few corpus members (e.g. the projection-only 10–5 nm group) fall
    /// back to the published law.
    ///
    /// # Errors
    ///
    /// Returns [`PotentialError::DensityFit`] when the corpus cannot
    /// support the Fig. 3b regression.
    pub fn from_corpus(corpus: &[ChipRecord]) -> Result<Self> {
        let tc_law = fit::transistor_density_fit(corpus).map_err(PotentialError::DensityFit)?;
        let tdp_laws = NodeGroup::all()
            .iter()
            .map(|&g| {
                let law = fit::tdp_fit(corpus, g).unwrap_or_else(|_| g.paper_tdp_law());
                (g, law)
            })
            .collect();
        Ok(PotentialModel {
            tc_law,
            tdp_laws,
            dark_silicon_leakage: true,
        })
    }

    /// The paper's normalization point: a 25 mm² die at 45 nm running at
    /// 1 GHz with an effectively unconstrained power budget.
    pub fn reference_spec() -> ChipSpec {
        ChipSpec::new(TechNode::N45, 25.0, 1.0, 1e4)
    }

    /// The fitted transistor-count law (Fig. 3b).
    pub fn tc_law(&self) -> &PowerLaw {
        &self.tc_law
    }

    /// Area-limited transistor budget: `TC(D)` at the spec's density factor.
    pub fn area_limited_transistors(&self, spec: &ChipSpec) -> f64 {
        debug_assert!(spec.validate().is_ok(), "invalid spec: {spec:?}");
        self.tc_law
            .eval(spec.node.density_factor(spec.die_area_mm2))
    }

    /// Power-limited transistor budget: the Fig. 3c law inverted for the
    /// spec's TDP and frequency. Nodes older than the modeled groups use a
    /// classical proportional power model (power tracked switched
    /// capacitance before the dark-silicon era).
    pub fn power_limited_transistors(&self, spec: &ChipSpec) -> f64 {
        debug_assert!(spec.validate().is_ok(), "invalid spec: {spec:?}");
        let cap = match NodeGroup::of(spec.node) {
            Some(group) => {
                let law = self.tdp_laws[&group];
                law.eval(spec.tdp_w)
            }
            None => spec.tdp_w / (CLASSIC_W_PER_CAP * spec.node.dynamic_energy_rel()),
        };
        cap / spec.freq_ghz * 1e9
    }

    /// Active transistor count: the binding constraint of the two budgets.
    pub fn active_transistors(&self, spec: &ChipSpec) -> f64 {
        self.area_limited_transistors(spec)
            .min(self.power_limited_transistors(spec))
    }

    /// Physical throughput proxy (arbitrary ops/s units): active
    /// transistors × frequency. The paper treats throughput as the target
    /// since accelerated workloads are highly parallel — silicon that can
    /// switch maps directly to parallel compute.
    pub fn throughput(&self, spec: &ChipSpec) -> f64 {
        self.active_transistors(spec) * spec.freq_ghz
    }

    /// Chip power in watts: dynamic power of the active transistors plus
    /// leakage of the full die (including dark silicon when
    /// `dark_silicon_leakage` is set), clamped to the TDP when the dynamic
    /// budget already binds.
    pub fn power_w(&self, spec: &ChipSpec) -> f64 {
        let active = self.active_transistors(spec);
        let all = self.area_limited_transistors(spec);
        let node = spec.node;
        let dynamic =
            active * spec.freq_ghz * DYN_W_PER_TRANSISTOR_GHZ_45 * node.dynamic_energy_rel();
        let leaking = if self.dark_silicon_leakage {
            all
        } else {
            active
        };
        let leakage = leaking * LEAK_W_PER_TRANSISTOR_45 * node.leakage_rel();
        dynamic.min(spec.tdp_w) + leakage
    }

    /// Physical energy efficiency proxy (arbitrary ops/J units).
    pub fn energy_efficiency(&self, spec: &ChipSpec) -> f64 {
        self.throughput(spec) * 1e9 / self.power_w(spec)
    }

    /// Throughput gain of `spec` over `baseline` (Fig. 3d left panel, and
    /// the "CMOS-driven gains" denominator of Eq. 2).
    pub fn throughput_gain(&self, spec: &ChipSpec, baseline: &ChipSpec) -> f64 {
        self.throughput(spec) / self.throughput(baseline)
    }

    /// Throughput-per-area gain — the metric the Bitcoin study uses, since
    /// miners integrate wildly different chip counts and sizes.
    pub fn throughput_per_area_gain(&self, spec: &ChipSpec, baseline: &ChipSpec) -> f64 {
        (self.throughput(spec) / spec.die_area_mm2)
            / (self.throughput(baseline) / baseline.die_area_mm2)
    }

    /// Energy-efficiency gain of `spec` over `baseline` (Fig. 3d right
    /// panel).
    pub fn efficiency_gain(&self, spec: &ChipSpec, baseline: &ChipSpec) -> f64 {
        self.energy_efficiency(spec) / self.energy_efficiency(baseline)
    }

    /// The dark-silicon fraction: the share of the die's transistors the
    /// power budget forbids from switching, `1 − active / area-limited`.
    /// Zero when area is the binding constraint — the quantity behind the
    /// "dark silicon" literature the paper builds on (Esmaeilzadeh et al.,
    /// Venkatesh et al.).
    pub fn dark_fraction(&self, spec: &ChipSpec) -> f64 {
        let area = self.area_limited_transistors(spec);
        let active = self.active_transistors(spec);
        (1.0 - active / area).max(0.0)
    }
}

impl Default for PotentialModel {
    fn default() -> Self {
        PotentialModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PotentialModel {
        PotentialModel::paper()
    }

    #[test]
    fn reference_chip_transistor_count() {
        // 25 mm² at 45 nm: D ≈ 0.0123, TC ≈ 105 M transistors.
        let tc = model().area_limited_transistors(&PotentialModel::reference_spec());
        assert!((0.9e8..1.2e8).contains(&tc), "TC = {tc:e}");
    }

    #[test]
    fn big_5nm_chip_reaches_hundred_billion() {
        // Paper: large 5 nm chips (D ≈ 32) can reach ~100 G transistors.
        let spec = ChipSpec::new(TechNode::N5, 800.0, 1.0, 1e5);
        let tc = model().area_limited_transistors(&spec);
        assert!((0.9e11..1.2e11).contains(&tc), "TC = {tc:e}");
    }

    #[test]
    fn fig3d_headline_throughput_collapse() {
        // ~1000x area-limited potential collapses to ~300x under 800 W.
        let m = model();
        let baseline = PotentialModel::reference_spec();
        let spec = ChipSpec::new(TechNode::N5, 800.0, 1.0, 800.0);
        let unconstrained =
            m.area_limited_transistors(&spec) / m.area_limited_transistors(&baseline);
        assert!((800.0..1200.0).contains(&unconstrained), "{unconstrained}");
        let capped = m.throughput_gain(&spec, &baseline);
        assert!((240.0..360.0).contains(&capped), "{capped}");
        // "drops by about 70%"
        let drop = 1.0 - capped / unconstrained;
        assert!((0.6..0.8).contains(&drop), "drop = {drop}");
    }

    #[test]
    fn power_budget_binds_only_large_or_hot_chips() {
        let m = model();
        // Small cool chip: area-limited.
        let small = ChipSpec::new(TechNode::N16, 25.0, 1.0, 200.0);
        assert!(m.area_limited_transistors(&small) <= m.power_limited_transistors(&small));
        // Huge chip on a lean budget: power-limited.
        let big = ChipSpec::new(TechNode::N5, 800.0, 1.0, 50.0);
        assert!(m.power_limited_transistors(&big) < m.area_limited_transistors(&big));
    }

    #[test]
    fn small_chips_win_energy_efficiency() {
        // Fig. 3d: "small chips are favorable for energy efficiency".
        let m = model();
        let baseline = PotentialModel::reference_spec();
        for tdp in [50.0, 200.0, 800.0] {
            let small = ChipSpec::new(TechNode::N5, 25.0, 1.0, tdp);
            let large = ChipSpec::new(TechNode::N5, 800.0, 1.0, tdp);
            assert!(
                m.efficiency_gain(&small, &baseline) > m.efficiency_gain(&large, &baseline),
                "tdp {tdp}: small should beat large on ops/J"
            );
        }
    }

    #[test]
    fn newer_node_improves_both_metrics_for_small_dies() {
        let m = model();
        let baseline = PotentialModel::reference_spec();
        let mut last_tp = 0.0;
        let mut last_ee = 0.0;
        for &node in &[TechNode::N45, TechNode::N28, TechNode::N16, TechNode::N5] {
            let spec = ChipSpec::new(node, 25.0, 1.0, 1e4);
            let tp = m.throughput_gain(&spec, &baseline);
            let ee = m.efficiency_gain(&spec, &baseline);
            assert!(tp > last_tp, "{node}: throughput should improve");
            assert!(ee > last_ee, "{node}: efficiency should improve");
            last_tp = tp;
            last_ee = ee;
        }
    }

    #[test]
    fn baseline_gains_are_unity() {
        let m = model();
        let b = PotentialModel::reference_spec();
        assert!((m.throughput_gain(&b, &b) - 1.0).abs() < 1e-12);
        assert!((m.efficiency_gain(&b, &b) - 1.0).abs() < 1e-12);
        assert!((m.throughput_per_area_gain(&b, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn corpus_model_tracks_paper_model() {
        let corpus = accelwall_chipdb::CorpusSpec::paper_scale().generate();
        let fitted = PotentialModel::from_corpus(&corpus).unwrap();
        let paper = model();
        let baseline = PotentialModel::reference_spec();
        for &node in &[TechNode::N28, TechNode::N16, TechNode::N5] {
            let spec = ChipSpec::new(node, 200.0, 1.2, 250.0);
            let ratio =
                fitted.throughput_gain(&spec, &baseline) / paper.throughput_gain(&spec, &baseline);
            assert!(
                (0.7..1.4).contains(&ratio),
                "{node}: corpus-fitted model diverges: ratio {ratio}"
            );
        }
    }

    #[test]
    fn spec_validation_rejects_nonsense() {
        let bad = ChipSpec::new(TechNode::N45, -1.0, 1.0, 100.0);
        assert!(matches!(
            bad.validate(),
            Err(PotentialError::InvalidSpec {
                field: "die_area_mm2",
                ..
            })
        ));
        let bad = ChipSpec::new(TechNode::N45, 100.0, 0.0, 100.0);
        assert!(bad.validate().is_err());
        let bad = ChipSpec::new(TechNode::N45, 100.0, 1.0, f64::NAN);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn from_record_conversion() {
        let record = accelwall_chipdb::curated::curated_chips()
            .into_iter()
            .find(|c| c.name.contains("GTX 1080"))
            .unwrap();
        let spec = ChipSpec::from_record(&record);
        assert_eq!(spec.node, TechNode::N16);
        assert!((spec.freq_ghz - 1.607).abs() < 1e-9);
    }

    #[test]
    fn dark_fraction_grows_with_node_and_die() {
        // The dark-silicon squeeze: at a fixed envelope, newer nodes and
        // bigger dies leave more silicon unpowered.
        let m = model();
        let dark = |node, die| m.dark_fraction(&ChipSpec::new(node, die, 1.0, 200.0));
        assert_eq!(
            dark(TechNode::N45, 50.0),
            0.0,
            "small old chip is area-bound"
        );
        assert!(
            dark(TechNode::N5, 800.0) > 0.7,
            "{}",
            dark(TechNode::N5, 800.0)
        );
        assert!(dark(TechNode::N5, 800.0) > dark(TechNode::N16, 800.0));
        assert!(dark(TechNode::N5, 800.0) > dark(TechNode::N5, 100.0));
    }

    #[test]
    fn dark_silicon_leakage_flag_lowers_efficiency() {
        let mut m = model();
        let spec = ChipSpec::new(TechNode::N5, 800.0, 1.0, 100.0);
        let with = m.energy_efficiency(&spec);
        m.dark_silicon_leakage = false;
        let without = m.energy_efficiency(&spec);
        assert!(without > with, "dark leakage must cost efficiency");
    }
}
