//! Direct vs. Winograd convolution — the algorithm layer, executable.
//!
//! The FPGA CNN study (Fig. 8) credits its best CSR jumps to *algorithmic*
//! optimization, naming the Winograd transform used by the Arria-10
//! implementation \[47\]. This module builds both algorithms for the same
//! problem — a 3×3 filter over a 4×4 input tile producing a 2×2 output
//! (Winograd F(2×2, 3×3)) — as dataflow graphs:
//!
//! * [`build_direct`]: the textbook form, 9 multiplies per output pixel
//!   (36 per tile);
//! * [`build_winograd`]: transform the tile with add/sub lattices, 16
//!   element-wise multiplies, transform back — a 2.25× multiplier
//!   reduction for identical results.
//!
//! The filter transform `U = G·g·Gᵀ` is host-side work (filters are known
//! offline), exactly as in the FPGA implementations, so `U` enters as
//! inputs.

use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};

/// Direct 3×3 valid convolution of a 4×4 tile: inputs `d{r}_{c}` (tile)
/// and `g{r}_{c}` (filter); outputs `y{r}_{c}` (2×2).
pub fn build_direct() -> Dfg {
    let mut b = DfgBuilder::new("conv3x3_direct");
    let d: Vec<Vec<NodeId>> = (0..4)
        .map(|r| (0..4).map(|c| b.input(format!("d{r}_{c}"))).collect())
        .collect();
    let g: Vec<Vec<NodeId>> = (0..3)
        .map(|r| (0..3).map(|c| b.input(format!("g{r}_{c}"))).collect())
        .collect();
    for out_r in 0..2 {
        for out_c in 0..2 {
            let mut terms = Vec::with_capacity(9);
            for (kr, g_row) in g.iter().enumerate() {
                for (kc, &w) in g_row.iter().enumerate() {
                    terms.push(b.op(Op::Mul, &[w, d[out_r + kr][out_c + kc]]));
                }
            }
            let sum = b.reduce(Op::Add, &terms);
            b.output(format!("y{out_r}_{out_c}"), sum);
        }
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("direct conv graph is structurally valid")
}

/// Winograd F(2×2, 3×3): inputs `d{r}_{c}` (4×4 tile) and the
/// pre-transformed filter `u{r}_{c}` (4×4); outputs `y{r}_{c}` (2×2).
///
/// Computes `V = Bᵀ·d·B` (adds/subs only), `M = U ⊙ V` (16 multiplies),
/// `Y = Aᵀ·M·A` (adds/subs only).
pub fn build_winograd() -> Dfg {
    let mut b = DfgBuilder::new("conv3x3_winograd");
    let d: Vec<Vec<NodeId>> = (0..4)
        .map(|r| (0..4).map(|c| b.input(format!("d{r}_{c}"))).collect())
        .collect();
    let u: Vec<Vec<NodeId>> = (0..4)
        .map(|r| (0..4).map(|c| b.input(format!("u{r}_{c}"))).collect())
        .collect();

    // t = Bᵀ·d: rows of Bᵀ are [1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1].
    let bt_row = |b: &mut DfgBuilder, col: &[NodeId; 4]| -> [NodeId; 4] {
        [
            b.op(Op::Sub, &[col[0], col[2]]),
            b.op(Op::Add, &[col[1], col[2]]),
            b.op(Op::Sub, &[col[2], col[1]]),
            b.op(Op::Sub, &[col[1], col[3]]),
        ]
    };
    // Apply Bᵀ down the columns, then B across the rows (same stencil).
    let mut t = [[d[0][0]; 4]; 4];
    for c in 0..4 {
        let col = [d[0][c], d[1][c], d[2][c], d[3][c]];
        let out = bt_row(&mut b, &col);
        for r in 0..4 {
            t[r][c] = out[r];
        }
    }
    let mut v = [[d[0][0]; 4]; 4];
    for r in 0..4 {
        let row = [t[r][0], t[r][1], t[r][2], t[r][3]];
        let out = bt_row(&mut b, &row);
        v[r] = out;
    }

    // M = U ⊙ V: the only multiplies in the graph.
    let mut m = [[d[0][0]; 4]; 4];
    for r in 0..4 {
        for c in 0..4 {
            m[r][c] = b.op(Op::Mul, &[u[r][c], v[r][c]]);
        }
    }

    // Y = Aᵀ·M·A with Aᵀ = [[1,1,1,0],[0,1,-1,-1]].
    let at_pair = |b: &mut DfgBuilder, col: &[NodeId; 4]| -> [NodeId; 2] {
        let s01 = b.op(Op::Add, &[col[0], col[1]]);
        let first = b.op(Op::Add, &[s01, col[2]]);
        let d12 = b.op(Op::Sub, &[col[1], col[2]]);
        let second = b.op(Op::Sub, &[d12, col[3]]);
        [first, second]
    };
    let mut p = [[d[0][0]; 4]; 2];
    for c in 0..4 {
        let col = [m[0][c], m[1][c], m[2][c], m[3][c]];
        let out = at_pair(&mut b, &col);
        p[0][c] = out[0];
        p[1][c] = out[1];
    }
    for (r, p_row) in p.iter().enumerate() {
        let out = at_pair(&mut b, p_row);
        b.output(format!("y{r}_0"), out[0]);
        b.output(format!("y{r}_1"), out[1]);
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("winograd graph is structurally valid")
}

/// Reference direct convolution of a 4×4 tile with a 3×3 filter (valid).
pub fn direct_reference(tile: &[[f64; 4]; 4], filter: &[[f64; 3]; 3]) -> [[f64; 2]; 2] {
    let mut y = [[0.0; 2]; 2];
    for (out_r, y_row) in y.iter_mut().enumerate() {
        for (out_c, y_cell) in y_row.iter_mut().enumerate() {
            *y_cell = (0..3)
                .flat_map(|kr| (0..3).map(move |kc| (kr, kc)))
                .map(|(kr, kc)| filter[kr][kc] * tile[out_r + kr][out_c + kc])
                .sum();
        }
    }
    y
}

/// Host-side Winograd filter transform `U = G·g·Gᵀ`.
pub fn filter_transform(filter: &[[f64; 3]; 3]) -> [[f64; 4]; 4] {
    // G = [[1,0,0],[1/2,1/2,1/2],[1/2,-1/2,1/2],[0,0,1]]
    let g_rows = |col: [f64; 3]| -> [f64; 4] {
        [
            col[0],
            0.5 * (col[0] + col[1] + col[2]),
            0.5 * (col[0] - col[1] + col[2]),
            col[2],
        ]
    };
    // U = G · g · Gᵀ.
    let mut tmp = [[0.0; 3]; 4];
    for c in 0..3 {
        let col = [filter[0][c], filter[1][c], filter[2][c]];
        let out = g_rows(col);
        for r in 0..4 {
            tmp[r][c] = out[r];
        }
    }
    let mut u = [[0.0; 4]; 4];
    for r in 0..4 {
        let out = g_rows(tmp[r]);
        u[r] = out;
    }
    u
}

/// Multiplier count of a graph (the scarce FPGA resource — DSP slices).
pub fn multiplier_count(dfg: &Dfg) -> usize {
    dfg.compute_ids()
        .iter()
        .filter(|&&id| matches!(dfg.node(id).kind, accelwall_dfg::NodeKind::Compute(Op::Mul)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tile() -> [[f64; 4]; 4] {
        let mut t = [[0.0; 4]; 4];
        for (r, row) in t.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = ((r * 4 + c) as f64 * 0.7).sin() * 3.0;
            }
        }
        t
    }

    fn filter() -> [[f64; 3]; 3] {
        [[1.0, 0.0, -1.0], [2.0, 0.5, -2.0], [1.0, -0.5, -1.0]]
    }

    #[test]
    fn direct_dfg_matches_reference() {
        let g = build_direct();
        let mut inputs = HashMap::new();
        for (r, row) in tile().iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                inputs.insert(format!("d{r}_{c}"), *v);
            }
        }
        for (r, row) in filter().iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                inputs.insert(format!("g{r}_{c}"), *v);
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        let y = direct_reference(&tile(), &filter());
        for r in 0..2 {
            for c in 0..2 {
                assert!((out[&format!("y{r}_{c}")] - y[r][c]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn winograd_dfg_matches_direct_reference() {
        // The whole point: a different algorithm, identical answers.
        let g = build_winograd();
        let u = filter_transform(&filter());
        let mut inputs = HashMap::new();
        for (r, row) in tile().iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                inputs.insert(format!("d{r}_{c}"), *v);
            }
        }
        for (r, row) in u.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                inputs.insert(format!("u{r}_{c}"), *v);
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        let y = direct_reference(&tile(), &filter());
        for r in 0..2 {
            for c in 0..2 {
                assert!(
                    (out[&format!("y{r}_{c}")] - y[r][c]).abs() < 1e-9,
                    "({r},{c}): {} vs {}",
                    out[&format!("y{r}_{c}")],
                    y[r][c]
                );
            }
        }
    }

    #[test]
    fn winograd_saves_2_25x_multipliers() {
        let direct = multiplier_count(&build_direct());
        let winograd = multiplier_count(&build_winograd());
        assert_eq!(direct, 36);
        assert_eq!(winograd, 16);
        assert!((direct as f64 / winograd as f64 - 2.25).abs() < 1e-12);
    }

    #[test]
    fn winograd_trades_multiplies_for_additions() {
        let direct = build_direct().stats();
        let winograd = build_winograd().stats();
        let adds = |s: &accelwall_dfg::DfgStats, muls: usize| s.computes - muls;
        assert!(
            adds(&winograd, 16) > adds(&direct, 36),
            "winograd should carry more add/sub lattice"
        );
    }
}
