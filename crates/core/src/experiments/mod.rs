//! Implementations of every paper target, grouped by the domain crate
//! they exercise.
//!
//! Each submodule holds the [`crate::experiment::Experiment`] impls for
//! one layer of the stack; [`crate::registry::Registry::paper`] owns the
//! roster and presentation order. The helpers here cover the two things
//! every experiment does: render CSR series and append formatted lines
//! to the text artifact.

pub mod accelsim;
pub mod chipdb;
pub mod cmos;
pub mod csr;
pub mod dfg;
pub mod potential;
pub mod projection;
pub mod report;
pub mod studies;
pub mod workloads;

use crate::json::Value;
use accelwall_csr::CsrSeries;

/// `write!` into the text artifact, ignoring the infallible `fmt` error.
macro_rules! out {
    ($buf:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = write!($buf, $($arg)*);
    }};
}

/// `writeln!` into the text artifact, ignoring the infallible `fmt` error.
macro_rules! outln {
    ($buf:expr) => {{
        use std::fmt::Write as _;
        let _ = writeln!($buf);
    }};
    ($buf:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($buf, $($arg)*);
    }};
}

pub(crate) use {out, outln};

/// The standard JSON rendering of a CSR series: one object per chip.
pub(crate) fn series_json(series: &CsrSeries) -> Value {
    series
        .rows
        .iter()
        .map(|r| {
            Value::object([
                ("label", Value::from(r.label.as_str())),
                ("reported_gain", Value::from(r.reported_gain)),
                ("physical_gain", Value::from(r.physical_gain)),
                ("csr", Value::from(r.csr)),
            ])
        })
        .collect()
}

/// The standard text rendering of a CSR series: title plus aligned rows.
pub(crate) fn push_series(buf: &mut String, title: &str, series: &CsrSeries) {
    outln!(buf, "{title}");
    outln!(
        buf,
        "{:<28} {:>12} {:>12} {:>8}",
        "chip",
        "reported(x)",
        "physical(x)",
        "CSR"
    );
    for r in &series.rows {
        outln!(
            buf,
            "{:<28} {:>12.2} {:>12.2} {:>8.2}",
            r.label,
            r.reported_gain,
            r.physical_gain,
            r.csr
        );
    }
}
