//! Dataflow-graph experiments: the Fig. 11 example graph, the S3D
//! structure (Fig. 12), Tables I–II, and the Graphviz export.

use accelwall_dfg::{concepts, limits, Dfg, DfgBuilder, DotOptions, Op};
use accelwall_workloads::Workload;

use super::outln;
use crate::cache::Ctx;
use crate::error::{Error, Result};
use crate::experiment::{Artifact, Experiment};
use crate::json::Value;

/// Builds the running example DFG of Fig. 11 (3 inputs → 2 stages → 2
/// outputs).
///
/// # Errors
///
/// Construction cannot fail for this fixed shape; the signature matches
/// the builder's fallible API.
pub fn fig11_graph() -> Result<Dfg> {
    let mut b = DfgBuilder::new("fig11");
    let d1 = b.input("d_in1");
    let d2 = b.input("d_in2");
    let d3 = b.input("d_in3");
    let s1a = b.op(Op::Add, &[d1, d2]);
    let s1b = b.op(Op::Div, &[d2, d3]);
    let s2a = b.op(Op::Sub, &[s1a, s1b]);
    let s2b = b.op(Op::Add, &[s1b, d3]);
    b.output("d_out1", s2a);
    b.output("d_out2", s2b);
    Ok(b.build()?)
}

/// Renders a graph as Graphviz: the `dot` target's body, also reachable
/// as `accelwall dot <WORKLOAD>` for any Table IV abbreviation.
///
/// # Errors
///
/// [`Error::UnknownWorkload`] when `which` is neither `fig11` nor a
/// Table IV abbreviation.
pub fn dot_artifact(which: &str) -> Result<Artifact> {
    let graph = if which.eq_ignore_ascii_case("fig11") {
        fig11_graph()?
    } else {
        Workload::all()
            .iter()
            .find(|w| w.abbrev().eq_ignore_ascii_case(which))
            .map(|w| w.default_instance())
            .ok_or_else(|| Error::UnknownWorkload {
                name: which.to_string(),
            })?
    };
    let dot = graph.to_dot(DotOptions::default());
    let json = Value::object([
        ("name", Value::from(graph.name())),
        ("dot", Value::from(dot.as_str())),
    ]);
    Ok(Artifact::new(json, dot))
}

/// Fig. 11 — the example DFG and its structural measures.
pub struct Fig11;

impl Experiment for Fig11 {
    fn id(&self) -> &'static str {
        "fig11"
    }

    fn description(&self) -> &'static str {
        "example dataflow graph and its measures"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let g = fig11_graph()?;
        let s = g.stats();
        let json = Value::object([
            ("vertices", Value::from(s.vertices)),
            ("edges", Value::from(s.edges)),
            ("inputs", Value::from(s.inputs)),
            ("outputs", Value::from(s.outputs)),
            ("depth", Value::from(s.depth)),
            ("compute_stages", Value::from(s.compute_stages)),
            ("paths", Value::from(s.path_count.to_string())),
            ("max_working_set", Value::from(s.max_working_set)),
        ]);
        let mut text = String::new();
        outln!(
            text,
            "Fig. 11 — example DFG: 3 inputs, 2 computation stages, 2 outputs"
        );
        outln!(
            text,
            "|V| = {}, |E| = {}, |V_IN| = {}, |V_OUT| = {}",
            s.vertices,
            s.edges,
            s.inputs,
            s.outputs
        );
        outln!(
            text,
            "depth D = {}, compute stages = {}, |P| = {} paths, max|WS_s| = {}",
            s.depth,
            s.compute_stages,
            s.path_count,
            s.max_working_set
        );
        Ok(Artifact::new(json, text))
    }
}

/// Fig. 12 — the 3D stencil computation structure.
pub struct Fig12;

impl Experiment for Fig12 {
    fn id(&self) -> &'static str {
        "fig12"
    }

    fn description(&self) -> &'static str {
        "3D stencil computation structure"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact> {
        // Cached stats off the shared bytecode program — no re-analysis.
        let s = ctx.program(Workload::S3d)?.stats();
        let json = Value::object([
            ("workload", Value::from("S3D")),
            ("vertices", Value::from(s.vertices)),
            ("edges", Value::from(s.edges)),
            ("computes", Value::from(s.computes)),
            ("depth", Value::from(s.depth)),
            ("max_stage_width", Value::from(s.max_stage_width)),
        ]);
        let mut text = String::new();
        outln!(
            text,
            "Fig. 12 — 3D stencil computation structure (default instance)"
        );
        outln!(
            text,
            "|V| = {} ({} compute ops), |E| = {}, depth = {}, widest stage = {} concurrent vertices",
            s.vertices,
            s.computes,
            s.edges,
            s.depth,
            s.max_stage_width
        );
        outln!(
            text,
            "filtering is independent per lattice point: a maximally parallel kernel"
        );
        Ok(Artifact::new(json, text))
    }
}

/// Table I — the TPU examples of the specialization concepts.
pub struct Table1;

impl Experiment for Table1 {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn description(&self) -> &'static str {
        "TPU examples of the specialization concepts"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let examples = concepts::tpu_examples();
        let json = examples
            .iter()
            .map(|e| {
                Value::object([
                    ("component", Value::from(e.component.to_string())),
                    ("concept", Value::from(e.concept.to_string())),
                    ("index", Value::from(u32::from(e.index))),
                    ("description", Value::from(e.description)),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(
            text,
            "Table I — chip specialization concepts, TPU examples (Fig. 10)"
        );
        for e in examples {
            outln!(
                text,
                "({}) {:<14} x {:<14}: {}",
                e.index,
                e.component,
                e.concept,
                e.description
            );
        }
        Ok(Artifact::new(json, text))
    }
}

/// Table II — time/space complexity limits, evaluated on S3D.
pub struct Table2;

impl Experiment for Table2 {
    fn id(&self) -> &'static str {
        "table2"
    }

    fn description(&self) -> &'static str {
        "time/space complexity limits of the concepts"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let cells = limits::table2();
        let s3d = Workload::S3d.default_instance().stats();
        let json = cells
            .iter()
            .map(|c| {
                Value::object([
                    ("component", Value::from(c.component.to_string())),
                    ("concept", Value::from(c.concept.to_string())),
                    ("time", Value::from(c.time.to_string())),
                    ("space", Value::from(c.space.to_string())),
                    ("time_on_s3d", Value::from(c.time.evaluate(&s3d))),
                    ("space_on_s3d", Value::from(c.space.evaluate(&s3d))),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(
            text,
            "Table II — time/space complexity limits of specialization concepts"
        );
        outln!(
            text,
            "{:<14} {:<15} {:<26} {:<22}",
            "component",
            "concept",
            "time",
            "space"
        );
        for c in &cells {
            outln!(
                text,
                "{:<14} {:<15} {:<26} {:<22}",
                c.component.to_string(),
                c.concept.to_string(),
                c.time.to_string(),
                c.space.to_string()
            );
        }
        outln!(text);
        outln!(
            text,
            "evaluated on the S3D instance (|V|={}, |E|={}, D={}):",
            s3d.vertices,
            s3d.edges,
            s3d.depth
        );
        for c in &cells {
            outln!(
                text,
                "  {:<14}/{:<15} time {:>12.0}  space {:>12.0}",
                c.component.to_string(),
                c.concept.to_string(),
                c.time.evaluate(&s3d),
                c.space.evaluate(&s3d)
            );
        }
        Ok(Artifact::new(json, text))
    }
}

/// Graphviz export of the Fig. 11 example graph (the `dot` target).
pub struct Dot;

impl Experiment for Dot {
    fn id(&self) -> &'static str {
        "dot"
    }

    fn description(&self) -> &'static str {
        "Graphviz export of a workload DFG"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        dot_artifact("fig11")
    }
}
