//! Integration of the simulation pipeline: workloads → DFG analyses →
//! simulator → sweep → attribution, mirroring the paper's Section VI flow.

use accelerator_wall::accelsim::attribution::Metric;
use accelerator_wall::accelsim::sweep::best_efficiency;
use accelerator_wall::prelude::*;

#[test]
fn every_workload_sweeps_and_attributes() {
    let space = SweepSpace::coarse();
    for &w in Workload::all() {
        let dfg = w.default_instance();
        let points = run_sweep(&dfg, &space).unwrap();
        assert_eq!(points.len(), space.len(), "{w}");
        let a = attribute_gains(&dfg, Metric::Performance, &space).unwrap();
        assert!(a.total_gain > 1.0, "{w}: no gain at all?");
        let product: f64 = a.contributions.iter().map(|c| c.factor).product();
        assert!((product / a.total_gain - 1.0).abs() < 1e-9, "{w}");
    }
}

#[test]
fn partitioning_dominates_performance_on_parallel_kernels() {
    // Fig. 14a: partitioning is the primary performance source for the
    // embarrassingly parallel kernels.
    let space = SweepSpace::table3();
    for w in [Workload::S2d, Workload::Gmm, Workload::Trd, Workload::Sad] {
        let a = attribute_gains(&w.default_instance(), Metric::Performance, &space).unwrap();
        let top = a
            .contributions
            .iter()
            .max_by(|x, y| x.percent.partial_cmp(&y.percent).unwrap())
            .unwrap();
        assert_eq!(
            format!("{}", top.source),
            "Partitioning",
            "{w}: {:?}",
            a.contributions
        );
    }
}

#[test]
fn cmos_saving_leads_efficiency_on_average() {
    // Fig. 14b: CMOS saving is the dominating efficiency factor on
    // average across the suite.
    let space = SweepSpace::coarse();
    let mut cmos_log_share = 0.0;
    let mut others_max = f64::NEG_INFINITY;
    let mut per_source = std::collections::HashMap::new();
    for &w in Workload::all() {
        let a = attribute_gains(&w.default_instance(), Metric::EnergyEfficiency, &space).unwrap();
        for c in &a.contributions {
            *per_source.entry(c.source.to_string()).or_insert(0.0) += c.factor.ln();
        }
    }
    for (source, log_sum) in &per_source {
        if source == "CMOS Saving" {
            cmos_log_share = *log_sum;
        } else {
            others_max = others_max.max(*log_sum);
        }
    }
    assert!(
        cmos_log_share > others_max,
        "CMOS saving should lead: {per_source:?}"
    );
}

#[test]
fn serial_workloads_gain_less_from_partitioning_than_parallel_ones() {
    // NWN's wavefront bounds its parallel speedup; the stencil's doesn't.
    let space = SweepSpace::table3();
    let nwn = attribute_gains(
        &Workload::Nwn.default_instance(),
        Metric::Performance,
        &space,
    )
    .unwrap();
    let s2d = attribute_gains(
        &Workload::S2d.default_instance(),
        Metric::Performance,
        &space,
    )
    .unwrap();
    let part_factor = |a: &Attribution| a.contributions[0].factor;
    assert!(
        part_factor(&nwn) < part_factor(&s2d),
        "NWN partitioning {:.1}x should trail S2D {:.1}x",
        part_factor(&nwn),
        part_factor(&s2d)
    );
}

#[test]
fn sweep_optimum_feeds_the_wall_narrative() {
    // The Fig. 13 optimum lives at the final node; rerunning the sweep
    // with the 5nm column removed must strictly reduce the attainable
    // efficiency — CMOS dependence in one assertion.
    let dfg = Workload::S3d.default_instance();
    let full = run_sweep(&dfg, &SweepSpace::table3()).unwrap();
    let best_full = best_efficiency(&full).unwrap().report.energy_efficiency();

    let mut no5 = SweepSpace::table3();
    no5.nodes.retain(|n| *n != TechNode::N5);
    let truncated = run_sweep(&dfg, &no5).unwrap();
    let best_no5 = best_efficiency(&truncated)
        .unwrap()
        .report
        .energy_efficiency();

    assert!(
        best_full > best_no5,
        "removing the final node must cost efficiency: {best_full:.3e} vs {best_no5:.3e}"
    );
}

#[test]
fn dfg_interpreter_agrees_with_simulated_op_counts() {
    // The simulator charges exactly the graph's compute vertices.
    for &w in Workload::all() {
        let dfg = w.default_instance();
        let r = simulate(&dfg, &DesignConfig::baseline()).unwrap();
        assert_eq!(r.ops, dfg.stats().computes as u64, "{w}");
    }
}
