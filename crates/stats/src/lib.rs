//! Numerical and statistical substrate for the Accelerator Wall reproduction.
//!
//! The paper's methodology leans on a handful of classical statistical tools:
//! ordinary-least-squares regression in linear and logarithmic spaces
//! (used to fit the transistor-budget models of Figs. 3b/3c and the
//! projection models of Eqs. 5/6), polynomial trend fitting (the quadratic
//! frame-rate curves of Fig. 5), geometric means (the architecture relation
//! matrix of Eqs. 3/4), and Pareto-frontier extraction (the projection study
//! of Figs. 15/16). The Rust ecosystem for statistics is thin, so this crate
//! implements all of them from scratch on `f64` slices, with no external
//! dependencies.
//!
//! # Example
//!
//! ```
//! use accelwall_stats::regression::PowerLaw;
//!
//! // Recover y = 2 * x^0.5 from samples.
//! let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x.sqrt()).collect();
//! let fit = PowerLaw::fit(&xs, &ys).unwrap();
//! assert!((fit.coefficient - 2.0).abs() < 1e-9);
//! assert!((fit.exponent - 0.5).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod descriptive;
pub mod matrix;
pub mod pareto;
pub mod regression;
pub mod rng;

pub use descriptive::{geomean, mean, median, quantile, stddev, variance};
pub use matrix::Matrix;
pub use pareto::{pareto_frontier, ParetoPoint};
pub use regression::{Linear, LogLinear, Polynomial, PowerLaw, RegressionSums};
pub use rng::Rng;

use std::error::Error;
use std::fmt;

/// Errors produced by the statistics routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input slices were empty or shorter than the number of free
    /// parameters being estimated.
    NotEnoughData {
        /// Number of observations provided.
        provided: usize,
        /// Minimum number of observations required.
        required: usize,
    },
    /// Paired inputs had different lengths.
    LengthMismatch {
        /// Length of the x (predictor) slice.
        xs: usize,
        /// Length of the y (response) slice.
        ys: usize,
    },
    /// An input value was outside the domain of the transform the routine
    /// applies (for example, non-positive values in a log-space fit).
    DomainViolation {
        /// Human-readable description of the violated domain constraint.
        what: &'static str,
    },
    /// The underlying linear system was singular (collinear predictors,
    /// a single distinct x value, etc.).
    Singular,
    /// A non-finite value (NaN or infinity) was encountered in the input.
    NonFinite,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NotEnoughData { provided, required } => write!(
                f,
                "not enough data: {provided} observations provided, {required} required"
            ),
            StatsError::LengthMismatch { xs, ys } => {
                write!(f, "length mismatch: {xs} x values vs {ys} y values")
            }
            StatsError::DomainViolation { what } => write!(f, "domain violation: {what}"),
            StatsError::Singular => write!(f, "singular system: predictors are degenerate"),
            StatsError::NonFinite => write!(f, "non-finite value in input"),
        }
    }
}

impl Error for StatsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;

pub(crate) fn check_paired(xs: &[f64], ys: &[f64], required: usize) -> Result<()> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            xs: xs.len(),
            ys: ys.len(),
        });
    }
    if xs.len() < required {
        return Err(StatsError::NotEnoughData {
            provided: xs.len(),
            required,
        });
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite);
    }
    Ok(())
}
