//! Potential-model experiments: the Fig. 3d gain grid, the dark-silicon
//! fractions, and the physical-gains roadmap.
//!
//! All three read the calibrated model through [`Ctx::potential_model`],
//! so it is built once per pipeline run.

use accelwall_cmos::TechNode;
use accelwall_potential::gains::{fig3d_nodes, TdpZone, FIG3D_DIES};
use accelwall_potential::{fig3d_grid, physical_roadmap, scaling_end_year, ChipSpec};

use super::{out, outln};
use crate::cache::Ctx;
use crate::error::Result;
use crate::experiment::{Artifact, Experiment};
use crate::json::Value;

/// Fig. 3d — physical chip gains vs the 25 mm² / 45 nm reference.
pub struct Fig3d;

impl Experiment for Fig3d {
    fn id(&self) -> &'static str {
        "fig3d"
    }

    fn description(&self) -> &'static str {
        "physical chip gains vs the 45nm reference"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact> {
        let rows = fig3d_grid(ctx.potential_model());
        let json = rows
            .iter()
            .map(|r| {
                Value::object([
                    ("node", Value::from(r.node.to_string())),
                    ("die_mm2", Value::from(r.die_mm2)),
                    ("zone", Value::from(r.zone.to_string())),
                    ("throughput_gain", Value::from(r.throughput_gain)),
                    ("efficiency_gain", Value::from(r.efficiency_gain)),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(
            text,
            "Fig. 3d — physical chip gains vs 25mm2/45nm reference (f = 1 GHz)"
        );
        outln!(
            text,
            "{:>6} {:>8} {:>10} {:>14} {:>14}",
            "node",
            "die",
            "zone",
            "throughput(x)",
            "efficiency(x)"
        );
        for r in &rows {
            outln!(
                text,
                "{:>6} {:>8} {:>10} {:>14.1} {:>14.2}",
                r.node.to_string(),
                format!("{}mm2", r.die_mm2),
                r.zone.to_string(),
                r.throughput_gain,
                r.efficiency_gain
            );
        }
        Ok(Artifact::new(json, text))
    }
}

/// Dark-silicon fractions across the Fig. 3d node/die/TDP grid.
pub struct Dark;

impl Experiment for Dark {
    fn id(&self) -> &'static str {
        "dark"
    }

    fn description(&self) -> &'static str {
        "dark-silicon fractions across the Fig. 3d grid"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact> {
        let model = ctx.potential_model();
        // (node, die, per-zone fraction) in zone order — one pass serves
        // both renderings without re-deriving grid indices.
        let mut cells: Vec<(TechNode, f64, Vec<f64>)> = Vec::new();
        for &node in fig3d_nodes() {
            for &die in &FIG3D_DIES {
                let fractions = TdpZone::all()
                    .iter()
                    .map(|&zone| {
                        let spec = ChipSpec::new(node, die, 1.0, zone.budget_w());
                        model.dark_fraction(&spec)
                    })
                    .collect();
                cells.push((node, die, fractions));
            }
        }
        let json = cells
            .iter()
            .flat_map(|(n, d, fracs)| {
                TdpZone::all().iter().zip(fracs).map(|(z, f)| {
                    Value::object([
                        ("node", Value::from(n.to_string())),
                        ("die_mm2", Value::from(*d)),
                        ("zone", Value::from(z.to_string())),
                        ("dark_fraction", Value::from(*f)),
                    ])
                })
            })
            .collect();
        let mut text = String::new();
        outln!(
            text,
            "Dark-silicon fractions (share of the die the power budget cannot switch)"
        );
        out!(text, "{:>6} {:>8}", "node", "die");
        for z in TdpZone::all() {
            out!(text, "{:>12}", z.to_string());
        }
        outln!(text);
        for (node, die, fractions) in &cells {
            out!(text, "{:>6} {:>7}m", node.to_string(), die);
            for f in fractions {
                out!(text, "{:>11.0}%", f * 100.0);
            }
            outln!(text);
        }
        Ok(Artifact::new(json, text))
    }
}

/// The physical-gains roadmap for a fixed chip template over the years.
pub struct Roadmap;

impl Experiment for Roadmap {
    fn id(&self) -> &'static str {
        "roadmap"
    }

    fn description(&self) -> &'static str {
        "physical-gains roadmap for a fixed template"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact> {
        let template = ChipSpec::new(TechNode::N45, 100.0, 1.0, 100.0);
        let points = physical_roadmap(ctx.potential_model(), &template, 2000, 2030);
        let json = points
            .iter()
            .map(|p| {
                Value::object([
                    ("year", Value::from(p.year)),
                    ("node", Value::from(p.node.to_string())),
                    ("throughput_gain", Value::from(p.throughput_gain)),
                    ("efficiency_gain", Value::from(p.efficiency_gain)),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(
            text,
            "Physical-gains roadmap for a 100mm2 / 1GHz / 100W chip template              (scaling ends {})",
            scaling_end_year()
        );
        outln!(
            text,
            "{:>6} {:>7} {:>14} {:>14}",
            "year",
            "node",
            "throughput(x)",
            "ops/J(x)"
        );
        let mut last_node = None;
        for p in &points {
            let marker = if Some(p.node) != last_node {
                "<- new node"
            } else {
                ""
            };
            outln!(
                text,
                "{:>6} {:>7} {:>14.1} {:>14.1}  {marker}",
                p.year,
                p.node.to_string(),
                p.throughput_gain,
                p.efficiency_gain
            );
            last_node = Some(p.node);
        }
        Ok(Artifact::new(json, text))
    }
}
