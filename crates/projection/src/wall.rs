//! Pareto projection and wall evaluation.

use crate::domains::{Domain, TargetMetric};
use crate::{ProjectionError, Result};
use accelwall_chipdb::fit::{NodeGroup, PAPER_TC_LAW};
use accelwall_cmos::TechNode;
use accelwall_stats::{pareto_frontier, Linear, LogLinear};
use accelwall_studies::{bitcoin, fpga, gpu, video};

/// The scatter a projection is fitted to.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionInput {
    /// Domain the points come from.
    pub domain: Domain,
    /// Metric being projected.
    pub metric: TargetMetric,
    /// `(physical capability, observed gain)` per chip, both relative to
    /// the domain baseline (gain may be in absolute domain units).
    pub points: Vec<(f64, f64)>,
    /// Physical capability of the final-node (5 nm) Table V chip, on the
    /// same relative axis.
    pub physical_limit: f64,
}

/// The fitted wall for one (domain, metric).
#[derive(Debug, Clone, PartialEq)]
pub struct WallProjection {
    /// Domain projected.
    pub domain: Domain,
    /// Metric projected.
    pub metric: TargetMetric,
    /// The Eq. 5 linear Pareto-frontier model.
    pub linear: Linear,
    /// The Eq. 6 logarithmic Pareto-frontier model.
    pub log: LogLinear,
    /// Physical capability at the 5 nm limit.
    pub physical_limit: f64,
    /// Best gain observed in the data.
    pub current_best: f64,
    /// The wall under the linear model.
    pub linear_wall: f64,
    /// The wall under the logarithmic model.
    pub log_wall: f64,
    /// Remaining headroom under the linear model (`linear_wall /
    /// current_best`).
    pub further_linear: f64,
    /// Remaining headroom under the logarithmic model.
    pub further_log: f64,
    /// Number of Pareto-frontier points the models were fitted to.
    pub frontier_len: usize,
    /// A ±1.96σ confidence band on the linear wall (mean-response
    /// standard error at the extrapolated limit — the honest error bar
    /// Section VII's single numbers elide). Degenerate (`lo == hi`) when
    /// the frontier fits exactly.
    pub linear_wall_band: (f64, f64),
}

/// Fits both projection models to an input's Pareto frontier and
/// evaluates the accelerator wall.
///
/// # Errors
///
/// * [`ProjectionError::LimitInsideData`] when the physical limit does
///   not exceed every observed capability (nothing to extrapolate to).
/// * [`ProjectionError::Stats`] when the frontier is degenerate (fewer
///   than two points, or coincident capabilities).
pub fn project(input: &ProjectionInput) -> Result<WallProjection> {
    let xs: Vec<f64> = input.points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = input.points.iter().map(|p| p.1).collect();
    let observed_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if input.physical_limit <= observed_max {
        return Err(ProjectionError::LimitInsideData {
            limit: input.physical_limit,
            observed_max,
        });
    }
    let frontier = pareto_frontier(&xs, &ys)?;
    let fx: Vec<f64> = frontier.iter().map(|p| p.x).collect();
    let fy: Vec<f64> = frontier.iter().map(|p| p.y).collect();
    let linear = Linear::fit(&fx, &fy)?;
    let log = LogLinear::fit(&fx, &fy)?;
    let current_best = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    // A projection below today's best is vacuous; the wall is at least
    // what has already been built (the paper's frontiers are monotone).
    let linear_wall = linear.eval(input.physical_limit).max(current_best);
    let log_wall = log.eval(input.physical_limit).max(current_best);
    let (band_lo, band_hi) = linear.confidence_band(input.physical_limit, 1.96);
    Ok(WallProjection {
        domain: input.domain,
        metric: input.metric,
        linear,
        log,
        physical_limit: input.physical_limit,
        current_best,
        linear_wall,
        log_wall,
        further_linear: linear_wall / current_best,
        further_log: log_wall / current_best,
        frontier_len: frontier.len(),
        linear_wall_band: (band_lo.max(0.0), band_hi.max(current_best)),
    })
}

/// Builds the projection input for a domain and metric from the study
/// datasets, then projects the wall.
///
/// # Errors
///
/// Propagates study and statistics errors.
pub fn accelerator_wall(domain: Domain, metric: TargetMetric) -> Result<WallProjection> {
    let input = projection_input(domain, metric)?;
    project(&input)
}

/// Assembles the `(physical, gain)` scatter and 5 nm limit for a domain.
///
/// Physical axes per domain (see the crate docs): area-limited switched
/// silicon for the small ASICs (video, mining), TDP-capped switching
/// budget for GPUs and FPGA boards. Efficiency walls follow the paper's
/// "smallest dies" rule: ASIC/FPGA efficiency budgets scale the Table V
/// TDP by `min_die / max_die`, while GPUs — whose identity is their board
/// power class — project at the full Table V budget.
///
/// # Errors
///
/// Propagates study errors.
pub fn projection_input(domain: Domain, metric: TargetMetric) -> Result<ProjectionInput> {
    projection_input_with(domain, metric, domain.limits())
}

/// [`projection_input`] with explicit Table V parameters — the hook the
/// sensitivity analysis perturbs.
///
/// # Errors
///
/// Propagates study errors.
pub fn projection_input_with(
    domain: Domain,
    metric: TargetMetric,
    limits: crate::domains::DomainLimits,
) -> Result<ProjectionInput> {
    let n5 = domain.final_node();
    let (points, physical_limit) = match (domain, metric) {
        (Domain::VideoDecoding, TargetMetric::Performance) => {
            let chips = video::decoder_chips();
            let phys = |node: TechNode, die: f64, mhz: f64| {
                PAPER_TC_LAW.eval(node.density_factor(die)) * mhz
            };
            let base = phys(chips[0].node, chips[0].die_mm2, chips[0].freq_mhz);
            let pts = chips
                .iter()
                .map(|c| (phys(c.node, c.die_mm2, c.freq_mhz) / base, c.mpixels_per_s))
                .collect();
            let limit = phys(n5, limits.max_die_mm2, limits.freq_mhz) / base;
            (pts, limit)
        }
        (Domain::VideoDecoding, TargetMetric::EnergyEfficiency) => {
            let chips = video::decoder_chips();
            let base = chips[0].node.dynamic_energy_rel();
            let pts = chips
                .iter()
                .map(|c| (base / c.node.dynamic_energy_rel(), c.mpixels_per_joule()))
                .collect();
            (pts, base / n5.dynamic_energy_rel())
        }
        (Domain::GpuGraphics, TargetMetric::Performance) => {
            let chips = gpu::gpu_chips();
            let base = chips[0].physical_throughput();
            let pts = chips
                .iter()
                .map(|g| {
                    (
                        g.physical_throughput() / base,
                        gpu::latent_performance_gain(g),
                    )
                })
                .collect();
            let area = PAPER_TC_LAW.eval(n5.density_factor(limits.max_die_mm2)) / 1e9
                * limits.freq_mhz
                / 1e3;
            let power = NodeGroup::N10ToN5.paper_tdp_law().eval(limits.tdp_w);
            (pts, area.min(power) / base)
        }
        (Domain::GpuGraphics, TargetMetric::EnergyEfficiency) => {
            let chips = gpu::gpu_chips();
            let base = chips[0].physical_efficiency();
            let pts = chips
                .iter()
                .map(|g| {
                    (
                        g.physical_efficiency() / base,
                        gpu::latent_efficiency_gain(g),
                    )
                })
                .collect();
            let cap = NodeGroup::N10ToN5.paper_tdp_law().eval(limits.tdp_w);
            (pts, cap / limits.tdp_w / base)
        }
        (Domain::FpgaCnn, TargetMetric::Performance) => {
            let rows = all_fpga_rows();
            let base = fpga_budget(&rows[0]);
            let pts = rows
                .iter()
                .map(|r| (fpga_budget(r) / base, r.gops))
                .collect();
            let limit = NodeGroup::N10ToN5.paper_tdp_law().eval(limits.tdp_w) / base;
            (pts, limit)
        }
        (Domain::FpgaCnn, TargetMetric::EnergyEfficiency) => {
            let rows = all_fpga_rows();
            let base = fpga_budget(&rows[0]) / rows[0].power_w;
            let pts = rows
                .iter()
                .map(|r| (fpga_budget(r) / r.power_w / base, r.gops_per_joule()))
                .collect();
            let lean_tdp = limits.tdp_w * limits.min_die_mm2 / limits.max_die_mm2;
            let limit = NodeGroup::N10ToN5.paper_tdp_law().eval(lean_tdp) / lean_tdp / base;
            (pts, limit)
        }
        (Domain::BitcoinMining, TargetMetric::Performance) => {
            let asics = bitcoin::asic_miners();
            let base = &asics[0];
            let pts = asics
                .iter()
                .map(|m| {
                    (
                        bitcoin::physical_per_area_gain(m, base),
                        m.ghash_per_s_per_mm2(),
                    )
                })
                .collect();
            let limit = (n5.density_rel() * n5.frequency_potential())
                / (base.node.density_rel() * base.node.frequency_potential());
            (pts, limit)
        }
        (Domain::BitcoinMining, TargetMetric::EnergyEfficiency) => {
            let asics = bitcoin::asic_miners();
            let base = asics[0].clone();
            let pts = asics
                .iter()
                .map(|m| {
                    (
                        bitcoin::physical_efficiency_gain(m, &base),
                        m.ghash_per_joule(),
                    )
                })
                .collect();
            let limit = base.node.dynamic_energy_rel() / n5.dynamic_energy_rel();
            (pts, limit)
        }
    };
    Ok(ProjectionInput {
        domain,
        metric,
        points,
        physical_limit,
    })
}

fn all_fpga_rows() -> Vec<fpga::FpgaImpl> {
    // Fig. 15c/16c pools AlexNet and VGG-16 ("AlexNet+VGG-16" axis).
    let mut rows = fpga::alexnet_impls();
    rows.extend(fpga::vgg16_impls());
    rows
}

/// A board's TDP-capped switching budget (B-transistors × GHz) from its
/// node group law.
fn fpga_budget(r: &fpga::FpgaImpl) -> f64 {
    NodeGroup::of(r.node)
        // lint:allow(no-panic-paths): the FPGA dataset is a static table whose nodes (28/20 nm) all map to a group; covered by the fig8 study tests
        .expect("FPGA nodes are 28/20 nm")
        .paper_tdp_law()
        .eval(r.power_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wall(d: Domain, m: TargetMetric) -> WallProjection {
        accelerator_wall(d, m).unwrap()
    }

    #[test]
    fn all_eight_walls_project() {
        for &d in Domain::all() {
            for m in [TargetMetric::Performance, TargetMetric::EnergyEfficiency] {
                let w = wall(d, m);
                assert!(w.physical_limit > 1.0, "{d} {m:?}");
                assert!(w.current_best > 0.0);
                assert!(
                    w.frontier_len >= 2,
                    "{d} {m:?}: frontier {}",
                    w.frontier_len
                );
                assert!(w.further_linear >= 1.0, "{d} {m:?}");
                assert!(w.further_log >= 1.0);
            }
        }
    }

    #[test]
    fn video_performance_headroom() {
        // Paper: "further performance improvements of 3-130x."
        let w = wall(Domain::VideoDecoding, TargetMetric::Performance);
        assert!(
            (3.0..130.0).contains(&w.further_linear) || (3.0..130.0).contains(&w.further_log),
            "linear {:.1} log {:.1}",
            w.further_linear,
            w.further_log
        );
        assert!(w.further_log <= w.further_linear);
    }

    #[test]
    fn video_efficiency_headroom() {
        // Paper: 1.2-14x further energy efficiency.
        let w = wall(Domain::VideoDecoding, TargetMetric::EnergyEfficiency);
        assert!(
            w.further_log < 20.0 && w.further_linear < 40.0,
            "linear {:.1} log {:.1}",
            w.further_linear,
            w.further_log
        );
    }

    #[test]
    fn gpu_performance_headroom_is_slim() {
        // Paper: 1.4-2.5x — the starkest wall.
        let w = wall(Domain::GpuGraphics, TargetMetric::Performance);
        assert!(
            (1.1..4.0).contains(&w.further_linear),
            "linear headroom {:.2}",
            w.further_linear
        );
    }

    #[test]
    fn gpu_efficiency_headroom_is_slimmer() {
        // Paper: 1.4-1.7x.
        let w = wall(Domain::GpuGraphics, TargetMetric::EnergyEfficiency);
        assert!(
            (1.0..2.5).contains(&w.further_linear),
            "linear headroom {:.2}",
            w.further_linear
        );
    }

    #[test]
    fn fpga_headrooms_match_paper_bands() {
        // Paper: performance 2.1-3.4x, efficiency 2.7-3.5x.
        let p = wall(Domain::FpgaCnn, TargetMetric::Performance);
        assert!(
            (1.5..8.0).contains(&p.further_linear),
            "perf headroom {:.2}",
            p.further_linear
        );
        let e = wall(Domain::FpgaCnn, TargetMetric::EnergyEfficiency);
        assert!(
            (1.5..6.0).contains(&e.further_linear),
            "EE headroom {:.2}",
            e.further_linear
        );
    }

    #[test]
    fn bitcoin_headrooms_match_paper_bands() {
        // Paper: performance 2-20x, efficiency 1.4-5x.
        let p = wall(Domain::BitcoinMining, TargetMetric::Performance);
        assert!(
            (2.0..25.0).contains(&p.further_linear),
            "perf headroom {:.2}",
            p.further_linear
        );
        assert!(p.further_log < p.further_linear);
        let e = wall(Domain::BitcoinMining, TargetMetric::EnergyEfficiency);
        assert!(
            (1.2..9.0).contains(&e.further_linear),
            "EE headroom {:.2}",
            e.further_linear
        );
    }

    #[test]
    fn linear_wall_dominates_log_wall_everywhere() {
        // Extrapolating a concave (log) fit can never exceed the linear
        // fit far beyond the data when both fit the same rising frontier.
        for &d in Domain::all() {
            for m in [TargetMetric::Performance, TargetMetric::EnergyEfficiency] {
                let w = wall(d, m);
                assert!(
                    w.log_wall <= w.linear_wall * 1.05,
                    "{d} {m:?}: log {:.1} vs linear {:.1}",
                    w.log_wall,
                    w.linear_wall
                );
            }
        }
    }

    #[test]
    fn limit_inside_data_is_rejected() {
        let input = ProjectionInput {
            domain: Domain::VideoDecoding,
            metric: TargetMetric::Performance,
            points: vec![(1.0, 1.0), (10.0, 5.0)],
            physical_limit: 5.0,
        };
        assert!(matches!(
            project(&input),
            Err(ProjectionError::LimitInsideData { .. })
        ));
    }

    #[test]
    fn confidence_band_brackets_the_linear_wall() {
        for &d in Domain::all() {
            let w = wall(d, TargetMetric::Performance);
            let (lo, hi) = w.linear_wall_band;
            assert!(lo <= hi, "{d}");
            // The raw linear estimate (before the current-best floor)
            // lies inside the band.
            assert!(
                w.linear.eval(w.physical_limit) <= hi + 1e-9,
                "{d}: wall above band"
            );
            // Extrapolation uncertainty is substantial: the band is wide
            // relative to the estimate whenever the frontier is noisy.
            assert!(hi.is_finite() && lo.is_finite());
        }
    }

    #[test]
    fn projection_wall_never_below_current_best() {
        for &d in Domain::all() {
            let w = wall(d, TargetMetric::Performance);
            assert!(w.linear_wall >= w.current_best);
            assert!(w.log_wall >= w.current_best);
        }
    }
}
