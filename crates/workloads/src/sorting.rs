//! SRT: a sorting network (Batcher bitonic sort).
//!
//! A sorting network is the natural spatial form of the merge-sort
//! benchmark: data-independent compare-exchange stages, each a (min, max)
//! pair — exactly the structure an accelerator would lay out.

use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};

/// Builds a bitonic sorting network for `n` inputs (`n` a power of two
/// ≥ 2), sorting ascending into outputs `y0..y{n-1}`.
///
/// # Panics
///
/// Panics if `n` is not a power of two or below 2.
pub fn build_bitonic(n: usize) -> Dfg {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "bitonic size must be a power of two >= 2"
    );
    let mut b = DfgBuilder::new(format!("srt_n{n}"));
    let mut wires: Vec<NodeId> = (0..n).map(|i| b.input(format!("x{i}"))).collect();

    // Standard bitonic network: for each phase k and sub-step j, exchange
    // lanes (i, i^j), direction chosen by bit k of i.
    let mut k = 2usize;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    let ascending = i & k == 0;
                    let lo = b.op(Op::Min, &[wires[i], wires[l]]);
                    let hi = b.op(Op::Max, &[wires[i], wires[l]]);
                    if ascending {
                        wires[i] = lo;
                        wires[l] = hi;
                    } else {
                        wires[i] = hi;
                        wires[l] = lo;
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }

    for (i, &w) in wires.iter().enumerate() {
        b.output(format!("y{i}"), w);
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("bitonic network is structurally valid")
}

/// Reference sort.
pub fn sort_reference(xs: &[f64]) -> Vec<f64> {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn run(n: usize, xs: &[f64]) -> Vec<f64> {
        let g = build_bitonic(n);
        let inputs: HashMap<String, f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &v)| (format!("x{i}"), v))
            .collect();
        let out = g.evaluate(&inputs).unwrap();
        (0..n).map(|i| out[&format!("y{i}")]).collect()
    }

    #[test]
    fn sorts_adversarial_patterns() {
        let n = 16;
        let patterns: Vec<Vec<f64>> = vec![
            (0..n).rev().map(|i| i as f64).collect(),
            (0..n).map(|i| ((i * 7) % n) as f64).collect(),
            vec![3.0; n],
            (0..n).map(|i| (i as f64 * 1.3).sin()).collect(),
        ];
        for xs in patterns {
            assert_eq!(run(n, &xs), sort_reference(&xs), "input {xs:?}");
        }
    }

    #[test]
    fn sorts_small_sizes() {
        for n in [2usize, 4, 8] {
            let xs: Vec<f64> = (0..n).map(|i| ((i * 5 + 2) % n) as f64 - 1.0).collect();
            assert_eq!(run(n, &xs), sort_reference(&xs));
        }
    }

    #[test]
    fn network_size_matches_formula() {
        // Bitonic network has n/2 * log(n) * (log(n)+1) / 2 comparators,
        // each expanding to a Min and a Max node.
        let n = 16usize;
        let log = n.trailing_zeros() as usize;
        let comparators = n / 2 * log * (log + 1) / 2;
        let s = build_bitonic(n).stats();
        assert_eq!(s.computes, comparators * 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_size_panics() {
        let _ = build_bitonic(10);
    }
}
