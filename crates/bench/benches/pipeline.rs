//! Serial-versus-parallel baseline for the whole compute pipeline.
//!
//! The `accelwall-par` pool freezes its size the first time any kernel
//! touches it, so one process cannot honestly time both configurations.
//! This bench therefore re-executes itself: the parent spawns two child
//! copies of this binary — one pinned to `ACCELWALL_THREADS=1`, one to
//! `ACCELWALL_THREADS=4` — and each child times the four accelerated
//! kernels cold plus a full `accelwall all` replica, reporting one flat
//! JSON line the parent folds into the final document.
//!
//! Measured per configuration:
//!
//! 1. **cold `all`** — `Registry::paper().run_all` on a fresh `Ctx`
//!    (the number the `--threads` flag exists to improve);
//! 2. **corpus** — `CorpusSpec::paper_scale().generate()`, the chunked
//!    deterministic RNG streams;
//! 3. **fit** — the log-log regressions over the generated corpus;
//! 4. **sweep** — one workload's design-space sweep on the paper grid;
//! 5. **sensitivity** — the ±20 % wall-sensitivity grid, every domain.
//!
//! The output also carries a `quick_*` section (coarse sweep space) so
//! CI can re-measure the serial/parallel ratio in seconds; the
//! `bench-smoke` job fails when that ratio regresses more than 25 %
//! against the committed baseline. Speedups are ratios of same-machine
//! runs, so the gate is portable across core counts; `cores` records
//! what the baseline machine offered (a single-core box reports a
//! speedup near 1.0 by construction). `BENCH_pipeline.json` at the repo
//! root records a baseline run (`cargo bench -p accelwall-bench --bench
//! pipeline > BENCH_pipeline.json`).

use accelerator_wall::json::Value;
use accelerator_wall::prelude::*;
use std::process::Command;
use std::time::{Duration, Instant};

/// Pool sizes the parent pins into the two child processes.
const SERIAL_THREADS: usize = 1;
const PARALLEL_THREADS: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(i) = args.iter().position(|a| a == "--child") {
        let mode = args.get(i + 1).map_or("full", String::as_str);
        child(mode);
        return;
    }
    parent(quick);
}

/// Spawn one pinned copy of this binary and parse its JSON report.
fn child_report(mode: &str, threads: usize) -> Value {
    let exe = std::env::current_exe().expect("bench exe path");
    let out = Command::new(exe)
        .args(["--child", mode])
        .env(accelwall_par::THREADS_ENV, threads.to_string())
        .output()
        .expect("child bench runs");
    assert!(
        out.status.success(),
        "child ({mode}, {threads} threads) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    Value::parse(&String::from_utf8_lossy(&out.stdout)).expect("child emits JSON")
}

fn field(report: &Value, key: &str) -> f64 {
    report
        .get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("child report missing {key}"))
}

fn parent(quick: bool) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let quick_serial = child_report("quick", SERIAL_THREADS);
    let quick_parallel = child_report("quick", PARALLEL_THREADS);
    let (qs, qp) = (
        field(&quick_serial, "all_ms"),
        field(&quick_parallel, "all_ms"),
    );

    println!("{{");
    println!("  \"bench\": \"pipeline\",");
    println!("  \"cores\": {cores},");
    println!("  \"threads_serial\": {SERIAL_THREADS},");
    println!("  \"threads_parallel\": {PARALLEL_THREADS},");
    println!("  \"quick_all_serial_ms\": {qs:.3},");
    println!("  \"quick_all_parallel_ms\": {qp:.3},");
    if quick {
        println!("  \"quick_all_speedup\": {:.3}", qs / qp);
        println!("}}");
        return;
    }
    println!("  \"quick_all_speedup\": {:.3},", qs / qp);

    let serial = child_report("full", SERIAL_THREADS);
    let parallel = child_report("full", PARALLEL_THREADS);
    for kernel in ["all", "corpus", "fit", "sweep", "sensitivity"] {
        let key = format!("{kernel}_ms");
        let (s, p) = (field(&serial, &key), field(&parallel, &key));
        println!("  \"{kernel}_serial_ms\": {s:.3},");
        println!("  \"{kernel}_parallel_ms\": {p:.3},");
        println!("  \"{kernel}_speedup\": {:.3},", s / p);
    }
    let (s, p) = (field(&serial, "all_ms"), field(&parallel, "all_ms"));
    println!(
        "  \"all_speedup_at_{PARALLEL_THREADS}_threads\": {:.3}",
        s / p
    );
    println!("}}");
}

/// One pinned configuration: time every kernel, report a flat JSON line.
fn child(mode: &str) {
    if mode == "quick" {
        let start = Instant::now();
        run_all_with(Ctx::with_space(SweepSpace::coarse()));
        println!("{{ \"all_ms\": {:.3} }}", ms(start.elapsed()));
        return;
    }

    // Kernels first, each on fresh inputs (no Ctx memoization in play),
    // then the end-to-end run. Means over repeats keep the small kernels
    // out of timer noise; the sweep and `all` are single-shot.
    const REPEATS: u32 = 10;
    let corpus_ms = timed(REPEATS, || {
        std::hint::black_box(CorpusSpec::paper_scale().generate().len());
    });

    let corpus = CorpusSpec::paper_scale().generate();
    let fit_ms = timed(REPEATS, || {
        let fit = accelerator_wall::chipdb::fit::transistor_density_fit(&corpus).expect("fit");
        std::hint::black_box(fit.exponent);
        for &group in NodeGroup::all() {
            if let Ok(tdp) = accelerator_wall::chipdb::fit::tdp_fit(&corpus, group) {
                std::hint::black_box(tdp.exponent);
            }
        }
    });

    let dfg = Workload::all()[0].default_instance();
    let sweep_start = Instant::now();
    let points = run_sweep(&dfg, &SweepSpace::table3()).expect("sweep");
    let sweep_ms = ms(sweep_start.elapsed());
    std::hint::black_box(points.len());

    let sensitivity_ms = timed(REPEATS, || {
        for &domain in Domain::all() {
            for metric in [TargetMetric::Performance, TargetMetric::EnergyEfficiency] {
                let rows =
                    accelerator_wall::projection::sensitivity::wall_sensitivity(domain, metric)
                        .expect("sensitivity");
                std::hint::black_box(rows.len());
            }
        }
    });

    let all_start = Instant::now();
    run_all_with(Ctx::new());
    let all_ms = ms(all_start.elapsed());

    println!(
        "{{ \"all_ms\": {all_ms:.3}, \"corpus_ms\": {corpus_ms:.3}, \"fit_ms\": {fit_ms:.3}, \
         \"sweep_ms\": {sweep_ms:.3}, \"sensitivity_ms\": {sensitivity_ms:.3} }}"
    );
}

/// In-process replica of `accelwall all`: every registry target, and
/// every one of them must succeed for the timing to count.
fn run_all_with(ctx: Ctx) {
    let results = Registry::paper().run_all(&ctx).expect("scheduling");
    for (id, r) in &results {
        assert!(r.is_ok(), "{id} failed during bench");
    }
    std::hint::black_box(results.len());
}

fn timed(repeats: u32, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..repeats {
        f();
    }
    ms(start.elapsed() / repeats)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}
