//! Property-based tests of the simulator and scheduler over randomly
//! generated dataflow graphs and design points.

use accelwall_accelsim::{schedule, simulate, DesignConfig};
use accelwall_cmos::TechNode;
use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};
use proptest::prelude::*;

const OPS: [Op; 10] = [
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Min,
    Op::Max,
    Op::Abs,
    Op::Xor,
    Op::Sqrt,
    Op::Select,
    Op::Copy,
];

fn build(inputs: usize, ops: &[(u8, u8, u8, u8)]) -> Dfg {
    let mut b = DfgBuilder::new("random");
    let mut nodes: Vec<NodeId> = (0..inputs).map(|i| b.input(format!("x{i}"))).collect();
    for &(op_sel, a_sel, b_sel, c_sel) in ops {
        let op = OPS[op_sel as usize % OPS.len()];
        let pick = |sel: u8, n: usize| sel as usize % n;
        let n = nodes.len();
        let operands: Vec<NodeId> = (0..op.arity())
            .map(|k| nodes[pick([a_sel, b_sel, c_sel][k], n)])
            .collect();
        nodes.push(b.op(op, &operands));
    }
    let tail = nodes.len().saturating_sub(2);
    for (k, &n) in nodes[tail..].iter().enumerate() {
        b.output(format!("o{k}"), n);
    }
    b.build().expect("random graphs are valid by construction")
}

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u8, u8, u8, u8)>)> {
    (1usize..6, prop::collection::vec(any::<(u8, u8, u8, u8)>(), 1..80))
}

fn arb_config() -> impl Strategy<Value = DesignConfig> {
    (
        prop::sample::select(TechNode::sweep_nodes().to_vec()),
        0u32..16,
        1u32..=13,
        any::<bool>(),
    )
        .prop_map(|(node, p_exp, s, het)| DesignConfig::new(node, 1 << p_exp, s, het))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn simulate_is_total_and_sane((inputs, ops) in arb_graph(), config in arb_config()) {
        let dfg = build(inputs, &ops);
        let r = simulate(&dfg, &config).unwrap();
        prop_assert!(r.cycles >= 1.0);
        prop_assert!(r.runtime_s > 0.0);
        prop_assert!(r.dynamic_energy_j > 0.0);
        prop_assert!(r.leakage_w > 0.0);
        prop_assert!(r.power_w().is_finite());
        prop_assert!(r.cycles >= r.critical_path_cycles - 1e-9);
        prop_assert_eq!(r.ops, dfg.stats().computes as u64);
    }

    #[test]
    fn scheduler_is_total_and_dependence_safe(
        (inputs, ops) in arb_graph(),
        config in arb_config(),
    ) {
        let dfg = build(inputs, &ops);
        let s = schedule(&dfg, &config).unwrap();
        prop_assert!(s.respects_dependences(&dfg));
        prop_assert!(s.makespan >= 1);
        prop_assert!(s.peak_lanes_busy <= config.partition_factor);
        prop_assert!(s.utilization > 0.0 && s.utilization <= 1.0 + 1e-9);
        // Every node got a slot.
        for id in dfg.ids() {
            prop_assert!(s.finish_cycle[id.index()] > s.start_cycle[id.index()]);
        }
    }

    #[test]
    fn bound_lower_bounds_schedule_without_fusion(
        (inputs, ops) in arb_graph(),
        p_exp in 0u32..12,
        s in 1u32..=13,
    ) {
        let dfg = build(inputs, &ops);
        let config = DesignConfig::new(TechNode::N45, 1 << p_exp, s, false);
        let bound = simulate(&dfg, &config).unwrap().cycles;
        let actual = schedule(&dfg, &config).unwrap().makespan as f64;
        prop_assert!(
            actual >= bound * 0.99 - 1.0,
            "scheduled {actual} below bound {bound}"
        );
        prop_assert!(
            actual <= 2.0 * bound + 8.0,
            "scheduled {actual} breaks Graham vs bound {bound}"
        );
    }

    #[test]
    fn energy_scales_linearly_with_width(
        (inputs, ops) in arb_graph(),
        p_exp in 0u32..8,
    ) {
        // Halving the datapath (degree 9 = 16 bits) halves dynamic energy
        // exactly in the model — until serialization multiplies passes.
        let dfg = build(inputs, &ops);
        let full = simulate(&dfg, &DesignConfig::new(TechNode::N45, 1 << p_exp, 1, false)).unwrap();
        let s5 = simulate(&dfg, &DesignConfig::new(TechNode::N45, 1 << p_exp, 5, false)).unwrap();
        // Width 24/32 = 0.75, same pass count.
        prop_assert!((s5.dynamic_energy_j / full.dynamic_energy_j - 0.75).abs() < 1e-9);
    }

    #[test]
    fn leakage_independent_of_clock_schedule((inputs, ops) in arb_graph()) {
        let dfg = build(inputs, &ops);
        let a = simulate(&dfg, &DesignConfig::new(TechNode::N7, 4, 1, false)).unwrap();
        let b = simulate(&dfg, &DesignConfig::new(TechNode::N7, 4, 1, true)).unwrap();
        // Fusion changes cycles, not area/leakage.
        prop_assert_eq!(a.leakage_w, b.leakage_w);
        prop_assert_eq!(a.area_units, b.area_units);
    }
}
