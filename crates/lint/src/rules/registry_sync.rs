//! `registry-sync` — the experiment roster and the experiment sources
//! agree, and the declared dependency graph is runnable.
//!
//! `Registry::paper()` is the single roster every CLI/server/test path
//! derives from, but nothing stopped a new `core/src/experiments/*.rs`
//! target from being written and never registered — it would silently
//! fall out of `all` runs, the server, and the docs. This rule
//! cross-checks three layers:
//!
//! * **static → runtime**: every `fn id(&self) -> &'static str { "…" }`
//!   declared in an experiment module names a registered target;
//! * **runtime**: registered ids are unique, and every declared `deps()`
//!   edge names a registered id;
//! * **graph**: the dependency graph is acyclic, verified with the same
//!   dependencies-first DFS `ArtifactCache` runs, so a cycle is caught
//!   by lint before it deadlocks `Registry::schedule` or recurses the
//!   cache;
//! * **routes → docs**: every HTTP route the server labels for
//!   `/metrics` (the `Route::label` match in
//!   `crates/server/src/metrics.rs`) appears in DESIGN.md's route
//!   table, so a new route cannot ship undocumented.

use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;
use crate::{Finding, Lint};
use accelerator_wall::registry::Registry;

/// See the module docs.
pub struct RegistrySync;

/// Where the experiment implementations live.
const EXPERIMENTS_DIR: &str = "crates/core/src/experiments";

/// Roster-level findings anchor here.
const REGISTRY_PATH: &str = "crates/core/src/registry.rs";

/// Where the server's route labels live (`Route::label`).
const ROUTES_PATH: &str = "crates/server/src/metrics.rs";

impl Lint for RegistrySync {
    fn name(&self) -> &'static str {
        "registry-sync"
    }

    fn description(&self) -> &'static str {
        "every experiment target is registered, ids are unique, and the dep graph is acyclic"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        let registry = Registry::paper();
        let ids = registry.ids();

        // Runtime roster: unique ids.
        for (i, id) in ids.iter().enumerate() {
            if ids[..i].contains(id) {
                findings.push(Finding {
                    rule: self.name(),
                    path: REGISTRY_PATH.to_string(),
                    line: 0,
                    col: 0,
                    message: format!("duplicate experiment id {id:?} in Registry::paper()"),
                });
            }
        }

        // Runtime roster: every dep edge resolves, and the graph is
        // acyclic under the dependencies-first DFS the ArtifactCache runs.
        let mut graph: Vec<Vec<usize>> = Vec::new();
        for e in registry.experiments() {
            let mut edges = Vec::new();
            for dep in e.deps() {
                match ids.iter().position(|id| id == dep) {
                    Some(j) => edges.push(j),
                    None => findings.push(Finding {
                        rule: self.name(),
                        path: REGISTRY_PATH.to_string(),
                        line: 0,
                        col: 0,
                        message: format!(
                            "experiment {:?} declares unknown dependency {dep:?}",
                            e.id()
                        ),
                    }),
                }
            }
            graph.push(edges);
        }
        if let Some(cycle) = find_cycle(&graph) {
            let names: Vec<&str> = cycle.iter().map(|&i| ids[i]).collect();
            findings.push(Finding {
                rule: self.name(),
                path: REGISTRY_PATH.to_string(),
                line: 0,
                col: 0,
                message: format!(
                    "experiment dependency cycle (would deadlock schedule() and the \
                     ArtifactCache DFS): {}",
                    names.join(" -> ")
                ),
            });
        }

        // routes → docs: every labelled server route is documented in
        // DESIGN.md's route table. Skipped when the workspace doesn't
        // carry the server's metrics module (fixture workspaces).
        if let Some(routes_file) = ws.files.iter().find(|f| f.rel_path == ROUTES_PATH) {
            let design = ws.design_md.as_deref().unwrap_or("");
            for (label, line) in route_labels(routes_file) {
                if !design.contains(&label) {
                    findings.push(Finding {
                        rule: self.name(),
                        path: ROUTES_PATH.to_string(),
                        line,
                        col: 0,
                        message: format!(
                            "server route {label:?} is served but absent from DESIGN.md's \
                             route table; document it or drop the route"
                        ),
                    });
                }
            }
        }

        // Static side: ids declared in experiment sources. Skipped when
        // the workspace has no experiments dir (e.g. fixture workspaces).
        let files: Vec<&SourceFile> = ws.files_under(EXPERIMENTS_DIR).collect();
        if files.is_empty() {
            return findings;
        }
        let mut declared: Vec<(String, &SourceFile, usize)> = Vec::new();
        for file in &files {
            for (id, line) in declared_ids(file) {
                declared.push((id, file, line));
            }
        }
        for (i, (id, file, line)) in declared.iter().enumerate() {
            if declared[..i].iter().any(|(other, _, _)| other == id) {
                findings.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: *line,
                    col: 0,
                    message: format!("experiment id {id:?} is declared twice"),
                });
            }
            if !ids.contains(&id.as_str()) {
                findings.push(Finding {
                    rule: self.name(),
                    path: file.rel_path.clone(),
                    line: *line,
                    col: 0,
                    message: format!(
                        "experiment id {id:?} is implemented here but never registered \
                         in Registry::paper(); it will miss `all` runs, the server, \
                         and the docs"
                    ),
                });
            }
        }
        for id in &ids {
            if !declared.iter().any(|(d, _, _)| d == id) {
                findings.push(Finding {
                    rule: self.name(),
                    path: REGISTRY_PATH.to_string(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "registered id {id:?} has no `fn id()` declaration under \
                         {EXPERIMENTS_DIR}/"
                    ),
                });
            }
        }
        findings
    }
}

/// Extracts every `fn id(&self) -> &'static str {{ "…" }}` declaration:
/// the first string literal after `fn id` and before the next `fn`.
fn declared_ids(file: &SourceFile) -> Vec<(String, usize)> {
    let code = file.code_tokens();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].is_ident("fn") && code[i + 1].is_ident("id") {
            let mut j = i + 2;
            while j < code.len() && !code[j].is_ident("fn") {
                if code[j].kind == TokenKind::Str {
                    out.push((code[j].text.clone(), code[j].line));
                    break;
                }
                j += 1;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Extracts the route labels from the `fn label` match in the server's
/// metrics module: every string literal starting with `/` between
/// `fn label` and the next `fn`. The `Route::Other` bucket's label is
/// not a path and is deliberately excluded by that shape.
fn route_labels(file: &SourceFile) -> Vec<(String, usize)> {
    let code = file.code_tokens();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].is_ident("fn") && code[i + 1].is_ident("label") {
            let mut j = i + 2;
            while j < code.len() && !code[j].is_ident("fn") {
                if code[j].kind == TokenKind::Str && code[j].text.starts_with('/') {
                    out.push((code[j].text.clone(), code[j].line));
                }
                j += 1;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Three-color DFS over `graph` (edges point at dependencies); returns a
/// cycle as a node path when one exists — the same traversal shape the
/// `ArtifactCache` uses to fill dependencies first.
fn find_cycle(graph: &[Vec<usize>]) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Visit {
        Unvisited,
        InProgress,
        Done,
    }
    fn visit(
        node: usize,
        graph: &[Vec<usize>],
        state: &mut [Visit],
        stack: &mut Vec<usize>,
    ) -> bool {
        match state[node] {
            Visit::Done => return false,
            Visit::InProgress => {
                stack.push(node);
                return true;
            }
            Visit::Unvisited => state[node] = Visit::InProgress,
        }
        stack.push(node);
        for &dep in &graph[node] {
            if visit(dep, graph, state, stack) {
                return true;
            }
        }
        stack.pop();
        state[node] = Visit::Done;
        false
    }
    let mut state = vec![Visit::Unvisited; graph.len()];
    for node in 0..graph.len() {
        let mut stack = Vec::new();
        if visit(node, graph, &mut state, &mut stack) {
            // Trim the prefix before the repeated node.
            let last = *stack.last()?;
            let start = stack.iter().position(|&n| n == last)?;
            return Some(stack[start..].to_vec());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::workspace;
    use std::path::Path;

    #[test]
    fn the_real_registry_is_in_sync() {
        // Run against the actual enclosing workspace: the shipped roster
        // must satisfy its own lint.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let ws = Workspace::discover(here).expect("workspace above crates/lint");
        assert_eq!(RegistrySync.check(&ws), Vec::new());
    }

    #[test]
    fn fixture_workspaces_skip_the_static_side() {
        // No experiments dir: only the runtime roster checks run, and the
        // compiled-in roster is healthy.
        let ws = workspace(&[("crates/x/src/lib.rs", "fn f() {}")]);
        assert!(RegistrySync.check(&ws).is_empty());
    }

    #[test]
    fn an_unregistered_experiment_is_flagged() {
        let src = "pub struct Fig99;\n\
                   impl Experiment for Fig99 {\n\
                       fn id(&self) -> &'static str {\n\
                           \"fig99\"\n\
                       }\n\
                       fn description(&self) -> &'static str { \"ghost\" }\n\
                   }\n";
        let ws = workspace(&[("crates/core/src/experiments/ghost.rs", src)]);
        let found = RegistrySync.check(&ws);
        // fig99 is declared-but-unregistered, and every real id is now
        // "registered but not declared" (the fixture hides the real files).
        assert!(found
            .iter()
            .any(|f| f.message.contains("\"fig99\"") && f.message.contains("never registered")));
        let fig99 = found
            .iter()
            .find(|f| f.message.contains("never registered"))
            .expect("finding present");
        assert_eq!(fig99.path, "crates/core/src/experiments/ghost.rs");
        assert_eq!(fig99.line, 4);
    }

    #[test]
    fn duplicate_declarations_are_flagged() {
        let src = "impl A { fn id(&self) -> &'static str { \"fig1\" } }\n\
                   impl B { fn id(&self) -> &'static str { \"fig1\" } }\n";
        let ws = workspace(&[("crates/core/src/experiments/dup.rs", src)]);
        let found = RegistrySync.check(&ws);
        assert!(found.iter().any(|f| f.message.contains("declared twice")));
    }

    #[test]
    fn an_undocumented_route_is_flagged() {
        let src = "impl Route {\n\
                   \x20   pub fn label(self) -> &'static str {\n\
                   \x20       match self {\n\
                   \x20           Route::Healthz => \"/healthz\",\n\
                   \x20           Route::Query => \"/query\",\n\
                   \x20           Route::Other => \"other\",\n\
                   \x20       }\n\
                   \x20   }\n\
                   }\n";
        let mut ws = workspace(&[("crates/server/src/metrics.rs", src)]);
        ws.design_md = Some("| `GET /healthz` | liveness |\n".to_string());
        let found = RegistrySync.check(&ws);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].path, "crates/server/src/metrics.rs");
        assert_eq!(found[0].line, 5);
        assert!(found[0].message.contains("\"/query\""));
        assert!(found[0].message.contains("DESIGN.md"));

        // Documenting the route clears the finding; the non-path
        // "other" bucket never needs documenting.
        ws.design_md = Some("| `GET /healthz` | … |\n| `GET /query` | … |\n".to_string());
        assert!(RegistrySync.check(&ws).is_empty());
    }

    #[test]
    fn route_labels_are_extracted_from_the_label_fn_only() {
        let src = "fn other() -> &'static str { \"/not-a-route\" }\n\
                   fn label(self) -> &'static str {\n\
                   \x20   match self {\n\
                   \x20       Route::Metrics => \"/metrics\",\n\
                   \x20       Route::Other => \"other\",\n\
                   \x20   }\n\
                   }\n";
        let f = SourceFile::new(
            "crates/server/src/metrics.rs".into(),
            Path::new("/fixture/metrics.rs").into(),
            src.into(),
        );
        assert_eq!(route_labels(&f), vec![("/metrics".to_string(), 4)]);
    }

    #[test]
    fn cycle_detection_reports_the_loop() {
        // a -> b -> c -> a
        let graph = vec![vec![1], vec![2], vec![0]];
        let cycle = find_cycle(&graph).expect("cycle exists");
        assert!(cycle.len() >= 3);
        // Acyclic diamond: no cycle.
        let dag = vec![vec![1, 2], vec![3], vec![3], vec![]];
        assert!(find_cycle(&dag).is_none());
        // Self-loop.
        assert!(find_cycle(&[vec![0]]).is_some());
    }

    #[test]
    fn declared_ids_are_extracted_with_lines() {
        let src = "fn id(&self) -> &'static str {\n    \"fig3b\"\n}\n\
                   fn description(&self) -> &'static str { \"not an id\" }\n\
                   fn id(&self) -> &'static str { \"fig3c\" }\n";
        let f = SourceFile::new(
            "crates/core/src/experiments/x.rs".into(),
            Path::new("/fixture/x.rs").into(),
            src.into(),
        );
        let ids = declared_ids(&f);
        assert_eq!(
            ids,
            vec![("fig3b".to_string(), 2), ("fig3c".to_string(), 5)]
        );
    }
}
