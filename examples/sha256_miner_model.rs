//! Cross-validation: does simulating the *actual mining kernel* across the
//! miner process nodes reproduce the empirically observed gains?
//!
//! The paper's Bitcoin study is empirical (datasheets and forum reports).
//! We have both sides: the full SHA-256 compression function as a dataflow
//! graph (`workloads::sha`) and the miner dataset (`studies::bitcoin`).
//! This example runs the kernel through the design-space simulator at each
//! ASIC generation's node and compares the model's per-silicon throughput
//! gains with the measured per-area hash-rate gains.
//!
//! Run with: `cargo run --release --example sha256_miner_model`

use accelerator_wall::accelsim::{simulate, DesignConfig};
use accelerator_wall::studies::bitcoin;
use accelerator_wall::workloads::sha;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = sha::build(64);
    let stats = dfg.stats();
    println!(
        "SHA-256 compression DFG: {} ops, depth {}, widest stage {}",
        stats.computes, stats.depth, stats.max_stage_width
    );

    // A mining core is a fully unrolled pipeline; model it with generous
    // partitioning and fusion on, constant across nodes, so the only
    // variable is the process node — exactly the Fig. 1 question.
    let asics = bitcoin::asic_miners();
    let base = &asics[0];
    let config_at = |node| DesignConfig::new(node, 4096, 5, true);
    let base_report = simulate(&dfg, &config_at(base.node))?;
    let per_silicon = |r: &accelerator_wall::accelsim::SimReport,
                       node: accelerator_wall::cmos::TechNode| {
        // Throughput per unit silicon area: ops/s times density.
        r.throughput() * node.density_rel()
    };
    let base_gain = per_silicon(&base_report, base.node);

    println!(
        "\n{:<26} {:>6} {:>16} {:>16} {:>8}",
        "miner", "node", "simulated(x)", "measured(x)", "ratio"
    );
    let mut worst_ratio: f64 = 1.0;
    for m in &asics {
        let r = simulate(&dfg, &config_at(m.node))?;
        let simulated = per_silicon(&r, m.node) / base_gain;
        let measured = m.ghash_per_s_per_mm2() / base.ghash_per_s_per_mm2();
        let ratio = measured / simulated;
        worst_ratio = worst_ratio.max(ratio.max(1.0 / ratio));
        println!(
            "{:<26} {:>6} {:>16.1} {:>16.1} {:>8.2}",
            m.name,
            m.node.to_string(),
            simulated,
            measured,
            ratio
        );
    }
    println!(
        "\nworst model-vs-data discrepancy: {worst_ratio:.1}x — the physical model \
         explains the ASIC race to within design-skill noise (CSR),"
    );
    println!("which is the paper's Fig. 1 claim, now cross-checked against the kernel itself.");
    Ok(())
}
