//! [`ArtifactCache`]: process-lifetime memoization of experiment outputs.
//!
//! The [`Ctx`](crate::cache::Ctx) memoizes the *inputs* experiments share
//! (corpus, fits, sweeps). This module memoizes the *outputs*: each
//! registry target's [`Artifact`] is computed at most once per cache
//! lifetime behind a per-experiment [`OnceLock`], so a long-lived process
//! (the `accelwall serve` HTTP server) extends the pipeline's
//! compute-once invariant from "per `all` run" to "per server lifetime".
//!
//! Requesting an artifact resolves its declared dependencies first, in
//! the same order [`Registry::schedule`] would, so a dependent target
//! requested cold still warms exactly the caches an `all` run would —
//! and a later request for the dependency itself is a cache hit.
//!
//! Like `Ctx`, the cache counts requests, hits, and computes
//! ([`CacheStats`]) so tests and the server's `/metrics` endpoint can
//! assert the at-most-once guarantee instead of trusting it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::cache::Ctx;
use crate::error::{Error, Result};
use crate::experiment::{Artifact, Experiment};
use crate::registry::Registry;

/// Memoizes every registry target's artifact for the life of the value.
///
/// Thread-safe: concurrent requests for the same target block on one
/// [`OnceLock`] rather than recomputing, exactly like the shared inputs
/// in [`Ctx`].
#[derive(Debug)]
pub struct ArtifactCache {
    registry: Registry,
    ctx: Ctx,
    slots: Vec<OnceLock<Result<Artifact>>>,
    requests: AtomicUsize,
    hits: AtomicUsize,
    computes: AtomicUsize,
}

/// A snapshot of the request/hit/compute counters of an [`ArtifactCache`].
///
/// The cache invariant is `computes <= ` number of registered targets
/// regardless of request counts or thread interleaving; `hits` counts
/// requests answered from an already-filled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Times [`ArtifactCache::get`] was called.
    pub requests: usize,
    /// Requests whose slot was already filled on arrival.
    pub hits: usize,
    /// Experiment runs actually executed (including dependency fills).
    pub computes: usize,
}

impl CacheStats {
    /// Requests that had to wait for (or trigger) a compute.
    pub fn misses(&self) -> usize {
        self.requests - self.hits
    }
}

impl ArtifactCache {
    /// Wraps a registry and a shared-input context in an artifact cache.
    pub fn new(registry: Registry, ctx: Ctx) -> ArtifactCache {
        let slots = registry.experiments().map(|_| OnceLock::new()).collect();
        ArtifactCache {
            registry,
            ctx,
            slots,
            requests: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            computes: AtomicUsize::new(0),
        }
    }

    /// The registry whose targets this cache serves.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shared-input context every cached run draws from.
    pub fn ctx(&self) -> &Ctx {
        &self.ctx
    }

    /// The memoized artifact for `id`, computing it (and its declared
    /// dependencies, dependencies first) on first request.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownExperiment`] for ids outside the registry (the
    /// caller gets the full roster, exactly like the CLI), a memoized
    /// [`Error::DependencyCycle`] if declarations deadlock, or the
    /// memoized failure of the experiment itself.
    pub fn get(&self, id: &str) -> Result<&Artifact> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let index = self.index_of(id)?;
        if let Some(cached) = self.slots[index].get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached.as_ref().map_err(Clone::clone);
        }
        for dep in self.closure(index)? {
            self.fill(dep);
        }
        self.fill(index).as_ref().map_err(Clone::clone)
    }

    /// Snapshot of the request/hit/compute counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            requests: self.requests.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            computes: self.computes.load(Ordering::Relaxed),
        }
    }

    fn index_of(&self, id: &str) -> Result<usize> {
        self.registry
            .experiments()
            .position(|e| e.id() == id)
            .ok_or_else(|| Error::UnknownExperiment {
                id: id.to_string(),
                known: self.registry.ids(),
            })
    }

    /// The dependency closure of `index` in dependencies-first order,
    /// excluding `index` itself.
    fn closure(&self, index: usize) -> Result<Vec<usize>> {
        let mut order = Vec::new();
        let mut state = vec![Visit::Unvisited; self.slots.len()];
        self.visit(index, &mut state, &mut order)?;
        order.pop();
        Ok(order)
    }

    fn visit(&self, index: usize, state: &mut [Visit], order: &mut Vec<usize>) -> Result<()> {
        match state[index] {
            Visit::Done => return Ok(()),
            Visit::InProgress => {
                return Err(Error::DependencyCycle {
                    ids: self.registry.ids(),
                })
            }
            Visit::Unvisited => state[index] = Visit::InProgress,
        }
        let exp: Vec<usize> = self
            .experiment(index)?
            .deps()
            .iter()
            .map(|d| self.index_of(d))
            .collect::<Result<_>>()?;
        for dep in exp {
            self.visit(dep, state, order)?;
        }
        state[index] = Visit::Done;
        order.push(index);
        Ok(())
    }

    fn fill(&self, index: usize) -> &Result<Artifact> {
        self.slots[index].get_or_init(|| {
            self.computes.fetch_add(1, Ordering::Relaxed);
            self.experiment(index)?.run(&self.ctx)
        })
    }

    /// The experiment at roster position `index`, as a typed error.
    ///
    /// `slots` and the roster share their length, so every index that
    /// reaches here is in range; keeping the lookup fallible means an
    /// inconsistency would surface as a memoized error, not a panic in
    /// whichever server worker happened to trip it.
    fn experiment(&self, index: usize) -> Result<&dyn Experiment> {
        self.registry
            .experiments()
            .nth(index)
            .ok_or_else(|| Error::UnknownExperiment {
                id: format!("roster index {index}"),
                known: self.registry.ids(),
            })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Visit {
    Unvisited,
    InProgress,
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelwall_accelsim::SweepSpace;

    fn cache() -> ArtifactCache {
        ArtifactCache::new(Registry::paper(), Ctx::with_space(SweepSpace::coarse()))
    }

    #[test]
    fn repeat_requests_compute_once_and_hit_after() {
        let cache = cache();
        let a = cache.get("fig3a").unwrap().clone();
        let b = cache.get("fig3a").unwrap().clone();
        assert_eq!(a, b);
        let s = cache.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.computes, 1);
    }

    #[test]
    fn dependent_target_fills_its_prerequisites_first() {
        let cache = cache();
        // fig14 declares fig13 as a dependency; a cold fig14 request must
        // leave fig13 warm so the follow-up request is a pure hit.
        cache.get("fig14").unwrap();
        let after_first = cache.stats();
        assert_eq!(after_first.computes, 2, "fig14 + its dep fig13");
        cache.get("fig13").unwrap();
        let s = cache.stats();
        assert_eq!(s.computes, 2, "fig13 was already computed");
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn unknown_id_carries_the_roster_and_counts_nothing() {
        let cache = cache();
        match cache.get("fig99") {
            Err(Error::UnknownExperiment { id, known }) => {
                assert_eq!(id, "fig99");
                assert_eq!(known, cache.registry().ids());
            }
            other => panic!("expected UnknownExperiment, got {other:?}"),
        }
        assert_eq!(cache.stats().computes, 0);
    }

    #[test]
    fn concurrent_requests_share_one_compute() {
        let cache = cache();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    cache.get("fig3a").unwrap();
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.computes, 1);
        assert_eq!(s.requests, 8);
        // The shared inputs stayed compute-once too.
        assert!(cache.ctx().counters().corpus_computes <= 1);
    }
}
