//! The workspace-wide error type.
//!
//! Every layer of the stack defines its own narrow error enum
//! ([`StatsError`], [`SimError`], [`DfgError`], ...). That is the right
//! shape inside a crate — callers can match on exactly the failures that
//! routine can produce — but the experiment pipeline runs *all* layers
//! behind one trait object, so it needs a single type that any layer's
//! failure converts into. [`Error`] is that type: one variant per layer,
//! `From` conversions so `?` works everywhere, plus pipeline-level
//! failures (unknown experiment id, unknown workload) and a [`Context`]
//! wrapper that threads "while doing what" breadcrumbs through
//! [`std::error::Error::source`].
//!
//! ```
//! use accelerator_wall::error::{Error, ResultExt};
//! use accelerator_wall::stats::PowerLaw;
//!
//! fn fit() -> Result<f64, Error> {
//!     let fit = PowerLaw::fit(&[1.0], &[2.0]).context("fitting Fig. 3b law")?;
//!     Ok(fit.exponent)
//! }
//! let err = fit().unwrap_err();
//! assert!(err.to_string().contains("fitting Fig. 3b law"));
//! assert!(std::error::Error::source(&err).is_some());
//! ```

use std::fmt;

use accelwall_accelsim::SimError;
use accelwall_csr::CsrError;
use accelwall_dfg::DfgError;
use accelwall_potential::PotentialError;
use accelwall_projection::ProjectionError;
use accelwall_stats::StatsError;
use accelwall_studies::StudyError;

use crate::report::ReportError;

/// Convenience alias used throughout the experiment pipeline.
pub type Result<T> = std::result::Result<T, Error>;

/// Any failure the reproduction stack can produce, unified.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Statistics layer (fits, Pareto frontiers).
    Stats(StatsError),
    /// Pre-RTL simulator layer (configs, sweeps, attribution).
    Sim(SimError),
    /// Case-study layer (datasets, CSR series).
    Study(StudyError),
    /// Wall-projection layer.
    Projection(ProjectionError),
    /// CMOS potential model layer.
    Potential(PotentialError),
    /// Chip Specialization Return layer.
    Csr(CsrError),
    /// Dataflow-graph layer.
    Dfg(DfgError),
    /// Report-assembly layer.
    Report(ReportError),
    /// A regeneration target id not present in the registry.
    UnknownExperiment {
        /// The id that was requested.
        id: String,
        /// Every id the registry does know, in registry order.
        known: Vec<&'static str>,
    },
    /// A shardable grid id not present in the grid registry
    /// ([`GridRegistry`](crate::grids::GridRegistry)).
    UnknownGrid {
        /// The grid id that was requested.
        id: String,
        /// Every grid the registry does know, in registry order.
        known: Vec<&'static str>,
    },
    /// A workload abbreviation not present in Table IV.
    UnknownWorkload {
        /// The name that was requested.
        name: String,
    },
    /// Experiment `deps()` declarations form a cycle, so no run order
    /// exists.
    DependencyCycle {
        /// The experiments stuck waiting on each other.
        ids: Vec<&'static str>,
    },
    /// An experiment thread panicked instead of returning a result.
    ExperimentPanicked {
        /// The experiment whose thread died.
        id: String,
    },
    /// An armed fault plan (`ACCELWALL_FAULTS`) injected a transient
    /// failure at a named site. Retryable by construction.
    FaultInjected {
        /// The injection site that fired.
        site: String,
    },
    /// A request gave up waiting for a compute still in flight
    /// ([`ArtifactCache::get_within`](crate::artifacts::ArtifactCache::get_within)).
    /// The compute itself keeps running and may settle the slot later.
    ComputeTimeout {
        /// The experiment still computing when the deadline expired.
        id: String,
        /// How long the request waited before giving up.
        waited_ms: u64,
    },
    /// A lower-level failure annotated with what the pipeline was doing.
    Context {
        /// What was being attempted.
        what: String,
        /// The underlying failure.
        source: Box<Error>,
    },
}

impl Error {
    /// Wraps the error with a "while doing what" breadcrumb.
    #[must_use]
    pub fn context(self, what: impl Into<String>) -> Error {
        Error::Context {
            what: what.into(),
            source: Box::new(self),
        }
    }

    /// The innermost error, unwrapping any [`Error::Context`] layers.
    pub fn root_cause(&self) -> &Error {
        match self {
            Error::Context { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Stats(e) => write!(f, "statistics failed: {e}"),
            Error::Sim(e) => write!(f, "simulator failed: {e}"),
            Error::Study(e) => write!(f, "case study failed: {e}"),
            Error::Projection(e) => write!(f, "wall projection failed: {e}"),
            Error::Potential(e) => write!(f, "potential model failed: {e}"),
            Error::Csr(e) => write!(f, "CSR computation failed: {e}"),
            Error::Dfg(e) => write!(f, "dataflow graph failed: {e}"),
            Error::Report(e) => write!(f, "report assembly failed: {e}"),
            Error::UnknownExperiment { id, known } => {
                write!(f, "unknown target {id:?}; known targets: ")?;
                for (i, k) in known.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    f.write_str(k)?;
                }
                Ok(())
            }
            Error::UnknownGrid { id, known } => {
                write!(f, "unknown grid {id:?}; known grids: ")?;
                for (i, k) in known.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    f.write_str(k)?;
                }
                Ok(())
            }
            Error::UnknownWorkload { name } => {
                write!(
                    f,
                    "unknown workload {name:?}; see `accelwall table4` for the roster"
                )
            }
            Error::DependencyCycle { ids } => {
                write!(f, "experiment dependency cycle among: {}", ids.join(" "))
            }
            Error::ExperimentPanicked { id } => write!(f, "experiment {id} panicked"),
            Error::FaultInjected { site } => {
                write!(
                    f,
                    "injected transient fault at site {site:?} (armed via ACCELWALL_FAULTS)"
                )
            }
            Error::ComputeTimeout { id, waited_ms } => {
                write!(
                    f,
                    "experiment {id} still computing after {waited_ms} ms (deadline exceeded; retry later)"
                )
            }
            Error::Context { what, source } => write!(f, "{what}: {source}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Stats(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Study(e) => Some(e),
            Error::Projection(e) => Some(e),
            Error::Potential(e) => Some(e),
            Error::Csr(e) => Some(e),
            Error::Dfg(e) => Some(e),
            Error::Report(e) => Some(e),
            Error::Context { source, .. } => Some(source.as_ref()),
            Error::UnknownExperiment { .. }
            | Error::UnknownGrid { .. }
            | Error::UnknownWorkload { .. }
            | Error::DependencyCycle { .. }
            | Error::ExperimentPanicked { .. }
            | Error::FaultInjected { .. }
            | Error::ComputeTimeout { .. } => None,
        }
    }
}

impl From<StatsError> for Error {
    fn from(e: StatsError) -> Error {
        Error::Stats(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Error {
        Error::Sim(e)
    }
}

impl From<StudyError> for Error {
    fn from(e: StudyError) -> Error {
        Error::Study(e)
    }
}

impl From<ProjectionError> for Error {
    fn from(e: ProjectionError) -> Error {
        Error::Projection(e)
    }
}

impl From<PotentialError> for Error {
    fn from(e: PotentialError) -> Error {
        Error::Potential(e)
    }
}

impl From<CsrError> for Error {
    fn from(e: CsrError) -> Error {
        Error::Csr(e)
    }
}

impl From<DfgError> for Error {
    fn from(e: DfgError) -> Error {
        Error::Dfg(e)
    }
}

impl From<ReportError> for Error {
    fn from(e: ReportError) -> Error {
        Error::Report(e)
    }
}

impl From<accelwall_faults::InjectedFault> for Error {
    fn from(e: accelwall_faults::InjectedFault) -> Error {
        Error::FaultInjected { site: e.site }
    }
}

/// Extension adding [`Error::context`] directly onto fallible results.
pub trait ResultExt<T> {
    /// Converts the error into [`Error`] and wraps it with a breadcrumb.
    fn context(self, what: impl Into<String>) -> Result<T>;
}

impl<T, E: Into<Error>> ResultExt<T> for std::result::Result<T, E> {
    fn context(self, what: impl Into<String>) -> Result<T> {
        self.map_err(|e| e.into().context(what))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_the_source_chain() {
        let stats = StatsError::NotEnoughData {
            provided: 1,
            required: 2,
        };
        let err: Error = stats.clone().into();
        assert_eq!(err, Error::Stats(stats));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn context_nests_and_root_cause_unwraps() {
        let base: Error = SimError::EmptyGraph.into();
        let wrapped = base
            .clone()
            .context("sweeping TRD")
            .context("running fig13");
        assert_eq!(wrapped.root_cause(), &base);
        let text = wrapped.to_string();
        assert!(text.contains("running fig13"));
        assert!(text.contains("sweeping TRD"));
        assert!(text.contains("no computation vertices"));
    }

    #[test]
    fn unknown_experiment_lists_known_ids() {
        let err = Error::UnknownExperiment {
            id: "fig99".into(),
            known: vec!["fig1", "fig2"],
        };
        let text = err.to_string();
        assert!(text.contains("unknown target \"fig99\""));
        assert!(text.contains("fig1 fig2"));
    }

    #[test]
    fn result_ext_converts_and_annotates() {
        let r: std::result::Result<(), DfgError> = Err(DfgError::NoOutputs);
        let err = r.context("building the TRD graph").unwrap_err();
        assert!(matches!(err.root_cause(), Error::Dfg(DfgError::NoOutputs)));
    }
}
