//! `lock-order` — the per-crate lock-acquisition graph is cycle-free,
//! and no lock is held across a fault-injection probe.
//!
//! Deadlock freedom in this workspace is an ordering argument: every
//! crate's locks form a hierarchy (pool queue before job state, cache
//! gate before nothing), and as long as every function acquires nested
//! locks in one global order per crate, no interleaving can deadlock.
//! This rule recovers that order statically: inside each function body
//! it tracks `.lock()` / `.read()` / `.write()` guards (and the
//! workspace's `lock(&mutex)` poison-riding helper), scoping let-bound
//! guards to their enclosing block (or an explicit `drop(guard)`) and
//! temporaries to their statement. Every acquisition made while another
//! guard is live contributes an edge `held → acquired` to the crate's
//! graph; a cycle is a potential deadlock and is reported once, at its
//! first edge site.
//!
//! It also flags a `probe(...)` fault site reached while any guard is
//! held: an injected `hang` there would pin the lock and stall every
//! contender, turning a contained fault into a stuck process.

use crate::ast::Span;
use crate::lexer::{Token, TokenKind};
use crate::parser::calls_in;
use crate::symbols::crate_of;
use crate::workspace::Workspace;
use crate::{Finding, Lint};
use std::collections::{BTreeMap, BTreeSet};

/// See the module docs.
pub struct LockOrder;

/// One `held → acquired` observation.
struct Edge {
    from: String,
    to: String,
    path: String,
    span: Span,
    func: String,
}

struct Guard {
    /// The lock identity (receiver field / helper argument).
    id: String,
    /// The binding name for let-bound guards (`drop(name)` releases).
    name: Option<String>,
    /// Brace depth at acquisition; a let-bound guard dies when the
    /// depth drops below it.
    depth: usize,
    /// For temporaries: the code-token index of the statement's `;`,
    /// past which the guard is gone.
    ends_at: Option<usize>,
}

impl Lint for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "per-crate lock acquisition order is cycle-free and no lock is held \
         across a fault-injection probe"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        let mut edges: BTreeMap<String, Vec<Edge>> = BTreeMap::new();

        for file in &ws.files {
            if file.test_file {
                continue;
            }
            let code = file.code_tokens();
            let krate = crate_of(&file.rel_path);
            for f in file.parsed.fns_with_bodies() {
                let (open, close) = f.body.unwrap_or((0, 0));
                scan_fn(
                    &code,
                    open,
                    close,
                    &f.name,
                    file,
                    edges.entry(krate.clone()).or_default(),
                    &mut findings,
                );
            }
        }

        // Cycle detection per crate: report each strongly connected
        // knot once, anchored at its first edge site.
        for (krate, crate_edges) in &edges {
            findings.extend(cycle_findings(krate, crate_edges));
        }
        findings
    }
}

/// Walks one function body, tracking live guards and emitting
/// nested-acquisition edges plus probe-under-lock findings.
fn scan_fn(
    code: &[&Token],
    open: usize,
    close: usize,
    func: &str,
    file: &crate::source::SourceFile,
    edges: &mut Vec<Edge>,
    findings: &mut Vec<Finding>,
) {
    let calls = calls_in(code, open, close);
    let mut call_at: BTreeMap<usize, &crate::ast::Call> = BTreeMap::new();
    for c in &calls {
        call_at.insert(c.open, c);
    }

    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut current_let: Option<String> = None;
    let mut i = open + 1;
    while i < close {
        let t = code[i];
        if t.is_punct("{") {
            depth += 1;
            current_let = None;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.name.is_none() || g.depth <= depth);
        } else if t.is_punct(";") {
            current_let = None;
            guards.retain(|g| g.ends_at.is_none_or(|e| e > i));
        } else if t.is_ident("let") {
            // `let [mut] name =` — tuple/struct patterns yield no name.
            let mut j = i + 1;
            if code.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            current_let = code
                .get(j)
                .filter(|n| n.kind == TokenKind::Ident)
                .map(|n| n.text.clone());
        } else if t.is_ident("drop")
            && code.get(i + 1).is_some_and(|n| n.is_punct("("))
            && code.get(i + 3).is_some_and(|n| n.is_punct(")"))
        {
            if let Some(name) = code.get(i + 2).filter(|n| n.kind == TokenKind::Ident) {
                guards.retain(|g| g.name.as_deref() != Some(name.text.as_str()));
            }
        }
        if let Some(call) = call_at.get(&(i + 1)).filter(|c| c.span.line == t.line) {
            if let Some(id) = acquisition_id(code, call) {
                if !file.is_test_line(call.span.line) {
                    for g in &guards {
                        edges.push(Edge {
                            from: g.id.clone(),
                            to: id.clone(),
                            path: file.rel_path.clone(),
                            span: call.span,
                            func: func.to_string(),
                        });
                    }
                }
                guards.push(Guard {
                    id,
                    name: current_let.clone(),
                    depth,
                    ends_at: if current_let.is_some() {
                        None
                    } else {
                        Some(statement_end(code, call.close, close))
                    },
                });
            } else if call.method == "probe"
                && !guards.is_empty()
                && !file.is_test_line(call.span.line)
            {
                let held: Vec<&str> = guards.iter().map(|g| g.id.as_str()).collect();
                findings.push(Finding {
                    rule: "lock-order",
                    path: file.rel_path.clone(),
                    line: call.span.line,
                    col: call.span.col,
                    message: format!(
                        "fault probe reached while holding lock(s) `{}`: an injected \
                         hang here would pin the lock and stall every contender; \
                         release before probing or justify with \
                         `// lint:allow(lock-order): <why>`",
                        held.join("`, `")
                    ),
                });
            }
        }
        i += 1;
    }
}

/// If `call` acquires a lock, the identity of the lock it acquires.
///
/// Method forms: `recv.lock()`, and zero-argument `recv.read()` /
/// `recv.write()` (the argument requirement keeps `io::Read::read`
/// lookalikes out). Helper form: the workspace's free `lock(&mutex)`,
/// whose identity is the argument's final field segment.
fn acquisition_id(code: &[&Token], call: &crate::ast::Call) -> Option<String> {
    let strip = |s: &str| s.trim_end_matches("()").trim_end_matches("[]").to_string();
    if call.is_method {
        match call.method.as_str() {
            "lock" => return call.chain.last().map(|s| strip(s)),
            "read" | "write" if call.args.is_empty() => {
                return call.chain.last().map(|s| strip(s));
            }
            _ => return None,
        }
    }
    if call.method == "lock" && call.args.len() == 1 {
        let (start, end) = call.args[0];
        let last_ident = (start..end.min(code.len()))
            .rev()
            .map(|j| code[j])
            .find(|t| t.kind == TokenKind::Ident)?;
        return Some(last_ident.text.clone());
    }
    None
}

/// The code-token index of the `;` ending the statement containing a
/// call that closed at `from` (brackets nest), capped at `close`.
fn statement_end(code: &[&Token], from: usize, close: usize) -> usize {
    let mut nest = 0usize;
    let mut i = from + 1;
    while i < close {
        let t = code[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            nest += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            if nest == 0 {
                return i;
            }
            nest -= 1;
        } else if nest == 0 && t.is_punct(";") {
            return i;
        }
        i += 1;
    }
    close
}

/// Finds strongly connected knots in one crate's edge list and reports
/// each once, at the lexicographically first member edge.
fn cycle_findings(krate: &str, edges: &[Edge]) -> Vec<Finding> {
    let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adjacency.entry(&e.from).or_default().insert(&e.to);
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = adjacency.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };

    // An edge is "cyclic" when its target reaches back to its source
    // (self-edges included). Group cyclic edges by the knot (the sorted
    // set of nodes involved) and report one finding per knot.
    let mut knots: BTreeMap<Vec<String>, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        if e.from == e.to || reaches(&e.to, &e.from) {
            let mut members: BTreeSet<String> = [e.from.clone(), e.to.clone()].into();
            // Pull in every node on some return path for the label.
            for other in edges {
                if reaches(&e.to, &other.from)
                    && reaches(&other.to, &e.from)
                    && (other.from != other.to || other.from == e.from)
                {
                    members.insert(other.from.clone());
                    members.insert(other.to.clone());
                }
            }
            knots
                .entry(members.into_iter().collect())
                .or_default()
                .push(e);
        }
    }

    let mut findings = Vec::new();
    for (members, mut knot_edges) in knots {
        knot_edges.sort_by(|a, b| {
            (a.path.as_str(), a.span.line, a.span.col).cmp(&(
                b.path.as_str(),
                b.span.line,
                b.span.col,
            ))
        });
        let first = knot_edges[0];
        let order = knot_edges
            .iter()
            .map(|e| format!("{} → {} ({})", e.from, e.to, e.func))
            .collect::<Vec<_>>()
            .join(", ");
        let message = if members.len() == 1 {
            format!(
                "lock `{}` re-acquired while already held in crate `{krate}` \
                 ({}): a second acquisition on the same thread deadlocks",
                members[0], first.func
            )
        } else {
            format!(
                "lock-order cycle among `{}` in crate `{krate}`: {order}; pick one \
                 acquisition order and make every function follow it",
                members.join("`, `")
            )
        };
        findings.push(Finding {
            rule: "lock-order",
            path: first.path.clone(),
            line: first.span.line,
            col: first.span.col,
            message,
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::workspace;

    fn check_at(path: &str, src: &str) -> Vec<Finding> {
        LockOrder.check(&workspace(&[(path, src)]))
    }

    #[test]
    fn opposite_nesting_orders_are_a_cycle() {
        let src = "use std::sync::Mutex;\n\
            pub fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                let ga = a.lock().unwrap();\n\
                let gb = b.lock().unwrap();\n\
                let _ = (*ga, *gb);\n\
            }\n\
            pub fn ba(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                let gb = b.lock().unwrap();\n\
                let ga = a.lock().unwrap();\n\
                let _ = (*ga, *gb);\n\
            }\n";
        let found = check_at("crates/x/src/lib.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("cycle"));
        assert!(found[0].message.contains('a'));
    }

    #[test]
    fn consistent_nesting_is_clean() {
        let src = "use std::sync::Mutex;\n\
            pub fn one(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                let ga = a.lock().unwrap();\n\
                let gb = b.lock().unwrap();\n\
                let _ = (*ga, *gb);\n\
            }\n\
            pub fn two(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                let ga = a.lock().unwrap();\n\
                let gb = b.lock().unwrap();\n\
                let _ = (*ga, *gb);\n\
            }\n";
        assert!(check_at("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn sequential_scopes_do_not_overlap() {
        // Same-loop reacquisition in disjoint block scopes: no edge.
        let src = "use std::sync::Mutex;\n\
            pub fn seq(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                { let ga = a.lock().unwrap(); let _ = *ga; }\n\
                { let gb = b.lock().unwrap(); let _ = *gb; }\n\
            }\n\
            pub fn rev(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                { let gb = b.lock().unwrap(); let _ = *gb; }\n\
                { let ga = a.lock().unwrap(); let _ = *ga; }\n\
            }\n";
        assert!(check_at("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "use std::sync::Mutex;\n\
            pub fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                let ga = a.lock().unwrap();\n\
                drop(ga);\n\
                let gb = b.lock().unwrap();\n\
                let _ = *gb;\n\
            }\n\
            pub fn g(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                let gb = b.lock().unwrap();\n\
                drop(gb);\n\
                let ga = a.lock().unwrap();\n\
                let _ = *ga;\n\
            }\n";
        assert!(check_at("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn helper_lock_and_self_reacquire_are_detected() {
        let src = "use std::sync::{Mutex, MutexGuard, PoisonError};\n\
            fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n\
                m.lock().unwrap_or_else(PoisonError::into_inner)\n\
            }\n\
            pub struct P { queue: Mutex<Vec<u32>> }\n\
            pub fn f(p: &P) {\n\
                let q = lock(&p.queue);\n\
                let q2 = lock(&p.queue);\n\
                let _ = (q.len(), q2.len());\n\
            }\n";
        let found = check_at("crates/x/src/lib.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("re-acquired"));
    }

    #[test]
    fn probe_under_lock_is_flagged() {
        let src = "use std::sync::Mutex;\n\
            pub fn f(m: &Mutex<u32>) {\n\
                let g = m.lock().unwrap();\n\
                accelwall_faults::probe(\"site\").ok();\n\
                let _ = *g;\n\
            }\n";
        let found = check_at("crates/x/src/lib.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("probe"));
    }

    #[test]
    fn probe_after_scope_close_is_clean() {
        let src = "use std::sync::Mutex;\n\
            pub fn f(m: &Mutex<u32>) {\n\
                { let g = m.lock().unwrap(); let _ = *g; }\n\
                accelwall_faults::probe(\"site\").ok();\n\
            }\n";
        assert!(check_at("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn rwlock_read_write_nesting_counts() {
        let src = "use std::sync::RwLock;\n\
            pub fn f(a: &RwLock<u32>, b: &RwLock<u32>) {\n\
                let ga = a.read().unwrap();\n\
                let gb = b.write().unwrap();\n\
                let _ = (*ga, *gb);\n\
            }\n\
            pub fn g(a: &RwLock<u32>, b: &RwLock<u32>) {\n\
                let gb = b.read().unwrap();\n\
                let ga = a.write().unwrap();\n\
                let _ = (*ga, *gb);\n\
            }\n";
        assert_eq!(check_at("crates/x/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn io_read_with_buffer_is_not_a_lock() {
        let src = "use std::io::Read;\n\
            pub fn f(mut s: impl Read, m: &std::sync::Mutex<u32>) {\n\
                let g = m.lock().unwrap();\n\
                let mut buf = [0u8; 4];\n\
                let _ = s.read(&mut buf);\n\
                let _ = *g;\n\
            }\n";
        assert!(check_at("crates/x/src/lib.rs", src).is_empty());
    }
}
