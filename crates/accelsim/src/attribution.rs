//! Fig. 14: decomposing optimal-point gains into their sources.
//!
//! For each workload the paper finds the design-space optimum, then
//! attributes the gain over the unoptimized 45 nm baseline to four
//! sources: partitioning, heterogeneity, simplification, and CMOS power
//! saving. We measure the decomposition by walking a fixed toggle order —
//! baseline → +partitioning → +heterogeneity → +simplification → +CMOS —
//! and taking each step's multiplicative gain; contributions are reported
//! as shares of the total log-space gain. The benchmark harness ships an
//! ablation comparing alternative orders (see DESIGN.md).
//!
//! The figure's CSR column follows the paper's argument that partitioning
//! (more parallel transistors) and CMOS saving are *transistor-driven*:
//! `CSR = total gain / (partitioning gain × CMOS gain)`, i.e. the product
//! of the heterogeneity and simplification factors.

use crate::sim::{simulate_lowered, DesignConfig, SimReport};
use crate::sweep::{best_efficiency, best_performance, run_sweep_lowered, SweepPoint, SweepSpace};
use crate::{Result, SimError};
use accelwall_cmos::TechNode;
use accelwall_dfg::{Dfg, Program};
use std::fmt;
use std::sync::Arc;

/// Which target function the optimum maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Throughput (operations per second) — Fig. 14a.
    Performance,
    /// Energy efficiency (operations per joule) — Fig. 14b.
    EnergyEfficiency,
}

impl Metric {
    fn of(self, report: &SimReport) -> f64 {
        match self {
            Metric::Performance => report.throughput(),
            Metric::EnergyEfficiency => report.energy_efficiency(),
        }
    }
}

/// The four gain sources of Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GainSource {
    /// Parallel lanes and ports (transistor-driven).
    Partitioning,
    /// Operator fusion and algorithm-specific units.
    Heterogeneity,
    /// Datapath narrowing.
    Simplification,
    /// More energy-efficient CMOS (transistor-driven).
    CmosSaving,
}

impl GainSource {
    /// All sources in toggle order.
    pub fn all() -> &'static [GainSource] {
        const ALL: [GainSource; 4] = [
            GainSource::Partitioning,
            GainSource::Heterogeneity,
            GainSource::Simplification,
            GainSource::CmosSaving,
        ];
        &ALL
    }
}

impl fmt::Display for GainSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GainSource::Partitioning => "Partitioning",
            GainSource::Heterogeneity => "Heterogeneity",
            GainSource::Simplification => "Simplification",
            GainSource::CmosSaving => "CMOS Saving",
        };
        f.write_str(s)
    }
}

/// One source's share of a workload's optimal gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Contribution {
    /// The gain source.
    pub source: GainSource,
    /// Multiplicative gain factor of this toggle step.
    pub factor: f64,
    /// Share of the total log-space gain, in percent (can be negative if
    /// a step moves against the metric before a later step redeems it).
    pub percent: f64,
}

/// The full Fig. 14 row for one workload and metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Workload (graph) name.
    pub workload: String,
    /// Metric the optimum maximizes.
    pub metric: Metric,
    /// The winning configuration.
    pub best_config: DesignConfig,
    /// Total gain over the unoptimized 45 nm baseline.
    pub total_gain: f64,
    /// Ordered per-source contributions.
    pub contributions: Vec<Contribution>,
    /// Chip Specialization Return: the non-transistor-driven share
    /// (heterogeneity × simplification factors).
    pub csr: f64,
}

/// Computes the Fig. 14 attribution of `dfg` under `metric`, sweeping
/// `space` for the optimum. Lowers once; the sweep and the toggle chain
/// share the program.
///
/// # Errors
///
/// Propagates simulation errors (invalid space, empty graph).
pub fn attribute_gains(dfg: &Dfg, metric: Metric, space: &SweepSpace) -> Result<Attribution> {
    let program = Arc::new(dfg.lower());
    let points = run_sweep_lowered(&program, space)?;
    attribute_gains_lowered(&program, metric, &points)
}

/// Computes the Fig. 14 attribution from an already-run sweep over `dfg`.
/// Front-end convenience over [`attribute_gains_lowered`] that lowers per
/// call; callers that already hold the program should use the lowered
/// entry point directly.
///
/// # Errors
///
/// Same as [`attribute_gains_lowered`].
pub fn attribute_gains_with_points(
    dfg: &Dfg,
    metric: Metric,
    points: &[SweepPoint],
) -> Result<Attribution> {
    attribute_gains_lowered(&dfg.lower(), metric, points)
}

/// Computes the Fig. 14 attribution from an already-run sweep over a
/// lowered `program`.
///
/// This is the reuse path: callers that sweep once and derive several
/// analyses from the same points (the Fig. 13 scatter, both Fig. 14
/// metrics) avoid re-simulating the whole Table III grid — and re-lowering
/// the graph — per call. `points` must come from sweeping `program`
/// itself; the toggle chain re-prices it at the optimum found in `points`.
///
/// # Errors
///
/// Returns [`SimError::EmptySweep`] when `points` is empty, and
/// propagates simulation errors from the toggle chain.
pub fn attribute_gains_lowered(
    program: &Program,
    metric: Metric,
    points: &[SweepPoint],
) -> Result<Attribution> {
    let best = match metric {
        Metric::Performance => best_performance(points),
        Metric::EnergyEfficiency => best_efficiency(points),
    }
    .ok_or(SimError::EmptySweep)?;
    let target = best.config;

    // Toggle chain: baseline -> +P -> +het -> +simplification -> +CMOS.
    let steps = [
        DesignConfig::baseline(),
        DesignConfig::new(TechNode::N45, target.partition_factor, 1, false),
        DesignConfig::new(
            TechNode::N45,
            target.partition_factor,
            1,
            target.heterogeneity,
        ),
        DesignConfig::new(
            TechNode::N45,
            target.partition_factor,
            target.simplification_degree,
            target.heterogeneity,
        ),
        target,
    ];
    let values: Vec<f64> = steps
        .iter()
        .map(|c| simulate_lowered(program, c).map(|r| metric.of(&r)))
        .collect::<Result<_>>()?;

    let total_gain = values[4] / values[0];
    let log_total = total_gain.ln();
    let contributions: Vec<Contribution> = GainSource::all()
        .iter()
        .enumerate()
        .map(|(i, &source)| {
            let factor = values[i + 1] / values[i];
            let percent = if log_total.abs() < 1e-12 {
                0.0
            } else {
                factor.ln() / log_total * 100.0
            };
            Contribution {
                source,
                factor,
                percent,
            }
        })
        .collect();

    let csr = contributions
        .iter()
        .filter(|c| {
            matches!(
                c.source,
                GainSource::Heterogeneity | GainSource::Simplification
            )
        })
        .map(|c| c.factor)
        .product();

    Ok(Attribution {
        workload: program.name().to_string(),
        metric,
        best_config: target,
        total_gain,
        contributions,
        csr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_sweep;
    use accelwall_workloads::Workload;

    fn attr(w: Workload, metric: Metric) -> Attribution {
        attribute_gains(&w.default_instance(), metric, &SweepSpace::table3()).unwrap()
    }

    #[test]
    fn stencil_performance_attribution() {
        let a = attr(Workload::S3d, Metric::Performance);
        assert!(a.total_gain > 10.0, "total {:.1}", a.total_gain);
        // Partitioning is the primary performance source (paper finding).
        let part = a.contributions[0];
        assert_eq!(part.source, GainSource::Partitioning);
        for c in &a.contributions[1..] {
            assert!(
                part.percent >= c.percent,
                "partitioning should dominate perf: {:?}",
                a.contributions
            );
        }
    }

    #[test]
    fn stencil_efficiency_attribution() {
        let a = attr(Workload::S3d, Metric::EnergyEfficiency);
        assert!(a.total_gain > 5.0);
        // CMOS saving is the dominating efficiency factor (paper finding).
        let cmos = a
            .contributions
            .iter()
            .find(|c| c.source == GainSource::CmosSaving)
            .unwrap();
        assert!(
            cmos.percent >= 25.0,
            "CMOS saving should be a leading factor: {:?}",
            a.contributions
        );
    }

    #[test]
    fn csr_is_low_for_both_metrics() {
        // Paper: "for both performance and energy efficiency, CSR is low."
        for metric in [Metric::Performance, Metric::EnergyEfficiency] {
            let a = attr(Workload::S3d, metric);
            assert!(
                a.csr < 0.25 * a.total_gain,
                "{metric:?}: CSR {:.2} vs total {:.2}",
                a.csr,
                a.total_gain
            );
        }
    }

    #[test]
    fn percents_sum_to_one_hundred() {
        let a = attr(Workload::Gmm, Metric::Performance);
        let sum: f64 = a.contributions.iter().map(|c| c.percent).sum();
        assert!((sum - 100.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn factors_compose_to_total() {
        let a = attr(Workload::Trd, Metric::EnergyEfficiency);
        let product: f64 = a.contributions.iter().map(|c| c.factor).product();
        assert!((product / a.total_gain - 1.0).abs() < 1e-9);
    }

    #[test]
    fn with_points_matches_the_sweeping_path() {
        let dfg = Workload::Red.default_instance();
        let space = SweepSpace::coarse();
        let points = run_sweep(&dfg, &space).unwrap();
        let direct = attribute_gains(&dfg, Metric::Performance, &space).unwrap();
        let reused = attribute_gains_with_points(&dfg, Metric::Performance, &points).unwrap();
        assert_eq!(direct, reused);
    }

    #[test]
    fn empty_sweep_is_a_typed_error() {
        let dfg = Workload::Red.default_instance();
        let err = attribute_gains_with_points(&dfg, Metric::Performance, &[]).unwrap_err();
        assert_eq!(err, SimError::EmptySweep);
    }

    #[test]
    fn csr_equals_non_transistor_factors() {
        let a = attr(Workload::Red, Metric::Performance);
        let het = a.contributions[1].factor;
        let simp = a.contributions[2].factor;
        assert!((a.csr - het * simp).abs() < 1e-12);
    }
}
