//! End-to-end tests of the `accelwall` regeneration binary: every target
//! must exit cleanly and print its figure/table header, `--json` must
//! emit valid JSON with the documented keys, the `list` output must match
//! the registry exactly, and a full `all` run must compute every shared
//! input exactly once.

use accelerator_wall::json::Value;
use accelerator_wall::prelude::*;
use std::process::Command;

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn run_json(args: &[&str]) -> Value {
    let mut args = args.to_vec();
    args.push("--json");
    let (ok, stdout) = run(&args);
    assert!(ok, "{args:?} failed");
    Value::parse(&stdout).unwrap_or_else(|e| panic!("{args:?}: {e}\n{stdout}"))
}

#[test]
fn every_target_succeeds_with_its_header() {
    let expectations = [
        ("fig1", "Fig. 1"),
        ("fig2", "Fig. 2"),
        ("fig3a", "Fig. 3a"),
        ("fig3b", "Fig. 3b"),
        ("fig3c", "Fig. 3c"),
        ("fig3d", "Fig. 3d"),
        ("fig4", "Fig. 4a"),
        ("fig5", "Fig. 5"),
        ("fig6", "Fig. 6"),
        ("fig7", "Fig. 7"),
        ("fig8", "Fig. 8"),
        ("fig9", "Fig. 9a"),
        ("fig11", "Fig. 11"),
        ("fig12", "Fig. 12"),
        ("table1", "Table I"),
        ("table2", "Table II"),
        ("table3", "Table III"),
        ("table4", "Table IV"),
        ("table5", "Table V"),
        ("fig15", "Fig. 15"),
        ("fig16", "Fig. 16"),
        ("wall", "Accelerator Wall"),
        ("beyond", "Beyond the wall"),
        ("insights", "Section IV-E"),
        ("dark", "Dark-silicon"),
        ("sensitivity", "sensitivity"),
        ("roadmap", "roadmap"),
        ("report", "Domain reports"),
    ];
    for (target, header) in expectations {
        let (ok, stdout) = run(&[target]);
        assert!(ok, "{target} failed");
        assert!(
            stdout.contains(header),
            "{target}: missing {header:?} in output:\n{stdout}"
        );
    }
}

#[test]
fn json_mode_emits_valid_json() {
    for target in ["fig1", "fig3d", "fig15", "beyond", "sensitivity"] {
        let parsed = run_json(&[target]);
        assert!(
            parsed.is_array() || parsed.is_object(),
            "{target}: unexpected JSON shape"
        );
    }
}

#[test]
fn fig3b_json_has_the_fit_keys() {
    let v = run_json(&["fig3b"]);
    assert!(
        v.get("corpus_records")
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
            > 0.0
    );
    for side in ["fitted", "paper"] {
        let fit = v.get(side).unwrap_or_else(|| panic!("missing {side}"));
        assert!(fit.get("coefficient").and_then(Value::as_f64).is_some());
        assert!(fit.get("exponent").and_then(Value::as_f64).is_some());
    }
}

#[test]
fn fig14_json_attributes_every_workload() {
    let v = run_json(&["fig14"]);
    let rows = v.as_array().expect("fig14 emits an array");
    assert_eq!(rows.len(), Workload::all().len());
    for row in rows {
        assert!(row.get("workload").and_then(Value::as_str).is_some());
        for metric in ["performance", "efficiency"] {
            let a = row
                .get(metric)
                .unwrap_or_else(|| panic!("missing {metric}"));
            assert!(a.get("total_gain").and_then(Value::as_f64).unwrap_or(0.0) >= 1.0);
            assert!(a.get("csr").and_then(Value::as_f64).is_some());
            assert!(!a
                .get("contributions")
                .and_then(Value::as_array)
                .expect("contributions")
                .is_empty());
        }
    }
}

#[test]
fn table5_json_lists_every_domain_with_limits() {
    let v = run_json(&["table5"]);
    let rows = v.as_array().expect("table5 emits an array");
    assert_eq!(rows.len(), Domain::all().len());
    for row in rows {
        for key in ["domain", "platform"] {
            assert!(
                row.get(key).and_then(Value::as_str).is_some(),
                "missing {key}"
            );
        }
        for key in ["min_die_mm2", "max_die_mm2", "tdp_w", "freq_mhz"] {
            assert!(
                row.get(key).and_then(Value::as_f64).unwrap_or(0.0) > 0.0,
                "missing {key}"
            );
        }
    }
}

#[test]
fn wall_json_reports_headroom_per_domain() {
    let v = run_json(&["wall"]);
    let rows = v.as_array().expect("wall emits an array");
    assert_eq!(rows.len(), Domain::all().len());
    for row in rows {
        assert!(row.get("domain").and_then(Value::as_str).is_some());
        for side in ["performance_headroom", "efficiency_headroom"] {
            let h = row.get(side).unwrap_or_else(|| panic!("missing {side}"));
            assert!(h.get("log").and_then(Value::as_f64).is_some());
            assert!(h.get("linear").and_then(Value::as_f64).is_some());
        }
    }
}

#[test]
fn all_json_is_one_document_keyed_by_experiment_id() {
    let v = run_json(&["all"]);
    let doc = v.as_object().expect("all --json emits one object");
    let ids = Registry::paper().ids();
    assert_eq!(
        doc.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
        ids,
        "document keys must be the registry ids in registry order"
    );
    for (id, artifact) in doc {
        assert!(artifact.get("error").is_none(), "{id} reported an error");
    }
}

#[test]
fn dot_target_emits_graphviz() {
    let (ok, stdout) = run(&["dot", "TRD"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.trim_end().ends_with('}'));
    // Unknown workloads fail cleanly.
    let out = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args(["dot", "NOPE"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn unknown_target_fails_with_the_registry_roster() {
    let out = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args(["fig99"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown target"));
    // The hint names every real target, straight from the registry.
    for id in Registry::paper().ids() {
        assert!(stderr.contains(id), "roster hint missing {id}");
    }
}

#[test]
fn list_matches_the_registry_exactly() {
    let (ok, stdout) = run(&["list"]);
    assert!(ok);
    let listed: Vec<&str> = stdout
        .lines()
        .skip(1) // "regeneration targets:" banner
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    let mut expected = Registry::paper().ids();
    expected.push("all");
    expected.push("query");
    expected.push("serve");
    expected.push("work");
    expected.push("lint");
    assert_eq!(listed, expected, "`list` must mirror the registry");
}

#[test]
fn list_json_emits_the_shared_roster_document() {
    let v = run_json(&["list"]);
    let rows = v.as_array().expect("list --json emits an array");
    let registry = Registry::paper();
    assert_eq!(rows.len(), registry.len());
    for (row, e) in rows.iter().zip(registry.experiments()) {
        assert_eq!(row.get("id").and_then(Value::as_str), Some(e.id()));
        assert_eq!(
            row.get("description").and_then(Value::as_str),
            Some(e.description())
        );
        assert!(row.get("deps").and_then(Value::as_array).is_some());
    }
}

#[test]
fn unknown_flags_fail_with_the_flag_roster() {
    // The regression this pins: `--jsno` used to be silently ignored and
    // the target ran in text mode as if nothing was wrong.
    let out = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args(["fig3b", "--jsno"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "--jsno must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag \"--jsno\""));
    for flag in ["--json", "--addr", "--workers"] {
        assert!(stderr.contains(flag), "flag roster missing {flag}");
    }
}

#[test]
fn flags_are_validated_against_the_command() {
    for (args, expect) in [
        (&["fig3b", "--workers", "4"][..], "only apply"),
        (&["serve", "--json"][..], "does not apply"),
        (&["serve", "--workers", "0"][..], "at least 1"),
        (&["serve", "--workers", "many"][..], "positive integer"),
        (&["serve", "--addr"][..], "needs a value"),
        (&["fig3b", "extra-operand"][..], "takes no operand"),
        (&["fig3b", "--threads", "4"][..], "only applies"),
        (&["all", "--threads", "0"][..], "at least 1"),
        (&["all", "--threads", "many"][..], "positive integer"),
        (&["serve", "--threads"][..], "needs a value"),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_accelwall"))
            .args(args)
            .output()
            .expect("binary runs");
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(expect), "{args:?}: stderr was\n{stderr}");
    }
}

#[test]
fn all_computes_each_shared_input_exactly_once() {
    // In-process replica of `accelwall all` on a coarse sweep space: the
    // memoizing Ctx must build the corpus, the density fit, the potential
    // model, and each workload's sweep exactly once, no matter how many
    // experiments request them concurrently.
    let ctx = Ctx::with_space(SweepSpace::coarse());
    let results = Registry::paper()
        .run_all(&ctx)
        .expect("scheduling succeeds");
    for (id, r) in &results {
        assert!(r.is_ok(), "{id} failed: {:?}", r.as_ref().err());
    }
    let c = ctx.counters();
    assert_eq!(c.corpus_computes, 1, "corpus generated more than once");
    assert_eq!(c.fit_computes, 1, "density fit computed more than once");
    assert_eq!(c.model_computes, 1, "potential model built more than once");
    assert_eq!(
        c.sweep_computes,
        Workload::all().len(),
        "some workload sweep ran more than once"
    );
    // The whole point of the cache: demand exceeds computation.
    assert!(c.corpus_requests > c.corpus_computes);
    assert!(c.sweep_requests > c.sweep_computes);
}
