//! The four empirical case studies of Section IV.
//!
//! The paper characterizes Chip Specialization Return across four
//! accelerator domains, each probing a different layer of the
//! specialization stack:
//!
//! * [`video`] — ASIC video decoders (Fig. 4): the entire stack,
//! * [`gpu`] — GPU graphics rendering (Figs. 5–7): programming framework
//!   and chip engineering,
//! * [`fpga`] — FPGA convolutional networks (Fig. 8): the algorithm layer,
//! * [`bitcoin`] — Bitcoin miners across CPU/GPU/FPGA/ASIC (Figs. 1, 9):
//!   the chip-platform layer.
//!
//! The original datasets are scrapes of published papers, vendor
//! datasheets, benchmark databases, and mining forums. Each module embeds a
//! curated reconstruction: chips carry their real public specifications
//! where those are documented (nodes, dies, TDPs, frequencies, hash rates),
//! and domain metrics are calibrated so the paper's published relative
//! factors are reproduced (see DESIGN.md's substitution table). Every
//! module exposes its dataset, its CSR analysis, and tests pinning the
//! paper's headline numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitcoin;
pub mod fpga;
pub mod gpu;
pub mod insights;
pub mod video;

use accelwall_csr::CsrError;
use std::error::Error;
use std::fmt;

/// Errors produced by the study analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum StudyError {
    /// A CSR computation failed (invalid gain values).
    Csr(CsrError),
    /// A dataset row violated a structural invariant.
    BadRow {
        /// Which study dataset the row belongs to.
        study: &'static str,
        /// Row label.
        row: String,
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Csr(e) => write!(f, "CSR computation failed: {e}"),
            StudyError::BadRow { study, row, what } => {
                write!(f, "bad {study} dataset row {row:?}: {what}")
            }
        }
    }
}

impl Error for StudyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StudyError::Csr(e) => Some(e),
            StudyError::BadRow { .. } => None,
        }
    }
}

impl From<CsrError> for StudyError {
    fn from(e: CsrError) -> Self {
        StudyError::Csr(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StudyError>;
