//! The chip-specialization concept taxonomy (Section V-A, Table I).
//!
//! The paper identifies three concepts — simplification, partitioning, and
//! heterogeneity — each applicable to each of the three processing
//! components — memory, communication, and computation — and illustrates
//! all nine cells on Google's TPU (Fig. 10 / Table I).

use std::fmt;

/// The three chip-specialization concepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecializationConcept {
    /// Reducing structures to compute-essential complexity (narrow
    /// datapaths, no OoO control, integer-only units).
    Simplification,
    /// Replicating paths that operate independently on data sub-portions
    /// (SIMD, threading, banking, systolic arrays).
    Partitioning,
    /// Tailoring distinct paths to distinct functionality (fused units,
    /// algorithm-specific function units, asymmetric hierarchies).
    Heterogeneity,
}

impl SpecializationConcept {
    /// All concepts in the paper's column order.
    pub fn all() -> &'static [SpecializationConcept] {
        const ALL: [SpecializationConcept; 3] = [
            SpecializationConcept::Simplification,
            SpecializationConcept::Partitioning,
            SpecializationConcept::Heterogeneity,
        ];
        &ALL
    }
}

impl fmt::Display for SpecializationConcept {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecializationConcept::Simplification => "Simplification",
            SpecializationConcept::Partitioning => "Partitioning",
            SpecializationConcept::Heterogeneity => "Heterogeneity",
        };
        f.write_str(s)
    }
}

/// The three processing components specialization acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Storage hierarchy and access paths.
    Memory,
    /// On-chip interconnect and chip I/O.
    Communication,
    /// Functional units and datapaths.
    Computation,
}

impl Component {
    /// All components in the paper's row order.
    pub fn all() -> &'static [Component] {
        const ALL: [Component; 3] = [
            Component::Memory,
            Component::Communication,
            Component::Computation,
        ];
        &ALL
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::Memory => "Memory",
            Component::Communication => "Communication",
            Component::Computation => "Computation",
        };
        f.write_str(s)
    }
}

/// One Table I cell: a TPU design feature exemplifying a concept applied to
/// a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpuExample {
    /// The component the feature specializes.
    pub component: Component,
    /// The concept it embodies.
    pub concept: SpecializationConcept,
    /// Circled index in Fig. 10 (1–9).
    pub index: u8,
    /// The paper's description of the feature.
    pub description: &'static str,
}

/// The nine annotated TPU examples of Table I / Fig. 10.
pub fn tpu_examples() -> &'static [TpuExample] {
    use Component::{Communication, Computation, Memory};
    use SpecializationConcept::{Heterogeneity, Partitioning, Simplification};
    const EXAMPLES: [TpuExample; 9] = [
        TpuExample {
            component: Memory,
            concept: Simplification,
            index: 1,
            description: "Simple DDR3 chips, interfaces, and physical memory space",
        },
        TpuExample {
            component: Memory,
            concept: Partitioning,
            index: 2,
            description: "Memory module banking storing NN layer weights",
        },
        TpuExample {
            component: Memory,
            concept: Heterogeneity,
            index: 3,
            description: "Hybrid memory for input and intermediary results",
        },
        TpuExample {
            component: Communication,
            concept: Simplification,
            index: 4,
            description: "Simple FIFO communication",
        },
        TpuExample {
            component: Communication,
            concept: Partitioning,
            index: 5,
            description: "Concurrent FIFOs for weights and systolic array data",
        },
        TpuExample {
            component: Communication,
            concept: Heterogeneity,
            index: 6,
            description: "Software-defined DMA interface for chip I/O",
        },
        TpuExample {
            component: Computation,
            concept: Simplification,
            index: 7,
            description: "Multiply+add computation units with small precision (8-bit integers)",
        },
        TpuExample {
            component: Computation,
            concept: Partitioning,
            index: 8,
            description: "Parallel multiply+add paths and systolic array data reuse",
        },
        TpuExample {
            component: Computation,
            concept: Heterogeneity,
            index: 9,
            description: "Non-linear activation unit (e.g., ReLU)",
        },
    ];
    &EXAMPLES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_examples_cover_the_grid() {
        let examples = tpu_examples();
        assert_eq!(examples.len(), 9);
        let cells: std::collections::HashSet<_> =
            examples.iter().map(|e| (e.component, e.concept)).collect();
        assert_eq!(cells.len(), 9);
    }

    #[test]
    fn indices_are_one_through_nine() {
        let mut idx: Vec<u8> = tpu_examples().iter().map(|e| e.index).collect();
        idx.sort_unstable();
        assert_eq!(idx, (1..=9).collect::<Vec<u8>>());
    }

    #[test]
    fn display_names() {
        assert_eq!(
            SpecializationConcept::Partitioning.to_string(),
            "Partitioning"
        );
        assert_eq!(Component::Communication.to_string(), "Communication");
    }

    #[test]
    fn enumerations_are_complete() {
        assert_eq!(SpecializationConcept::all().len(), 3);
        assert_eq!(Component::all().len(), 3);
    }
}
