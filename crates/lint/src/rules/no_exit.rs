//! `no-exit-in-lib` — `std::process::exit` belongs to binaries only.
//!
//! Library code that exits the process skips destructors, swallows the
//! server's graceful drain, and makes the layer untestable. Only the
//! thin CLI drivers under `src/bin/` may translate errors into process
//! exit codes (and even they prefer returning [`std::process::ExitCode`]
//! from `main`).

use crate::workspace::Workspace;
use crate::{Finding, Lint};

/// See the module docs.
pub struct NoExitInLib;

impl Lint for NoExitInLib {
    fn name(&self) -> &'static str {
        "no-exit-in-lib"
    }

    fn description(&self) -> &'static str {
        "no std::process::exit outside src/bin"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            if file.test_file || file.rel_path.contains("src/bin/") {
                continue;
            }
            let code = file.code_tokens();
            for (i, t) in code.iter().enumerate() {
                if file.is_test_line(t.line) {
                    continue;
                }
                let qualified_exit = t.is_ident("exit")
                    && i >= 2
                    && code[i - 1].is_punct("::")
                    && code[i - 2].is_ident("process");
                if qualified_exit {
                    findings.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: t.line,
                        col: t.col,
                        message: "`std::process::exit` outside src/bin; return an error \
                                  (or `ExitCode` from main) so callers keep control"
                            .to_string(),
                    });
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::workspace;

    #[test]
    fn flags_exit_in_library_code() {
        let src = "fn f() { std::process::exit(1); }\n";
        let found = NoExitInLib.check(&workspace(&[("crates/server/src/lib.rs", src)]));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
        // `use std::process; ... process::exit(0)` is also caught.
        let src = "use std::process;\nfn f() { process::exit(0); }\n";
        let found = NoExitInLib.check(&workspace(&[("crates/server/src/lib.rs", src)]));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn bins_may_exit() {
        let src = "fn main() { std::process::exit(2); }\n";
        let ws = workspace(&[("src/bin/accelwall.rs", src)]);
        assert!(NoExitInLib.check(&ws).is_empty());
    }

    #[test]
    fn unrelated_exit_identifiers_pass() {
        let src = "fn exit_handler() { queue.exit(); let exit = 3; }\n";
        let ws = workspace(&[("crates/server/src/lib.rs", src)]);
        assert!(NoExitInLib.check(&ws).is_empty());
    }
}
