//! AES: the Advanced Encryption Standard block cipher (MachSuite).
//!
//! Builds the AES-128 encryption dataflow over a 16-byte state: AddRoundKey,
//! then `rounds − 1` full rounds (SubBytes → ShiftRows → MixColumns →
//! AddRoundKey) and a final round without MixColumns — exactly FIPS-197
//! when `rounds = 10`. SubBytes and the GF(2⁸) doubling of MixColumns are
//! 256-entry lookup tables ([`accelwall_dfg::Op::Lut`]), the paper's
//! "super node" form of computation heterogeneity; everything else is XOR
//! lattice. Round keys enter as inputs: key expansion is host-side work in
//! accelerator practice (and in MachSuite's kernel).

use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};

/// The AES S-box.
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// GF(2⁸) doubling table (`xtime`).
pub fn xtime_table() -> [u8; 256] {
    let mut t = [0u8; 256];
    for (x, out) in t.iter_mut().enumerate() {
        let doubled = (x as u16) << 1;
        *out = (doubled & 0xff) as u8 ^ if x & 0x80 != 0 { 0x1b } else { 0x00 };
    }
    t
}

/// Builds the AES encryption DFG with `rounds` rounds (10 = real AES-128).
///
/// Inputs: state bytes `s0..s15` (FIPS column-major order `s[r + 4c]`) and
/// round-key bytes `rk{r}_{i}` for `r = 0..=rounds`. Outputs: ciphertext
/// bytes `ct0..ct15`.
///
/// # Panics
///
/// Panics if `rounds == 0`.
pub fn build(rounds: usize) -> Dfg {
    assert!(rounds > 0, "AES needs at least one round");
    let mut b = DfgBuilder::new(format!("aes_r{rounds}"));
    let sbox = b.register_table(SBOX);
    let xtime = b.register_table(xtime_table());

    let mut state: Vec<NodeId> = (0..16).map(|i| b.input(format!("s{i}"))).collect();

    // Initial AddRoundKey.
    state = add_round_key(&mut b, &state, 0);

    for r in 1..=rounds {
        // SubBytes.
        state = state
            .iter()
            .map(|&s| b.op(Op::Lut { table: sbox }, &[s]))
            .collect();
        // ShiftRows: row `row` rotates left by `row` columns.
        let mut shifted = state.clone();
        for row in 0..4 {
            for col in 0..4 {
                shifted[row + 4 * col] = state[row + 4 * ((col + row) % 4)];
            }
        }
        state = shifted;
        // MixColumns on all but the final round.
        if r != rounds {
            let mut mixed = Vec::with_capacity(16);
            for col in 0..4 {
                let a: Vec<NodeId> = (0..4).map(|row| state[row + 4 * col]).collect();
                let d: Vec<NodeId> = a
                    .iter()
                    .map(|&ai| b.op(Op::Lut { table: xtime }, &[ai]))
                    .collect();
                // c_i = 2*a_i ^ 3*a_{i+1} ^ a_{i+2} ^ a_{i+3}
                for row in 0..4 {
                    let t3 = b.op(Op::Xor, &[d[(row + 1) % 4], a[(row + 1) % 4]]);
                    let x1 = b.op(Op::Xor, &[d[row], t3]);
                    let x2 = b.op(Op::Xor, &[x1, a[(row + 2) % 4]]);
                    mixed.push(b.op(Op::Xor, &[x2, a[(row + 3) % 4]]));
                }
            }
            // `mixed` was filled column-major (col outer, row inner), which
            // is exactly the state layout s[row + 4*col].
            state = mixed;
        }
        state = add_round_key(&mut b, &state, r);
    }

    for (i, &s) in state.iter().enumerate() {
        b.output(format!("ct{i}"), s);
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("aes graph is structurally valid")
}

fn add_round_key(b: &mut DfgBuilder, state: &[NodeId], round: usize) -> Vec<NodeId> {
    state
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let k = b.input(format!("rk{round}_{i}"));
            b.op(Op::Xor, &[s, k])
        })
        .collect()
}

/// AES-128 key expansion: 11 round keys from a 16-byte key.
pub fn key_schedule(key: &[u8; 16]) -> [[u8; 16]; 11] {
    let mut w = [[0u8; 4]; 44];
    for i in 0..4 {
        w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
    }
    let mut rcon: u8 = 1;
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp.rotate_left(1);
            for byte in &mut temp {
                *byte = SBOX[*byte as usize];
            }
            temp[0] ^= rcon;
            rcon = xtime_table()[rcon as usize];
        }
        for k in 0..4 {
            w[i][k] = w[i - 4][k] ^ temp[k];
        }
    }
    let mut keys = [[0u8; 16]; 11];
    for (r, rk) in keys.iter_mut().enumerate() {
        for c in 0..4 {
            rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
        }
    }
    keys
}

/// Reference AES encryption with `rounds` rounds over the given round keys
/// (10 rounds + FIPS key schedule = standard AES-128).
#[allow(clippy::needless_range_loop)] // rounds index two coupled tables
pub fn aes_reference(block: &[u8; 16], round_keys: &[[u8; 16]], rounds: usize) -> [u8; 16] {
    let xt = xtime_table();
    let mut state = *block;
    for i in 0..16 {
        state[i] ^= round_keys[0][i];
    }
    for r in 1..=rounds {
        for byte in &mut state {
            *byte = SBOX[*byte as usize];
        }
        let copy = state;
        for row in 0..4 {
            for col in 0..4 {
                state[row + 4 * col] = copy[row + 4 * ((col + row) % 4)];
            }
        }
        if r != rounds {
            let copy = state;
            for col in 0..4 {
                let a = [
                    copy[4 * col],
                    copy[1 + 4 * col],
                    copy[2 + 4 * col],
                    copy[3 + 4 * col],
                ];
                for row in 0..4 {
                    state[row + 4 * col] = xt[a[row] as usize]
                        ^ xt[a[(row + 1) % 4] as usize]
                        ^ a[(row + 1) % 4]
                        ^ a[(row + 2) % 4]
                        ^ a[(row + 3) % 4];
                }
            }
        }
        for i in 0..16 {
            state[i] ^= round_keys[r][i];
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn run_dfg(block: &[u8; 16], keys: &[[u8; 16]], rounds: usize) -> [u8; 16] {
        let g = build(rounds);
        let mut inputs = HashMap::new();
        for (i, &v) in block.iter().enumerate() {
            inputs.insert(format!("s{i}"), v as f64);
        }
        for (r, rk) in keys.iter().enumerate().take(rounds + 1) {
            for (i, &v) in rk.iter().enumerate() {
                inputs.insert(format!("rk{r}_{i}"), v as f64);
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        let mut ct = [0u8; 16];
        for (i, byte) in ct.iter_mut().enumerate() {
            *byte = out[&format!("ct{i}")] as u8;
        }
        ct
    }

    #[test]
    fn fips197_test_vector() {
        // FIPS-197 Appendix C.1.
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let keys = key_schedule(&key);
        assert_eq!(aes_reference(&plaintext, &keys, 10), expected);
        assert_eq!(run_dfg(&plaintext, &keys, 10), expected);
    }

    #[test]
    fn dfg_matches_reference_for_short_rounds() {
        let keys = key_schedule(&[0x2b; 16]);
        let block = [0x5a; 16];
        for rounds in [1usize, 2, 4] {
            assert_eq!(
                run_dfg(&block, &keys, rounds),
                aes_reference(&block, &keys, rounds),
                "rounds = {rounds}"
            );
        }
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in &SBOX {
            assert!(!seen[v as usize], "duplicate sbox value {v:#x}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn xtime_matches_gf_doubling() {
        let t = xtime_table();
        assert_eq!(t[0x57], 0xae); // FIPS-197 example
        assert_eq!(t[0xae], 0x47);
        assert_eq!(t[0x80], 0x1b);
    }

    #[test]
    fn lut_nodes_dominate_the_graph() {
        let g = build(2);
        let luts = g
            .compute_ids()
            .iter()
            .filter(|&&id| {
                matches!(
                    g.node(id).kind,
                    accelwall_dfg::NodeKind::Compute(Op::Lut { .. })
                )
            })
            .count();
        // 2 rounds x 16 SubBytes + 1 MixColumns round x 16 xtime.
        assert_eq!(luts, 48);
    }
}
