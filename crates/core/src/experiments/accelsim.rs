//! Accelerator-simulation experiments: the S3D design-space sweep
//! (Fig. 13), the per-workload gain attribution (Fig. 14), and the
//! sweep-parameter roster (Table III).
//!
//! Fig. 13 and Fig. 14 both read per-workload sweeps through
//! [`Ctx::sweep`], so each workload's design space is enumerated once
//! even when every target runs in the same process.

use accelwall_accelsim::attribution::Metric;
use accelwall_accelsim::sweep::best_efficiency;
use accelwall_accelsim::{attribute_gains_lowered, Attribution, SweepSpace};
use accelwall_cmos::TechNode;
use accelwall_workloads::Workload;

use super::outln;
use crate::cache::Ctx;
use crate::error::Result;
use crate::experiment::{Artifact, Experiment};
use crate::json::Value;

/// Fig. 13 — the S3D power/runtime/CMOS design-space sweep.
pub struct Fig13;

impl Experiment for Fig13 {
    fn id(&self) -> &'static str {
        "fig13"
    }

    fn description(&self) -> &'static str {
        "S3D power/runtime/CMOS design-space sweep"
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact> {
        let points = ctx.sweep(Workload::S3d)?;
        let best = best_efficiency(points);
        let point_json = |p: &accelwall_accelsim::SweepPoint| {
            Value::object([
                ("node", Value::from(p.config.node.to_string())),
                ("partition", Value::from(p.config.partition_factor)),
                (
                    "simplification",
                    Value::from(p.config.simplification_degree),
                ),
                ("runtime_s", Value::from(p.report.runtime_s)),
                ("power_w", Value::from(p.report.power_w())),
            ])
        };
        let json = Value::object([
            ("points", Value::from(points.len())),
            ("best_efficiency", Value::from(best.map(point_json))),
            (
                "scatter",
                points.iter().step_by(37).map(point_json).collect(),
            ),
        ]);
        let mut text = String::new();
        outln!(
            text,
            "Fig. 13 — 3D stencil power/runtime/CMOS sweep ({} design points)",
            points.len()
        );
        let baseline = points.iter().find(|p| {
            p.config.partition_factor == 1
                && p.config.simplification_degree == 1
                && p.config.node == TechNode::N45
        });
        if let Some(b) = baseline {
            outln!(
                text,
                "baseline 45nm P=1 s=1:   runtime {:>10.3e}s  power {:>8.3}W",
                b.report.runtime_s,
                b.report.power_w()
            );
        }
        if let Some(p) = best {
            outln!(
                text,
                "best energy efficiency:  runtime {:>10.3e}s  power {:>8.3}W  @ {} P={} s={}",
                p.report.runtime_s,
                p.report.power_w(),
                p.config.node,
                p.config.partition_factor,
                p.config.simplification_degree
            );
        }
        for &node in &ctx.sweep_space().nodes {
            let node_best = points
                .iter()
                .filter(|p| p.config.node == node)
                .max_by(|a, b| {
                    a.report
                        .energy_efficiency()
                        .total_cmp(&b.report.energy_efficiency())
                });
            if let Some(nb) = node_best {
                outln!(
                    text,
                    "{:>6}: best-EE point runtime {:>10.3e}s power {:>8.3}W (P={}, s={})",
                    node.to_string(),
                    nb.report.runtime_s,
                    nb.report.power_w(),
                    nb.config.partition_factor,
                    nb.config.simplification_degree
                );
            }
        }
        Ok(Artifact::new(json, text))
    }
}

/// Fig. 14 — per-workload gain attribution at the optimum.
pub struct Fig14;

impl Experiment for Fig14 {
    fn id(&self) -> &'static str {
        "fig14"
    }

    fn description(&self) -> &'static str {
        "per-workload gain attribution at the optimum"
    }

    fn deps(&self) -> &'static [&'static str] {
        // Fig. 14 decomposes the same sweeps Fig. 13 plots; running the
        // scatter first means the attribution pass hits the cache.
        &["fig13"]
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact> {
        // Warm every per-workload sweep before the serial attribution
        // pass. A band of scoped threads overlaps the workloads' serial
        // portions (DFG lowering, result assembly) while each sweep's
        // design points already fan out across the `accelwall-par` pool;
        // results still come out of `ctx.sweep` memoized and in roster
        // order, so the artifact is byte-identical to the serial loop.
        let bands = accelwall_par::threads().min(Workload::all().len()).max(1);
        std::thread::scope(|s| {
            for band in 0..bands {
                s.spawn(move || {
                    for (i, &w) in Workload::all().iter().enumerate() {
                        if i % bands == band {
                            let _ = ctx.sweep(w);
                        }
                    }
                });
            }
        });
        let mut rows = Vec::new();
        for &w in Workload::all() {
            let points = ctx.sweep(w)?;
            // Both metrics re-price the toggle chain over the same cached
            // bytecode program the sweep ran on — no re-lowering.
            let program = ctx.program(w)?;
            let perf = attribute_gains_lowered(&program, Metric::Performance, points)?;
            let ee = attribute_gains_lowered(&program, Metric::EnergyEfficiency, points)?;
            rows.push((w, perf, ee));
        }
        let contribution_json = |a: &Attribution| {
            Value::object([
                ("total_gain", Value::from(a.total_gain)),
                ("csr", Value::from(a.csr)),
                (
                    "contributions",
                    a.contributions
                        .iter()
                        .map(|c| {
                            Value::object([
                                ("source", Value::from(c.source.to_string())),
                                ("factor", Value::from(c.factor)),
                                ("percent", Value::from(c.percent)),
                            ])
                        })
                        .collect(),
                ),
            ])
        };
        let json = rows
            .iter()
            .map(|(w, p, e)| {
                Value::object([
                    ("workload", Value::from(w.abbrev())),
                    ("performance", contribution_json(p)),
                    ("efficiency", contribution_json(e)),
                ])
            })
            .collect();
        let mut text = String::new();
        for (title, pick) in [
            ("Fig. 14a — performance gain attribution", 0usize),
            ("Fig. 14b — energy-efficiency gain attribution", 1),
        ] {
            outln!(text, "{title}");
            outln!(
                text,
                "{:<5} {:>9} {:>7} | {:>7} {:>7} {:>7} {:>7}  (% of log gain)",
                "app",
                "gain(x)",
                "CSR",
                "Part",
                "Het",
                "Simp",
                "CMOS"
            );
            let mut geo_gain = 0.0;
            let mut geo_csr = 0.0;
            for (w, p, e) in &rows {
                let a = if pick == 0 { p } else { e };
                let pct = |src: &str| {
                    a.contributions
                        .iter()
                        .find(|c| c.source.to_string().starts_with(src))
                        .map_or(0.0, |c| c.percent)
                };
                outln!(
                    text,
                    "{:<5} {:>9.1} {:>7.2} | {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
                    w.abbrev(),
                    a.total_gain,
                    a.csr,
                    pct("Partitioning"),
                    pct("Heterogeneity"),
                    pct("Simplification"),
                    pct("CMOS")
                );
                geo_gain += a.total_gain.ln();
                geo_csr += a.csr.ln();
            }
            let n = rows.len() as f64;
            outln!(
                text,
                "{:<5} {:>9.1} {:>7.2}  (geometric means)",
                "AVG",
                (geo_gain / n).exp(),
                (geo_csr / n).exp()
            );
            outln!(text);
        }
        Ok(Artifact::new(json, text))
    }
}

/// Table III — the CMOS-specialization sweep parameters.
pub struct Table3;

impl Experiment for Table3 {
    fn id(&self) -> &'static str {
        "table3"
    }

    fn description(&self) -> &'static str {
        "CMOS-specialization sweep parameters"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        // The table documents the paper's sweep, not whatever (possibly
        // coarse) space the surrounding Ctx was configured with.
        let space = SweepSpace::table3();
        let json = Value::object([
            (
                "partition_factors",
                space
                    .partition_factors
                    .iter()
                    .map(|&f| Value::from(f))
                    .collect(),
            ),
            (
                "simplification_degrees",
                space
                    .simplification_degrees
                    .iter()
                    .map(|&d| Value::from(d))
                    .collect(),
            ),
            (
                "nodes",
                space
                    .nodes
                    .iter()
                    .map(|n| Value::from(n.to_string()))
                    .collect(),
            ),
            ("points", Value::from(space.len())),
        ]);
        let mut text = String::new();
        outln!(text, "Table III — CMOS-specialization sweep parameters");
        if let Some(last) = space.partition_factors.last() {
            outln!(text, "partitioning factor:   1, 2, 4, ... {last}");
        }
        if let (Some(first), Some(last)) = (
            space.simplification_degrees.first(),
            space.simplification_degrees.last(),
        ) {
            outln!(text, "simplification degree: {first}..{last}");
        }
        let nodes: Vec<String> = space
            .nodes
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        outln!(text, "CMOS process:          {}", nodes.join(", "));
        outln!(text, "total design points:   {}", space.len());
        Ok(Artifact::new(json, text))
    }
}
