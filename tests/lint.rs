//! End-to-end tests of `accelwall lint`: the shipped workspace must be
//! clean (this is the same gate CI runs), `--json` must round-trip
//! through `core::json` with the documented keys and the full rule
//! roster, seeded fixture workspaces must fail with editor-clickable
//! `file:line` findings (one failing and one justified-allow scenario
//! per semantic rule), `--rule`/`--list-rules` must select strictly,
//! and the item-tree parser must round-trip every shipped source file
//! without a single error recovery.

use accelerator_wall::json::Value;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn run_in(dir: &Path, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn the_shipped_workspace_is_clean() {
    let (ok, stdout, stderr) = run_in(&repo_root(), &["lint"]);
    assert!(ok, "lint found problems:\n{stdout}{stderr}");
    assert!(
        stdout.contains("lint clean"),
        "unexpected output:\n{stdout}"
    );
    assert!(stdout.contains("0 findings"));
}

#[test]
fn lint_works_from_a_subdirectory() {
    // Workspace discovery walks upward, so the gate holds from anywhere
    // inside the checkout.
    let (ok, stdout, _) = run_in(&repo_root().join("crates/stats/src"), &["lint"]);
    assert!(ok, "lint from subdirectory failed:\n{stdout}");
}

#[test]
fn json_report_round_trips_with_the_rule_roster() {
    let (ok, stdout, _) = run_in(&repo_root(), &["lint", "--json"]);
    assert!(ok);
    let doc = Value::parse(&stdout).unwrap_or_else(|e| panic!("{e}\n{stdout}"));
    assert_eq!(doc.get("clean").and_then(Value::as_bool), Some(true));
    assert_eq!(doc.get("finding_count").and_then(Value::as_f64), Some(0.0));
    assert!(doc.get("files_scanned").and_then(Value::as_f64).unwrap() > 50.0);
    let rules: Vec<&str> = doc
        .get("rules")
        .and_then(Value::as_array)
        .expect("rules array")
        .iter()
        .map(|r| r.get("name").and_then(Value::as_str).expect("rule name"))
        .collect();
    assert_eq!(
        rules,
        [
            "no-panic-paths",
            "dep-free",
            "registry-sync",
            "float-hygiene",
            "no-exit-in-lib",
            "doc-sync",
            "fault-sites",
            "atomic-ordering",
            "lock-order",
            "determinism",
            "bounded-channel",
            "lint-allow",
        ]
    );
    for rule in doc.get("rules").and_then(Value::as_array).unwrap() {
        assert!(!rule
            .get("description")
            .and_then(Value::as_str)
            .unwrap()
            .is_empty());
    }
    assert!(doc
        .get("findings")
        .and_then(Value::as_array)
        .expect("findings array")
        .is_empty());
}

/// A throwaway workspace under the target dir (std-only: no tempfile
/// crate), removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = repo_root()
            .join("target/lint-fixtures")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("fixture root");
        Fixture { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("has parent")).expect("fixture dirs");
        fs::write(path, content).expect("fixture file");
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn seeded_violations_fail_with_file_line_findings() {
    let fix = Fixture::new("seeded");
    fix.write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    fix.write(
        "crates/app/Cargo.toml",
        "[package]\nname = \"app\"\n\n[dependencies]\nserde = \"1.0\"\n",
    );
    fix.write(
        "crates/app/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n\
         pub fn g() {\n    std::process::exit(3);\n}\n\
         // lint:allow(no-panic-paths)\n\
         pub fn h(y: Option<u32>) -> u32 {\n    y.expect(\"why\")\n}\n",
    );
    fix.write(
        "crates/stats/src/lib.rs",
        "pub fn near_zero(x: f64) -> bool {\n    x == 0.0\n}\n",
    );
    let (ok, stdout, _) = run_in(&fix.root, &["lint"]);
    assert!(!ok, "seeded fixture unexpectedly clean:\n{stdout}");
    // Editor-clickable path:line:col anchors, one per seeded violation.
    assert!(stdout.contains("crates/app/src/lib.rs:2:"), "{stdout}");
    assert!(stdout.contains("[no-panic-paths]"), "{stdout}");
    assert!(stdout.contains("crates/app/src/lib.rs:5:"), "{stdout}");
    assert!(stdout.contains("[no-exit-in-lib]"), "{stdout}");
    assert!(stdout.contains("crates/app/Cargo.toml:5:"), "{stdout}");
    assert!(
        stdout.contains("[dep-free]") && stdout.contains("serde"),
        "{stdout}"
    );
    assert!(stdout.contains("crates/stats/src/lib.rs:2:"), "{stdout}");
    assert!(stdout.contains("[float-hygiene]"), "{stdout}");
    // The justification-free allow is audited, and the violation it
    // failed to justify still counts.
    assert!(stdout.contains("[lint-allow]"), "{stdout}");
    assert!(stdout.contains("crates/app/src/lib.rs:9:"), "{stdout}");
    assert!(stdout.contains("lint failed:"), "{stdout}");

    let (ok, stdout, _) = run_in(&fix.root, &["lint", "--json"]);
    assert!(!ok);
    let doc = Value::parse(&stdout).unwrap_or_else(|e| panic!("{e}\n{stdout}"));
    assert_eq!(doc.get("clean").and_then(Value::as_bool), Some(false));
    let findings = doc.get("findings").and_then(Value::as_array).unwrap();
    assert_eq!(
        findings.len() as f64,
        doc.get("finding_count").and_then(Value::as_f64).unwrap()
    );
    assert!(findings.iter().any(|f| {
        f.get("rule").and_then(Value::as_str) == Some("no-panic-paths")
            && f.get("path").and_then(Value::as_str) == Some("crates/app/src/lib.rs")
            && f.get("line").and_then(Value::as_f64) == Some(2.0)
    }));
}

#[test]
fn justified_allows_suppress_and_test_code_is_exempt() {
    let fix = Fixture::new("allowed");
    fix.write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    fix.write("crates/app/Cargo.toml", "[package]\nname = \"app\"\n");
    fix.write(
        "crates/app/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n\
         \x20   // lint:allow(no-panic-paths): provably Some in every caller\n\
         \x20   x.unwrap()\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn t() {\n\
         \x20       None::<u32>.unwrap();\n\
         \x20   }\n\
         }\n",
    );
    fix.write(
        "crates/app/tests/integration.rs",
        "#[test]\nfn t() {\n    std::fs::read(\"x\").unwrap();\n}\n",
    );
    let (ok, stdout, stderr) = run_in(&fix.root, &["lint"]);
    assert!(ok, "expected clean:\n{stdout}{stderr}");
}

#[test]
fn lint_rejects_flags_of_other_subcommands() {
    let (ok, _, stderr) = run_in(&repo_root(), &["lint", "--addr", "0:0"]);
    assert!(!ok);
    assert!(stderr.contains("--addr"), "{stderr}");
    let (ok, _, stderr) = run_in(&repo_root(), &["lint", "extra"]);
    assert!(!ok);
    assert!(stderr.contains("no operand"), "{stderr}");
}

// ---- semantic rules: one failing + one justified-allow fixture each ----

/// The shared fixture scaffolding for one semantic-rule scenario.
fn semantic_fixture(name: &str, krate: &str, src: &str) -> Fixture {
    let fix = Fixture::new(name);
    fix.write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    fix.write(
        &format!("crates/{krate}/Cargo.toml"),
        &format!("[package]\nname = \"{krate}\"\n"),
    );
    fix.write(&format!("crates/{krate}/src/lib.rs"), src);
    fix
}

#[test]
fn atomic_ordering_flags_seqcst_and_honors_allows() {
    let violating = "use std::sync::atomic::{AtomicU64, Ordering};\n\
        pub fn bump(n: &AtomicU64) -> u64 {\n\
        \x20   n.fetch_add(1, Ordering::SeqCst)\n\
        }\n";
    let fix = semantic_fixture("atomic-bad", "par", violating);
    let (ok, stdout, _) = run_in(&fix.root, &["lint"]);
    assert!(!ok, "expected a finding:\n{stdout}");
    assert!(stdout.contains("[atomic-ordering]"), "{stdout}");
    assert!(stdout.contains("crates/par/src/lib.rs:3:"), "{stdout}");
    drop(fix);

    let allowed = "use std::sync::atomic::{AtomicU64, Ordering};\n\
        pub fn bump(n: &AtomicU64) -> u64 {\n\
        \x20   // lint:allow(atomic-ordering): this counter seeds the global epoch and must totally order with every reader\n\
        \x20   n.fetch_add(1, Ordering::SeqCst)\n\
        }\n";
    let fix = semantic_fixture("atomic-ok", "par", allowed);
    let (ok, stdout, stderr) = run_in(&fix.root, &["lint"]);
    assert!(ok, "expected clean:\n{stdout}{stderr}");
}

#[test]
fn lock_order_flags_cycles_and_honors_allows() {
    let violating = "use std::sync::Mutex;\n\
        pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
        pub fn one(s: &S) -> u32 {\n\
        \x20   let ga = s.a.lock().unwrap();\n\
        \x20   let gb = s.b.lock().unwrap();\n\
        \x20   *ga + *gb\n\
        }\n\
        pub fn two(s: &S) -> u32 {\n\
        \x20   let gb = s.b.lock().unwrap();\n\
        \x20   let ga = s.a.lock().unwrap();\n\
        \x20   *ga + *gb\n\
        }\n";
    let fix = semantic_fixture("lock-bad", "query", violating);
    let (ok, stdout, _) = run_in(&fix.root, &["lint"]);
    assert!(!ok, "expected a cycle finding:\n{stdout}");
    assert!(stdout.contains("[lock-order]"), "{stdout}");
    drop(fix);

    // Same shape, fully clean: guards extracted without unwrap and the
    // cycle justified at its reported anchor (the first edge's site).
    let allowed = "use std::sync::Mutex;\n\
        pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
        pub fn one(s: &S) -> u32 {\n\
        \x20   let ga = match s.a.lock() { Ok(g) => g, Err(e) => e.into_inner() };\n\
        \x20   // lint:allow(lock-order): `two` runs only during single-threaded teardown, after every caller of `one` has joined\n\
        \x20   let gb = match s.b.lock() { Ok(g) => g, Err(e) => e.into_inner() };\n\
        \x20   *ga + *gb\n\
        }\n\
        pub fn two(s: &S) -> u32 {\n\
        \x20   let gb = match s.b.lock() { Ok(g) => g, Err(e) => e.into_inner() };\n\
        \x20   let ga = match s.a.lock() { Ok(g) => g, Err(e) => e.into_inner() };\n\
        \x20   *ga + *gb\n\
        }\n";
    let fix = semantic_fixture("lock-ok", "query", allowed);
    let (ok, stdout, stderr) = run_in(&fix.root, &["lint"]);
    assert!(ok, "expected clean:\n{stdout}{stderr}");
}

#[test]
fn determinism_flags_hash_iteration_and_honors_allows() {
    let violating = "use std::collections::HashMap;\n\
        pub fn render(map: &HashMap<String, u32>) -> String {\n\
        \x20   let mut out = String::new();\n\
        \x20   for (k, v) in map.iter() {\n\
        \x20       out.push_str(&format!(\"{k}={v}\\n\"));\n\
        \x20   }\n\
        \x20   out\n\
        }\n";
    let fix = semantic_fixture("det-bad", "stats", violating);
    let (ok, stdout, _) = run_in(&fix.root, &["lint"]);
    assert!(!ok, "expected a finding:\n{stdout}");
    assert!(stdout.contains("[determinism]"), "{stdout}");
    assert!(stdout.contains("crates/stats/src/lib.rs:4:"), "{stdout}");
    drop(fix);

    let allowed = "use std::collections::HashMap;\n\
        pub fn total(map: &HashMap<String, u32>) -> u64 {\n\
        \x20   let mut sum = 0u64;\n\
        \x20   // lint:allow(determinism): integer summation is order-insensitive; only the total leaves this fn\n\
        \x20   for (_k, v) in map.iter() {\n\
        \x20       sum += u64::from(*v);\n\
        \x20   }\n\
        \x20   sum\n\
        }\n";
    let fix = semantic_fixture("det-ok", "stats", allowed);
    let (ok, stdout, stderr) = run_in(&fix.root, &["lint"]);
    assert!(ok, "expected clean:\n{stdout}{stderr}");
}

#[test]
fn bounded_channel_flags_unbounded_and_honors_allows() {
    let violating = "use std::sync::mpsc;\n\
        pub fn wire() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {\n\
        \x20   mpsc::channel()\n\
        }\n";
    let fix = semantic_fixture("chan-bad", "core", violating);
    let (ok, stdout, _) = run_in(&fix.root, &["lint"]);
    assert!(!ok, "expected a finding:\n{stdout}");
    assert!(stdout.contains("[bounded-channel]"), "{stdout}");
    drop(fix);

    let allowed = "use std::sync::mpsc;\n\
        pub fn wire() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {\n\
        \x20   // lint:allow(bounded-channel): at most one message per caller by construction; a bound would add a park/unpark to the hot path\n\
        \x20   mpsc::channel()\n\
        }\n";
    let fix = semantic_fixture("chan-ok", "core", allowed);
    let (ok, stdout, stderr) = run_in(&fix.root, &["lint"]);
    assert!(ok, "expected clean:\n{stdout}{stderr}");
}

#[test]
fn float_hygiene_catches_comparator_closures_outside_numeric_crates() {
    let violating = "pub fn rank(v: &mut Vec<(String, f64)>) {\n\
        \x20   v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());\n\
        }\n";
    let fix = semantic_fixture("cmp-bad", "query", violating);
    let (ok, stdout, _) = run_in(&fix.root, &["lint"]);
    assert!(!ok, "expected a finding:\n{stdout}");
    assert!(stdout.contains("[float-hygiene]"), "{stdout}");
    assert!(stdout.contains("total_cmp"), "{stdout}");
}

// ---- rule selection ----

#[test]
fn list_rules_prints_the_full_roster() {
    let (ok, stdout, _) = run_in(&repo_root(), &["lint", "--list-rules"]);
    assert!(ok);
    for rule in [
        "no-panic-paths",
        "atomic-ordering",
        "lock-order",
        "determinism",
        "bounded-channel",
        "lint-allow",
    ] {
        assert!(stdout.contains(rule), "missing {rule}:\n{stdout}");
    }
}

#[test]
fn rule_flag_restricts_the_run() {
    let (ok, stdout, _) = run_in(
        &repo_root(),
        &[
            "lint",
            "--rule",
            "determinism",
            "--rule",
            "lock-order",
            "--json",
        ],
    );
    assert!(ok, "{stdout}");
    let doc = Value::parse(&stdout).unwrap_or_else(|e| panic!("{e}\n{stdout}"));
    let rules: Vec<&str> = doc
        .get("rules")
        .and_then(Value::as_array)
        .expect("rules array")
        .iter()
        .map(|r| r.get("name").and_then(Value::as_str).expect("rule name"))
        .collect();
    assert_eq!(rules, ["lock-order", "determinism", "lint-allow"]);
}

#[test]
fn unknown_rule_fails_with_the_roster() {
    let (ok, _, stderr) = run_in(&repo_root(), &["lint", "--rule", "no-such-rule"]);
    assert!(!ok);
    assert!(stderr.contains("unknown rule \"no-such-rule\""), "{stderr}");
    assert!(stderr.contains("atomic-ordering"), "{stderr}");
    assert!(stderr.contains("--list-rules"), "{stderr}");
}

#[test]
fn rule_flags_only_apply_to_lint() {
    let (ok, _, stderr) = run_in(&repo_root(), &["list", "--rule", "determinism"]);
    assert!(!ok);
    assert!(stderr.contains("--rule"), "{stderr}");
    let (ok, _, stderr) = run_in(&repo_root(), &["list", "--list-rules"]);
    assert!(!ok);
    assert!(stderr.contains("--list-rules"), "{stderr}");
}

// ---- parser round-trip ----

#[test]
fn parser_round_trips_the_whole_workspace_without_recoveries() {
    // Every shipped source file must parse into the item tree without a
    // single error recovery — the semantic rules are only as good as
    // the tree under them.
    let ws = accelwall_lint::Workspace::load(&repo_root()).expect("workspace loads");
    assert!(ws.files.len() > 100, "suspiciously small workspace");
    let mut fns = 0usize;
    for file in &ws.files {
        assert!(
            file.parsed.recoveries.is_empty(),
            "{}: parser recovered at {:?}",
            file.rel_path,
            file.parsed.recoveries
        );
        fns += file.parsed.fns_with_bodies().len();
    }
    assert!(fns > 500, "suspiciously few parsed fn bodies: {fns}");
}
