//! Chaos tests of the distributed work tier (`accelwall work`): a
//! coordinator process plus a worker fleet where one worker is killed
//! mid-batch by an injected `work-compute` panic and another's
//! heartbeat hangs past the lease TTL — the folded sweep document must
//! still come out byte-identical to a single-machine run, with the
//! lease re-issues visible in the coordinator's summary. Also covers
//! the zero-worker local fallback, role-flag validation, and the
//! unknown-grid roster error.

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use accelerator_wall::cache::Ctx;
use accelerator_wall::grids::{run_local, GridRegistry};
use accelerator_wall::prelude::SweepSpace;

/// What one grid's single-machine run prints: the document the
/// coordinator's distributed fold must reproduce byte for byte.
fn local_baseline(grid_id: &str) -> String {
    let grid = GridRegistry::standard().get(grid_id).expect("known grid");
    let ctx = Arc::new(Ctx::with_space(SweepSpace::coarse()));
    let mut doc = run_local(&grid, &ctx).expect("local run").pretty();
    doc.push('\n');
    doc
}

/// Spawns the `accelwall` binary with piped stdout/stderr.
fn accelwall(args: &[&str], faults: Option<&str>) -> Child {
    let mut command = Command::new(env!("CARGO_BIN_EXE_accelwall"));
    command
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if let Some(plan) = faults {
        command.env("ACCELWALL_FAULTS", plan);
    }
    command.spawn().expect("accelwall spawns")
}

/// Pulls `key=value` off a coordinator summary line.
fn summary_count(summary: &str, key: &str) -> u64 {
    summary
        .split_whitespace()
        .find_map(|token| token.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {key}= in summary {summary:?}"))
}

#[test]
fn a_chaotic_fleet_still_folds_byte_identical_output() {
    // Coordinator: coarse sweep grid, short leases so the dead and the
    // hung worker both expire quickly, two workers expected so the
    // local-fallback cutover never races the fleet.
    let mut coordinator = accelwall(
        &[
            "work",
            "--grid",
            "sweep",
            "--quick",
            "--addr",
            "127.0.0.1:0",
            "--lease-ms",
            "500",
            "--expect-workers",
            "2",
        ],
        None,
    );
    let stderr = coordinator.stderr.take().expect("stderr piped");
    let mut stderr = BufReader::new(stderr);
    let mut banner = String::new();
    stderr
        .read_line(&mut banner)
        .expect("a coordinating banner");
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .to_string();
    // Drain the rest of the coordinator's stderr on a thread so a full
    // stdout pipe can never deadlock against it.
    let stderr_rest = std::thread::spawn(move || {
        let mut rest = String::new();
        stderr.read_to_string(&mut rest).ok();
        rest
    });

    // Worker A dies mid-batch: its first unit compute panics, killing
    // the process while it holds leases. Worker B's first heartbeat
    // hangs for 2 s — four lease TTLs — so its units expire and
    // re-issue while it is stalled, and its eventual completions land
    // as duplicates.
    let mut victim = accelwall(&["work", "--join", &addr], Some("work-compute:panic:1"));
    let mut straggler = accelwall(&["work", "--join", &addr], Some("work-heartbeat:hang:2s"));

    let output = coordinator.wait_with_output().expect("coordinator exits");
    let summary = stderr_rest.join().expect("stderr drains");
    assert!(
        output.status.success(),
        "coordinator failed: {banner}{summary}"
    );

    // The folded document is byte-identical to the single-machine run.
    let document = String::from_utf8(output.stdout).expect("stdout is UTF-8");
    assert_eq!(
        document,
        local_baseline("sweep"),
        "distributed fold diverged from the local baseline"
    );

    // The victim's death (and the straggler's stall) forced at least
    // one lease expiry and re-issue, and everything still finished.
    let done = summary
        .lines()
        .find(|line| line.contains("accelwall work done"))
        .unwrap_or_else(|| panic!("no summary line in {summary:?}"));
    assert!(summary_count(done, "reissues") >= 1, "{done}");
    assert_eq!(summary_count(done, "units"), 12, "{done}");

    // The victim died panicking; the straggler finished and exited
    // cleanly once the coordinator said done (or went away).
    let victim_status = victim.wait().expect("victim exits");
    assert!(!victim_status.success(), "the panic fault never fired");
    let straggler_status = straggler.wait().expect("straggler exits");
    assert!(straggler_status.success(), "straggler exited uncleanly");
}

#[test]
fn a_coordinator_with_no_workers_falls_back_to_local_compute() {
    let output = accelwall(
        &[
            "work",
            "--grid",
            "sensitivity",
            "--quick",
            "--addr",
            "127.0.0.1:0",
            "--work-deadline-ms",
            "1",
        ],
        None,
    )
    .wait_with_output()
    .expect("coordinator exits");
    assert!(output.status.success());
    let document = String::from_utf8(output.stdout).expect("stdout is UTF-8");
    assert_eq!(document, local_baseline("sensitivity"));
    let summary = String::from_utf8_lossy(&output.stderr).to_string();
    let done = summary
        .lines()
        .find(|line| line.contains("accelwall work done"))
        .unwrap_or_else(|| panic!("no summary line in {summary:?}"));
    assert_eq!(summary_count(done, "local"), 8, "{done}");
}

#[test]
fn a_worker_reuses_one_keep_alive_connection_for_its_whole_run() {
    use accelerator_wall::artifacts::ArtifactCache;
    use accelerator_wall::prelude::Registry;
    use accelwall_server::{Server, ServerConfig};
    use accelwall_work::{run_worker, Coordinator, WorkConfig, WorkerConfig};

    // An in-process coordinator behind the real connection reactor.
    let ctx = Arc::new(Ctx::with_space(SweepSpace::coarse()));
    let grid = GridRegistry::standard().get("sensitivity").expect("grid");
    let coordinator = Arc::new(Coordinator::new(grid, ctx, "coarse", WorkConfig::default()));
    let cache = ArtifactCache::new(Registry::paper(), Ctx::with_space(SweepSpace::coarse()));
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        backlog: 8,
        ..ServerConfig::default()
    };
    let server =
        Server::bind_with_work(config, cache, Some(Arc::clone(&coordinator))).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let mut worker = WorkerConfig::new(handle.addr().to_string());
    worker.name = "reuse-probe".into();
    let report = run_worker(&worker).expect("worker run");
    assert_eq!(
        report.computed,
        coordinator.total_units() as u64,
        "the lone worker computes every unit"
    );

    // The whole run — leases, heartbeats, completions — rode ONE
    // pooled keep-alive connection.
    let metrics = handle.metrics();
    assert_eq!(
        metrics.connections(),
        1,
        "worker re-dialed instead of reusing its connection"
    );
    assert!(
        metrics.keepalive_reuses() >= 2 * report.computed,
        "expected ≥{} keep-alive reuses, saw {}",
        2 * report.computed,
        metrics.keepalive_reuses()
    );

    handle.shutdown();
    join.join().expect("server thread").expect("clean exit");
}

#[test]
fn work_requires_exactly_one_role_flag() {
    for (args, expected) in [
        (vec!["work"], "--grid ID"),
        (
            vec!["work", "--grid", "sweep", "--join", "127.0.0.1:1"],
            "mutually exclusive",
        ),
        (
            vec!["work", "--join", "127.0.0.1:1", "--quick"],
            "only --join and --threads",
        ),
        (
            vec!["all", "--grid", "sweep"],
            "only apply to `accelwall work`",
        ),
    ] {
        let output = accelwall(&args, None)
            .wait_with_output()
            .expect("accelwall exits");
        assert!(!output.status.success(), "{args:?} unexpectedly succeeded");
        let stderr = String::from_utf8_lossy(&output.stderr).to_string();
        assert!(stderr.contains(expected), "{args:?}: {stderr}");
    }
}

#[test]
fn an_unknown_grid_fails_with_the_roster() {
    let output = accelwall(&["work", "--grid", "nope"], None)
        .wait_with_output()
        .expect("accelwall exits");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr).to_string();
    assert!(stderr.contains("unknown grid"), "{stderr}");
    for id in GridRegistry::standard().ids() {
        assert!(stderr.contains(id), "roster missing {id}: {stderr}");
    }
}
