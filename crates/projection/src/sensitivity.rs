//! Sensitivity of the accelerator wall to the Table V parameters.
//!
//! The paper projects each wall from point estimates of the final node's
//! die size, TDP, and clock. This module perturbs each parameter ±20% and
//! reports the wall's log-log elasticity — how many percent the wall moves
//! per percent of parameter change — separating the parameters the
//! conclusions actually hinge on from the ones that wash out.

use crate::domains::{Domain, DomainLimits, TargetMetric};
use crate::wall::{project, projection_input_with};
use crate::Result;

/// Which Table V parameter is perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parameter {
    /// Largest die size (`max_die_mm2`).
    MaxDie,
    /// Thermal power budget (`tdp_w`).
    Tdp,
    /// Clock frequency (`freq_mhz`).
    Frequency,
}

impl Parameter {
    /// All perturbable parameters.
    pub fn all() -> &'static [Parameter] {
        const ALL: [Parameter; 3] = [Parameter::MaxDie, Parameter::Tdp, Parameter::Frequency];
        &ALL
    }

    fn apply(self, mut limits: DomainLimits, factor: f64) -> DomainLimits {
        match self {
            Parameter::MaxDie => limits.max_die_mm2 *= factor,
            Parameter::Tdp => limits.tdp_w *= factor,
            Parameter::Frequency => limits.freq_mhz *= factor,
        }
        limits
    }
}

impl std::fmt::Display for Parameter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Parameter::MaxDie => "max die",
            Parameter::Tdp => "TDP",
            Parameter::Frequency => "frequency",
        };
        f.write_str(s)
    }
}

/// One parameter's sensitivity for one (domain, metric) wall.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Domain analyzed.
    pub domain: Domain,
    /// Metric analyzed.
    pub metric: TargetMetric,
    /// Perturbed parameter.
    pub parameter: Parameter,
    /// Linear wall at −20% of the parameter.
    pub wall_minus: f64,
    /// Linear wall at the Table V value.
    pub wall_base: f64,
    /// Linear wall at +20% of the parameter.
    pub wall_plus: f64,
    /// Log-log elasticity `d ln(wall) / d ln(parameter)`; 0 means the
    /// wall does not depend on the parameter, 1 means proportional.
    pub elasticity: f64,
}

/// Computes the ±20% sensitivity of a wall to every Table V parameter.
///
/// # Errors
///
/// Propagates projection errors.
pub fn wall_sensitivity(domain: Domain, metric: TargetMetric) -> Result<Vec<Sensitivity>> {
    let base_limits = domain.limits();
    let wall_base = wall_at(domain, metric, base_limits)?;
    // The ±20% grid is six independent projections (3 parameters × 2
    // directions); evaluate them across the `accelwall-par` pool. Results
    // land at their grid index, so both the rows and — on failure — the
    // surfaced error match the serial parameter order.
    let walls = accelwall_par::par_map(Parameter::all().len() * 2, move |i| {
        let parameter = Parameter::all()[i / 2];
        let factor = if i % 2 == 0 { 0.8 } else { 1.2 };
        wall_at(domain, metric, parameter.apply(base_limits, factor))
    });
    let mut walls = walls.into_iter();
    let mut rows = Vec::with_capacity(Parameter::all().len());
    for &parameter in Parameter::all() {
        let (Some(minus), Some(plus)) = (walls.next(), walls.next()) else {
            unreachable!("the grid yields two walls per parameter")
        };
        let (wall_minus, wall_plus) = (minus?, plus?);
        let elasticity =
            (wall_plus.max(1e-12).ln() - wall_minus.max(1e-12).ln()) / (1.2f64.ln() - 0.8f64.ln());
        rows.push(Sensitivity {
            domain,
            metric,
            parameter,
            wall_minus,
            wall_base,
            wall_plus,
            elasticity,
        });
    }
    Ok(rows)
}

/// Projects one wall under perturbed limits.
fn wall_at(domain: Domain, metric: TargetMetric, limits: DomainLimits) -> Result<f64> {
    let input = projection_input_with(domain, metric, limits)?;
    match project(&input) {
        Ok(w) => Ok(w.linear_wall),
        // A perturbation can push the 5 nm limit below a chip that
        // already ships (e.g. −20% TDP vs an efficiency-binned part):
        // the wall is then simply today's best.
        Err(crate::ProjectionError::LimitInsideData { .. }) => Ok(input
            .points
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max)),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivities_compute_for_all_domains() {
        for &d in Domain::all() {
            let rows = wall_sensitivity(d, TargetMetric::Performance).unwrap();
            assert_eq!(rows.len(), 3);
            for r in &rows {
                assert!(r.wall_base > 0.0);
                assert!(r.elasticity.is_finite(), "{d} {}", r.parameter);
                // Walls respond monotonically (or not at all) to budgets.
                assert!(r.wall_plus >= r.wall_minus * 0.999, "{d} {}", r.parameter);
            }
        }
    }

    #[test]
    fn gpu_wall_hinges_on_power_not_area() {
        // GPUs are power-limited: the TDP elasticity dominates die size.
        let rows = wall_sensitivity(Domain::GpuGraphics, TargetMetric::Performance).unwrap();
        let of = |p: Parameter| {
            rows.iter()
                .find(|r| r.parameter == p)
                .expect("all parameters present")
                .elasticity
        };
        assert!(
            of(Parameter::Tdp) > of(Parameter::MaxDie) + 0.05,
            "TDP {:.2} vs die {:.2}",
            of(Parameter::Tdp),
            of(Parameter::MaxDie)
        );
    }

    #[test]
    fn video_wall_hinges_on_area_not_power() {
        // Small decoder ASICs are area-limited: die elasticity dominates.
        let rows = wall_sensitivity(Domain::VideoDecoding, TargetMetric::Performance).unwrap();
        let of = |p: Parameter| {
            rows.iter()
                .find(|r| r.parameter == p)
                .expect("all parameters present")
                .elasticity
        };
        assert!(
            of(Parameter::MaxDie) > of(Parameter::Tdp) + 0.05,
            "die {:.2} vs TDP {:.2}",
            of(Parameter::MaxDie),
            of(Parameter::Tdp)
        );
        assert!(of(Parameter::Frequency) > 0.1, "decoders scale with clock");
    }

    #[test]
    fn elasticities_are_sublinear_or_proportional() {
        // No wall should explode super-linearly in any single parameter —
        // the sub-linear TC law and the e < 1 TDP laws guarantee damping.
        for &d in Domain::all() {
            for m in [TargetMetric::Performance, TargetMetric::EnergyEfficiency] {
                for r in wall_sensitivity(d, m).unwrap() {
                    assert!(
                        r.elasticity < 1.6,
                        "{d} {m:?} {}: elasticity {:.2}",
                        r.parameter,
                        r.elasticity
                    );
                }
            }
        }
    }
}
