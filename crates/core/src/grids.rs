//! Shardable work grids: the unit-addressable jobs the distributed
//! work tier executes.
//!
//! A [`Grid`] names a computation that decomposes into independently
//! computable, numbered **units** whose JSON results reassemble into one
//! document. The decomposition is the contract the fault-tolerant
//! coordinator in `accelwall-work` leans on: units are *idempotent*
//! (unit `i` yields the same bytes no matter which worker computes it,
//! or how many times), so lease expiry, re-issue after a worker death,
//! and straggler hedging all reduce to "compute unit `i` again
//! somewhere else" with no cross-unit coordination.
//!
//! [`run_local`] is both the zero-worker fallback and the byte-identity
//! baseline: it fans the same units across the in-process
//! `accelwall-par` pool and assembles them with the same index-ordered
//! fold, so a distributed run and a local run of one grid produce the
//! same bytes (asserted by the chaos suite in `tests/work.rs`).
//!
//! The standard grids ([`GridRegistry::standard`]):
//!
//! | id | unit | units |
//! |---|---|---|
//! | `all` | one registry experiment | 31 |
//! | `sweep` | one (node, simplification) S3D sweep slice | nodes × degrees |
//! | `corpus` | one 64-record corpus generation chunk | ⌈2613 / 64⌉ |
//! | `sensitivity` | one (domain, metric) wall sensitivity | 8 |
//! | `studies` | one empirical case-study experiment | 6 |

use std::sync::Arc;

use accelwall_accelsim::{simulate_lowered, DesignConfig};
use accelwall_chipdb::CorpusSpec;
use accelwall_projection::{wall_sensitivity, Domain, TargetMetric};
use accelwall_workloads::Workload;

use crate::cache::Ctx;
use crate::error::{Error, Result};
use crate::json::Value;
use crate::registry::Registry;

/// One shardable computation: numbered units plus a deterministic
/// assembly of their results.
///
/// Implementations must make `compute(ctx, i)` a pure function of
/// `(grid, sweep space, i)` — never of wall time, worker identity, or
/// the order units run in — and `assemble` a pure function of the
/// index-ordered unit results. Those two properties are what let the
/// work tier re-issue and hedge units freely while still folding a
/// byte-identical document.
pub trait Grid: Send + Sync {
    /// The name a `--grid` flag or lease request uses.
    fn id(&self) -> &'static str;

    /// One-line description shown in grid rosters and errors.
    fn description(&self) -> &'static str;

    /// Number of units the grid decomposes into under `ctx`'s sweep
    /// space. Unit indices are `0..len`.
    fn len(&self, ctx: &Ctx) -> usize;

    /// Computes one unit. Must be deterministic and independent of every
    /// other unit.
    ///
    /// # Errors
    ///
    /// Layer failures; a distributed worker reports these back as unit
    /// failures for the coordinator to re-issue.
    fn compute(&self, ctx: &Ctx, unit: usize) -> Result<Value>;

    /// Folds the index-ordered unit results into the grid's document.
    fn assemble(&self, units: Vec<Value>) -> Value;
}

/// Runs every unit of `grid` on the in-process `accelwall-par` pool and
/// assembles the result — the single-machine path the distributed fold
/// must match byte for byte, and the fallback the coordinator cuts over
/// to when no workers are alive.
///
/// # Errors
///
/// The first failing unit in index order.
pub fn run_local(grid: &Arc<dyn Grid>, ctx: &Arc<Ctx>) -> Result<Value> {
    let len = grid.len(ctx);
    let shared = Arc::clone(grid);
    let shared_ctx = Arc::clone(ctx);
    let units: Result<Vec<Value>> =
        accelwall_par::par_map(len, move |unit| shared.compute(&shared_ctx, unit))
            .into_iter()
            .collect();
    Ok(grid.assemble(units?))
}

/// The roster of shardable grids, analogous to [`Registry::paper`] for
/// experiments: the CLI's `--grid` values, the coordinator's grid
/// lookup, and the unknown-grid error all derive from one list.
pub struct GridRegistry {
    grids: Vec<Arc<dyn Grid>>,
}

impl std::fmt::Debug for GridRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridRegistry")
            .field("ids", &self.ids())
            .finish()
    }
}

impl GridRegistry {
    /// Every standard grid, in presentation order.
    pub fn standard() -> GridRegistry {
        GridRegistry {
            grids: vec![
                Arc::new(AllGrid::new()),
                Arc::new(SweepGrid),
                Arc::new(CorpusGrid::paper_scale()),
                Arc::new(SensitivityGrid),
                Arc::new(StudiesGrid::new()),
            ],
        }
    }

    /// Number of registered grids.
    pub fn len(&self) -> usize {
        self.grids.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.grids.is_empty()
    }

    /// Iterates the grids in registry order.
    pub fn grids(&self) -> impl Iterator<Item = &Arc<dyn Grid>> {
        self.grids.iter()
    }

    /// Every grid id, in registry order.
    pub fn ids(&self) -> Vec<&'static str> {
        self.grids.iter().map(|g| g.id()).collect()
    }

    /// Looks up one grid by id.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownGrid`] carrying the full known-id list.
    pub fn get(&self, id: &str) -> Result<Arc<dyn Grid>> {
        self.grids
            .iter()
            .find(|g| g.id() == id)
            .cloned()
            .ok_or_else(|| Error::UnknownGrid {
                id: id.to_string(),
                known: self.ids(),
            })
    }
}

impl Default for GridRegistry {
    fn default() -> GridRegistry {
        GridRegistry::standard()
    }
}

/// Every registry experiment as one unit each; assembles the same
/// id-keyed document `accelwall all --json` prints.
struct AllGrid {
    registry: Registry,
}

impl AllGrid {
    fn new() -> AllGrid {
        AllGrid {
            registry: Registry::paper(),
        }
    }
}

impl Grid for AllGrid {
    fn id(&self) -> &'static str {
        "all"
    }

    fn description(&self) -> &'static str {
        "every paper target, one experiment per unit"
    }

    fn len(&self, _ctx: &Ctx) -> usize {
        self.registry.len()
    }

    fn compute(&self, ctx: &Ctx, unit: usize) -> Result<Value> {
        let id = self.registry.ids()[unit];
        // Per-experiment failures are part of the document (exactly as
        // `accelwall all --json` reports them in place), not unit
        // failures: a deterministic experiment error would otherwise be
        // re-issued forever.
        Ok(match self.registry.run(id, ctx) {
            Ok(artifact) => artifact.json,
            Err(e) => Value::object([("error", Value::from(e.to_string()))]),
        })
    }

    fn assemble(&self, units: Vec<Value>) -> Value {
        Value::object(self.registry.ids().into_iter().zip(units))
    }
}

/// The S3D design-space sweep sharded along the hoisted kernel axis:
/// one unit per (node, simplification) combination, each simulating
/// every partitioning factor of that combination.
struct SweepGrid;

impl SweepGrid {
    /// The (node, simplification) combination of `unit` under `ctx`'s
    /// sweep space, in the same nesting order `SweepSpace::configs`
    /// enumerates.
    fn combo(ctx: &Ctx, unit: usize) -> DesignConfig {
        let space = ctx.sweep_space();
        let degrees = space.simplification_degrees.len();
        DesignConfig::new(
            space.nodes[unit / degrees],
            1,
            space.simplification_degrees[unit % degrees],
            space.heterogeneity,
        )
    }
}

impl Grid for SweepGrid {
    fn id(&self) -> &'static str {
        "sweep"
    }

    fn description(&self) -> &'static str {
        "S3D design-space sweep, one (node, simplification) slice per unit"
    }

    fn len(&self, ctx: &Ctx) -> usize {
        let space = ctx.sweep_space();
        space.nodes.len() * space.simplification_degrees.len()
    }

    fn compute(&self, ctx: &Ctx, unit: usize) -> Result<Value> {
        let combo = Self::combo(ctx, unit);
        let program = ctx.program(Workload::S3d)?;
        let mut points = Vec::with_capacity(ctx.sweep_space().partition_factors.len());
        for &partition in &ctx.sweep_space().partition_factors {
            let config = DesignConfig::new(
                combo.node,
                partition,
                combo.simplification_degree,
                combo.heterogeneity,
            );
            let report = simulate_lowered(&program, &config)?;
            points.push(Value::object([
                ("node", Value::from(config.node.to_string())),
                ("partition", Value::from(config.partition_factor)),
                ("simplification", Value::from(config.simplification_degree)),
                ("runtime_s", Value::from(report.runtime_s)),
                ("power_w", Value::from(report.power_w())),
            ]));
        }
        Ok(Value::array(points))
    }

    fn assemble(&self, units: Vec<Value>) -> Value {
        let parts: Vec<Vec<Value>> = units
            .into_iter()
            .map(|u| match u {
                Value::Array(points) => points,
                other => vec![other],
            })
            .collect();
        let points = accelwall_par::tree_fold(parts, |mut a, mut b| {
            a.append(&mut b);
            a
        })
        .unwrap_or_default();
        Value::object([
            ("points", Value::from(points.len())),
            ("series", Value::array(points)),
        ])
    }
}

/// The synthetic datasheet corpus sharded by generation chunk; each
/// unit summarizes its 64 records, and the summaries fold into
/// corpus-wide totals with the same pairwise tree `par_map_reduce`
/// uses.
struct CorpusGrid {
    spec: CorpusSpec,
}

impl CorpusGrid {
    fn paper_scale() -> CorpusGrid {
        CorpusGrid {
            spec: CorpusSpec::paper_scale(),
        }
    }
}

impl Grid for CorpusGrid {
    fn id(&self) -> &'static str {
        "corpus"
    }

    fn description(&self) -> &'static str {
        "datasheet corpus generation, one 64-record chunk per unit"
    }

    fn len(&self, _ctx: &Ctx) -> usize {
        self.spec.chunk_count()
    }

    fn compute(&self, _ctx: &Ctx, unit: usize) -> Result<Value> {
        let records = self.spec.generate_chunk(unit);
        let cpus = records
            .iter()
            .filter(|r| r.kind == accelwall_chipdb::ChipKind::Cpu)
            .count();
        let transistors: f64 = records.iter().map(|r| r.transistors).sum();
        let tdp_w: f64 = records.iter().map(|r| r.tdp_w).sum();
        Ok(Value::object([
            ("chips", Value::from(records.len())),
            ("cpus", Value::from(cpus)),
            ("transistors", Value::from(transistors)),
            ("tdp_w", Value::from(tdp_w)),
        ]))
    }

    fn assemble(&self, units: Vec<Value>) -> Value {
        let field = |v: &Value, key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0);
        let folded = accelwall_par::tree_fold(units, |a, b| {
            Value::object([
                (
                    "chips",
                    Value::from(field(&a, "chips") + field(&b, "chips")),
                ),
                ("cpus", Value::from(field(&a, "cpus") + field(&b, "cpus"))),
                (
                    "transistors",
                    Value::from(field(&a, "transistors") + field(&b, "transistors")),
                ),
                (
                    "tdp_w",
                    Value::from(field(&a, "tdp_w") + field(&b, "tdp_w")),
                ),
            ])
        });
        folded.unwrap_or_else(|| Value::object(Vec::<(&str, Value)>::new()))
    }
}

/// The wall-sensitivity grid: one unit per (domain, metric) cell of the
/// Table V perturbation study.
struct SensitivityGrid;

impl SensitivityGrid {
    fn cell(unit: usize) -> (Domain, TargetMetric) {
        let domain = Domain::all()[unit / 2];
        let metric = if unit.is_multiple_of(2) {
            TargetMetric::Performance
        } else {
            TargetMetric::EnergyEfficiency
        };
        (domain, metric)
    }
}

impl Grid for SensitivityGrid {
    fn id(&self) -> &'static str {
        "sensitivity"
    }

    fn description(&self) -> &'static str {
        "wall sensitivity, one (domain, metric) cell per unit"
    }

    fn len(&self, _ctx: &Ctx) -> usize {
        Domain::all().len() * 2
    }

    fn compute(&self, _ctx: &Ctx, unit: usize) -> Result<Value> {
        let (domain, metric) = Self::cell(unit);
        let rows = wall_sensitivity(domain, metric)?;
        Ok(Value::object([
            ("domain", Value::from(domain.to_string())),
            (
                "metric",
                Value::from(match metric {
                    TargetMetric::Performance => "performance",
                    TargetMetric::EnergyEfficiency => "energy_efficiency",
                }),
            ),
            (
                "rows",
                Value::array(rows.iter().map(|s| {
                    Value::object([
                        ("parameter", Value::from(s.parameter.to_string())),
                        ("wall_minus", Value::from(s.wall_minus)),
                        ("wall_base", Value::from(s.wall_base)),
                        ("wall_plus", Value::from(s.wall_plus)),
                        ("elasticity", Value::from(s.elasticity)),
                    ])
                })),
            ),
        ]))
    }

    fn assemble(&self, units: Vec<Value>) -> Value {
        Value::object([
            ("cells", Value::from(units.len())),
            ("grid", Value::array(units)),
        ])
    }
}

/// The empirical case-study family as one experiment per unit.
struct StudiesGrid {
    registry: Registry,
    ids: Vec<&'static str>,
}

impl StudiesGrid {
    fn new() -> StudiesGrid {
        let registry = Registry::paper();
        let ids = ["fig1", "fig4", "fig5", "fig8", "fig9", "insights"]
            .into_iter()
            .collect();
        StudiesGrid { registry, ids }
    }
}

impl Grid for StudiesGrid {
    fn id(&self) -> &'static str {
        "studies"
    }

    fn description(&self) -> &'static str {
        "the empirical case-study targets, one experiment per unit"
    }

    fn len(&self, _ctx: &Ctx) -> usize {
        self.ids.len()
    }

    fn compute(&self, ctx: &Ctx, unit: usize) -> Result<Value> {
        Ok(self.registry.run(self.ids[unit], ctx)?.json)
    }

    fn assemble(&self, units: Vec<Value>) -> Value {
        Value::object(self.ids.iter().copied().zip(units))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelwall_accelsim::SweepSpace;

    fn coarse_ctx() -> Arc<Ctx> {
        Arc::new(Ctx::with_space(SweepSpace::coarse()))
    }

    #[test]
    fn registry_ids_are_unique_and_lookups_resolve() {
        let grids = GridRegistry::standard();
        let ids = grids.ids();
        assert_eq!(
            ids,
            vec!["all", "sweep", "corpus", "sensitivity", "studies"]
        );
        for id in &ids {
            assert_eq!(grids.get(id).unwrap().id(), *id);
        }
        for grid in grids.grids() {
            assert!(!grid.description().is_empty(), "{} undescribed", grid.id());
        }
    }

    #[test]
    fn unknown_grid_error_carries_the_roster() {
        let grids = GridRegistry::standard();
        let error = grids.get("nope").map(|_| ()).unwrap_err();
        match error {
            Error::UnknownGrid { id, known } => {
                assert_eq!(id, "nope");
                assert_eq!(known, grids.ids());
            }
            other => panic!("expected UnknownGrid, got {other:?}"),
        }
    }

    #[test]
    fn sweep_grid_units_cover_the_space_and_match_the_cached_sweep() {
        let ctx = coarse_ctx();
        let grid = GridRegistry::standard().get("sweep").unwrap();
        let space = ctx.sweep_space().clone();
        assert_eq!(
            grid.len(&ctx),
            space.nodes.len() * space.simplification_degrees.len()
        );
        let doc = run_local(&grid, &ctx).unwrap();
        assert_eq!(
            doc.get("points").and_then(Value::as_f64),
            Some(space.len() as f64)
        );
        // Spot-check one unit against the memoized full sweep: the slice
        // decomposition must not perturb a single float.
        let points = ctx.sweep(Workload::S3d).unwrap();
        let series = doc.get("series").and_then(Value::as_array).unwrap();
        assert_eq!(series.len(), points.len());
        for (rendered, point) in series.iter().zip(points) {
            assert_eq!(
                rendered.get("runtime_s").and_then(Value::as_f64),
                Some(point.report.runtime_s)
            );
        }
    }

    #[test]
    fn unit_recompute_is_idempotent() {
        let ctx = coarse_ctx();
        let grid = GridRegistry::standard().get("sweep").unwrap();
        let a = grid.compute(&ctx, 3).unwrap();
        let b = grid.compute(&ctx, 3).unwrap();
        assert_eq!(a.pretty(), b.pretty(), "re-issued unit changed bytes");
    }

    #[test]
    fn corpus_grid_totals_match_the_generated_corpus() {
        let ctx = coarse_ctx();
        let grid = GridRegistry::standard().get("corpus").unwrap();
        let doc = run_local(&grid, &ctx).unwrap();
        let corpus = CorpusSpec::paper_scale().generate();
        assert_eq!(
            doc.get("chips").and_then(Value::as_f64),
            Some(corpus.len() as f64)
        );
        assert_eq!(
            doc.get("cpus").and_then(Value::as_f64),
            Some(
                corpus
                    .iter()
                    .filter(|r| r.kind == accelwall_chipdb::ChipKind::Cpu)
                    .count() as f64
            )
        );
    }

    #[test]
    fn sensitivity_grid_enumerates_every_domain_metric_cell() {
        let ctx = coarse_ctx();
        let grid = GridRegistry::standard().get("sensitivity").unwrap();
        let doc = run_local(&grid, &ctx).unwrap();
        let cells = doc.get("grid").and_then(Value::as_array).unwrap();
        assert_eq!(cells.len(), 8);
        let mut labels: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "{}/{}",
                    c.get("domain").and_then(Value::as_str).unwrap(),
                    c.get("metric").and_then(Value::as_str).unwrap()
                )
            })
            .collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 8, "duplicate cells");
    }

    #[test]
    fn run_local_is_deterministic_across_runs() {
        let grid = GridRegistry::standard().get("studies").unwrap();
        let a = run_local(&grid, &coarse_ctx()).unwrap().pretty();
        let b = run_local(&grid, &coarse_ctx()).unwrap().pretty();
        assert_eq!(a, b);
    }
}
