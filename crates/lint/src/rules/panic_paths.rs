//! `no-panic-paths` — no `unwrap`/`expect`/`panic!`/`todo!`/
//! `unimplemented!` in shipping code.
//!
//! The experiment pipeline runs every layer behind one trait object and
//! reports failures per target instead of aborting siblings
//! (`Registry::run_all`), and the HTTP server turns errors into status
//! codes. Both guarantees die the moment a deep layer panics, so panic
//! paths belong only in tests. Sites that are provably infallible take a
//! justified `// lint:allow(no-panic-paths): <why>`.

use crate::workspace::Workspace;
use crate::{Finding, Lint};

/// See the module docs.
pub struct NoPanicPaths;

const METHODS: [&str; 2] = ["unwrap", "expect"];
const MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

impl Lint for NoPanicPaths {
    fn name(&self) -> &'static str {
        "no-panic-paths"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/todo!/unimplemented! outside test code"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            if file.test_file {
                continue;
            }
            let code = file.code_tokens();
            for (i, t) in code.iter().enumerate() {
                if file.is_test_line(t.line) {
                    continue;
                }
                let method_call = METHODS.contains(&t.text.as_str())
                    && i > 0
                    && code[i - 1].is_punct(".")
                    && code.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && t.kind == crate::lexer::TokenKind::Ident;
                let macro_call = MACROS.contains(&t.text.as_str())
                    && code.get(i + 1).is_some_and(|n| n.is_punct("!"))
                    && t.kind == crate::lexer::TokenKind::Ident;
                if method_call || macro_call {
                    let call = if method_call {
                        format!(".{}()", t.text)
                    } else {
                        format!("{}!", t.text)
                    };
                    findings.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`{call}` in non-test code; return a typed `error::Error` \
                             or add `// lint:allow(no-panic-paths): <why>`"
                        ),
                    });
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::workspace;

    fn check(src: &str) -> Vec<Finding> {
        NoPanicPaths.check(&workspace(&[("crates/x/src/lib.rs", src)]))
    }

    #[test]
    fn flags_unwrap_expect_and_panicking_macros() {
        let src = "fn f() {\n\
                   let a = x.unwrap();\n\
                   let b = y.expect(\"reason\");\n\
                   panic!(\"no\");\n\
                   todo!();\n\
                   unimplemented!()\n\
                   }\n";
        let found = check(src);
        assert_eq!(found.len(), 5);
        assert_eq!(found[0].line, 2);
        assert!(found[0].message.contains(".unwrap()"));
        assert!(found[3].message.contains("todo!"));
    }

    #[test]
    fn ignores_related_but_safe_identifiers() {
        // unwrap_or / unwrap_or_else / expect_err-style helpers don't
        // panic; neither does an fn *named* expect, nor panic in a path.
        let src = "fn f() {\n\
                   let a = x.unwrap_or(0);\n\
                   let b = y.unwrap_or_else(|| 1);\n\
                   std::panic::catch_unwind(|| 2);\n\
                   }\n\
                   fn expect() {}\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = "fn f() {\n\
                   let s = \"please call .unwrap() responsibly\";\n\
                   // panic! is discussed here, not invoked\n\
                   }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn test_scopes_are_exempt() {
        let src = "fn shipping() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn case() { x.unwrap(); panic!(); }\n\
                   }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn test_files_are_exempt_wholesale() {
        let ws = workspace(&[("tests/cli.rs", "fn f() { x.unwrap(); }")]);
        assert!(NoPanicPaths.check(&ws).is_empty());
    }

    #[test]
    fn multiline_method_chains_anchor_to_the_call() {
        let src = "fn f() {\n\
                   let v = iter\n\
                       .max_by(cmp)\n\
                       .expect(\"non-empty\");\n\
                   }\n";
        let found = check(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 4);
    }
}
