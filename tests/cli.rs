//! End-to-end tests of the `accelwall` regeneration binary: every target
//! must exit cleanly and print its figure/table header, and `--json` must
//! emit valid JSON.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn every_target_succeeds_with_its_header() {
    let expectations = [
        ("fig1", "Fig. 1"),
        ("fig2", "Fig. 2"),
        ("fig3a", "Fig. 3a"),
        ("fig3b", "Fig. 3b"),
        ("fig3c", "Fig. 3c"),
        ("fig3d", "Fig. 3d"),
        ("fig4", "Fig. 4a"),
        ("fig5", "Fig. 5"),
        ("fig6", "Fig. 6"),
        ("fig7", "Fig. 7"),
        ("fig8", "Fig. 8"),
        ("fig9", "Fig. 9a"),
        ("fig11", "Fig. 11"),
        ("fig12", "Fig. 12"),
        ("table1", "Table I"),
        ("table2", "Table II"),
        ("table3", "Table III"),
        ("table4", "Table IV"),
        ("table5", "Table V"),
        ("fig15", "Fig. 15"),
        ("fig16", "Fig. 16"),
        ("wall", "Accelerator Wall"),
        ("beyond", "Beyond the wall"),
        ("insights", "Section IV-E"),
        ("dark", "Dark-silicon"),
        ("sensitivity", "sensitivity"),
        ("roadmap", "roadmap"),
        ("report", "Domain reports"),
    ];
    for (target, header) in expectations {
        let (ok, stdout) = run(&[target]);
        assert!(ok, "{target} failed");
        assert!(
            stdout.contains(header),
            "{target}: missing {header:?} in output:\n{stdout}"
        );
    }
}

#[test]
fn json_mode_emits_valid_json() {
    for target in ["fig1", "fig3d", "fig15", "wall", "beyond", "sensitivity"] {
        let (ok, stdout) = run(&[target, "--json"]);
        assert!(ok, "{target} --json failed");
        let parsed: serde_json::Value =
            serde_json::from_str(&stdout).unwrap_or_else(|e| panic!("{target}: {e}\n{stdout}"));
        assert!(
            parsed.is_array() || parsed.is_object(),
            "{target}: unexpected JSON shape"
        );
    }
}

#[test]
fn dot_target_emits_graphviz() {
    let (ok, stdout) = run(&["dot", "TRD"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.trim_end().ends_with('}'));
    // Unknown workloads fail cleanly.
    let out = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args(["dot", "NOPE"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn unknown_target_fails_with_hint() {
    let out = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args(["fig99"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown target"));
}

#[test]
fn list_shows_all_targets() {
    let (ok, stdout) = run(&["list"]);
    assert!(ok);
    for t in ["fig1", "fig16", "table5", "wall", "beyond", "roadmap", "report"] {
        assert!(stdout.contains(t), "missing {t}");
    }
}
