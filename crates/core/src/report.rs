//! One-call domain reports: everything the reproduction knows about an
//! accelerated domain, assembled across the study, projection, and
//! trajectory layers.
//!
//! This is the API a downstream user actually wants: "tell me about GPU
//! graphics" — dataset summary, CSR verdict, wall under both models with
//! its confidence band, runway in years, and the parameter the wall is
//! most sensitive to.

use accelwall_csr::CsrSeries;
use accelwall_projection::{
    beyond_wall, wall_sensitivity, BeyondWall, Domain, Sensitivity, TargetMetric, WallProjection,
};
use accelwall_studies::{bitcoin, fpga, gpu, video};
use std::fmt;

/// Errors produced while assembling a report.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// The study layer failed.
    Study(accelwall_studies::StudyError),
    /// The projection layer failed.
    Projection(accelwall_projection::ProjectionError),
    /// A study roster that should be non-empty came back empty.
    MissingData {
        /// What was expected to be present.
        what: &'static str,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Study(e) => write!(f, "study layer failed: {e}"),
            ReportError::Projection(e) => write!(f, "projection layer failed: {e}"),
            ReportError::MissingData { what } => write!(f, "missing data: {what} is empty"),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<accelwall_studies::StudyError> for ReportError {
    fn from(e: accelwall_studies::StudyError) -> Self {
        ReportError::Study(e)
    }
}

impl From<accelwall_projection::ProjectionError> for ReportError {
    fn from(e: accelwall_projection::ProjectionError) -> Self {
        ReportError::Projection(e)
    }
}

/// The maturity verdict the paper assigns a domain (Section IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Maturity {
    /// Returns plateaued or declining: the domain rides CMOS.
    Mature,
    /// CSR still climbing: algorithms still pay.
    Emerging,
}

impl fmt::Display for Maturity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Maturity::Mature => f.write_str("mature"),
            Maturity::Emerging => f.write_str("emerging"),
        }
    }
}

/// Everything the reproduction knows about one domain.
#[derive(Debug)]
pub struct DomainReport {
    /// The domain.
    pub domain: Domain,
    /// The domain's performance CSR series (its headline study figure).
    pub performance_series: CsrSeries,
    /// Maturity verdict derived from the series.
    pub maturity: Maturity,
    /// Performance wall.
    pub performance_wall: WallProjection,
    /// Energy-efficiency wall.
    pub efficiency_wall: WallProjection,
    /// Trajectory analysis (growth rates, runway).
    pub trajectory: BeyondWall,
    /// Table V sensitivities of the performance wall.
    pub sensitivities: Vec<Sensitivity>,
}

impl DomainReport {
    /// Assembles the full report for a domain.
    ///
    /// # Errors
    ///
    /// Propagates study and projection errors (none occur on the embedded
    /// datasets).
    ///
    /// ```
    /// use accelerator_wall::report::DomainReport;
    /// use accelerator_wall::prelude::Domain;
    ///
    /// let report = DomainReport::generate(Domain::BitcoinMining)?;
    /// assert_eq!(report.maturity.to_string(), "mature");
    /// assert!(report.performance_wall.further_linear < 25.0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn generate(domain: Domain) -> Result<Self, ReportError> {
        let performance_series = match domain {
            Domain::VideoDecoding => video::performance_series()?,
            Domain::BitcoinMining => bitcoin::fig1_series()?,
            Domain::FpgaCnn => fpga::performance_series(fpga::CnnModel::AlexNet)?,
            Domain::GpuGraphics => {
                let game =
                    gpu::fig5_games()
                        .into_iter()
                        .next()
                        .ok_or(ReportError::MissingData {
                            what: "Fig. 5 game roster",
                        })?;
                gpu::performance_series(&game)?
            }
        };
        // The §IV-E rule: a domain is emerging while its peak CSR clearly
        // exceeds what its best-performing chip achieves *and* keeps
        // climbing (here: peak > 2.5, the CNN signature).
        let maturity = if performance_series.peak_csr() > 2.5 {
            Maturity::Emerging
        } else {
            Maturity::Mature
        };
        Ok(DomainReport {
            domain,
            maturity,
            performance_wall: accelwall_projection::accelerator_wall(
                domain,
                TargetMetric::Performance,
            )?,
            efficiency_wall: accelwall_projection::accelerator_wall(
                domain,
                TargetMetric::EnergyEfficiency,
            )?,
            trajectory: beyond_wall(domain, TargetMetric::Performance)?,
            sensitivities: wall_sensitivity(domain, TargetMetric::Performance)?,
            performance_series,
        })
    }

    /// The Table V parameter the performance wall is most sensitive to,
    /// or `None` for a report with no sensitivity rows.
    pub fn dominant_constraint(&self) -> Option<&Sensitivity> {
        self.sensitivities
            .iter()
            .max_by(|a, b| a.elasticity.total_cmp(&b.elasticity))
    }

    /// A one-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        let article = match self.maturity {
            Maturity::Emerging => "an",
            Maturity::Mature => "a",
        };
        let constraint = match self.dominant_constraint() {
            Some(c) if c.elasticity >= 0.05 => {
                format!("{} (elasticity {:.2})", c.parameter, c.elasticity)
            }
            _ => "node physics alone (no Table V budget moves it)".to_string(),
        };
        format!(
            "{}: {article} {} domain that improved {:.0}x (of which {:.0}x was transistors); \
             {:.1}-{:.1}x of headroom remains at 5 nm ({:.1}-{:.1}x in ops/J), \
             roughly {:.1}-{:.1} years at its historical rate; the wall is \
             gated by {constraint}.",
            self.domain,
            self.maturity,
            self.performance_series.peak_reported(),
            self.performance_series.peak_physical(),
            self.performance_wall.further_log,
            self.performance_wall.further_linear,
            self.efficiency_wall.further_log,
            self.efficiency_wall.further_linear,
            self.trajectory.runway_years_log,
            self.trajectory.runway_years_linear,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_generate_for_all_domains() {
        for &d in Domain::all() {
            let r = DomainReport::generate(d).unwrap();
            assert_eq!(r.domain, d);
            assert!(!r.performance_series.rows.is_empty());
            assert_eq!(r.sensitivities.len(), 3);
            let s = r.summary();
            assert!(s.contains(&d.to_string()));
            assert!(s.len() > 100);
        }
    }

    #[test]
    fn maturity_verdicts_match_the_paper() {
        assert_eq!(
            DomainReport::generate(Domain::VideoDecoding)
                .unwrap()
                .maturity,
            Maturity::Mature
        );
        assert_eq!(
            DomainReport::generate(Domain::GpuGraphics)
                .unwrap()
                .maturity,
            Maturity::Mature
        );
        assert_eq!(
            DomainReport::generate(Domain::BitcoinMining)
                .unwrap()
                .maturity,
            Maturity::Mature
        );
        assert_eq!(
            DomainReport::generate(Domain::FpgaCnn).unwrap().maturity,
            Maturity::Emerging
        );
    }

    #[test]
    fn dominant_constraints_are_physical() {
        // GPUs/FPGAs hinge on power; small ASICs on area or clock.
        let gpu = DomainReport::generate(Domain::GpuGraphics).unwrap();
        assert_eq!(
            gpu.dominant_constraint().unwrap().parameter.to_string(),
            "TDP"
        );
        let video = DomainReport::generate(Domain::VideoDecoding).unwrap();
        assert_ne!(
            video.dominant_constraint().unwrap().parameter.to_string(),
            "TDP"
        );
    }
}
