//! A reference interpreter for DFGs.
//!
//! Executes a graph on `f64` values so workload generators can be validated
//! functionally against plain-software implementations of the same kernels.
//! Bitwise operations interpret their operands as unsigned 64-bit integers
//! (every integer the workloads use is exactly representable in an `f64`).

use crate::graph::{Dfg, NodeKind, Op};
use crate::{DfgError, Result};
use std::collections::HashMap;

impl Dfg {
    /// Evaluates the graph for one set of input values, keyed by input
    /// variable name; returns the output variable values.
    ///
    /// # Errors
    ///
    /// * [`DfgError::MissingInput`] when `inputs` lacks a named input.
    /// * [`DfgError::NonFiniteValue`] when an operation produces NaN or
    ///   infinity (for example division by zero).
    pub fn evaluate(&self, inputs: &HashMap<String, f64>) -> Result<HashMap<String, f64>> {
        let mut values = vec![0.0f64; self.nodes.len()];
        let mut outputs = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let value = match &node.kind {
                NodeKind::Input(name) => *inputs
                    .get(name)
                    .ok_or_else(|| DfgError::MissingInput(name.clone()))?,
                NodeKind::Compute(op) => {
                    let args: Vec<f64> = node.operands.iter().map(|o| values[o.index()]).collect();
                    self.apply(*op, &args)
                }
                NodeKind::Output(name) => {
                    let v = values[node.operands[0].index()];
                    outputs.insert(name.clone(), v);
                    v
                }
            };
            if !value.is_finite() {
                return Err(DfgError::NonFiniteValue { node: i });
            }
            values[i] = value;
        }
        Ok(outputs)
    }

    fn apply(&self, op: Op, args: &[f64]) -> f64 {
        let bits = |x: f64| x as u64;
        match op {
            Op::Add => args[0] + args[1],
            Op::Sub => args[0] - args[1],
            Op::Mul => args[0] * args[1],
            Op::Div => args[0] / args[1],
            Op::Mod => args[0].rem_euclid(args[1]),
            Op::Min => args[0].min(args[1]),
            Op::Max => args[0].max(args[1]),
            Op::Abs => args[0].abs(),
            Op::Neg => -args[0],
            Op::Sqrt => args[0].sqrt(),
            Op::And => (bits(args[0]) & bits(args[1])) as f64,
            Op::Or => (bits(args[0]) | bits(args[1])) as f64,
            Op::Xor => (bits(args[0]) ^ bits(args[1])) as f64,
            Op::Not => (!(bits(args[0]) as u32)) as f64,
            Op::Shl => ((bits(args[0])) << (bits(args[1]) & 63)) as f64,
            Op::Shr => ((bits(args[0])) >> (bits(args[1]) & 63)) as f64,
            Op::CmpLt => f64::from(args[0] < args[1]),
            Op::CmpEq => f64::from(args[0] == args[1]),
            Op::Select => {
                if args[0] != 0.0 {
                    args[1]
                } else {
                    args[2]
                }
            }
            Op::Sigmoid => 1.0 / (1.0 + (-args[0]).exp()),
            Op::Lut { table } => {
                // lint:allow(no-panic-paths): DfgBuilder::build validates every Lut op's table id before a graph can exist
                let t = self.table(table).expect("lut table registered at build");
                t[(bits(args[0]) & 0xff) as usize] as f64
            }
            Op::Copy => args[0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;

    fn eval1(op: Op, args: &[f64]) -> f64 {
        let mut b = DfgBuilder::new("t");
        let ids: Vec<_> = args
            .iter()
            .enumerate()
            .map(|(i, _)| b.input(format!("x{i}")))
            .collect();
        let r = b.op(op, &ids);
        b.output("y", r);
        let g = b.build().unwrap();
        let inputs: HashMap<String, f64> = args
            .iter()
            .enumerate()
            .map(|(i, &v)| (format!("x{i}"), v))
            .collect();
        g.evaluate(&inputs).unwrap()["y"]
    }

    #[test]
    fn arithmetic_ops() {
        assert_eq!(eval1(Op::Add, &[2.0, 3.0]), 5.0);
        assert_eq!(eval1(Op::Sub, &[2.0, 3.0]), -1.0);
        assert_eq!(eval1(Op::Mul, &[2.0, 3.0]), 6.0);
        assert_eq!(eval1(Op::Div, &[7.0, 2.0]), 3.5);
        assert_eq!(eval1(Op::Mod, &[7.0, 3.0]), 1.0);
        assert_eq!(eval1(Op::Min, &[2.0, 3.0]), 2.0);
        assert_eq!(eval1(Op::Max, &[2.0, 3.0]), 3.0);
        assert_eq!(eval1(Op::Abs, &[-2.5]), 2.5);
        assert_eq!(eval1(Op::Neg, &[2.5]), -2.5);
        assert_eq!(eval1(Op::Sqrt, &[9.0]), 3.0);
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(
            eval1(Op::And, &[0b1100 as f64, 0b1010 as f64]),
            0b1000 as f64
        );
        assert_eq!(
            eval1(Op::Or, &[0b1100 as f64, 0b1010 as f64]),
            0b1110 as f64
        );
        assert_eq!(
            eval1(Op::Xor, &[0b1100 as f64, 0b1010 as f64]),
            0b0110 as f64
        );
        assert_eq!(eval1(Op::Shl, &[1.0, 4.0]), 16.0);
        assert_eq!(eval1(Op::Shr, &[16.0, 4.0]), 1.0);
        assert_eq!(eval1(Op::Not, &[0.0]), u32::MAX as f64);
    }

    #[test]
    fn comparison_and_select() {
        assert_eq!(eval1(Op::CmpLt, &[1.0, 2.0]), 1.0);
        assert_eq!(eval1(Op::CmpLt, &[2.0, 1.0]), 0.0);
        assert_eq!(eval1(Op::CmpEq, &[2.0, 2.0]), 1.0);
        assert_eq!(eval1(Op::Select, &[1.0, 10.0, 20.0]), 10.0);
        assert_eq!(eval1(Op::Select, &[0.0, 10.0, 20.0]), 20.0);
    }

    #[test]
    fn sigmoid_midpoint() {
        assert!((eval1(Op::Sigmoid, &[0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lut_indexes_table() {
        let mut b = DfgBuilder::new("t");
        let mut table = [0u8; 256];
        table[7] = 42;
        let t = b.register_table(table);
        let x = b.input("x");
        let r = b.op(Op::Lut { table: t }, &[x]);
        b.output("y", r);
        let g = b.build().unwrap();
        let out = g
            .evaluate(&HashMap::from([("x".to_string(), 7.0)]))
            .unwrap();
        assert_eq!(out["y"], 42.0);
    }

    #[test]
    fn missing_input_errors() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        b.output("y", x);
        let g = b.build().unwrap();
        assert!(matches!(
            g.evaluate(&HashMap::new()),
            Err(DfgError::MissingInput(_))
        ));
    }

    #[test]
    fn division_by_zero_reported() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let z = b.input("z");
        let d = b.op(Op::Div, &[x, z]);
        b.output("y", d);
        let g = b.build().unwrap();
        let inputs = HashMap::from([("x".to_string(), 1.0), ("z".to_string(), 0.0)]);
        assert!(matches!(
            g.evaluate(&inputs),
            Err(DfgError::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn fig11_evaluates() {
        let mut b = DfgBuilder::new("fig11");
        let d1 = b.input("d1");
        let d2 = b.input("d2");
        let d3 = b.input("d3");
        let s1a = b.op(Op::Add, &[d1, d2]);
        let s1b = b.op(Op::Div, &[d2, d3]);
        let s2a = b.op(Op::Sub, &[s1a, s1b]);
        let s2b = b.op(Op::Add, &[s1b, d3]);
        b.output("o1", s2a);
        b.output("o2", s2b);
        let g = b.build().unwrap();
        let out = g
            .evaluate(&HashMap::from([
                ("d1".to_string(), 6.0),
                ("d2".to_string(), 4.0),
                ("d3".to_string(), 2.0),
            ]))
            .unwrap();
        assert_eq!(out["o1"], (6.0 + 4.0) - 4.0 / 2.0);
        assert_eq!(out["o2"], 4.0 / 2.0 + 2.0);
    }
}
