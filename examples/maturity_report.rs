//! The state-of-specialization report: Section IV-E's insights recomputed
//! from the datasets, the Moore's-law premise checked on the corpus, and
//! each domain's remaining runway translated into years.
//!
//! Run with: `cargo run --example maturity_report`

use accelerator_wall::chipdb::trends;
use accelerator_wall::prelude::*;
use accelerator_wall::studies::insights::section4e_insights;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The premise: transistors kept doubling while the paper's data was
    // collected — verify on the corpus the potential model is built from.
    let corpus = CorpusSpec::paper_scale().generate();
    let moore = trends::moores_law(&corpus)?;
    println!(
        "corpus Moore's law: transistor frontier doubled every {:.1} years (R² {:.2})",
        moore.doubling_years, moore.r_squared
    );

    // The diagnosis: Section IV-E, recomputed.
    println!("\nSection IV-E insights:");
    for insight in section4e_insights()? {
        println!(
            "  [{}] {}",
            if insight.holds { "holds" } else { "VIOLATED" },
            insight.title
        );
        for (label, value) in &insight.evidence {
            println!("      {label:<42} {value:>9.2}");
        }
    }

    // The prognosis: the wall, in years of business-as-usual.
    println!("\nruns out of runway (performance, at historical growth rates):");
    for &domain in Domain::all() {
        let b = beyond_wall(domain, TargetMetric::Performance)?;
        println!(
            "  {:<22} grew {:>4.0}%/yr, CSR {:>4.0}%/yr -> {:.1}-{:.1} years to the wall",
            domain.to_string(),
            b.historical_cagr * 100.0,
            b.csr_cagr * 100.0,
            b.runway_years_log,
            b.runway_years_linear
        );
    }
    println!("\nonce CMOS stops, sustaining any of those trajectories falls entirely on CSR —");
    println!("which never grew at a tenth of the required rate in any mature domain.");
    Ok(())
}
