//! Walks the Table I / Table II theory on a TPU-like matrix-multiply
//! accelerator: the nine specialization-concept cells, their theoretical
//! complexity limits, and what each concept buys on a real GEMM dataflow
//! graph under the simulator.
//!
//! Run with: `cargo run --example tpu_concepts`

use accelerator_wall::dfg::concepts::tpu_examples;
use accelerator_wall::dfg::limits::table2;
use accelerator_wall::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table I: the concept taxonomy on Google's TPU (Fig. 10).
    println!("Table I — specialization concepts, TPU examples:");
    for e in tpu_examples() {
        println!(
            "  ({}) {:<13} x {:<14} {}",
            e.index,
            e.component.to_string(),
            e.concept.to_string(),
            e.description
        );
    }

    // The TPU's core computation: dense matrix multiply.
    let gemm = Workload::Gmm.default_instance();
    let stats = gemm.stats();
    println!(
        "\nGEMM DFG: |V|={} |E|={} |V_IN|={} |V_OUT|={} D={} max|WS|={}",
        stats.vertices,
        stats.edges,
        stats.inputs,
        stats.outputs,
        stats.depth,
        stats.max_working_set
    );

    // Table II: each concept's theoretical limit, evaluated on this graph.
    println!("\nTable II — concept limits evaluated on the GEMM graph:");
    println!(
        "{:<14} {:<15} {:<26} {:>14} {:>14}",
        "component", "concept", "time bound", "time(GEMM)", "space(GEMM)"
    );
    for cell in table2() {
        println!(
            "{:<14} {:<15} {:<26} {:>14.0} {:>14.2e}",
            cell.component.to_string(),
            cell.concept.to_string(),
            cell.time.to_string(),
            cell.time.evaluate(&stats),
            cell.space.evaluate(&stats)
        );
    }

    // What the concepts buy in practice: toggle each knob on the simulator.
    let node = TechNode::N7;
    let base = simulate(&gemm, &DesignConfig::new(node, 1, 1, false))?;
    let partitioned = simulate(&gemm, &DesignConfig::new(node, 256, 1, false))?;
    let fused = simulate(&gemm, &DesignConfig::new(node, 256, 1, true))?;
    let simplified = simulate(&gemm, &DesignConfig::new(node, 256, 5, true))?;
    println!("\nsimulated at {node} (1 GHz):");
    for (label, r) in [
        ("baseline (no concepts)", &base),
        ("+ partitioning x256", &partitioned),
        ("+ heterogeneity (fusion)", &fused),
        ("+ simplification (24-bit)", &simplified),
    ] {
        println!(
            "  {:<26} {:>9.0} cycles {:>10.2e} J {:>8.3} W",
            label,
            r.cycles,
            r.total_energy_j(),
            r.power_w()
        );
    }
    println!(
        "\nspeedup {:.1}x, energy saving {:.1}x — and every step was bounded by Table II.",
        base.cycles / simplified.cycles,
        base.total_energy_j() / simplified.total_energy_j()
    );
    Ok(())
}
