//! A per-crate symbol index distilled from the parsed item trees.
//!
//! The semantic rules reason about identity across files of one crate:
//! `atomic-ordering` groups sites by atomic *field*, `determinism`
//! needs to know which struct fields are `HashMap`s, `bounded-channel`
//! resolves a bare `channel(...)` call through the file's `use` map.
//! This module builds that context once per [`Workspace`] from the
//! [`crate::ast`] trees — no re-lexing, no re-parsing.

use crate::ast::ItemKind;
use crate::parser::use_leaves;
use crate::source::SourceFile;
use crate::workspace::Workspace;
use std::collections::BTreeMap;

/// The crate a workspace-relative path belongs to: `crates/par/...` →
/// `par`, anything under the root `src/` → `accelwall` (the CLI crate).
pub fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("crates").to_string(),
        _ => "accelwall".to_string(),
    }
}

/// What one crate declares, keyed for the rules' lookups.
#[derive(Debug, Default)]
pub struct CrateIndex {
    /// Struct-field name → declared type text, for every struct in the
    /// crate (space-joined tokens, e.g. `"Arc < AtomicU64 >"`). On a
    /// field-name collision the first declaration wins; the rules only
    /// do `contains(...)` classification, so collisions are benign.
    pub field_types: BTreeMap<String, String>,
    /// `const`/`static` name → declared type text.
    pub static_types: BTreeMap<String, String>,
}

/// The workspace-wide index: one [`CrateIndex`] per crate.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    crates: BTreeMap<String, CrateIndex>,
}

impl SymbolIndex {
    /// Builds the index from every parsed file in the workspace.
    pub fn build(ws: &Workspace) -> SymbolIndex {
        let mut index = SymbolIndex::default();
        for file in &ws.files {
            if file.test_file {
                continue;
            }
            let entry = index.crates.entry(crate_of(&file.rel_path)).or_default();
            for item in file.parsed.walk() {
                match item.kind {
                    ItemKind::Struct => {
                        for f in &item.fields {
                            entry
                                .field_types
                                .entry(f.name.clone())
                                .or_insert_with(|| f.ty.clone());
                        }
                    }
                    ItemKind::Const => {
                        for f in &item.fields {
                            entry
                                .static_types
                                .entry(f.name.clone())
                                .or_insert_with(|| f.ty.clone());
                        }
                    }
                    _ => {}
                }
            }
        }
        index
    }

    /// The index for one crate, if any of its files were scanned.
    pub fn of(&self, krate: &str) -> Option<&CrateIndex> {
        self.crates.get(krate)
    }

    /// The declared type text of `name` as a struct field or
    /// const/static in `krate`.
    pub fn type_of(&self, krate: &str, name: &str) -> Option<&str> {
        let c = self.of(krate)?;
        c.field_types
            .get(name)
            .or_else(|| c.static_types.get(name))
            .map(String::as_str)
    }
}

/// The file's import map: leaf name (or alias) → full `use` path.
pub fn use_map(file: &SourceFile) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for item in file.parsed.walk() {
        if item.kind == ItemKind::Use {
            for (leaf, full) in use_leaves(&item.name) {
                map.insert(leaf, full);
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::workspace;

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/par/src/lib.rs"), "par");
        assert_eq!(crate_of("src/bin/accelwall.rs"), "accelwall");
        assert_eq!(crate_of("tests/lint.rs"), "accelwall");
    }

    #[test]
    fn index_collects_fields_and_statics() {
        let ws = workspace(&[
            (
                "crates/par/src/lib.rs",
                "use std::sync::atomic::AtomicU64;\n\
                 pub struct Pool { cursor: AtomicU64, size: usize }\n\
                 static JOBS: AtomicU64 = AtomicU64::new(0);\n",
            ),
            (
                "crates/par/src/extra.rs",
                "pub struct Extra { cursor: usize }\n",
            ),
        ]);
        let index = SymbolIndex::build(&ws);
        assert_eq!(index.type_of("par", "cursor"), Some("AtomicU64"));
        assert_eq!(index.type_of("par", "JOBS"), Some("AtomicU64"));
        assert_eq!(index.type_of("par", "size"), Some("usize"));
        assert!(index.type_of("server", "cursor").is_none());
    }

    #[test]
    fn use_map_resolves_leaves() {
        let ws = workspace(&[(
            "crates/x/src/lib.rs",
            "use std::sync::mpsc::{channel, Sender};\nfn f() {}\n",
        )]);
        let map = use_map(&ws.files[0]);
        assert_eq!(
            map.get("channel").map(String::as_str),
            Some("std::sync::mpsc::channel")
        );
    }
}
