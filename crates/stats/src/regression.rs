//! Regression models: linear, power-law, log-linear, and polynomial fits.
//!
//! These four shapes cover every fit in the paper:
//!
//! * [`Linear`] — the performance projection model of Eq. 5,
//!   `y = slope * x + intercept`.
//! * [`PowerLaw`] — the transistor-budget fits of Figs. 3b/3c,
//!   `y = coefficient * x^exponent` (ordinary least squares in log-log
//!   space, i.e. "logarithmic regression with least mean square errors" in
//!   the paper's words).
//! * [`LogLinear`] — the energy-efficiency projection model of Eq. 6,
//!   `y = slope * ln(x) + intercept`.
//! * [`Polynomial`] — the quadratic trend curves drawn through the GPU
//!   frame-rate scatter of Fig. 5.

use crate::matrix::Matrix;
use crate::{check_paired, Result, StatsError};

/// Ordinary least squares line `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Linear {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
    /// Standard error of the slope estimate (0 for a perfect fit).
    pub slope_stderr: f64,
    /// Number of observations the fit saw.
    pub n_obs: usize,
    /// Mean of the predictor values.
    pub mean_x: f64,
    /// Centered sum of squares of the predictor, `Σ(x − x̄)²`.
    pub sxx: f64,
    /// Residual variance `s² = SS_res / (n − 2)` (0 when `n = 2`).
    pub residual_variance: f64,
}

impl Linear {
    /// Fits the line by ordinary least squares.
    ///
    /// # Errors
    ///
    /// [`StatsError::LengthMismatch`] for unpaired inputs,
    /// [`StatsError::NotEnoughData`] for fewer than 2 points,
    /// [`StatsError::Singular`] when all x values coincide, and
    /// [`StatsError::NonFinite`] for NaN/infinite inputs.
    ///
    /// ```
    /// use accelwall_stats::Linear;
    /// let fit = Linear::fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
    /// assert!((fit.slope - 2.0).abs() < 1e-12);
    /// assert!((fit.intercept - 1.0).abs() < 1e-12);
    /// ```
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        check_paired(xs, ys, 2)?;
        let n = xs.len() as f64;
        let sx: f64 = xs.iter().sum();
        let sy: f64 = ys.iter().sum();
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 * n * n {
            return Err(StatsError::Singular);
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        let mean_y = sy / n;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean_y) * (y - mean_y)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| {
                let e = y - (slope * x + intercept);
                e * e
            })
            .sum();
        // lint:allow(float-hygiene): ss_tot is a sum of squares; exactly 0.0 iff every y equals the mean, where R^2 is 1 by convention
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        let mean_x = sx / n;
        let sxx_centered = sxx - n * mean_x * mean_x;
        let residual_variance = if xs.len() > 2 {
            ss_res / (n - 2.0)
        } else {
            0.0
        };
        Ok(Linear {
            slope,
            intercept,
            r_squared,
            slope_stderr: (residual_variance / sxx_centered).max(0.0).sqrt(),
            n_obs: xs.len(),
            mean_x,
            sxx: sxx_centered,
            residual_variance,
        })
    }

    /// Evaluates the fitted line at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Standard error of the fitted *mean response* at `x`:
    /// `s · sqrt(1/n + (x − x̄)² / Sxx)`. Grows with extrapolation
    /// distance — the honest error bar on a projected wall.
    pub fn mean_response_stderr(&self, x: f64) -> f64 {
        let n = self.n_obs as f64;
        let d = x - self.mean_x;
        (self.residual_variance * (1.0 / n + d * d / self.sxx))
            .max(0.0)
            .sqrt()
    }

    /// A `±z` confidence band for the mean response at `x`
    /// (`z = 1.96` ≈ 95% under normal errors).
    pub fn confidence_band(&self, x: f64, z: f64) -> (f64, f64) {
        let se = self.mean_response_stderr(x);
        let y = self.eval(x);
        (y - z * se, y + z * se)
    }
}

/// Mergeable OLS accumulator: the sufficient statistics of a linear fit
/// (`n, Σx, Σy, Σx², Σy², Σxy`), built so regression accumulation can be
/// split across chunks and combined with a tree reduction. `merge` is
/// exact over the underlying sums, so a fixed chunking yields the same
/// fit no matter how many threads accumulated the partials.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegressionSums {
    /// Number of observations accumulated.
    pub n: usize,
    sx: f64,
    sy: f64,
    sxx: f64,
    syy: f64,
    sxy: f64,
}

impl RegressionSums {
    /// Accumulates one observation.
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.syy += y * y;
        self.sxy += x * y;
    }

    /// Combines two partial accumulations (commutative and associative).
    pub fn merge(self, other: Self) -> Self {
        RegressionSums {
            n: self.n + other.n,
            sx: self.sx + other.sx,
            sy: self.sy + other.sy,
            sxx: self.sxx + other.sxx,
            syy: self.syy + other.syy,
            sxy: self.sxy + other.sxy,
        }
    }

    /// Solves the accumulated normal equations into a [`Linear`] fit.
    ///
    /// The estimates agree with [`Linear::fit`] up to float rounding
    /// (the residual sum of squares is derived algebraically from the
    /// sums instead of a second pass over the data).
    ///
    /// # Errors
    ///
    /// [`StatsError::NotEnoughData`] below 2 observations,
    /// [`StatsError::NonFinite`] when the sums overflowed or saw a
    /// NaN, and [`StatsError::Singular`] when all x values coincide.
    pub fn linear(&self) -> Result<Linear> {
        if self.n < 2 {
            return Err(StatsError::NotEnoughData {
                provided: self.n,
                required: 2,
            });
        }
        let finite = [self.sx, self.sy, self.sxx, self.syy, self.sxy];
        if finite.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite);
        }
        let n = self.n as f64;
        let denom = n * self.sxx - self.sx * self.sx;
        if denom.abs() < 1e-12 * n * n {
            return Err(StatsError::Singular);
        }
        let slope = (n * self.sxy - self.sx * self.sy) / denom;
        let intercept = (self.sy - slope * self.sx) / n;
        let mean_x = self.sx / n;
        let mean_y = self.sy / n;
        let sxx_centered = self.sxx - n * mean_x * mean_x;
        let sxy_centered = self.sxy - n * mean_x * mean_y;
        // Both centered sums of squares are non-negative analytically;
        // clamp the tiny negative values float cancellation can leave.
        let ss_tot = (self.syy - n * mean_y * mean_y).max(0.0);
        let ss_res = (ss_tot - slope * sxy_centered).max(0.0);
        let r_squared = if ss_tot <= 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        let residual_variance = if self.n > 2 { ss_res / (n - 2.0) } else { 0.0 };
        Ok(Linear {
            slope,
            intercept,
            r_squared,
            slope_stderr: (residual_variance / sxx_centered).max(0.0).sqrt(),
            n_obs: self.n,
            mean_x,
            sxx: sxx_centered,
            residual_variance,
        })
    }
}

/// Power law `y = coefficient * x^exponent`, fitted in log-log space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Multiplicative coefficient (`a` in `y = a * x^b`).
    pub coefficient: f64,
    /// Exponent (`b` in `y = a * x^b`).
    pub exponent: f64,
    /// Coefficient of determination in log-log space.
    pub r_squared: f64,
}

impl PowerLaw {
    /// Constructs a power law from known parameters (used when reproducing a
    /// published fit verbatim, e.g. `TC(D) = 4.99e9 * D^0.877`).
    pub fn new(coefficient: f64, exponent: f64) -> Self {
        PowerLaw {
            coefficient,
            exponent,
            r_squared: 1.0,
        }
    }

    /// Fits the power law by OLS on `(ln x, ln y)` pairs.
    ///
    /// # Errors
    ///
    /// In addition to the errors of [`Linear::fit`], returns
    /// [`StatsError::DomainViolation`] if any x or y is not strictly
    /// positive.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        check_paired(xs, ys, 2)?;
        if xs.iter().chain(ys.iter()).any(|&v| v <= 0.0) {
            return Err(StatsError::DomainViolation {
                what: "power-law fit requires strictly positive x and y",
            });
        }
        let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
        let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
        let line = Linear::fit(&lx, &ly)?;
        Ok(PowerLaw {
            coefficient: line.intercept.exp(),
            exponent: line.slope,
            r_squared: line.r_squared,
        })
    }

    /// Evaluates the power law at `x`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x` is not strictly positive.
    pub fn eval(&self, x: f64) -> f64 {
        debug_assert!(x > 0.0, "power law evaluated at non-positive x");
        self.coefficient * x.powf(self.exponent)
    }

    /// Inverts the power law: the `x` such that `eval(x) = y`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `y` is not strictly positive or the
    /// exponent is zero.
    pub fn invert(&self, y: f64) -> f64 {
        // lint:allow(float-hygiene): debug guard against division by an exactly-zero exponent; an epsilon would reject legal near-flat laws
        debug_assert!(y > 0.0 && self.exponent != 0.0);
        (y / self.coefficient).powf(1.0 / self.exponent)
    }
}

/// Log-linear model `y = slope * ln(x) + intercept` (paper Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogLinear {
    /// Coefficient of `ln(x)`.
    pub slope: f64,
    /// Additive intercept.
    pub intercept: f64,
    /// Coefficient of determination in (ln x, y) space.
    pub r_squared: f64,
}

impl LogLinear {
    /// Fits the model by OLS on `(ln x, y)` pairs.
    ///
    /// # Errors
    ///
    /// In addition to the errors of [`Linear::fit`], returns
    /// [`StatsError::DomainViolation`] if any x is not strictly positive.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        check_paired(xs, ys, 2)?;
        if xs.iter().any(|&v| v <= 0.0) {
            return Err(StatsError::DomainViolation {
                what: "log-linear fit requires strictly positive x",
            });
        }
        let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
        let line = Linear::fit(&lx, ys)?;
        Ok(LogLinear {
            slope: line.slope,
            intercept: line.intercept,
            r_squared: line.r_squared,
        })
    }

    /// Evaluates the model at `x`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x` is not strictly positive.
    pub fn eval(&self, x: f64) -> f64 {
        debug_assert!(x > 0.0, "log-linear model evaluated at non-positive x");
        self.slope * x.ln() + self.intercept
    }
}

/// Least-squares polynomial `y = c0 + c1 x + ... + cd x^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    /// Coefficients in ascending-degree order (`coeffs[k]` multiplies `x^k`).
    pub coeffs: Vec<f64>,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

impl Polynomial {
    /// Fits a degree-`degree` polynomial by solving the normal equations.
    ///
    /// # Errors
    ///
    /// [`StatsError::NotEnoughData`] when there are fewer than `degree + 1`
    /// points, [`StatsError::Singular`] when the design matrix is rank
    /// deficient (e.g. repeated x values spanning fewer distinct abscissae
    /// than unknowns), plus pairing/finiteness errors.
    ///
    /// ```
    /// use accelwall_stats::Polynomial;
    /// let xs = [0.0, 1.0, 2.0, 3.0];
    /// let ys = [1.0, 2.0, 5.0, 10.0]; // y = 1 + x^2
    /// let p = Polynomial::fit(&xs, &ys, 2).unwrap();
    /// assert!((p.eval(4.0) - 17.0).abs() < 1e-9);
    /// ```
    pub fn fit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Self> {
        check_paired(xs, ys, degree + 1)?;
        let n_coef = degree + 1;
        // Normal equations: (X^T X) c = X^T y, with X the Vandermonde matrix.
        let mut xtx = Matrix::zeros(n_coef, n_coef);
        let mut xty = vec![0.0; n_coef];
        // Power sums S_k = sum x^k for k = 0..2*degree.
        let mut power_sums = vec![0.0; 2 * degree + 1];
        for &x in xs {
            let mut p = 1.0;
            for sum in &mut power_sums {
                // lint:allow(determinism): power sums accumulate over xs in slice order on one thread; the fit is never chunked
                *sum += p;
                p *= x;
            }
        }
        for i in 0..n_coef {
            for j in 0..n_coef {
                xtx.set(i, j, power_sums[i + j]);
            }
        }
        for (&x, &y) in xs.iter().zip(ys) {
            let mut p = 1.0;
            for xty_i in &mut xty {
                // lint:allow(determinism): same fixed slice-order accumulation as the power sums above
                *xty_i += p * y;
                p *= x;
            }
        }
        let coeffs = xtx.solve(&xty)?;
        let mean_y: f64 = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean_y) * (y - mean_y)).sum();
        let poly = Polynomial {
            coeffs,
            r_squared: 0.0,
        };
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let e = y - poly.eval(x);
                e * e
            })
            .sum();
        // lint:allow(float-hygiene): ss_tot is a sum of squares; exactly 0.0 iff every y equals the mean, where R^2 is 1 by convention
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Ok(Polynomial { r_squared, ..poly })
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Polynomial degree (number of coefficients minus one).
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| -3.0 * x + 7.0).collect();
        let f = Linear::fit(&xs, &ys).unwrap();
        assert!((f.slope + 3.0).abs() < 1e-12);
        assert!((f.intercept - 7.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_r_squared_below_one_with_noise() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 1.2, 1.8, 3.1];
        let f = Linear::fit(&xs, &ys).unwrap();
        assert!(f.r_squared > 0.95 && f.r_squared < 1.0);
    }

    #[test]
    fn stderr_is_zero_for_perfect_fits_and_grows_with_noise() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let exact: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let f = Linear::fit(&xs, &exact).unwrap();
        assert!(f.slope_stderr < 1e-12);
        assert!(f.mean_response_stderr(100.0) < 1e-10);

        let noisy = [1.0, 3.4, 4.6, 7.3, 8.8];
        let g = Linear::fit(&xs, &noisy).unwrap();
        assert!(g.slope_stderr > 0.0);
        // Extrapolation uncertainty grows away from the data.
        assert!(g.mean_response_stderr(50.0) > g.mean_response_stderr(2.0));
        let (lo, hi) = g.confidence_band(10.0, 1.96);
        assert!(lo < g.eval(10.0) && g.eval(10.0) < hi);
    }

    #[test]
    fn chunked_sums_agree_with_the_direct_fit() {
        let xs: Vec<f64> = (0..500).map(|i| 0.1 * i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 1.7 * x - 4.0 + (x * 13.0).sin())
            .collect();
        let direct = Linear::fit(&xs, &ys).unwrap();
        // Accumulate in two halves and merge, as the parallel fits do.
        let mut left = RegressionSums::default();
        let mut right = RegressionSums::default();
        for i in 0..250 {
            left.push(xs[i], ys[i]);
        }
        for i in 250..500 {
            right.push(xs[i], ys[i]);
        }
        let merged = left.merge(right).linear().unwrap();
        assert!((merged.slope - direct.slope).abs() < 1e-9);
        assert!((merged.intercept - direct.intercept).abs() < 1e-9);
        assert!((merged.r_squared - direct.r_squared).abs() < 1e-9);
        assert!((merged.slope_stderr - direct.slope_stderr).abs() < 1e-9);
        assert_eq!(merged.n_obs, direct.n_obs);
    }

    #[test]
    fn sums_report_degenerate_inputs() {
        assert!(matches!(
            RegressionSums::default().linear(),
            Err(StatsError::NotEnoughData { .. })
        ));
        let mut vertical = RegressionSums::default();
        vertical.push(2.0, 1.0);
        vertical.push(2.0, 3.0);
        assert_eq!(vertical.linear(), Err(StatsError::Singular));
        let mut poisoned = RegressionSums::default();
        poisoned.push(f64::NAN, 1.0);
        poisoned.push(1.0, 1.0);
        assert_eq!(poisoned.linear(), Err(StatsError::NonFinite));
    }

    #[test]
    fn linear_rejects_vertical_data() {
        assert_eq!(
            Linear::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::Singular)
        );
    }

    #[test]
    fn power_law_recovers_paper_transistor_fit() {
        // Synthesize points exactly on TC(D) = 4.99e9 * D^0.877 (Fig. 3b).
        let law = PowerLaw::new(4.99e9, 0.877);
        let xs: Vec<f64> = (1..50).map(|i| 0.01 * 1.2f64.powi(i)).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| law.eval(x)).collect();
        let fit = PowerLaw::fit(&xs, &ys).unwrap();
        assert!((fit.coefficient / 4.99e9 - 1.0).abs() < 1e-9);
        assert!((fit.exponent - 0.877).abs() < 1e-9);
    }

    #[test]
    fn power_law_invert_roundtrips() {
        let law = PowerLaw::new(2.0, 0.5);
        let y = law.eval(16.0);
        assert!((law.invert(y) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_rejects_nonpositive() {
        assert!(matches!(
            PowerLaw::fit(&[1.0, -1.0], &[1.0, 1.0]),
            Err(StatsError::DomainViolation { .. })
        ));
    }

    #[test]
    fn log_linear_recovers_exact_curve() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| 3.0 * x.ln() + 0.5).collect();
        let f = LogLinear::fit(&xs, &ys).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept - 0.5).abs() < 1e-12);
    }

    #[test]
    fn polynomial_quadratic_exact() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x * x - x + 1.0).collect();
        let p = Polynomial::fit(&xs, &ys, 2).unwrap();
        assert!((p.coeffs[0] - 1.0).abs() < 1e-9);
        assert!((p.coeffs[1] + 1.0).abs() < 1e-9);
        assert!((p.coeffs[2] - 2.0).abs() < 1e-9);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn polynomial_underdetermined_errors() {
        assert!(matches!(
            Polynomial::fit(&[1.0, 2.0], &[1.0, 2.0], 2),
            Err(StatsError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn polynomial_degree_zero_is_mean() {
        let p = Polynomial::fit(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0], 0).unwrap();
        assert!((p.coeffs[0] - 4.0).abs() < 1e-12);
    }
}
