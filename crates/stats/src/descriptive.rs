//! Descriptive statistics: means, geometric means, dispersion, quantiles.
//!
//! The geometric mean is load-bearing for the paper: Eq. 3 defines the
//! relative gain between two GPU architectures as the geometric mean of the
//! per-application gain ratios, and Eq. 4 chains those means transitively.

use crate::{Result, StatsError};

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] on an empty slice and
/// [`StatsError::NonFinite`] if any element is NaN or infinite.
///
/// ```
/// assert_eq!(accelwall_stats::mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
/// ```
pub fn mean(values: &[f64]) -> Result<f64> {
    check(values, 1)?;
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Geometric mean of a slice of positive values.
///
/// Computed in log space for numerical stability, exactly as one computes
/// the N-th root of a product of N gain ratios (paper Eq. 3).
///
/// # Errors
///
/// Returns [`StatsError::DomainViolation`] if any value is not strictly
/// positive, plus the usual emptiness/finiteness errors.
///
/// ```
/// let g = accelwall_stats::geomean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> Result<f64> {
    check(values, 1)?;
    if values.iter().any(|&v| v <= 0.0) {
        return Err(StatsError::DomainViolation {
            what: "geometric mean requires strictly positive values",
        });
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Ok((log_sum / values.len() as f64).exp())
}

/// Population variance of a slice.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] on an empty slice.
pub fn variance(values: &[f64]) -> Result<f64> {
    let m = mean(values)?;
    Ok(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// Population standard deviation of a slice.
///
/// # Errors
///
/// Same as [`variance`].
pub fn stddev(values: &[f64]) -> Result<f64> {
    Ok(variance(values)?.sqrt())
}

/// Median (the 0.5 quantile).
///
/// # Errors
///
/// Same as [`quantile`].
pub fn median(values: &[f64]) -> Result<f64> {
    quantile(values, 0.5)
}

/// Linear-interpolation quantile, `q` in `[0, 1]`.
///
/// Uses the common "R-7" definition (the default of most statistics
/// packages): the quantile is interpolated between the two order statistics
/// that bracket rank `q * (n - 1)`.
///
/// # Errors
///
/// Returns [`StatsError::DomainViolation`] if `q` is outside `[0, 1]`, and
/// the usual emptiness/finiteness errors.
///
/// ```
/// let q = accelwall_stats::quantile(&[1.0, 2.0, 3.0, 4.0], 0.25).unwrap();
/// assert!((q - 1.75).abs() < 1e-12);
/// ```
pub fn quantile(values: &[f64], q: f64) -> Result<f64> {
    check(values, 1)?;
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::DomainViolation {
            what: "quantile level must lie in [0, 1]",
        });
    }
    let mut sorted = values.to_vec();
    // `total_cmp` keeps the sort well-defined even if a NaN ever slips
    // past the finiteness check above.
    sorted.sort_by(f64::total_cmp);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

fn check(values: &[f64], required: usize) -> Result<()> {
    if values.len() < required {
        return Err(StatsError::NotEnoughData {
            provided: values.len(),
            required,
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constant_is_constant() {
        assert_eq!(mean(&[7.5, 7.5, 7.5]).unwrap(), 7.5);
    }

    #[test]
    fn mean_rejects_empty() {
        assert!(matches!(
            mean(&[]),
            Err(StatsError::NotEnoughData { provided: 0, .. })
        ));
    }

    #[test]
    fn mean_rejects_nan() {
        assert_eq!(mean(&[1.0, f64::NAN]), Err(StatsError::NonFinite));
    }

    #[test]
    fn geomean_matches_hand_computation() {
        // (2 * 8)^(1/2) = 4
        assert!((geomean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_nonpositive() {
        assert!(matches!(
            geomean(&[1.0, 0.0]),
            Err(StatsError::DomainViolation { .. })
        ));
        assert!(matches!(
            geomean(&[-2.0]),
            Err(StatsError::DomainViolation { .. })
        ));
    }

    #[test]
    fn geomean_is_scale_equivariant() {
        let base = [1.5, 2.5, 9.0];
        let scaled: Vec<f64> = base.iter().map(|v| v * 3.0).collect();
        let g1 = geomean(&base).unwrap();
        let g2 = geomean(&scaled).unwrap();
        assert!((g2 / g1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_symmetric_pair() {
        // {-1, 1}: mean 0, population variance 1.
        assert!((variance(&[-1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((stddev(&[-1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert!((median(&[1.0, 2.0, 3.0, 4.0]).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints_are_min_max() {
        let v = [5.0, -2.0, 9.0, 0.5];
        assert_eq!(quantile(&v, 0.0).unwrap(), -2.0);
        assert_eq!(quantile(&v, 1.0).unwrap(), 9.0);
    }

    #[test]
    fn quantile_rejects_out_of_range_level() {
        assert!(matches!(
            quantile(&[1.0], 1.5),
            Err(StatsError::DomainViolation { .. })
        ));
    }
}
