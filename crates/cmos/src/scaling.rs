//! The Fig. 3a device-scaling series.
//!
//! The paper's Fig. 3a draws five per-node curves on a shared
//! "Relative (×)" axis spanning roughly 0.25–1.0: leakage power,
//! capacitance, VDD, frequency, and dynamic power. The four cost metrics
//! decline with scaling and are normalized to 45 nm = 1.0; frequency
//! improves with scaling and is normalized to its best (5 nm) value = 1.0 so
//! that all five curves share the axis, as in the figure.

use crate::TechNode;

/// The five device metrics plotted in Fig. 3a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalingMetric {
    /// Leakage power per transistor (declining).
    LeakagePower,
    /// Gate capacitance (declining).
    Capacitance,
    /// Supply voltage (declining).
    Vdd,
    /// Switching frequency (improving; normalized to the 5 nm value).
    Frequency,
    /// Dynamic power at fixed frequency (declining).
    DynamicPower,
}

impl ScalingMetric {
    /// All five metrics in the order Fig. 3a presents them.
    pub fn all() -> &'static [ScalingMetric] {
        const ALL: [ScalingMetric; 5] = [
            ScalingMetric::LeakagePower,
            ScalingMetric::Capacitance,
            ScalingMetric::Vdd,
            ScalingMetric::Frequency,
            ScalingMetric::DynamicPower,
        ];
        &ALL
    }

    /// Human-readable label matching the figure panels.
    pub fn label(self) -> &'static str {
        match self {
            ScalingMetric::LeakagePower => "Leakage Power",
            ScalingMetric::Capacitance => "Capacitance",
            ScalingMetric::Vdd => "VDD",
            ScalingMetric::Frequency => "Frequency",
            ScalingMetric::DynamicPower => "Dynamic Power",
        }
    }

    /// The Fig. 3a-normalized value of this metric at `node`.
    pub fn value(self, node: TechNode) -> f64 {
        match self {
            ScalingMetric::LeakagePower => node.leakage_rel() / TechNode::N45.leakage_rel(),
            ScalingMetric::Capacitance => {
                node.params().capacitance_rel / TechNode::N45.params().capacitance_rel
            }
            ScalingMetric::Vdd => node.params().vdd_volts / TechNode::N45.params().vdd_volts,
            ScalingMetric::Frequency => {
                node.frequency_potential() / TechNode::N5.frequency_potential()
            }
            ScalingMetric::DynamicPower => {
                node.dynamic_power_rel() / TechNode::N45.dynamic_power_rel()
            }
        }
    }
}

/// The nodes Fig. 3a plots on its x axis.
pub fn fig3a_nodes() -> &'static [TechNode] {
    const NODES: [TechNode; 6] = [
        TechNode::N45,
        TechNode::N28,
        TechNode::N16,
        TechNode::N10,
        TechNode::N7,
        TechNode::N5,
    ];
    &NODES
}

/// Regenerates the full Fig. 3a data: one `(metric, series)` pair per panel,
/// where each series is a `(node, relative value)` curve.
///
/// ```
/// let series = accelwall_cmos::fig3a_series();
/// assert_eq!(series.len(), 5);
/// for (_, curve) in &series {
///     assert!(curve.iter().all(|&(_, v)| v > 0.0 && v <= 1.0));
/// }
/// ```
pub fn fig3a_series() -> Vec<(ScalingMetric, Vec<(TechNode, f64)>)> {
    ScalingMetric::all()
        .iter()
        .map(|&metric| {
            let curve = fig3a_nodes()
                .iter()
                .map(|&node| (node, metric.value(node)))
                .collect();
            (metric, curve)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_metrics_decline_monotonically() {
        for &metric in &[
            ScalingMetric::LeakagePower,
            ScalingMetric::Capacitance,
            ScalingMetric::Vdd,
            ScalingMetric::DynamicPower,
        ] {
            let values: Vec<f64> = fig3a_nodes().iter().map(|&n| metric.value(n)).collect();
            assert!(
                values.windows(2).all(|w| w[0] >= w[1]),
                "{metric:?} should decline: {values:?}"
            );
            assert!((values[0] - 1.0).abs() < 1e-12, "{metric:?} starts at 1.0");
        }
    }

    #[test]
    fn frequency_improves_to_unity() {
        let values: Vec<f64> = fig3a_nodes()
            .iter()
            .map(|&n| ScalingMetric::Frequency.value(n))
            .collect();
        assert!(values.windows(2).all(|w| w[0] < w[1]));
        assert!((values.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_values_fit_the_figure_axis() {
        // All normalized values lie in (0, 1]; dynamic power falls furthest
        // (the compounded C·V² product reaches ~0.05 at 5 nm).
        for (metric, curve) in fig3a_series() {
            for (node, v) in curve {
                assert!(
                    v > 0.0 && v <= 1.0 + 1e-12,
                    "{metric:?} at {node} out of axis range: {v}"
                );
            }
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            ScalingMetric::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn dynamic_power_is_capacitance_times_vdd_squared() {
        for &node in fig3a_nodes() {
            let c = ScalingMetric::Capacitance.value(node);
            let v = ScalingMetric::Vdd.value(node);
            let p = ScalingMetric::DynamicPower.value(node);
            assert!((p - c * v * v).abs() < 1e-9, "{node}: {p} vs {}", c * v * v);
        }
    }
}
