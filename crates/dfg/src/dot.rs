//! Graphviz DOT export for dataflow graphs.
//!
//! A released analysis library needs a way to *look* at the graphs it
//! builds: `to_dot` renders any [`Dfg`] (via its lowered [`Program`]) as a
//! DOT digraph — inputs as houses, outputs as inverted houses, compute
//! vertices as boxes colored by functional-unit class, optionally
//! clustered by ASAP stage (which makes the Fig. 11 stage structure
//! visible at a glance). The renderer walks the lowered flat edge table
//! and the precomputed levels, so no graph analysis is re-run.

use crate::graph::{Dfg, Op};
use crate::program::{Program, VertexClass};

/// Rendering options for [`Dfg::to_dot`] / [`Program::to_dot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DotOptions {
    /// Group vertices into per-stage clusters (`rank=same`), making the
    /// computation stages of Section V-B visible.
    pub cluster_stages: bool,
    /// Cap on rendered vertices; larger graphs are truncated with an
    /// ellipsis node (DOT of a 5000-node FFT is not useful to a human).
    pub max_vertices: usize,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            cluster_stages: true,
            max_vertices: 400,
        }
    }
}

impl Dfg {
    /// Renders the graph as a Graphviz DOT digraph.
    ///
    /// ```
    /// use accelwall_dfg::{DfgBuilder, DotOptions, Op};
    /// let mut b = DfgBuilder::new("tiny");
    /// let x = b.input("x");
    /// let y = b.op(Op::Neg, &[x]);
    /// b.output("o", y);
    /// let dot = b.build().unwrap().to_dot(DotOptions::default());
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("n0 -> n1"));
    /// ```
    pub fn to_dot(&self, options: DotOptions) -> String {
        self.lower().to_dot(options)
    }
}

impl Program {
    /// Renders the lowered program as a Graphviz DOT digraph.
    pub fn to_dot(&self, options: DotOptions) -> String {
        let mut out = String::new();
        // Writing into a String is infallible (`fmt::Error` can only come
        // from the sink), so the render result carries no information.
        let _ = self.render_dot(&mut out, options);
        out
    }

    /// The fallible rendering core behind [`Program::to_dot`], generic
    /// over any [`std::fmt::Write`] sink.
    fn render_dot(&self, out: &mut impl std::fmt::Write, options: DotOptions) -> std::fmt::Result {
        let shown = self.vertex_count().min(options.max_vertices);
        writeln!(out, "digraph {:?} {{", self.name())?;
        writeln!(out, "  rankdir=TB;")?;
        writeln!(out, "  node [fontname=\"monospace\"];")?;

        // Slot maps give input/output vertices their variable names back.
        let names: std::collections::HashMap<u32, &str> = self
            .input_slots()
            .iter()
            .chain(self.output_slots())
            .map(|(name, v)| (*v, name.as_str()))
            .collect();

        let levels = self.levels();
        let max_level = levels.iter().take(shown).copied().max().unwrap_or(0);
        for level in 0..=max_level {
            if options.cluster_stages {
                writeln!(out, "  {{ rank=same;")?;
            }
            for v in (0..shown).filter(|&v| levels[v] == level) {
                let (label, shape, color) = match self.class(v) {
                    VertexClass::Input => (
                        names.get(&(v as u32)).copied().unwrap_or("?").to_string(),
                        "house",
                        "lightblue",
                    ),
                    VertexClass::Output => (
                        names.get(&(v as u32)).copied().unwrap_or("?").to_string(),
                        "invhouse",
                        "lightsalmon",
                    ),
                    VertexClass::Compute => {
                        let op = self.opcode(v);
                        (format!("{op:?}"), "box", compute_color(op))
                    }
                };
                writeln!(
                    out,
                    "    n{v} [label=\"{label}\", shape={shape}, style=filled, fillcolor={color}];"
                )?;
            }
            if options.cluster_stages {
                writeln!(out, "  }}")?;
            }
        }

        for v in 0..shown {
            for &op in self.operands(v) {
                if (op as usize) < shown {
                    writeln!(out, "  n{op} -> n{v};")?;
                }
            }
        }
        if shown < self.vertex_count() {
            writeln!(
                out,
                "  truncated [label=\"… {} more vertices\", shape=plaintext];",
                self.vertex_count() - shown
            )?;
        }
        writeln!(out, "}}")
    }
}

fn compute_color(op: Op) -> &'static str {
    match op {
        Op::Add | Op::Sub | Op::Min | Op::Max | Op::Abs | Op::Neg => "palegreen",
        Op::And | Op::Or | Op::Xor | Op::Not | Op::Shl | Op::Shr => "khaki",
        Op::CmpLt | Op::CmpEq | Op::Select | Op::Copy => "lightgrey",
        Op::Mul => "gold",
        Op::Div | Op::Mod | Op::Sqrt => "orange",
        Op::Sigmoid => "plum",
        Op::Lut { .. } => "lightcyan",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;

    fn fig11() -> Dfg {
        let mut b = DfgBuilder::new("fig11");
        let d1 = b.input("d1");
        let d2 = b.input("d2");
        let d3 = b.input("d3");
        let s1a = b.op(Op::Add, &[d1, d2]);
        let s1b = b.op(Op::Div, &[d2, d3]);
        let s2a = b.op(Op::Sub, &[s1a, s1b]);
        let s2b = b.op(Op::Add, &[s1b, d3]);
        b.output("o1", s2a);
        b.output("o2", s2b);
        b.build().unwrap()
    }

    #[test]
    fn renders_every_node_and_edge() {
        let g = fig11();
        let dot = g.to_dot(DotOptions::default());
        for i in 0..g.vertex_count() {
            assert!(dot.contains(&format!("n{i} ")), "missing n{i}");
        }
        assert_eq!(dot.matches(" -> ").count(), g.edge_count());
        assert!(dot.contains("house"));
        assert!(dot.contains("invhouse"));
        // Input/output labels come from the slot maps.
        assert!(dot.contains("label=\"d1\""));
        assert!(dot.contains("label=\"o2\""));
    }

    #[test]
    fn program_and_front_end_render_identically() {
        let g = fig11();
        assert_eq!(
            g.to_dot(DotOptions::default()),
            g.lower().to_dot(DotOptions::default())
        );
    }

    #[test]
    fn stage_clusters_optional() {
        let g = fig11();
        let with = g.to_dot(DotOptions {
            cluster_stages: true,
            max_vertices: 400,
        });
        let without = g.to_dot(DotOptions {
            cluster_stages: false,
            max_vertices: 400,
        });
        assert!(with.contains("rank=same"));
        assert!(!without.contains("rank=same"));
    }

    #[test]
    fn truncation_caps_large_graphs() {
        let mut b = DfgBuilder::new("big");
        let xs: Vec<_> = (0..50).map(|i| b.input(format!("x{i}"))).collect();
        let r = b.reduce(Op::Add, &xs);
        b.output("o", r);
        let g = b.build().unwrap();
        let dot = g.to_dot(DotOptions {
            cluster_stages: false,
            max_vertices: 10,
        });
        assert!(dot.contains("more vertices"));
        assert!(!dot.contains("n40 "));
        // Edges into truncated nodes are suppressed.
        assert!(dot.matches(" -> ").count() < g.edge_count());
    }

    #[test]
    fn output_is_balanced_dot() {
        let dot = fig11().to_dot(DotOptions::default());
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert!(dot.trim_end().ends_with('}'));
    }
}
