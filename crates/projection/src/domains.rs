//! The four projected domains and their Table V physical parameters.

use accelwall_cmos::TechNode;
use std::fmt;

/// The accelerated domains of the limit study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// ASIC video decoding (Figs. 15a/16a).
    VideoDecoding,
    /// GPU gaming / graphics (Figs. 15b/16b).
    GpuGraphics,
    /// FPGA convolutional networks (Figs. 15c/16c).
    FpgaCnn,
    /// ASIC Bitcoin mining (Figs. 15d/16d).
    BitcoinMining,
}

/// Which target function is being projected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetMetric {
    /// Throughput (Fig. 15).
    Performance,
    /// Energy efficiency (Fig. 16).
    EnergyEfficiency,
}

/// One Table V row: the physical parameters bounding a domain's
/// final-node chips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainLimits {
    /// Smallest die the domain ships, in mm² (used for efficiency walls).
    pub min_die_mm2: f64,
    /// Largest die, in mm² (used for performance walls).
    pub max_die_mm2: f64,
    /// Thermal power budget in watts.
    pub tdp_w: f64,
    /// Clock in MHz.
    pub freq_mhz: f64,
}

impl Domain {
    /// All domains in figure order.
    pub fn all() -> &'static [Domain] {
        const ALL: [Domain; 4] = [
            Domain::VideoDecoding,
            Domain::GpuGraphics,
            Domain::FpgaCnn,
            Domain::BitcoinMining,
        ];
        &ALL
    }

    /// The Table V physical parameters of the domain.
    pub fn limits(self) -> DomainLimits {
        let (min_die, max_die, tdp, mhz) = match self {
            Domain::VideoDecoding => (1.68, 16.0, 7.0, 400.0),
            Domain::GpuGraphics => (40.0, 815.0, 345.0, 1500.0),
            Domain::FpgaCnn => (100.0, 572.0, 150.0, 400.0),
            Domain::BitcoinMining => (11.1, 504.0, 500.0, 1400.0),
        };
        DomainLimits {
            min_die_mm2: min_die,
            max_die_mm2: max_die,
            tdp_w: tdp,
            freq_mhz: mhz,
        }
    }

    /// The accelerator platform of the domain, as in Table V.
    pub fn platform(self) -> &'static str {
        match self {
            Domain::VideoDecoding | Domain::BitcoinMining => "ASIC",
            Domain::GpuGraphics => "GPU",
            Domain::FpgaCnn => "FPGA",
        }
    }

    /// Unit of the domain's gain axis in Figs. 15/16.
    pub fn unit(self, metric: TargetMetric) -> &'static str {
        match (self, metric) {
            (Domain::VideoDecoding, TargetMetric::Performance) => "MPixels/s",
            (Domain::VideoDecoding, TargetMetric::EnergyEfficiency) => "MPixels/J",
            (Domain::GpuGraphics, TargetMetric::Performance) => "frame-rate gain",
            (Domain::GpuGraphics, TargetMetric::EnergyEfficiency) => "frames/J gain",
            (Domain::FpgaCnn, TargetMetric::Performance) => "GOP/s",
            (Domain::FpgaCnn, TargetMetric::EnergyEfficiency) => "GOP/J",
            (Domain::BitcoinMining, TargetMetric::Performance) => "GHash/s/mm2",
            (Domain::BitcoinMining, TargetMetric::EnergyEfficiency) => "GHash/J",
        }
    }

    /// The final CMOS node of the projection (IRDS: 5 nm).
    pub fn final_node(self) -> TechNode {
        TechNode::N5
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Domain::VideoDecoding => "ASIC Video Decoding",
            Domain::GpuGraphics => "GPU Gaming/Graphics",
            Domain::FpgaCnn => "FPGA CNN",
            Domain::BitcoinMining => "ASIC Bitcoin Mining",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_rows_match_paper() {
        let v = Domain::VideoDecoding.limits();
        assert_eq!((v.min_die_mm2, v.max_die_mm2), (1.68, 16.0));
        assert_eq!((v.tdp_w, v.freq_mhz), (7.0, 400.0));
        let g = Domain::GpuGraphics.limits();
        assert_eq!((g.max_die_mm2, g.tdp_w, g.freq_mhz), (815.0, 345.0, 1500.0));
        let f = Domain::FpgaCnn.limits();
        assert_eq!((f.min_die_mm2, f.tdp_w), (100.0, 150.0));
        let b = Domain::BitcoinMining.limits();
        assert_eq!((b.max_die_mm2, b.tdp_w, b.freq_mhz), (504.0, 500.0, 1400.0));
    }

    #[test]
    fn platforms_match_table_v() {
        assert_eq!(Domain::VideoDecoding.platform(), "ASIC");
        assert_eq!(Domain::GpuGraphics.platform(), "GPU");
        assert_eq!(Domain::FpgaCnn.platform(), "FPGA");
        assert_eq!(Domain::BitcoinMining.platform(), "ASIC");
    }

    #[test]
    fn four_domains_with_distinct_labels() {
        let labels: std::collections::HashSet<_> = Domain::all()
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(labels.len(), 4);
    }
}
