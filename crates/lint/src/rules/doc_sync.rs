//! `doc-sync` — `EXPERIMENTS.md` tracks the registry roster.
//!
//! The registry is the single source of truth for target ids and
//! descriptions; the CLI and server derive their rosters from it at
//! runtime, but Markdown cannot. This rule closes that last gap:
//!
//! * `EXPERIMENTS.md` must contain a `## Target roster` section whose
//!   table rows are exactly `Registry::paper()` — same ids, same
//!   descriptions, same order — so the document can never advertise a
//!   target that does not run, or omit one that does;
//! * every `` `accelwall <target>` `` reference anywhere in the document
//!   must name a registered target (or a CLI verb: `all`, `list`,
//!   `serve`, `lint`), catching stale references when a target is
//!   renamed.

use crate::workspace::Workspace;
use crate::{Finding, Lint};
use accelerator_wall::registry::Registry;

/// See the module docs.
pub struct DocSync;

const DOC_PATH: &str = "EXPERIMENTS.md";

/// The heading whose table must mirror the registry.
const ROSTER_HEADING: &str = "## Target roster";

/// CLI verbs that are not experiment targets but are fine to reference.
const CLI_VERBS: [&str; 4] = ["all", "list", "serve", "lint"];

impl Lint for DocSync {
    fn name(&self) -> &'static str {
        "doc-sync"
    }

    fn description(&self) -> &'static str {
        "EXPERIMENTS.md's target roster matches Registry::paper() and references no stale targets"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        let has_experiments = ws
            .files_under("crates/core/src/experiments")
            .next()
            .is_some();
        let Some(doc) = ws.experiments_md.as_deref() else {
            if has_experiments {
                findings.push(Finding {
                    rule: self.name(),
                    path: DOC_PATH.to_string(),
                    line: 0,
                    col: 0,
                    message: "EXPERIMENTS.md is missing but the workspace has experiment \
                              targets to document"
                        .to_string(),
                });
            }
            return findings;
        };
        if !has_experiments {
            // Fixture workspaces without the experiment tree only get the
            // stale-reference scan.
            self.check_references(doc, &mut findings);
            return findings;
        }
        let registry = Registry::paper();
        let expected: Vec<(&str, &str)> = registry
            .experiments()
            .map(|e| (e.id(), e.description()))
            .collect();
        match roster_rows(doc) {
            None => findings.push(Finding {
                rule: self.name(),
                path: DOC_PATH.to_string(),
                line: 0,
                col: 0,
                message: format!(
                    "missing `{ROSTER_HEADING}` section; it must table every \
                     Registry::paper() target (id, description, deps)"
                ),
            }),
            Some(rows) => {
                for (i, (line_no, id, description)) in rows.iter().enumerate() {
                    match expected.get(i) {
                        None => findings.push(Finding {
                            rule: self.name(),
                            path: DOC_PATH.to_string(),
                            line: *line_no,
                            col: 0,
                            message: format!(
                                "roster row {id:?} has no matching registry entry \
                                 (the registry has {} targets)",
                                expected.len()
                            ),
                        }),
                        Some((want_id, want_desc)) => {
                            if id != want_id {
                                findings.push(Finding {
                                    rule: self.name(),
                                    path: DOC_PATH.to_string(),
                                    line: *line_no,
                                    col: 0,
                                    message: format!(
                                        "roster row {} is {id:?} but the registry has \
                                         {want_id:?} at this position (rows must follow \
                                         registry order)",
                                        i + 1
                                    ),
                                });
                            } else if description != want_desc {
                                findings.push(Finding {
                                    rule: self.name(),
                                    path: DOC_PATH.to_string(),
                                    line: *line_no,
                                    col: 0,
                                    message: format!(
                                        "roster description for {id:?} is {description:?} \
                                         but the registry says {want_desc:?}"
                                    ),
                                });
                            }
                        }
                    }
                }
                if rows.len() < expected.len() {
                    let missing: Vec<&str> =
                        expected[rows.len()..].iter().map(|(id, _)| *id).collect();
                    findings.push(Finding {
                        rule: self.name(),
                        path: DOC_PATH.to_string(),
                        line: 0,
                        col: 0,
                        message: format!(
                            "target roster is missing registered targets: {}",
                            missing.join(" ")
                        ),
                    });
                }
            }
        }
        self.check_references(doc, &mut findings);
        findings
    }
}

impl DocSync {
    /// Flags `accelwall <word>` references to unknown targets.
    fn check_references(&self, doc: &str, findings: &mut Vec<Finding>) {
        let registry = Registry::paper();
        let ids = registry.ids();
        for (idx, line) in doc.lines().enumerate() {
            let mut rest = line;
            while let Some(at) = rest.find("accelwall ") {
                rest = &rest[at + "accelwall ".len()..];
                let word: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if word.is_empty() {
                    continue;
                }
                if !ids.contains(&word.as_str()) && !CLI_VERBS.contains(&word.as_str()) {
                    findings.push(Finding {
                        rule: self.name(),
                        path: DOC_PATH.to_string(),
                        line: idx + 1,
                        col: 0,
                        message: format!(
                            "`accelwall {word}` references an unknown target; known \
                             targets come from Registry::paper() (run `accelwall list`)"
                        ),
                    });
                }
            }
        }
    }
}

/// Parses the roster table: `(line, id, description)` per data row.
/// Returns `None` when the heading is absent.
fn roster_rows(doc: &str) -> Option<Vec<(usize, String, String)>> {
    let mut rows = Vec::new();
    let mut in_section = false;
    let mut header_rows_skipped = 0usize;
    for (idx, line) in doc.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with("## ") {
            if in_section {
                break;
            }
            in_section = trimmed == ROSTER_HEADING;
            continue;
        }
        if !in_section || !trimmed.starts_with('|') {
            continue;
        }
        // Skip the `| id | description |` header and `|---|---|` ruler.
        if header_rows_skipped < 2 {
            header_rows_skipped += 1;
            continue;
        }
        let cells: Vec<&str> = trimmed.trim_matches('|').split('|').collect();
        if cells.len() < 2 {
            continue;
        }
        let id = cells[0].trim().trim_matches('`').to_string();
        let description = cells[1].trim().to_string();
        rows.push((idx + 1, id, description));
    }
    if in_section || !rows.is_empty() {
        Some(rows)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::workspace_full;
    use crate::Workspace;
    use std::path::Path;

    const EXP_FILE: (&str, &str) = (
        "crates/core/src/experiments/x.rs",
        "fn id(&self) -> &'static str { \"fig1\" }",
    );

    /// A roster document generated from the real registry: must pass.
    fn faithful_roster() -> String {
        let registry = Registry::paper();
        let mut doc =
            String::from("# EXPERIMENTS\n\n## Target roster\n\n| id | description |\n|---|---|\n");
        use std::fmt::Write as _;
        for e in registry.experiments() {
            let _ = writeln!(doc, "| `{}` | {} |", e.id(), e.description());
        }
        doc
    }

    #[test]
    fn the_real_experiments_md_is_in_sync() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let ws = Workspace::discover(here).expect("workspace above crates/lint");
        assert_eq!(DocSync.check(&ws), Vec::new());
    }

    #[test]
    fn faithful_roster_passes() {
        let ws = workspace_full(&[EXP_FILE], &[], Some(&faithful_roster()));
        assert_eq!(DocSync.check(&ws), Vec::new());
    }

    #[test]
    fn missing_document_is_a_finding_only_with_experiments_present() {
        let with = workspace_full(&[EXP_FILE], &[], None);
        assert!(DocSync
            .check(&with)
            .iter()
            .any(|f| f.message.contains("missing")));
        let without = workspace_full(&[("crates/x/src/lib.rs", "fn f() {}")], &[], None);
        assert!(DocSync.check(&without).is_empty());
    }

    #[test]
    fn missing_roster_section_is_a_finding() {
        let ws = workspace_full(&[EXP_FILE], &[], Some("# EXPERIMENTS\n\nno roster here\n"));
        let found = DocSync.check(&ws);
        assert!(found.iter().any(|f| f.message.contains("Target roster")));
    }

    #[test]
    fn wrong_description_and_missing_rows_are_findings() {
        let mut doc = faithful_roster();
        // Corrupt the first data row's description.
        doc = doc.replacen(
            Registry::paper()
                .experiments()
                .next()
                .unwrap()
                .description(),
            "something stale",
            1,
        );
        let ws = workspace_full(&[EXP_FILE], &[], Some(&doc));
        assert!(DocSync
            .check(&ws)
            .iter()
            .any(|f| f.message.contains("something stale")));
        // Drop the last row.
        let mut doc = faithful_roster();
        let trimmed = doc.trim_end().rfind('\n').unwrap();
        doc.truncate(trimmed + 1);
        let ws = workspace_full(&[EXP_FILE], &[], Some(&doc));
        assert!(DocSync
            .check(&ws)
            .iter()
            .any(|f| f.message.contains("missing registered targets")));
    }

    #[test]
    fn stale_accelwall_references_are_findings() {
        let mut doc = faithful_roster();
        doc.push_str("\nSee `accelwall fig99` for details, or `accelwall list`.\n");
        let ws = workspace_full(&[EXP_FILE], &[], Some(&doc));
        let found = DocSync.check(&ws);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("fig99"));
        assert!(found[0].line > 0);
    }

    #[test]
    fn cli_verbs_are_not_stale_references() {
        let mut doc = faithful_roster();
        doc.push_str("\nRun `accelwall all`, `accelwall serve`, `accelwall lint`.\n");
        let ws = workspace_full(&[EXP_FILE], &[], Some(&doc));
        assert!(DocSync.check(&ws).is_empty());
    }
}
