//! GPU graphics rendering (Figs. 5–7): programming framework and chip
//! engineering.
//!
//! The paper combines a GPU datasheet corpus with scraped game-benchmark
//! results over 20+ GPUs and six years, then (a) plots per-game frame-rate
//! and frames-per-joule gains against the CMOS potential (Fig. 5), and
//! (b) builds the Eq. 3/4 architecture relation matrix across ten GPU
//! architectures (Figs. 6–7).
//!
//! The GPU *hardware* rows below are real public datasheet facts. The
//! per-game frame rates are a documented synthetic reconstruction (the
//! AnandTech scrape is not redistributable): each GPU's FPS is its modeled
//! physical potential times a slowly-drifting CSR trajectory (≈0.95 in
//! 2011 rising to ≈1.2 by 2017) times a deterministic per-(game, GPU)
//! wiggle — which bakes in exactly the paper's finding that frame rates
//! track CMOS potential with near-flat specialization returns.

use crate::Result;
use accelwall_chipdb::fit::NodeGroup;
use accelwall_cmos::TechNode;
use accelwall_csr::{ArchObservations, CsrSeries, RelationMatrix};

/// Market tier of a GPU — Fig. 5 draws high-end parts opaque and
/// mid/low-end parts translucent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuTier {
    /// Flagship / enthusiast parts (the opaque Fig. 5 markers).
    HighEnd,
    /// Mid-range parts (the translucent markers).
    MidRange,
}

/// One GPU's datasheet facts.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuChip {
    /// Product name.
    pub name: &'static str,
    /// Microarchitecture, as labeled in Figs. 6–7.
    pub arch: &'static str,
    /// Process node.
    pub node: TechNode,
    /// Transistor count.
    pub transistors: f64,
    /// Boost/core clock in MHz.
    pub freq_mhz: f64,
    /// Board TDP in watts.
    pub tdp_w: f64,
    /// Release year.
    pub year: u32,
    /// Market tier.
    pub tier: GpuTier,
}

impl GpuChip {
    /// Physical throughput potential in transistor-GHz: the binding
    /// minimum of the switched-silicon budget (actual transistors × clock)
    /// and the Fig. 3c TDP cap for the chip's node group.
    pub fn physical_throughput(&self) -> f64 {
        let switched = self.transistors / 1e9 * self.freq_mhz / 1e3;
        match NodeGroup::of(self.node) {
            Some(group) => switched.min(group.paper_tdp_law().eval(self.tdp_w)),
            None => switched,
        }
    }

    /// Physical efficiency potential: throughput per watt of TDP.
    pub fn physical_efficiency(&self) -> f64 {
        self.physical_throughput() / self.tdp_w
    }
}

/// The GPU dataset: the ten Fig. 6/7 architectures, 65 nm Tesla through
/// 16 nm Pascal.
pub fn gpu_chips() -> Vec<GpuChip> {
    // (name, arch, node, transistors, MHz, TDP, year, tier)
    use GpuTier::{HighEnd as H, MidRange as M};
    #[allow(clippy::type_complexity)] // literal datasheet rows
    let rows: [(&str, &str, TechNode, f64, f64, f64, u32, GpuTier); 22] = [
        (
            "GeForce 8800 GT",
            "Tesla",
            TechNode::N65,
            754e6,
            600.0,
            105.0,
            2007,
            H,
        ),
        (
            "GeForce GTX 280",
            "Tesla 2",
            TechNode::N65,
            1.4e9,
            602.0,
            236.0,
            2008,
            H,
        ),
        (
            "GeForce GTX 285",
            "Tesla 2",
            TechNode::N55,
            1.4e9,
            648.0,
            204.0,
            2009,
            H,
        ),
        (
            "Radeon HD 5870",
            "TeraScale 2",
            TechNode::N40,
            2.15e9,
            850.0,
            188.0,
            2009,
            H,
        ),
        (
            "GeForce GTX 480",
            "Fermi",
            TechNode::N40,
            3.0e9,
            700.0,
            250.0,
            2010,
            H,
        ),
        (
            "GeForce GTX 580",
            "Fermi 2",
            TechNode::N40,
            3.0e9,
            772.0,
            244.0,
            2011,
            H,
        ),
        (
            "Radeon HD 7970",
            "GCN 1",
            TechNode::N28,
            4.31e9,
            925.0,
            250.0,
            2012,
            H,
        ),
        (
            "GeForce GTX 680",
            "Kepler",
            TechNode::N28,
            3.54e9,
            1006.0,
            195.0,
            2012,
            H,
        ),
        (
            "Radeon R9 290X",
            "GCN 2",
            TechNode::N28,
            6.2e9,
            1000.0,
            290.0,
            2013,
            H,
        ),
        (
            "GeForce GTX 980",
            "Maxwell 2",
            TechNode::N28,
            5.2e9,
            1126.0,
            165.0,
            2014,
            H,
        ),
        (
            "GeForce GTX 980 Ti",
            "Maxwell 2",
            TechNode::N28,
            8.0e9,
            1075.0,
            250.0,
            2015,
            H,
        ),
        (
            "GeForce GTX 1070",
            "Pascal",
            TechNode::N16,
            7.2e9,
            1506.0,
            150.0,
            2016,
            H,
        ),
        (
            "GeForce GTX 1080",
            "Pascal",
            TechNode::N16,
            7.2e9,
            1607.0,
            180.0,
            2016,
            H,
        ),
        (
            "GeForce GTX 1080 Ti",
            "Pascal",
            TechNode::N16,
            11.8e9,
            1480.0,
            250.0,
            2017,
            H,
        ),
        // Mid-range parts (Fig. 5's translucent markers).
        (
            "GeForce GTS 450",
            "Fermi",
            TechNode::N40,
            1.17e9,
            783.0,
            106.0,
            2010,
            M,
        ),
        (
            "GeForce GTX 560 Ti",
            "Fermi 2",
            TechNode::N40,
            1.95e9,
            822.0,
            170.0,
            2011,
            M,
        ),
        (
            "Radeon HD 7850",
            "GCN 1",
            TechNode::N28,
            2.8e9,
            860.0,
            130.0,
            2012,
            M,
        ),
        (
            "GeForce GTX 660",
            "Kepler",
            TechNode::N28,
            2.54e9,
            980.0,
            140.0,
            2012,
            M,
        ),
        (
            "Radeon R9 270X",
            "GCN 1",
            TechNode::N28,
            2.8e9,
            1050.0,
            180.0,
            2013,
            M,
        ),
        (
            "GeForce GTX 960",
            "Maxwell 2",
            TechNode::N28,
            2.94e9,
            1127.0,
            120.0,
            2015,
            M,
        ),
        (
            "GeForce GTX 950",
            "Maxwell 2",
            TechNode::N28,
            2.94e9,
            1024.0,
            90.0,
            2015,
            M,
        ),
        (
            "GeForce GTX 1060",
            "Pascal",
            TechNode::N16,
            4.4e9,
            1708.0,
            120.0,
            2016,
            M,
        ),
    ];
    rows.iter()
        .map(|&(name, arch, node, tc, mhz, tdp, year, tier)| GpuChip {
            name,
            arch,
            node,
            transistors: tc,
            freq_mhz: mhz,
            tdp_w: tdp,
            year,
            tier,
        })
        .collect()
}

/// One benchmarked game configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Game {
    /// Title and resolution, as in Fig. 5's panels.
    pub title: &'static str,
    /// First year the game appears in benchmark suites.
    pub since: u32,
    /// Baseline frame rate on the oldest GPU that runs it.
    base_fps: f64,
}

/// The benchmarked games: the five Fig. 5 panels plus older titles that
/// give the pre-2011 architectures the ≥ 5 shared applications Eq. 3
/// needs before Eq. 4 can chain the rest.
pub fn games() -> Vec<Game> {
    vec![
        Game {
            title: "Half-Life 2 LC FHD",
            since: 2005,
            base_fps: 60.0,
        },
        Game {
            title: "Oblivion FHD",
            since: 2006,
            base_fps: 32.0,
        },
        Game {
            title: "Company of Heroes FHD",
            since: 2006,
            base_fps: 45.0,
        },
        Game {
            title: "Crysis FHD",
            since: 2007,
            base_fps: 22.0,
        },
        Game {
            title: "BioShock FHD",
            since: 2007,
            base_fps: 40.0,
        },
        Game {
            title: "Far Cry 2 FHD",
            since: 2008,
            base_fps: 36.0,
        },
        Game {
            title: "Metro 2033 FHD",
            since: 2010,
            base_fps: 28.0,
        },
        Game {
            title: "Portal 2 FHD",
            since: 2011,
            base_fps: 90.0,
        },
        Game {
            title: "Crysis 3 FHD",
            since: 2011,
            base_fps: 24.0,
        },
        Game {
            title: "Battlefield 4 FHD",
            since: 2011,
            base_fps: 35.0,
        },
        Game {
            title: "Battlefield 4 QHD",
            since: 2011,
            base_fps: 22.0,
        },
        Game {
            title: "GTA V FHD",
            since: 2011,
            base_fps: 30.0,
        },
        Game {
            title: "GTA V FHD 99th perc.",
            since: 2011,
            base_fps: 21.0,
        },
    ]
}

/// The five panels shown in Fig. 5 (the "Apps 1-5" subset).
pub fn fig5_games() -> Vec<Game> {
    let titles = [
        "Crysis 3 FHD",
        "Battlefield 4 FHD",
        "Battlefield 4 QHD",
        "GTA V FHD",
        "GTA V FHD 99th perc.",
    ];
    games()
        .into_iter()
        .filter(|g| titles.contains(&g.title))
        .collect()
}

/// Whether a GPU appears in a game's benchmark window (titles are
/// benchmarked on hardware from their era onward).
pub fn is_benchmarked(gpu: &GpuChip, game: &Game) -> bool {
    gpu.year >= game.since && gpu.year <= game.since + 7
}

/// The synthetic-reconstruction CSR trajectory: specialization returns
/// drift up slowly with driver/framework maturity (new CUDA releases,
/// engine tuning), plateauing — the paper's Fig. 5 CSR curves.
fn csr_trajectory(year: u32) -> f64 {
    match year {
        0..=2008 => 0.92,
        2009 => 0.95,
        2010 => 0.97,
        2011 => 0.95,
        2012 => 1.02,
        2013 => 1.06,
        2014 => 1.10,
        2015 => 1.13,
        2016 => 1.16,
        _ => 1.20,
    }
}

/// Deterministic per-(game, GPU) wiggle of about ±8%.
fn wiggle(game: &Game, gpu: &GpuChip) -> f64 {
    let h = game
        .title
        .bytes()
        .chain(gpu.name.bytes())
        .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
    1.0 + ((h % 1000) as f64 / 1000.0 - 0.5) * 0.16
}

/// The reconstructed frame rate of `gpu` on `game`, or `None` when the
/// pair is outside the benchmark window.
pub fn frame_rate(gpu: &GpuChip, game: &Game) -> Option<f64> {
    if !is_benchmarked(gpu, game) {
        return None;
    }
    let oldest = gpu_chips()
        .into_iter()
        .filter(|g| g.tier == GpuTier::HighEnd && is_benchmarked(g, game))
        .min_by_key(|g| g.year)
        // lint:allow(no-panic-paths): the static GPU dataset has a high-end chip in every benchmark window; dataset tests pin this
        .expect("window contains a high-end gpu");
    let physical = gpu.physical_throughput() / oldest.physical_throughput();
    let csr = csr_trajectory(gpu.year) / csr_trajectory(oldest.year);
    Some(game.base_fps * physical * csr * wiggle(game, gpu))
}

/// The latent (game-independent) frame-rate gain of a GPU over the
/// dataset's oldest chip: its physical-potential ratio times the CSR
/// trajectory ratio — the curve each game's frame rates realize. The
/// projection study (Figs. 15b/16b) consumes this directly.
pub fn latent_performance_gain(gpu: &GpuChip) -> f64 {
    let chips = gpu_chips();
    let oldest = &chips[0];
    (gpu.physical_throughput() / oldest.physical_throughput())
        * (csr_trajectory(gpu.year) / csr_trajectory(oldest.year))
}

/// The latent frames-per-joule gain over the oldest chip.
pub fn latent_efficiency_gain(gpu: &GpuChip) -> f64 {
    let chips = gpu_chips();
    let oldest = &chips[0];
    (gpu.physical_efficiency() / oldest.physical_efficiency())
        * (csr_trajectory(gpu.year) / csr_trajectory(oldest.year))
}

/// Frames per joule for a (gpu, game) pair.
pub fn frames_per_joule(gpu: &GpuChip, game: &Game) -> Option<f64> {
    frame_rate(gpu, game).map(|fps| fps / gpu.tdp_w)
}

/// The Fig. 5a series for one game: frame-rate gain and CSR per GPU,
/// normalized to the oldest benchmarked GPU.
///
/// # Errors
///
/// Propagates CSR validation errors (impossible on the embedded dataset).
pub fn performance_series(game: &Game) -> Result<CsrSeries> {
    series(game, frame_rate, GpuChip::physical_throughput)
}

/// The Fig. 5b series for one game: frames-per-joule gain and CSR.
///
/// # Errors
///
/// Propagates CSR validation errors (impossible on the embedded dataset).
pub fn efficiency_series(game: &Game) -> Result<CsrSeries> {
    series(game, frames_per_joule, GpuChip::physical_efficiency)
}

fn series(
    game: &Game,
    metric: impl Fn(&GpuChip, &Game) -> Option<f64>,
    physical: impl Fn(&GpuChip) -> f64,
) -> Result<CsrSeries> {
    let mut tested: Vec<(GpuChip, f64)> = gpu_chips()
        .into_iter()
        .filter_map(|g| metric(&g, game).map(|v| (g, v)))
        .collect();
    tested.sort_by_key(|(g, _)| g.year);
    let (base_gpu, base_value) = tested
        .iter()
        .find(|(g, _)| g.tier == GpuTier::HighEnd)
        // lint:allow(no-panic-paths): the static GPU dataset benchmarks a high-end chip for every game; dataset tests pin this
        .expect("every game has a high-end GPU")
        .clone();
    let rows = tested
        .iter()
        .map(|(g, v)| (g.name, v / base_value, physical(g) / physical(&base_gpu)))
        .collect();
    Ok(CsrSeries::new(rows)?)
}

/// Builds the Eq. 3/4 observations: every (architecture, game) gain, using
/// the best frame rate among the architecture's GPUs (the paper compares
/// architectures, not SKUs). `efficiency` selects frames/J instead of
/// frames/s.
///
/// # Errors
///
/// Propagates CSR validation errors (impossible on the embedded dataset).
pub fn arch_observations(efficiency: bool) -> Result<ArchObservations> {
    // One scan task per GPU, fanned across the `accelwall-par` pool; each
    // task walks every game's benchmark window. Tasks land at their chip
    // index and the per-(arch, game) merge takes a max, so the resulting
    // observations are identical to the serial double loop.
    let chips = gpu_chips();
    let all_games = games();
    let scanned = accelwall_par::par_map(chips.len(), move |i| {
        let gpu = &chips[i];
        all_games
            .iter()
            .filter_map(|game| {
                let value = if efficiency {
                    frames_per_joule(gpu, game)
                } else {
                    frame_rate(gpu, game)
                };
                value.map(|v| ((gpu.arch, game.title), v))
            })
            .collect::<Vec<((&'static str, &'static str), f64)>>()
    });
    let mut best: std::collections::BTreeMap<(&str, &str), f64> = std::collections::BTreeMap::new();
    for ((arch, game), v) in scanned.into_iter().flatten() {
        let entry = best.entry((arch, game)).or_insert(v);
        *entry = entry.max(v);
    }
    let mut obs = ArchObservations::new();
    for ((arch, game), v) in best {
        obs.add(arch, game, v).map_err(crate::StudyError::Csr)?;
    }
    Ok(obs)
}

/// The Figs. 6–7 relation matrix over architectures (Eq. 3 with ≥ 5 shared
/// games, Eq. 4 transitivity for the rest).
///
/// ```
/// let m = accelwall_studies::gpu::arch_relation_matrix(false)?;
/// // Pascal and Tesla never shared a benchmarked game; Eq. 4 chains them.
/// assert!(m.gain("Pascal", "Tesla")?.unwrap() > 8.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Propagates relation-matrix construction errors.
pub fn arch_relation_matrix(efficiency: bool) -> Result<RelationMatrix> {
    let obs = arch_observations(efficiency)?;
    RelationMatrix::build(&obs, 5).map_err(crate::StudyError::Csr)
}

/// An architecture's CSR relative to Tesla: its relation-matrix gain
/// divided by its best GPU's physical-potential gain over Tesla's.
///
/// # Errors
///
/// Propagates relation-matrix errors.
pub fn arch_csr(efficiency: bool) -> Result<Vec<(String, f64)>> {
    let matrix = arch_relation_matrix(efficiency)?;
    let chips = gpu_chips();
    let physical_of = |arch: &str| -> f64 {
        chips
            .iter()
            .filter(|g| g.arch == arch)
            .map(|g| {
                if efficiency {
                    g.physical_efficiency()
                } else {
                    g.physical_throughput()
                }
            })
            .fold(0.0, f64::max)
    };
    let tesla_physical = physical_of("Tesla");
    Ok(matrix
        .relative_to("Tesla")
        .map_err(crate::StudyError::Csr)?
        .into_iter()
        .map(|(arch, gain)| {
            let csr = gain / (physical_of(&arch) / tesla_physical);
            (arch, csr)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_two_gpus_ten_architectures_two_tiers() {
        let chips = gpu_chips();
        assert_eq!(chips.len(), 22);
        let archs: std::collections::HashSet<_> = chips.iter().map(|g| g.arch).collect();
        assert_eq!(archs.len(), 10);
        let mids = chips.iter().filter(|g| g.tier == GpuTier::MidRange).count();
        assert_eq!(mids, 8);
    }

    #[test]
    fn high_end_parts_lead_their_generation() {
        // Translucent (mid-range) markers sit below the opaque ones: for
        // every year with both tiers, the best high-end physical potential
        // beats the best mid-range one.
        let chips = gpu_chips();
        for year in [2012u32, 2015, 2016] {
            let best = |tier: GpuTier| {
                chips
                    .iter()
                    .filter(|g| g.year == year && g.tier == tier)
                    .map(super::GpuChip::physical_throughput)
                    .fold(0.0, f64::max)
            };
            assert!(
                best(GpuTier::HighEnd) > best(GpuTier::MidRange),
                "year {year}"
            );
        }
    }

    #[test]
    fn fig5_frame_rate_gains_four_to_six_x() {
        // Paper: "over a period of six years performance increased by
        // 4-6x" for the five panels.
        for game in fig5_games() {
            let s = performance_series(&game).unwrap();
            assert!(
                (3.5..7.5).contains(&s.peak_reported()),
                "{}: perf gain {:.2}",
                game.title,
                s.peak_reported()
            );
        }
    }

    #[test]
    fn fig5_efficiency_gains_four_and_a_half_to_seven_and_a_half_x() {
        // Paper: "energy efficiency increased by 4.5-7.5x."
        for game in fig5_games() {
            let s = efficiency_series(&game).unwrap();
            assert!(
                (3.5..9.0).contains(&s.peak_reported()),
                "{}: EE gain {:.2}",
                game.title,
                s.peak_reported()
            );
        }
    }

    #[test]
    fn fig5_csr_stays_near_unity() {
        // Paper: CSR 0.95-1.44 for performance, 0.99-1.47 for efficiency.
        for game in fig5_games() {
            for s in [
                performance_series(&game).unwrap(),
                efficiency_series(&game).unwrap(),
            ] {
                for row in &s.rows {
                    assert!(
                        (0.7..1.7).contains(&row.csr),
                        "{} / {}: CSR {:.2}",
                        game.title,
                        row.label,
                        row.csr
                    );
                }
            }
        }
    }

    #[test]
    fn relation_matrix_connects_all_ten_architectures() {
        let m = arch_relation_matrix(false).unwrap();
        assert_eq!(m.architectures().len(), 10);
        let rel = m.relative_to("Tesla").unwrap();
        assert_eq!(rel.len(), 10, "transitivity must connect every arch");
    }

    #[test]
    fn newer_architectures_deliver_better_absolute_gains() {
        // Fig. 6a: Pascal >> Tesla in absolute frame rate.
        let m = arch_relation_matrix(false).unwrap();
        let pascal = m.gain("Pascal", "Tesla").unwrap().unwrap();
        // The paper reports 13-16x; our potential model puts the Pascal
        // flagships somewhat higher (see EXPERIMENTS.md).
        assert!(
            (8.0..40.0).contains(&pascal),
            "Pascal over Tesla: {pascal:.1} (paper: 13-16x)"
        );
        let kepler = m.gain("Kepler", "Tesla").unwrap().unwrap();
        assert!(kepler < pascal);
        assert!(kepler > 1.0);
    }

    #[test]
    fn pascal_csr_roughly_matches_tesla_csr() {
        // Paper: "the CSR for the 16nm Pascal is roughly the same as that
        // of the 65nm Tesla" — order-of-magnitude smaller than the
        // absolute gains.
        for efficiency in [false, true] {
            let csr = arch_csr(efficiency).unwrap();
            let pascal = csr.iter().find(|(a, _)| a == "Pascal").unwrap().1;
            assert!(
                (0.6..1.8).contains(&pascal),
                "efficiency={efficiency}: Pascal CSR {pascal:.2}"
            );
        }
    }

    #[test]
    fn benchmark_windows_respect_eras() {
        let chips = gpu_chips();
        let old_gpu = &chips[0]; // 2007
        let new_game = games().into_iter().find(|g| g.since == 2011).unwrap();
        assert!(frame_rate(old_gpu, &new_game).is_none());
        let old_game = games().into_iter().find(|g| g.since == 2007).unwrap();
        assert!(frame_rate(old_gpu, &old_game).is_some());
    }

    #[test]
    fn frame_rates_are_deterministic() {
        let g = gpu_chips();
        let game = fig5_games()[0];
        assert_eq!(frame_rate(&g[7], &game), frame_rate(&g[7], &game));
    }

    #[test]
    fn every_adjacent_arch_pair_shares_enough_games() {
        // The Eq. 3 gate (>= 5 shared apps) must hold somewhere along the
        // architecture chain or Eq. 4 has nothing to chain through.
        let obs = arch_observations(false).unwrap();
        assert_eq!(obs.architectures().len(), 10);
    }
}
