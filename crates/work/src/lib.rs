//! # accelwall-work
//!
//! The fault-tolerant distributed work tier: a **coordinator** that
//! shards any registered [`Grid`](accelerator_wall::grids::Grid) into
//! numbered, leased work units, and a **worker** runner that pulls
//! those leases over the `accelwall serve` HTTP surface, computes them
//! with the same `Program`/`Ctx` machinery a local run uses, and sends
//! index-placed results back for the coordinator to fold
//! byte-identically to a single-machine run.
//!
//! The robustness model is built on one invariant the grids guarantee:
//! units are idempotent. That reduces every failure mode to "compute
//! unit `i` again somewhere else":
//!
//! * **Lease expiry** — a worker that dies or goes silent misses its
//!   heartbeat; the lease deadline passes and the unit is re-issued.
//! * **Worker health** — consecutive unit failures trip a circuit
//!   breaker that quarantines the worker; failed units re-lease after a
//!   capped decorrelated-jitter backoff.
//! * **Straggler hedging** — idle workers are handed a second copy of
//!   the slowest outstanding units; the first completion wins and the
//!   loser is counted as a duplicate, never a conflict.
//! * **Graceful degradation** — with no live fleet (or past
//!   `--work-deadline`) the coordinator finishes the remaining units on
//!   the in-process `accelwall-par` pool.
//!
//! | Module | Role |
//! |---|---|
//! | [`protocol`] | the JSON lease/complete/heartbeat wire messages |
//! | [`coordinator`] | lease table, health tracking, hedging, the run loop |
//! | [`worker`] | the `--join` client: lease, compute, heartbeat, report |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

pub mod coordinator;
pub mod protocol;
pub mod worker;

pub use coordinator::{Coordinator, WorkConfig, WorkStats};
pub use protocol::{
    CompleteReply, CompleteRequest, HeartbeatReply, HeartbeatRequest, LeaseReply, COMPLETE_PATH,
    HEARTBEAT_PATH, LEASE_PATH,
};
pub use worker::{run_worker, WorkerConfig, WorkerReport};

/// Any failure the distributed work tier can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkError {
    /// A worker could not reach the coordinator (connect, send, or
    /// receive failed) and exhausted its retry budget.
    Transport {
        /// What failed on the wire.
        what: String,
    },
    /// A peer answered with a message the protocol does not define.
    Protocol {
        /// What was malformed.
        what: String,
    },
    /// A unit failed more times than the coordinator's per-unit budget
    /// allows — the failure is deterministic, not transient, so
    /// re-issuing it forever would never converge.
    Unit {
        /// The unit index that kept failing.
        unit: usize,
        /// The last error the unit produced.
        error: String,
    },
    /// A grid-layer failure outside any single unit (local fallback
    /// compute, grid lookup).
    Grid(accelerator_wall::error::Error),
}

impl fmt::Display for WorkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkError::Transport { what } => write!(f, "work transport failed: {what}"),
            WorkError::Protocol { what } => write!(f, "work protocol violation: {what}"),
            WorkError::Unit { unit, error } => {
                write!(f, "unit {unit} exhausted its failure budget: {error}")
            }
            WorkError::Grid(e) => write!(f, "grid computation failed: {e}"),
        }
    }
}

impl std::error::Error for WorkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkError::Grid(e) => Some(e),
            WorkError::Transport { .. } | WorkError::Protocol { .. } | WorkError::Unit { .. } => {
                None
            }
        }
    }
}

impl From<accelerator_wall::error::Error> for WorkError {
    fn from(e: accelerator_wall::error::Error) -> WorkError {
        WorkError::Grid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_failure_and_chain_sources() {
        let t = WorkError::Transport {
            what: "connect refused".into(),
        };
        assert!(t.to_string().contains("connect refused"));
        assert!(std::error::Error::source(&t).is_none());

        let g = WorkError::from(accelerator_wall::error::Error::UnknownGrid {
            id: "nope".into(),
            known: vec!["sweep"],
        });
        assert!(g.to_string().contains("unknown grid"));
        assert!(std::error::Error::source(&g).is_some());
    }
}
