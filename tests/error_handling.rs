//! Error-path coverage across the public APIs: every layer's failure modes
//! are typed, display cleanly, and never panic.

use accelerator_wall::prelude::*;
use accelerator_wall::{dfg, potential, projection, stats};

#[test]
fn stats_errors_are_typed_and_displayed() {
    use stats::{Linear, PowerLaw, StatsError};
    let e = Linear::fit(&[1.0], &[1.0]).unwrap_err();
    assert!(matches!(
        e,
        StatsError::NotEnoughData {
            provided: 1,
            required: 2
        }
    ));
    assert!(e.to_string().contains("not enough data"));

    let e = Linear::fit(&[2.0, 2.0], &[1.0, 2.0]).unwrap_err();
    assert_eq!(e, StatsError::Singular);
    assert!(e.to_string().contains("singular"));

    let e = PowerLaw::fit(&[1.0, -2.0], &[1.0, 2.0]).unwrap_err();
    assert!(e.to_string().contains("domain violation"));

    let e = Linear::fit(&[1.0, f64::NAN], &[1.0, 2.0]).unwrap_err();
    assert_eq!(e, StatsError::NonFinite);
}

#[test]
fn dfg_errors_carry_context() {
    use dfg::DfgError;
    let mut b = DfgBuilder::new("bad");
    let x = b.input("x");
    let _ = b.op(Op::Add, &[x]);
    let err = b.build().unwrap_err();
    assert!(matches!(
        err,
        DfgError::ArityMismatch {
            given: 1,
            required: 2,
            ..
        }
    ));
    assert!(err.to_string().contains("takes 2 operands"));

    let mut b = DfgBuilder::new("no-outputs");
    b.input("x");
    assert!(matches!(b.build(), Err(DfgError::NoOutputs)));

    // Evaluation errors.
    let mut b = DfgBuilder::new("eval");
    let x = b.input("x");
    b.output("y", x);
    let g = b.build().unwrap();
    let err = g.evaluate(&std::collections::HashMap::new()).unwrap_err();
    assert!(err.to_string().contains("missing input"));
}

#[test]
fn potential_rejects_unphysical_specs() {
    use potential::PotentialError;
    for bad in [
        ChipSpec::new(TechNode::N7, 0.0, 1.0, 100.0),
        ChipSpec::new(TechNode::N7, 100.0, -1.0, 100.0),
        ChipSpec::new(TechNode::N7, 100.0, 1.0, f64::INFINITY),
    ] {
        let err = bad.validate().unwrap_err();
        assert!(matches!(err, PotentialError::InvalidSpec { .. }));
        assert!(err.to_string().contains("invalid chip spec"));
    }
}

#[test]
fn simulator_rejects_bad_configs_and_empty_graphs() {
    use accelerator_wall::accelsim::SimError;
    let dfg = Workload::Trd.default_instance();
    let err = simulate(&dfg, &DesignConfig::new(TechNode::N45, 3, 1, false)).unwrap_err();
    assert!(matches!(
        err,
        SimError::InvalidConfig {
            knob: "partition_factor",
            ..
        }
    ));
    assert!(err.to_string().contains("partition_factor"));

    let err = simulate(&dfg, &DesignConfig::new(TechNode::N45, 2, 99, false)).unwrap_err();
    assert!(matches!(
        err,
        SimError::InvalidConfig {
            knob: "simplification_degree",
            ..
        }
    ));

    // A graph with no compute vertices.
    let mut b = DfgBuilder::new("passthrough");
    let x = b.input("x");
    b.output("y", x);
    let g = b.build().unwrap();
    assert!(matches!(
        simulate(&g, &DesignConfig::baseline()),
        Err(SimError::EmptyGraph)
    ));
    assert!(matches!(
        accelerator_wall::accelsim::schedule(&g, &DesignConfig::baseline()),
        Err(SimError::EmptyGraph)
    ));
}

#[test]
fn csr_rejects_unphysical_gains() {
    use accelerator_wall::csr::CsrError;
    assert!(matches!(
        csr(0.0, 1.0),
        Err(CsrError::InvalidGain {
            what: "reported_gain",
            ..
        })
    ));
    let mut obs = ArchObservations::new();
    obs.add("x", "a", 1.0).unwrap();
    let m = RelationMatrix::build(&obs, 1).unwrap();
    let err = m.gain("x", "ghost").unwrap_err();
    assert!(err.to_string().contains("ghost"));
}

#[test]
fn projection_guards_extrapolation() {
    use projection::{project, ProjectionError, ProjectionInput};
    let input = ProjectionInput {
        domain: Domain::VideoDecoding,
        metric: TargetMetric::Performance,
        points: vec![(1.0, 1.0), (100.0, 10.0)],
        physical_limit: 50.0,
    };
    let err = project(&input).unwrap_err();
    assert!(matches!(err, ProjectionError::LimitInsideData { .. }));
    assert!(err.to_string().contains("does not exceed"));
}

#[test]
fn node_parsing_errors_name_the_input() {
    let err = "3nm".parse::<TechNode>().unwrap_err();
    assert!(err.to_string().contains("3nm"));
    assert!(err.to_string().contains("28nm"), "hint included");
}

#[test]
fn errors_implement_std_error_with_sources() {
    use std::error::Error as _;
    // PotentialError::DensityFit chains to the stats error underneath.
    let err = PotentialModel::from_corpus(&[]).unwrap_err();
    assert!(err.source().is_some());
    assert!(err.to_string().contains("density-law fit failed"));
}
