//! Chaos tests of `accelwall serve` under an armed fault plan: injected
//! transient errors answer 500-with-Retry-After and then recover
//! byte-identical to the CLI, contained experiment panics never take a
//! pool worker down, `serve-request` panics kill workers that the pool
//! respawns, hangs turn into 504s while the compute settles in the
//! background, query-engine faults (shedding and compute errors) answer
//! retryably without poisoning the query LRU, and malformed
//! `ACCELWALL_FAULTS` specs abort startup before the socket binds.

use accelerator_wall::json::Value;
use accelerator_wall::prelude::Registry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

/// Comfortably past the cache's default retry backoff (25 ms, 50 ms,
/// ...) without slowing the suite down.
const PAST_BACKOFF: Duration = Duration::from_millis(300);

/// A running `accelwall serve` child with a fault plan armed.
struct ServeProcess {
    child: Child,
    addr: String,
    // Keeps the child's stdout pipe open for its lifetime.
    stdout: BufReader<std::process::ChildStdout>,
}

impl ServeProcess {
    /// Spawns `accelwall serve` with `ACCELWALL_FAULTS=faults`, reads
    /// the resolved address off the announcement line, and asserts the
    /// armed-plan line echoes the spec back.
    fn spawn(faults: &str, extra_args: &[&str]) -> ServeProcess {
        let mut child = Command::new(env!("CARGO_BIN_EXE_accelwall"))
            .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
            .args(extra_args)
            .env("ACCELWALL_FAULTS", faults)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("serve spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut stdout = BufReader::new(stdout);
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("an announcement line");
        let addr = banner
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
            .to_string();
        let mut armed = String::new();
        stdout.read_line(&mut armed).expect("an armed-plan line");
        assert!(
            armed.contains("armed fault plan:"),
            "missing armed-plan announcement in {armed:?}"
        );
        ServeProcess {
            child,
            addr,
            stdout,
        }
    }

    /// Issues `POST /shutdown` and asserts the process drains cleanly.
    fn shutdown_and_wait(mut self) {
        let resp = request(&self.addr, "POST", "/shutdown");
        assert_eq!((resp.status, resp.body.as_str()), (200, "draining\n"));
        let status = self.child.wait().expect("serve exits");
        assert!(status.success(), "serve exited {status:?}");
        let mut rest = String::new();
        self.stdout
            .read_to_string(&mut rest)
            .expect("stdout drains");
        assert!(
            rest.contains("drained cleanly"),
            "missing drain announcement in {rest:?}"
        );
    }
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        // Only reached when an assertion failed mid-test.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One parsed HTTP response.
struct Resp {
    status: u16,
    headers: String,
    body: String,
}

impl Resp {
    /// The value of `name` (case-insensitive), when present.
    fn header(&self, name: &str) -> Option<String> {
        let needle = format!("{}:", name.to_ascii_lowercase());
        self.headers.lines().find_map(|l| {
            l.to_ascii_lowercase()
                .starts_with(&needle)
                .then(|| l[needle.len()..].trim().to_string())
        })
    }

    /// The body parsed as JSON.
    fn json(&self) -> Value {
        Value::parse(&self.body).unwrap_or_else(|e| panic!("{e} in body:\n{}", self.body))
    }
}

/// One exchange; `None` when the server dropped the connection without
/// answering (what a `serve-request` panic looks like from outside).
fn try_request(addr: &str, method: &str, path: &str) -> Option<Resp> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_mins(2)))
        .unwrap();
    stream
        .write_all(
            format!("{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send");
    let mut raw = String::new();
    match stream.read_to_string(&mut raw) {
        Ok(_) if !raw.is_empty() => {}
        // EOF with no bytes, or a reset mid-read: dropped.
        _ => return None,
    }
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let (headers, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    Some(Resp {
        status,
        headers,
        body,
    })
}

/// One exchange that must be answered.
fn request(addr: &str, method: &str, path: &str) -> Resp {
    try_request(addr, method, path).unwrap_or_else(|| panic!("{method} {path}: connection dropped"))
}

fn get(addr: &str, path: &str) -> Resp {
    request(addr, "GET", path)
}

/// Pulls one `accelwall_*` metric value out of a `/metrics` body.
fn metric(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{metrics}"))
}

fn cli_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args(args)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{args:?} failed");
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// The ISSUE acceptance scenario: `fig3a:err:2` fails the first two
/// requests with a retryable 500, degrades `/healthz`, and the third
/// request (past the backoff) recovers byte-identical to the CLI, with
/// the retries visible in `/metrics` and no worker casualties.
#[test]
fn transient_errors_give_retryable_500s_then_recover_byte_identical() {
    let serve = ServeProcess::spawn("fig3a:err:2", &[]);
    let addr = serve.addr.clone();

    let first = get(&addr, "/experiments/fig3a");
    assert_eq!(first.status, 500, "body:\n{}", first.body);
    let doc = first.json();
    assert_eq!(doc.get("target").and_then(Value::as_str), Some("fig3a"));
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("injected"));
    assert_eq!(doc.get("retryable").and_then(Value::as_bool), Some(true));
    assert!(
        first.header("retry-after").is_some(),
        "retryable 500 lacks Retry-After:\n{}",
        first.headers
    );

    // The failure shows up in /healthz, but the process stays up.
    let health = get(&addr, "/healthz");
    assert_eq!(health.status, 200);
    let hdoc = health.json();
    assert_eq!(hdoc.get("status").and_then(Value::as_str), Some("degraded"));
    let failed = hdoc.get("failed").and_then(Value::as_array).expect("array");
    assert!(failed
        .iter()
        .any(|f| f.get("id").and_then(Value::as_str) == Some("fig3a")));

    thread::sleep(PAST_BACKOFF);
    let second = get(&addr, "/experiments/fig3a");
    assert_eq!(second.status, 500, "body:\n{}", second.body);

    thread::sleep(PAST_BACKOFF);
    let third = get(&addr, "/experiments/fig3a");
    assert_eq!(third.status, 200, "body:\n{}", third.body);
    assert_eq!(
        third.body,
        cli_stdout(&["fig3a", "--json"]),
        "recovered artifact differs from the one-shot CLI"
    );

    let metrics = get(&addr, "/metrics").body;
    assert_eq!(
        metric(&metrics, "accelwall_artifact_cache_retries_total"),
        2.0
    );
    assert_eq!(metric(&metrics, "accelwall_worker_panics_total"), 0.0);
    assert_eq!(metric(&metrics, "accelwall_faults_armed"), 1.0);
    assert!(
        metrics.contains("accelwall_fault_injections_total{site=\"fig3a\",kind=\"err\"} 2"),
        "missing injection counter:\n{metrics}"
    );
    // The compute-once invariant, loosened only by the injected retries.
    let computes = metric(&metrics, "accelwall_artifact_cache_computes_total");
    let retries = metric(&metrics, "accelwall_artifact_cache_retries_total");
    assert!(
        computes <= Registry::paper().len() as f64 + retries,
        "recomputed a settled artifact: computes={computes} retries={retries}"
    );

    // Recovery clears the degradation.
    let hdoc = get(&addr, "/healthz").json();
    assert_eq!(hdoc.get("status").and_then(Value::as_str), Some("ready"));

    serve.shutdown_and_wait();
}

/// A panicking experiment is contained on its compute thread: the
/// request gets a retryable 500, other targets keep serving at full
/// capacity, no pool worker dies, and the target recovers.
#[test]
fn a_panicking_experiment_is_contained_and_other_targets_keep_serving() {
    let serve = ServeProcess::spawn("fig3a:panic:1", &[]);
    let addr = serve.addr.clone();

    let failed = get(&addr, "/experiments/fig3a");
    assert_eq!(failed.status, 500, "body:\n{}", failed.body);
    let doc = failed.json();
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("panic"));
    assert_eq!(doc.get("retryable").and_then(Value::as_bool), Some(true));

    // Other targets, concurrently, while fig3a sits failed.
    thread::scope(|scope| {
        for id in ["fig3b", "fig13"] {
            let addr = &addr;
            scope.spawn(move || {
                let resp = get(addr, &format!("/experiments/{id}"));
                assert_eq!(resp.status, 200, "{id} body:\n{}", resp.body);
            });
        }
    });

    let metrics = get(&addr, "/metrics").body;
    assert_eq!(
        metric(&metrics, "accelwall_artifact_cache_panics_contained_total"),
        1.0
    );
    // The panic died on a compute thread, not a pool worker.
    assert_eq!(metric(&metrics, "accelwall_worker_panics_total"), 0.0);

    thread::sleep(PAST_BACKOFF);
    let recovered = get(&addr, "/experiments/fig3a");
    assert_eq!(recovered.status, 200, "body:\n{}", recovered.body);
    assert_eq!(recovered.body, cli_stdout(&["fig3a", "--json"]));

    serve.shutdown_and_wait();
}

/// `serve-request:panic:N` kills the handling worker itself: the client
/// sees a dropped connection, the pool respawns the worker, and the
/// server keeps answering afterwards with the panics counted.
#[test]
fn worker_panics_drop_the_connection_and_the_pool_respawns() {
    let serve = ServeProcess::spawn("serve-request:panic:2", &[]);
    let addr = serve.addr.clone();

    for i in 0..2 {
        assert!(
            try_request(&addr, "GET", "/healthz").is_none(),
            "connection {i} should have died on the injected worker panic"
        );
    }

    // Both workers panicked and were respawned; the pool is back at
    // full capacity and every subsequent request is answered.
    thread::scope(|scope| {
        for _ in 0..2 {
            let addr = &addr;
            scope.spawn(move || {
                let resp = get(addr, "/healthz");
                assert_eq!(resp.status, 200);
                assert_eq!(
                    resp.json().get("status").and_then(Value::as_str),
                    Some("ready")
                );
            });
        }
    });

    // The panic counter increments while the dead worker unwinds —
    // after the client already saw its connection drop — so poll
    // briefly rather than racing the unwind.
    let deadline = Instant::now() + Duration::from_secs(5);
    let metrics = loop {
        let metrics = get(&addr, "/metrics").body;
        if metric(&metrics, "accelwall_worker_panics_total") == 2.0 || Instant::now() > deadline {
            break metrics;
        }
        thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(metric(&metrics, "accelwall_worker_panics_total"), 2.0);
    assert!(
        metrics
            .contains("accelwall_fault_injections_total{site=\"serve-request\",kind=\"panic\"} 2"),
        "missing injection counter:\n{metrics}"
    );

    serve.shutdown_and_wait();
}

/// A hung compute exhausts the request's deadline (504 + Retry-After)
/// without wedging a slot: the attempt settles in the background and a
/// later request is served from it, with exactly one compute spent.
#[test]
fn a_hung_compute_times_out_with_504_then_settles() {
    let serve = ServeProcess::spawn("fig3a:hang:600ms", &["--deadline-ms", "150"]);
    let addr = serve.addr.clone();

    let timed_out = get(&addr, "/experiments/fig3a");
    assert_eq!(timed_out.status, 504, "body:\n{}", timed_out.body);
    let doc = timed_out.json();
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("timeout"));
    assert_eq!(doc.get("retryable").and_then(Value::as_bool), Some(true));
    assert!(timed_out.header("retry-after").is_some());

    // The hung attempt keeps computing; poll until it lands.
    let deadline = Instant::now() + Duration::from_mins(1);
    let recovered = loop {
        thread::sleep(Duration::from_millis(300));
        let resp = get(&addr, "/experiments/fig3a");
        if resp.status == 200 {
            break resp;
        }
        assert_eq!(resp.status, 504, "body:\n{}", resp.body);
        assert!(Instant::now() < deadline, "compute never settled");
    };
    assert_eq!(recovered.body, cli_stdout(&["fig3a", "--json"]));

    let metrics = get(&addr, "/metrics").body;
    assert!(metric(&metrics, "accelwall_artifact_cache_compute_timeouts_total") >= 1.0);
    // One hang, no failures: the slot settled off a single attempt.
    assert_eq!(
        metric(&metrics, "accelwall_artifact_cache_retries_total"),
        0.0
    );

    serve.shutdown_and_wait();
}

/// The query engine under an armed plan: `query-cache-admit:err:1`
/// sheds the first spec with a 503 + Retry-After, `query-compute:err:1`
/// fails the next miss with a retryable 500, and neither failure is
/// memoized — the retry computes cleanly (200) and a further repeat is
/// served from the LRU without another compute.
#[test]
fn injected_query_faults_shed_then_fail_retryably_without_poisoning_the_cache() {
    let serve = ServeProcess::spawn("query-cache-admit:err:1,query-compute:err:1", &[]);
    let addr = serve.addr.clone();
    let path = "/query?workload=fft&node=7nm&lanes=2";

    let shed = get(&addr, path);
    assert_eq!(shed.status, 503, "body:\n{}", shed.body);
    assert!(
        shed.header("retry-after").is_some(),
        "shed 503 lacks Retry-After:\n{}",
        shed.headers
    );

    let failed = get(&addr, path);
    assert_eq!(failed.status, 500, "body:\n{}", failed.body);
    let doc = failed.json();
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("injected"));
    assert_eq!(doc.get("retryable").and_then(Value::as_bool), Some(true));
    assert!(
        failed.header("retry-after").is_some(),
        "retryable 500 lacks Retry-After:\n{}",
        failed.headers
    );

    // The failed attempt was never cached: the retry recomputes and
    // answers 200, and the repeat after it is a pure LRU hit.
    let recovered = get(&addr, path);
    assert_eq!(recovered.status, 200, "body:\n{}", recovered.body);
    let warm = get(&addr, path);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.body, recovered.body, "warm repeat differs");

    let metrics = get(&addr, "/metrics").body;
    assert_eq!(metric(&metrics, "accelwall_query_shed_total"), 1.0);
    assert_eq!(metric(&metrics, "accelwall_query_computes_total"), 2.0);
    assert_eq!(metric(&metrics, "accelwall_query_cache_hits_total"), 1.0);
    assert!(
        metrics.contains(
            "accelwall_fault_injections_total{site=\"query-cache-admit\",kind=\"err\"} 1"
        ) && metrics
            .contains("accelwall_fault_injections_total{site=\"query-compute\",kind=\"err\"} 1"),
        "missing injection counters:\n{metrics}"
    );
    // Both faults stayed inside the engine: no worker died, and the
    // artifact cache never saw a failure.
    assert_eq!(metric(&metrics, "accelwall_worker_panics_total"), 0.0);
    assert_eq!(
        metric(&metrics, "accelwall_artifact_cache_retries_total"),
        0.0
    );

    serve.shutdown_and_wait();
}

/// The `serve-conn` site fires in the reactor's accept path, before any
/// request is parsed: an `err` sheds the brand-new connection with a
/// 503 + close, and a `panic` is contained on the reactor thread — the
/// connection drops, but the reactor keeps accepting afterwards.
#[test]
fn injected_connection_faults_shed_or_drop_without_killing_the_reactor() {
    // err: the connection is answered 503 and closed, never reaching
    // the parser or the pool.
    let serve = ServeProcess::spawn("serve-conn:err:1", &[]);
    let addr = serve.addr.clone();
    let shed = get(&addr, "/healthz");
    assert_eq!(shed.status, 503, "body:\n{}", shed.body);
    assert!(
        shed.body
            .contains("injected transient fault at site \"serve-conn\""),
        "body:\n{}",
        shed.body
    );
    let ok = get(&addr, "/healthz");
    assert_eq!(ok.status, 200);
    let metrics = get(&addr, "/metrics").body;
    assert!(
        metrics.contains("accelwall_fault_injections_total{site=\"serve-conn\",kind=\"err\"} 1"),
        "missing injection counter:\n{metrics}"
    );
    serve.shutdown_and_wait();

    // panic: the connection drops with no bytes, the reactor survives
    // and keeps serving.
    let serve = ServeProcess::spawn("serve-conn:panic:2", &[]);
    let addr = serve.addr.clone();
    for i in 0..2 {
        assert!(
            try_request(&addr, "GET", "/healthz").is_none(),
            "connection {i} should have been dropped by the injected accept panic"
        );
    }
    let resp = get(&addr, "/healthz");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.json().get("status").and_then(Value::as_str),
        Some("ready")
    );
    let metrics = get(&addr, "/metrics").body;
    assert!(
        metrics.contains("accelwall_fault_injections_total{site=\"serve-conn\",kind=\"panic\"} 2"),
        "missing injection counter:\n{metrics}"
    );
    // The contained panics never touched the worker pool.
    assert_eq!(metric(&metrics, "accelwall_worker_panics_total"), 0.0);
    serve.shutdown_and_wait();
}

/// Malformed or unknown `ACCELWALL_FAULTS` specs abort startup with a
/// diagnostic instead of silently arming nothing.
#[test]
fn invalid_fault_specs_abort_startup() {
    let spawn_expecting_failure = |spec: &str| -> String {
        let out = Command::new(env!("CARGO_BIN_EXE_accelwall"))
            .args(["serve", "--addr", "127.0.0.1:0"])
            .env("ACCELWALL_FAULTS", spec)
            .output()
            .expect("binary runs");
        assert!(
            !out.status.success(),
            "serve accepted ACCELWALL_FAULTS={spec:?}"
        );
        String::from_utf8_lossy(&out.stderr).into_owned()
    };

    let err = spawn_expecting_failure("total-nonsense");
    assert!(err.contains("ACCELWALL_FAULTS is invalid"), "{err}");

    let err = spawn_expecting_failure("no-such-site:err:1");
    assert!(err.contains("no-such-site"), "{err}");

    let err = spawn_expecting_failure("fig3a:wobble:1");
    assert!(err.contains("wobble"), "{err}");

    let err = spawn_expecting_failure("fig3a:hang:oops");
    assert!(err.contains("oops"), "{err}");
}
