//! `float-hygiene` — NaN-safe float handling in the numeric crates.
//!
//! The paper's fits run in log space, where a single NaN poisons a whole
//! regression, and the Pareto/ranking code sorts by float keys, where a
//! NaN comparator panics or (worse) produces an inconsistent order. In
//! the fitting/stats/projection crates this rule flags:
//!
//! * `==` / `!=` with a float-literal (or `NAN`/`INFINITY`) operand —
//!   exact float equality is almost always a bug; when an exact-zero
//!   guard is genuinely intended, say so with a justified allow;
//! * `partial_cmp(...)` immediately unwrapped or expected — the
//!   NaN-unsafe sort-key idiom; use `f64::total_cmp` or handle `None`.
//!
//! The `partial_cmp` check additionally runs *workspace-wide* when the
//! unwrap sits inside a `sort_by`/`sort_unstable_by`/`max_by`/`min_by`/
//! `binary_search_by` comparator closure — a NaN there panics inside
//! the sort no matter which crate hosts it.

use crate::lexer::TokenKind;
use crate::workspace::Workspace;
use crate::{Finding, Lint};

/// See the module docs.
pub struct FloatHygiene;

/// The crates whose numeric kernels this rule polices.
const SCOPES: [&str; 3] = ["crates/stats", "crates/chipdb", "crates/projection"];

const FLOAT_CONSTS: [&str; 3] = ["NAN", "INFINITY", "NEG_INFINITY"];

/// Comparator-taking methods whose closure panicking mid-sort is a
/// crash in whatever crate hosts the call.
const COMPARATOR_METHODS: [&str; 5] = [
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

impl Lint for FloatHygiene {
    fn name(&self) -> &'static str {
        "float-hygiene"
    }

    fn description(&self) -> &'static str {
        "no float ==/!= and no NaN-unsafe partial_cmp().unwrap() in fitting/stats/projection code"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for scope in SCOPES {
            for file in ws.files_under(scope) {
                if file.test_file {
                    continue;
                }
                let code = file.code_tokens();
                for (i, t) in code.iter().enumerate() {
                    if file.is_test_line(t.line) {
                        continue;
                    }
                    if t.is_punct("==") || t.is_punct("!=") {
                        let floaty = |j: Option<usize>| {
                            j.and_then(|j| code.get(j)).is_some_and(|n| {
                                n.kind == TokenKind::Float
                                    || (n.kind == TokenKind::Ident
                                        && FLOAT_CONSTS.contains(&n.text.as_str()))
                            })
                        };
                        // `x == f64::NAN`: the constant sits two tokens
                        // past the operator, behind the `f64::` path.
                        let pathed_const = code.get(i + 2).is_some_and(|p| p.is_punct("::"))
                            && floaty(Some(i + 3));
                        if floaty(i.checked_sub(1)) || floaty(Some(i + 1)) || pathed_const {
                            findings.push(Finding {
                                rule: self.name(),
                                path: file.rel_path.clone(),
                                line: t.line,
                                col: t.col,
                                message: format!(
                                    "float `{}` comparison; compare against an epsilon, \
                                     use `is_nan()`/`is_finite()`, or justify the exact \
                                     check with `// lint:allow(float-hygiene): <why>`",
                                    t.text
                                ),
                            });
                        }
                    }
                    if t.is_ident("partial_cmp") && code.get(i + 1).is_some_and(|n| n.is_punct("("))
                    {
                        if let Some(site) = nan_unsafe_consumer(&code, i + 1) {
                            findings.push(Finding {
                                rule: self.name(),
                                path: file.rel_path.clone(),
                                line: site.0,
                                col: site.1,
                                message: "NaN-unsafe sort key: `partial_cmp(..).unwrap()` \
                                          panics on NaN; use `f64::total_cmp` or handle `None`"
                                    .to_string(),
                            });
                        }
                    }
                }
            }
        }
        // Workspace-wide comparator-closure pass. Files under the
        // numeric scopes are skipped: the pass above already flags
        // every `partial_cmp(..).unwrap()` there, closure or not.
        for file in &ws.files {
            if file.test_file || SCOPES.iter().any(|s| file.rel_path.starts_with(s)) {
                continue;
            }
            let code = file.code_tokens();
            for (i, t) in code.iter().enumerate() {
                if file.is_test_line(t.line)
                    || !COMPARATOR_METHODS.contains(&t.text.as_str())
                    || t.kind != TokenKind::Ident
                    || !i.checked_sub(1).is_some_and(|p| code[p].is_punct("."))
                    || !code.get(i + 1).is_some_and(|n| n.is_punct("("))
                {
                    continue;
                }
                let close = match_paren(&code, i + 1);
                for j in i + 2..close {
                    if code[j].is_ident("partial_cmp")
                        && code.get(j + 1).is_some_and(|n| n.is_punct("("))
                    {
                        if let Some(site) = nan_unsafe_consumer(&code, j + 1) {
                            findings.push(Finding {
                                rule: self.name(),
                                path: file.rel_path.clone(),
                                line: site.0,
                                col: site.1,
                                message: format!(
                                    "NaN-unsafe `{}` comparator: `partial_cmp(..).unwrap()` \
                                     panics on NaN mid-sort; use `f64::total_cmp` or handle \
                                     `None`",
                                    t.text
                                ),
                            });
                        }
                    }
                }
            }
        }
        findings
    }
}

/// The index of the `)` matching the `(` at `open` (or the last index
/// if unbalanced).
fn match_paren(code: &[&crate::lexer::Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < code.len() {
        if code[i].is_punct("(") {
            depth += 1;
        } else if code[i].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// Given the index of the `(` opening a `partial_cmp` call, returns the
/// position of a directly chained `.unwrap()` / `.expect(...)`, if any.
fn nan_unsafe_consumer(code: &[&crate::lexer::Token], open: usize) -> Option<(usize, usize)> {
    let mut depth = 0usize;
    let mut i = open;
    while i < code.len() {
        if code[i].is_punct("(") {
            depth += 1;
        } else if code[i].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        i += 1;
    }
    let dot = code.get(i + 1)?;
    let method = code.get(i + 2)?;
    if dot.is_punct(".") && (method.is_ident("unwrap") || method.is_ident("expect")) {
        Some((method.line, method.col))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::workspace;

    fn check_at(path: &str, src: &str) -> Vec<Finding> {
        FloatHygiene.check(&workspace(&[(path, src)]))
    }

    #[test]
    fn flags_float_literal_equality() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\nfn g(y: f64) -> bool { 1.5 != y }\n";
        let found = check_at("crates/stats/src/lib.rs", src);
        assert_eq!(found.len(), 2);
        assert!(found[0].message.contains("=="));
        assert_eq!(found[1].line, 2);
    }

    #[test]
    fn flags_nan_constant_equality() {
        let src = "fn f(x: f64) -> bool { x == f64::NAN }\n";
        assert_eq!(check_at("crates/projection/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn integer_equality_is_fine() {
        let src = "fn f(x: usize) -> bool { x == 0 && x != 3 }\n";
        assert!(check_at("crates/stats/src/lib.rs", src).is_empty());
    }

    #[test]
    fn flags_partial_cmp_unwrap_and_expect() {
        let src = "fn f(v: &mut Vec<f64>) {\n\
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                   v.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\"));\n\
                   }\n";
        let found = check_at("crates/chipdb/src/fit.rs", src);
        assert_eq!(found.len(), 2);
        assert!(found[0].message.contains("total_cmp"));
    }

    #[test]
    fn total_cmp_and_handled_partial_cmp_pass() {
        let src = "fn f(v: &mut Vec<f64>) {\n\
                   v.sort_by(f64::total_cmp);\n\
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n\
                   }\n";
        assert!(check_at("crates/stats/src/lib.rs", src).is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_not_checked() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
        assert!(check_at("crates/server/src/lib.rs", src).is_empty());
        assert!(check_at("src/bin/accelwall.rs", src).is_empty());
    }

    #[test]
    fn flags_comparator_closures_workspace_wide() {
        let src = "fn rank(v: &mut Vec<(String, f64)>) -> Option<&(String, f64)> {\n\
                   v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());\n\
                   v.iter().max_by(|a, b| a.1.partial_cmp(&b.1).expect(\"finite\"))\n\
                   }\n";
        let found = check_at("crates/server/src/lib.rs", src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].message.contains("sort_by"));
        assert!(found[0].message.contains("total_cmp"));
        assert!(found[1].message.contains("max_by"));
    }

    #[test]
    fn comparator_pass_does_not_double_count_in_scope_files() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert_eq!(check_at("crates/stats/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn total_cmp_comparators_pass_workspace_wide() {
        let src = "fn f(v: &mut Vec<f64>) {\n\
                   v.sort_by(f64::total_cmp);\n\
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n\
                   }\n";
        assert!(check_at("crates/server/src/lib.rs", src).is_empty());
    }

    #[test]
    fn test_scope_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(x: f64) -> bool { x == 0.5 }\n}\n";
        assert!(check_at("crates/stats/src/lib.rs", src).is_empty());
    }
}
