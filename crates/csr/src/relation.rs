//! The architecture relation matrix of Eqs. 3 and 4.
//!
//! The GPU study (Figs. 6–7) compares nine architectures whose benchmark
//! coverage only partially overlaps. Eq. 3 sets the relative gain of a pair
//! with at least five shared applications to the geometric mean of the
//! per-application gain ratios; Eq. 4 connects the remaining pairs
//! transitively through intermediary architectures, iterating until the
//! matrix stops growing.

use crate::{CsrError, Result};
use accelwall_stats::geomean;
use std::collections::BTreeMap;

/// Per-architecture, per-application gain observations.
///
/// Gains may be in any consistent unit (frames/s, frames/J, ...) as long as
/// a given application's numbers are comparable across architectures.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArchObservations {
    // BTreeMaps keep iteration deterministic.
    gains: BTreeMap<String, BTreeMap<String, f64>>,
}

impl ArchObservations {
    /// Creates an empty observation set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records architecture `arch` achieving `gain` on application `app`.
    /// A repeated (arch, app) pair overwrites the earlier value.
    ///
    /// # Errors
    ///
    /// Returns [`CsrError::InvalidGain`] for non-positive or non-finite
    /// gains.
    pub fn add(&mut self, arch: &str, app: &str, gain: f64) -> Result<()> {
        if !(gain > 0.0 && gain.is_finite()) {
            return Err(CsrError::InvalidGain {
                what: "observation",
                value: gain,
            });
        }
        self.gains
            .entry(arch.to_string())
            .or_default()
            .insert(app.to_string(), gain);
        Ok(())
    }

    /// Architectures present, sorted.
    pub fn architectures(&self) -> Vec<&str> {
        self.gains.keys().map(String::as_str).collect()
    }

    /// Applications shared by two architectures.
    fn shared_apps(&self, x: &str, y: &str) -> Vec<&str> {
        match (self.gains.get(x), self.gains.get(y)) {
            (Some(gx), Some(gy)) => gx
                .keys()
                .filter(|app| gy.contains_key(*app))
                .map(String::as_str)
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// The completed pairwise relation matrix: `gain(x → y)` is how much better
/// architecture `x` is than `y`, geometric-mean sense.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationMatrix {
    archs: Vec<String>,
    // Row-major n x n; None = unrelated even after transitive closure.
    cells: Vec<Option<f64>>,
}

impl RelationMatrix {
    /// Builds the matrix per Eqs. 3–4.
    ///
    /// Pairs sharing at least `min_shared_apps` applications get a direct
    /// Eq. 3 geometric-mean gain (the paper uses 5); remaining pairs are
    /// filled by Eq. 4's transitive geometric means, iterating to a
    /// fixpoint. Direct relations are never overwritten.
    ///
    /// # Errors
    ///
    /// Returns [`CsrError::EmptyObservations`] when no architecture has
    /// observations.
    pub fn build(obs: &ArchObservations, min_shared_apps: usize) -> Result<Self> {
        let archs: Vec<String> = obs
            .architectures()
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        if archs.is_empty() {
            return Err(CsrError::EmptyObservations);
        }
        let n = archs.len();
        let mut cells: Vec<Option<f64>> = vec![None; n * n];
        let idx = |i: usize, j: usize| i * n + j;

        // Diagonal.
        for i in 0..n {
            cells[idx(i, i)] = Some(1.0);
        }

        // Eq. 3: direct pairs.
        for i in 0..n {
            for j in (i + 1)..n {
                let shared = obs.shared_apps(&archs[i], &archs[j]);
                if shared.len() >= min_shared_apps {
                    let ratios: Vec<f64> = shared
                        .iter()
                        .map(|app| obs.gains[&archs[i]][*app] / obs.gains[&archs[j]][*app])
                        .collect();
                    // lint:allow(no-panic-paths): shared is non-empty (len >= min_shared_apps) and gains are validated positive on insert
                    let g = geomean(&ratios).expect("ratios of validated gains are positive");
                    cells[idx(i, j)] = Some(g);
                    cells[idx(j, i)] = Some(1.0 / g);
                }
            }
        }

        // Eq. 4: transitive closure by geometric means over intermediaries,
        // iterated until no new pair is added (as the paper describes).
        loop {
            let mut added = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if i == j || cells[idx(i, j)].is_some() {
                        continue;
                    }
                    let through: Vec<f64> = (0..n)
                        .filter(|&k| k != i && k != j)
                        .filter_map(|k| match (cells[idx(i, k)], cells[idx(k, j)]) {
                            (Some(a), Some(b)) => Some(a * b),
                            _ => None,
                        })
                        .collect();
                    if !through.is_empty() {
                        // lint:allow(no-panic-paths): through is checked non-empty and products of positive cells stay positive
                        let g = geomean(&through).expect("positive products");
                        added.push((i, j, g));
                    }
                }
            }
            if added.is_empty() {
                break;
            }
            for (i, j, g) in added {
                // A later entry for (j, i) from the same round may disagree
                // slightly with 1/g on inconsistent data; keep the first.
                if cells[idx(i, j)].is_none() {
                    cells[idx(i, j)] = Some(g);
                }
                if cells[idx(j, i)].is_none() {
                    cells[idx(j, i)] = Some(1.0 / g);
                }
            }
        }

        Ok(RelationMatrix { archs, cells })
    }

    /// Architectures covered by the matrix, sorted.
    pub fn architectures(&self) -> &[String] {
        &self.archs
    }

    /// The relative gain `x → y`, if the architectures are connected.
    ///
    /// # Errors
    ///
    /// Returns [`CsrError::UnknownArchitecture`] for names absent from the
    /// observations; `Ok(None)` for known-but-disconnected pairs.
    pub fn gain(&self, x: &str, y: &str) -> Result<Option<f64>> {
        let i = self.index_of(x)?;
        let j = self.index_of(y)?;
        Ok(self.cells[i * self.archs.len() + j])
    }

    /// Every architecture's gain relative to `baseline`, sorted by name.
    /// Disconnected architectures are omitted.
    ///
    /// # Errors
    ///
    /// Returns [`CsrError::UnknownArchitecture`] if `baseline` is unknown.
    pub fn relative_to(&self, baseline: &str) -> Result<Vec<(String, f64)>> {
        let j = self.index_of(baseline)?;
        Ok(self
            .archs
            .iter()
            .enumerate()
            .filter_map(|(i, name)| self.cells[i * self.archs.len() + j].map(|g| (name.clone(), g)))
            .collect())
    }

    fn index_of(&self, name: &str) -> Result<usize> {
        self.archs
            .iter()
            .position(|a| a == name)
            .ok_or_else(|| CsrError::UnknownArchitecture(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Observations where gain(arch, app) = s_arch * t_app: every pairwise
    /// relation must equal the ratio of the arch scales, regardless of
    /// which apps overlap.
    fn consistent_obs(scales: &[(&str, f64)], apps: &[(&str, f64)]) -> ArchObservations {
        let mut obs = ArchObservations::new();
        for &(arch, s) in scales {
            for &(app, t) in apps {
                obs.add(arch, app, s * t).unwrap();
            }
        }
        obs
    }

    #[test]
    fn direct_pairs_recover_scale_ratios() {
        let obs = consistent_obs(
            &[("tesla", 1.0), ("fermi", 2.5), ("pascal", 8.0)],
            &[("a", 1.0), ("b", 3.0), ("c", 0.5), ("d", 7.0), ("e", 2.0)],
        );
        let m = RelationMatrix::build(&obs, 5).unwrap();
        let g = m.gain("pascal", "tesla").unwrap().unwrap();
        assert!((g - 8.0).abs() < 1e-9);
        let g = m.gain("fermi", "pascal").unwrap().unwrap();
        assert!((g - 2.5 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_symmetry_holds() {
        let obs = consistent_obs(
            &[("x", 1.0), ("y", 3.0)],
            &[("a", 1.0), ("b", 2.0), ("c", 3.0), ("d", 4.0), ("e", 5.0)],
        );
        let m = RelationMatrix::build(&obs, 5).unwrap();
        let xy = m.gain("x", "y").unwrap().unwrap();
        let yx = m.gain("y", "x").unwrap().unwrap();
        assert!((xy * yx - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transitive_closure_fills_disjoint_pairs() {
        // x and z share no apps; both share 5 apps with y.
        let mut obs = ArchObservations::new();
        let apps_xy = ["a", "b", "c", "d", "e"];
        let apps_yz = ["f", "g", "h", "i", "j"];
        for app in apps_xy {
            obs.add("x", app, 2.0).unwrap();
            obs.add("y", app, 1.0).unwrap();
        }
        for app in apps_yz {
            obs.add("y", app, 1.0).unwrap();
            obs.add("z", app, 4.0).unwrap();
        }
        let m = RelationMatrix::build(&obs, 5).unwrap();
        // Direct: x/y = 2, y/z = 1/4. Transitive: x/z = 1/2.
        let g = m.gain("x", "z").unwrap().unwrap();
        assert!((g - 0.5).abs() < 1e-9, "x over z = {g}");
    }

    #[test]
    fn min_shared_apps_gate() {
        // Only 3 shared apps: no direct relation, no intermediary either.
        let obs = consistent_obs(
            &[("x", 1.0), ("y", 2.0)],
            &[("a", 1.0), ("b", 2.0), ("c", 3.0)],
        );
        let m = RelationMatrix::build(&obs, 5).unwrap();
        assert_eq!(m.gain("x", "y").unwrap(), None);
    }

    #[test]
    fn relative_to_baseline_lists_connected_archs() {
        let obs = consistent_obs(
            &[("tesla", 1.0), ("kepler", 4.0), ("pascal", 13.0)],
            &[("a", 1.0), ("b", 2.0), ("c", 3.0), ("d", 4.0), ("e", 5.0)],
        );
        let m = RelationMatrix::build(&obs, 5).unwrap();
        let rel = m.relative_to("tesla").unwrap();
        assert_eq!(rel.len(), 3);
        let pascal = rel.iter().find(|(n, _)| n == "pascal").unwrap();
        assert!((pascal.1 - 13.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_architecture_errors() {
        let obs = consistent_obs(&[("x", 1.0)], &[("a", 1.0)]);
        let m = RelationMatrix::build(&obs, 1).unwrap();
        assert!(matches!(
            m.gain("x", "nope"),
            Err(CsrError::UnknownArchitecture(_))
        ));
        assert!(m.relative_to("nope").is_err());
    }

    #[test]
    fn empty_observations_error() {
        let obs = ArchObservations::new();
        assert_eq!(
            RelationMatrix::build(&obs, 5).unwrap_err(),
            CsrError::EmptyObservations
        );
    }

    #[test]
    fn diagonal_is_unity() {
        let obs = consistent_obs(&[("x", 3.0)], &[("a", 1.0)]);
        let m = RelationMatrix::build(&obs, 1).unwrap();
        assert_eq!(m.gain("x", "x").unwrap(), Some(1.0));
    }

    #[test]
    fn rejects_invalid_observation() {
        let mut obs = ArchObservations::new();
        assert!(obs.add("x", "a", 0.0).is_err());
        assert!(obs.add("x", "a", f64::NAN).is_err());
    }

    #[test]
    fn chain_of_three_hops_connects_ends() {
        // a - b - c - d chain, disjoint app sets pairwise except neighbors.
        let mut obs = ArchObservations::new();
        let add_pair = |obs: &mut ArchObservations, x: &str, y: &str, ratio: f64, tag: &str| {
            for k in 0..5 {
                let app = format!("{tag}{k}");
                obs.add(x, &app, ratio).unwrap();
                obs.add(y, &app, 1.0).unwrap();
            }
        };
        add_pair(&mut obs, "b", "a", 2.0, "ab");
        add_pair(&mut obs, "c", "b", 3.0, "bc");
        add_pair(&mut obs, "d", "c", 5.0, "cd");
        let m = RelationMatrix::build(&obs, 5).unwrap();
        let g = m.gain("d", "a").unwrap().unwrap();
        assert!((g - 30.0).abs() < 1e-6, "d over a = {g}");
    }
}
