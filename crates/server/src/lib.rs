//! `accelwall-server` — a dependency-free HTTP artifact server over the
//! experiment registry.
//!
//! The one-shot CLI recomputes artifacts per invocation; this crate
//! turns the same registry into a long-lived service. A [`Server`] holds
//! one process-lifetime [`ArtifactCache`] (registry + shared-input
//! [`Ctx`](accelerator_wall::cache::Ctx) + per-experiment `OnceLock`s),
//! so the first request for a target computes it — dependencies first,
//! exactly like an `all` run — and every later request is served from
//! memory. The pipeline's compute-once invariant extends from "per
//! process run" to "per server lifetime", and `/metrics` exposes the
//! counters that prove it.
//!
//! Everything is `std`-only, split into two tiers (see DESIGN.md,
//! "Connection reactor"):
//!
//! * an **I/O tier** — one nonblocking event-loop thread (the reactor)
//!   owns the listener and every client socket: it accepts, buffers
//!   partial reads, parses pipelined HTTP/1.1 incrementally, keeps
//!   connections alive by default (closing only on error,
//!   `Connection: close`, or the idle timeout), answers warm `GET`s
//!   straight from a pre-serialized [`respcache::ResponseCache`], and
//!   writes responses out in request order with gathered vectored
//!   writes;
//! * a **compute tier** — the fixed-size worker pool
//!   ([`pool::ThreadPool`]) over a bounded `mpsc` channel, fed one
//!   parsed request at a time. The bounded backlog doubles as the
//!   backpressure cap: a saturated pool answers that request `503` in
//!   pipeline order instead of queueing unboundedly, and a hard
//!   concurrent-connection cap ([`ServerConfig::max_connections`])
//!   sheds whole connections the same way.
//!
//! Shutdown is a drain: `POST /shutdown` (or [`ServerHandle::shutdown`])
//! stops accepting, requests already buffered or in flight finish, each
//! connection closes as it goes quiet, then the listener closes and
//! [`Server::run`] returns.
//!
//! # Routes
//!
//! | Route | Response |
//! |---|---|
//! | `GET /experiments` | the registry roster (same JSON as `accelwall list --json`) |
//! | `GET /experiments/{id}` | the artifact as JSON, or its text rendering with `Accept: text/plain` |
//! | `GET /query?...` | an ad-hoc what-if spec answered by the query engine (`accelwall-query`) |
//! | `POST /query` | the same, with the spec as a JSON body (`Content-Length`-capped) |
//! | `GET /query/schema` | query-field introspection: kinds, rosters, defaults |
//! | `GET /healthz` | `{"status": "ready"\|"degraded", "failed": [...]}` — degraded lists targets in `Failed` state |
//! | `GET /metrics` | Prometheus-style counters (requests, latency, cache, query engine, `Ctx`, containment) |
//! | `POST /shutdown` | begins the graceful drain |
//! | `POST /work/lease` | lease a batch of grid units (coordinator mode only; see DESIGN.md, "Distributed execution") |
//! | `POST /work/complete` | return one unit's result (or failure) to the coordinator |
//! | `POST /work/heartbeat` | extend the caller's leases; replies with units to abandon |
//!
//! The `/work/*` routes exist only when the server was bound with
//! [`Server::bind_with_work`] and a [`Coordinator`] attached (the
//! `accelwall work` coordinator mode); otherwise they answer `404` and
//! `/healthz` + `/metrics` are byte-identical to a plain server.
//!
//! Unknown `{id}`s answer `404` with the same roster-carrying message as
//! the CLI — both derive from [`Registry`](accelerator_wall::registry::Registry),
//! so there is no hand-maintained route list to drift.
//!
//! # Failure containment
//!
//! Experiments can fail, panic, or hang; none of those may take the
//! server down with them (see DESIGN.md, "Failure semantics"):
//!
//! * a panicking experiment is caught inside the cache and answers `500`
//!   with a typed `"kind": "panic"` JSON body — and should a panic ever
//!   reach a pool worker anyway, the worker respawns and
//!   `worker_panics_total` counts it;
//! * a transient failure answers `500` with a `Retry-After` hint; the
//!   cache retries it (bounded attempts, exponential backoff) on later
//!   requests instead of memoizing the error forever;
//! * a compute still running after [`ServerConfig::compute_deadline`]
//!   answers `504` while the compute continues in the background;
//! * `/healthz` reports `degraded` (with the failed-target list) while
//!   any slot is in `Failed` state, for load-balancer use.
//!
//! Every path above can be provoked deterministically by arming
//! `ACCELWALL_FAULTS` (see the `accelwall-faults` crate); the
//! `serve-request` static site fires per parsed request at the top of
//! the pool's compute handler, and `serve-conn` fires per accepted
//! connection inside the reactor. While a fault plan is armed the
//! reactor bypasses its inline fast path entirely, so every request
//! flows through the pool and its probes — chaos semantics are
//! identical to the old thread-per-connection front end.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod http;
pub mod metrics;
pub mod pool;
pub mod respcache;

mod conn;
mod reactor;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::time::Duration;

use accelerator_wall::artifacts::ArtifactCache;
use accelerator_wall::error::Error;
use accelerator_wall::json::Value;
use accelwall_query::spec::{pairs_from_json, pairs_from_query};
use accelwall_query::{QueryEngine, QueryError, QuerySpec};
use accelwall_work::protocol::parse_lease_request;
use accelwall_work::{CompleteRequest, Coordinator, HeartbeatRequest};

use http::{Request, Response};
use metrics::{Metrics, Route};
use pool::ThreadPool;
use reactor::{Completion, ComputeJob, Reactor, ReactorLimits};
use respcache::ResponseCache;

/// Tunables for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, `HOST:PORT`. Port 0 picks a free port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Connections allowed to queue beyond the busy workers before the
    /// acceptor sheds load with `503`.
    pub backlog: usize,
    /// Per-socket read/write timeout (bounds slow clients).
    pub io_timeout: Duration,
    /// How long a `GET /experiments/{id}` request waits for a compute
    /// before answering `504` (the compute itself keeps running and can
    /// settle the cache for later requests).
    pub compute_deadline: Duration,
    /// Byte cap on the query engine's response LRU (`/query` routes).
    pub query_cache_bytes: usize,
    /// Hard cap on concurrently open connections; excess accepts are
    /// shed with an immediate `503` + close.
    pub max_connections: usize,
    /// How long a connection may sit idle between requests before the
    /// reactor closes it (keep-alive harvest; slowloris protection).
    pub idle_timeout: Duration,
    /// Byte cap on the pre-serialized response cache (the reactor's
    /// inline fast path for warm `GET`s).
    pub response_cache_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8373".to_string(),
            workers: 4,
            backlog: 64,
            io_timeout: Duration::from_secs(5),
            compute_deadline: Duration::from_secs(30),
            query_cache_bytes: accelwall_query::engine::DEFAULT_CACHE_BYTES,
            max_connections: 1024,
            idle_timeout: Duration::from_secs(5),
            response_cache_bytes: 4 * 1024 * 1024,
        }
    }
}

/// A bound (but not yet running) artifact server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServerConfig,
    cache: Arc<ArtifactCache>,
    engine: Arc<QueryEngine>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    work: Option<Arc<Coordinator>>,
}

/// A cheap handle for observing and stopping a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Begins the graceful drain: no new connections are accepted,
    /// queued and in-flight requests finish, then [`Server::run`]
    /// returns.
    pub fn shutdown(&self) {
        // AcqRel: the release side publishes "draining" to the
        // acceptor's Acquire load; the acquire side orders this thread
        // after any earlier shutdown call it lost the race to.
        if !self.shutdown.swap(true, Ordering::AcqRel) {
            // Wake the acceptor if it is parked in `accept()`.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

impl Server {
    /// Binds the listener and prepares the worker pool configuration.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (bad address, port in use).
    pub fn bind(config: ServerConfig, cache: ArtifactCache) -> std::io::Result<Server> {
        Server::bind_with_work(config, cache, None)
    }

    /// Like [`Server::bind`], with an optional distributed-work
    /// [`Coordinator`] attached. When `Some`, the `/work/*` routes serve
    /// leases, completions, and heartbeats against it, `/metrics` grows
    /// the `accelwall_work_*` series, and `/healthz` reports worker and
    /// unit health; when `None` the server is byte-identical to
    /// [`Server::bind`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures (bad address, port in use).
    pub fn bind_with_work(
        config: ServerConfig,
        cache: ArtifactCache,
        work: Option<Arc<Coordinator>>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cache = Arc::new(cache);
        // The query engine shares the artifact cache (and through it the
        // memoized `Ctx`), so shadowed specs and ad-hoc points reuse the
        // same lowered programs the registry targets computed.
        let engine = Arc::new(QueryEngine::new(
            Arc::clone(&cache),
            config.query_cache_bytes,
        ));
        Ok(Server {
            listener,
            local_addr,
            config,
            cache,
            engine,
            metrics: Arc::new(Metrics::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            work,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle usable from other threads to stop the server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr,
            shutdown: Arc::clone(&self.shutdown),
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// Serves until a drain is requested, then finishes queued work and
    /// returns. This call owns the calling thread (it becomes the
    /// reactor's event loop).
    ///
    /// # Errors
    ///
    /// Only listener-level failures; per-connection errors are answered
    /// on the wire (4xx/5xx) or dropped, never escalated.
    pub fn run(self) -> std::io::Result<()> {
        let handle = self.handle();
        let respcache = Arc::new(ResponseCache::new(self.config.response_cache_bytes));
        // Completions flow pool → reactor over a bounded channel; the
        // generous slack keeps workers from blocking on the hand-back
        // even when the reactor is mid-pass through a busy slab.
        let (completions_tx, completions_rx) = std::sync::mpsc::sync_channel::<Completion>(
            self.config.workers + self.config.backlog + 256,
        );
        let pool = {
            let cache = Arc::clone(&self.cache);
            let engine = Arc::clone(&self.engine);
            let metrics = Arc::clone(&self.metrics);
            let respcache = Arc::clone(&respcache);
            let handle = handle.clone();
            let work = self.work.clone();
            let compute_deadline = self.config.compute_deadline;
            // The metrics' panic counter is shared with the pool, so a
            // worker that dies panicking (and respawns) is visible as
            // `worker_panics_total` without any callback plumbing.
            ThreadPool::with_panic_counter(
                self.config.workers,
                self.config.backlog,
                self.metrics.worker_panics_counter(),
                move |job: ComputeJob| {
                    let serve = ServeState {
                        cache: &cache,
                        engine: &engine,
                        metrics: &metrics,
                        handle: &handle,
                        work: work.as_ref(),
                        respcache: &respcache,
                    };
                    compute_response(job, &serve, &completions_tx, compute_deadline);
                },
            )
        };
        let reactor = Reactor::new(
            self.listener,
            Arc::clone(&self.metrics),
            respcache,
            Arc::clone(&self.shutdown),
            completions_rx,
            ReactorLimits {
                max_connections: self.config.max_connections,
                idle_timeout: self.config.idle_timeout,
                io_timeout: self.config.io_timeout,
            },
        );
        let outcome = reactor.run(&pool);
        // Drain: close the queue, let workers finish, then drop the
        // listener so the port frees only after the last response.
        pool.join();
        outcome
    }
}

/// The shared serving state every compute handler borrows: the artifact
/// cache, query engine, counters, drain handle, the pre-serialized
/// response cache, and (in coordinator mode) the work tier.
#[derive(Clone, Copy)]
struct ServeState<'a> {
    cache: &'a ArtifactCache,
    engine: &'a QueryEngine,
    metrics: &'a Metrics,
    handle: &'a ServerHandle,
    work: Option<&'a Arc<Coordinator>>,
    respcache: &'a ResponseCache,
}

/// Sends [`Completion::Abort`] if the compute handler unwinds before
/// disarming: the reactor then drops the whole connection, exactly as
/// the old thread-per-connection worker dying did. The pool's sentinel
/// respawns the worker either way.
struct AbortGuard<'a> {
    tx: &'a SyncSender<Completion>,
    slot: u32,
    generation: u32,
    armed: bool,
}

impl AbortGuard<'_> {
    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.tx.send(Completion::Abort {
                slot: self.slot,
                generation: self.generation,
            });
        }
    }
}

/// The pool's compute handler: serves one parsed request and hands the
/// response back to the reactor in pipeline order.
fn compute_response(
    job: ComputeJob,
    serve: &ServeState<'_>,
    completions: &SyncSender<Completion>,
    compute_deadline: Duration,
) {
    let ComputeJob {
        slot,
        generation,
        seq,
        request,
        started,
        cache_key,
    } = job;
    let mut guard = AbortGuard {
        tx: completions,
        slot,
        generation,
        armed: true,
    };
    let metrics = serve.metrics;
    let _in_flight = metrics.track_in_flight();
    // The `serve-request` fault site: a `panic` rule fires on this very
    // worker thread (exercising pool respawn — the abort guard makes
    // the reactor drop the client's connection), an `err` rule answers
    // 500, a `hang` rule holds the worker for its duration.
    let (route, response) = match accelwall_faults::probe(accelwall_faults::sites::SERVE_REQUEST) {
        Err(fault) => (Route::Other, Response::text(500, format!("{fault}\n"))),
        Ok(()) => route_request(&request, serve, compute_deadline),
    };
    // Populate the reactor's fast path: only `200`s for cacheable
    // request shapes (the reactor computed `cache_key` under the same
    // admission rules), and never while a fault plan is armed.
    if let Some(key) = &cache_key {
        if response.status == 200 && !accelwall_faults::is_armed() {
            serve.respcache.insert(key, route, &response);
        }
    }
    let _ = completions.send(Completion::Done {
        slot,
        generation,
        seq,
        route,
        response,
        started,
    });
    guard.disarm();
}

/// Maps one parsed request onto a route and a response.
fn route_request(
    request: &Request,
    serve: &ServeState<'_>,
    compute_deadline: Duration,
) -> (Route, Response) {
    let ServeState {
        cache,
        engine,
        metrics,
        handle,
        work,
        respcache,
    } = *serve;
    let get_only = |route: Route, response: Response| {
        if request.method == "GET" {
            (route, response)
        } else {
            (route, Response::method_not_allowed("GET"))
        }
    };
    match request.path.as_str() {
        "/healthz" => get_only(
            Route::Healthz,
            Response::json(200, healthz_body(cache, work)),
        ),
        "/experiments" => get_only(
            Route::Experiments,
            Response::json(200, roster_body(cache)),
        ),
        "/query" => (Route::Query, query_response(request, engine)),
        "/query/schema" => get_only(
            Route::QuerySchema,
            Response::json(200, {
                let mut body = QueryEngine::schema().pretty();
                body.push('\n');
                body
            }),
        ),
        "/metrics" => get_only(
            Route::Metrics,
            Response::text(
                200,
                metrics.render(
                    cache.stats(),
                    cache.ctx().counters(),
                    &engine.stats(),
                    &respcache.stats(),
                    work.map(|c| c.stats()).as_ref(),
                ),
            ),
        ),
        "/shutdown" => {
            if request.method == "POST" {
                handle.shutdown();
                (Route::Shutdown, Response::text(200, "draining\n"))
            } else {
                (Route::Shutdown, Response::method_not_allowed("POST"))
            }
        }
        "/work/lease" => work_route(request, work, Route::WorkLease),
        "/work/complete" => work_route(request, work, Route::WorkComplete),
        "/work/heartbeat" => work_route(request, work, Route::WorkHeartbeat),
        path => match path.strip_prefix("/experiments/") {
            Some(id) => {
                if request.method != "GET" {
                    return (Route::Experiment, Response::method_not_allowed("GET"));
                }
                (
                    Route::Experiment,
                    experiment_response(id, request, cache, compute_deadline),
                )
            }
            None => (
                Route::Other,
                Response::text(
                    404,
                    "no such route; routes: /healthz /experiments /experiments/{id} /query /query/schema /metrics /shutdown /work/lease /work/complete /work/heartbeat\n",
                ),
            ),
        },
    }
}

/// The `GET /experiments` body: the registry roster, byte-identical to
/// `accelwall list --json` output.
fn roster_body(cache: &ArtifactCache) -> Vec<u8> {
    let mut body = cache.registry().roster_json().pretty();
    body.push('\n');
    body.into_bytes()
}

/// The `GET /healthz` body: `ready` when every requested target is fine,
/// `degraded` with the failed-target list otherwise. Always `200` — the
/// process itself is serving either way; load balancers key on
/// `"status"`.
///
/// With a coordinator attached, two extra keys report the work tier:
/// `"workers"` (alive and quarantined counts) and `"units"` (outstanding
/// count). Without one the body is byte-identical to a plain server's.
fn healthz_body(cache: &ArtifactCache, work: Option<&Arc<Coordinator>>) -> Vec<u8> {
    let failed = cache.failed_targets();
    let status = if failed.is_empty() {
        "ready"
    } else {
        "degraded"
    };
    let mut fields = vec![
        ("status", Value::from(status)),
        (
            "failed",
            Value::array(failed.iter().map(|f| {
                Value::object([
                    ("id", Value::from(f.id)),
                    ("attempts", Value::from(u64::from(f.attempts))),
                    ("error", Value::from(f.error.to_string())),
                    ("retryable", Value::from(f.retry_in.is_some())),
                ])
            })),
        ),
    ];
    if let Some(coordinator) = work {
        let stats = coordinator.stats();
        fields.push((
            "workers",
            Value::object([
                ("alive", Value::from(stats.workers_alive)),
                ("quarantined", Value::from(stats.workers_quarantined)),
            ]),
        ));
        fields.push((
            "units",
            Value::object([("outstanding", Value::from(stats.units_outstanding))]),
        ));
    }
    let mut body = Value::object(fields).pretty();
    body.push('\n');
    body.into_bytes()
}

/// Routes one `/work/*` request: `POST`-only, `404` without an attached
/// coordinator, otherwise dispatched by [`work_response`].
fn work_route(
    request: &Request,
    work: Option<&Arc<Coordinator>>,
    route: Route,
) -> (Route, Response) {
    if request.method != "POST" {
        return (route, Response::method_not_allowed("POST"));
    }
    let Some(coordinator) = work else {
        return (
            route,
            Response::text(
                404,
                "no work tier active; start a coordinator with `accelwall work --grid <id>`\n",
            ),
        );
    };
    (route, work_response(request, coordinator, route))
}

/// Answers one `/work/*` POST against the active coordinator.
///
/// * a malformed body (bad JSON, missing field) — `400` with the
///   protocol error;
/// * an injected coordinator fault (`work-lease` / `work-complete`
///   sites) — `500` with a typed `"kind": "injected"` body and a
///   `Retry-After` hint, so workers retry instead of giving up;
/// * otherwise `200` with the typed reply.
fn work_response(request: &Request, coordinator: &Coordinator, route: Route) -> Response {
    let Some(body) = std::str::from_utf8(&request.body)
        .ok()
        .and_then(|text| Value::parse(text).ok())
    else {
        return Response::text(400, "request body is not valid JSON\n");
    };
    let outcome = match route {
        Route::WorkLease => parse_lease_request(&body)
            .map(|(worker, max)| coordinator.lease(&worker, max).map(|r| r.to_value())),
        Route::WorkComplete => CompleteRequest::parse(&body)
            .map(|req| coordinator.complete(&req).map(|r| r.to_value())),
        Route::WorkHeartbeat => {
            HeartbeatRequest::parse(&body).map(|req| Ok(coordinator.heartbeat(&req).to_value()))
        }
        _ => return Response::text(404, "not a work route\n"),
    };
    match outcome {
        Err(e) => Response::text(400, format!("{e}\n")),
        Ok(Err(fault)) => {
            let mut body = Value::object([
                ("error", Value::from(fault.to_string())),
                ("kind", Value::from("injected")),
                ("retryable", Value::from(true)),
            ])
            .pretty();
            body.push('\n');
            Response::json(500, body).with_retry_after(1)
        }
        Ok(Ok(reply)) => {
            let mut body = reply.pretty();
            body.push('\n');
            Response::json(200, body)
        }
    }
}

/// The `GET /experiments/{id}` body, honoring `Accept: text/plain`.
///
/// Failures answer with a typed JSON body — `kind` distinguishes a
/// contained panic, an injected fault, a deadline timeout, and an
/// ordinary compute error — plus a `Retry-After` hint whenever the
/// cache's retry budget leaves the target retryable.
fn experiment_response(
    id: &str,
    request: &Request,
    cache: &ArtifactCache,
    compute_deadline: Duration,
) -> Response {
    match cache.get_within(id, Some(compute_deadline)) {
        Ok(artifact) => {
            if request.wants_plain_text() {
                Response::text(200, artifact.text.clone())
            } else {
                let mut body = artifact.json.pretty();
                body.push('\n');
                Response::json(200, body)
            }
        }
        // The 404 body carries the registry roster, exactly like the
        // CLI's unknown-target error — no hand-maintained route list.
        Err(e @ Error::UnknownExperiment { .. }) => Response::text(404, format!("{e}\n")),
        // Still computing when the deadline expired: 504, definitely
        // worth retrying — the background compute may settle the slot.
        Err(e @ Error::ComputeTimeout { .. }) => {
            Response::json(504, failure_body(id, &e, None, true)).with_retry_after(1)
        }
        Err(e) => {
            let failure = cache.failure_of(id);
            let attempts = failure.as_ref().map(|f| f.attempts);
            let retry_in = failure.as_ref().and_then(|f| f.retry_in);
            let response = Response::json(500, failure_body(id, &e, attempts, retry_in.is_some()));
            match retry_in {
                // Round up so "retry after" never undershoots backoff.
                Some(wait) => response.with_retry_after(wait.as_secs_f64().ceil().max(1.0) as u64),
                None => response,
            }
        }
    }
}

/// The JSON body for a failed `GET /experiments/{id}`.
fn failure_body(id: &str, error: &Error, attempts: Option<u32>, retryable: bool) -> Vec<u8> {
    let kind = match error.root_cause() {
        Error::ExperimentPanicked { .. } => "panic",
        Error::FaultInjected { .. } => "injected",
        Error::ComputeTimeout { .. } => "timeout",
        _ => "compute",
    };
    let mut fields = vec![
        ("target", Value::from(id)),
        ("error", Value::from(error.to_string())),
        ("kind", Value::from(kind)),
        ("retryable", Value::from(retryable)),
    ];
    if let Some(attempts) = attempts {
        fields.push(("attempts", Value::from(u64::from(attempts))));
    }
    let mut body = Value::object(fields).pretty();
    body.push('\n');
    body.into_bytes()
}

/// The `/query` body: parse the spec (query string for `GET`, JSON body
/// for `POST`), answer it through the shared [`QueryEngine`], and map
/// [`QueryError`] onto HTTP statuses.
///
/// * invalid spec (unknown field, bad value, wrong knob for the kind)
///   — `400` with the same roster-carrying message the CLI prints;
/// * admission control shedding — `503` with a `Retry-After` hint;
/// * a transient compute failure (injected fault, deadline) — `500`/`504`
///   with a typed JSON body and `Retry-After`, mirroring
///   `/experiments/{id}` failure semantics;
/// * a non-retryable compute error (e.g. a vacuous projection horizon)
///   — `400`, because it is the caller's knobs that made it impossible.
fn query_response(request: &Request, engine: &QueryEngine) -> Response {
    let pairs = match request.method.as_str() {
        "GET" => pairs_from_query(&request.query),
        "POST" => match std::str::from_utf8(&request.body)
            .ok()
            .and_then(|text| Value::parse(text).ok())
        {
            Some(doc) => pairs_from_json(&doc),
            None => return Response::text(400, "request body is not valid JSON\n"),
        },
        _ => return Response::method_not_allowed("GET, POST"),
    };
    let answer = pairs
        .and_then(|pairs| QuerySpec::from_pairs(&pairs))
        .and_then(|spec| engine.answer(&spec));
    match answer {
        Ok(body) => Response::json(200, body.as_ref().clone()),
        Err(e @ QueryError::Invalid(_)) => Response::text(400, format!("{e}\n")),
        Err(e @ QueryError::Overloaded { .. }) => {
            Response::text(503, format!("{e}\n")).with_retry_after(1)
        }
        Err(QueryError::Engine(e)) => {
            let (status, kind, retryable) = match e.root_cause() {
                Error::FaultInjected { .. } => (500, "injected", true),
                Error::ComputeTimeout { .. } => (504, "timeout", true),
                Error::ExperimentPanicked { .. } => (500, "panic", false),
                _ => (400, "compute", false),
            };
            let mut body = Value::object([
                ("error", Value::from(e.to_string())),
                ("kind", Value::from(kind)),
                ("retryable", Value::from(retryable)),
            ])
            .pretty();
            body.push('\n');
            let response = Response::json(status, body);
            if retryable {
                response.with_retry_after(1)
            } else {
                response
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelerator_wall::cache::Ctx;
    use accelerator_wall::json::Value;
    use accelerator_wall::prelude::{Registry, SweepSpace};
    use std::io::{Read, Write};

    fn coarse_server() -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
        let cache = ArtifactCache::new(Registry::paper(), Ctx::with_space(SweepSpace::coarse()));
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            backlog: 8,
            io_timeout: Duration::from_secs(10),
            compute_deadline: Duration::from_mins(2),
            ..ServerConfig::default()
        };
        let server = Server::bind(config, cache).expect("bind");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    fn raw_request(addr: SocketAddr, head: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(head.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status = response
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        raw_request(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        )
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        raw_request(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    /// Pulls the value off a `name value` metrics line.
    fn metric(text: &str, name: &str) -> u64 {
        text.lines()
            .find_map(|line| line.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing:\n{text}"))
    }

    #[test]
    fn end_to_end_routes_cache_and_drain() {
        let (handle, join) = coarse_server();
        let addr = handle.addr();

        // /healthz: ready, nothing failed yet.
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        let health = Value::parse(&body).expect("healthz is valid JSON");
        assert_eq!(health.get("status").and_then(Value::as_str), Some("ready"));
        assert_eq!(
            health
                .get("failed")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(0)
        );
        // No coordinator attached: no work-tier keys, and /work routes 404.
        assert!(health.get("workers").is_none());
        let (status, body) = post(addr, "/work/lease", r#"{"worker": "w", "max": 1}"#);
        assert_eq!(status, 404);
        assert!(body.contains("no work tier active"), "{body}");

        // /experiments mirrors the registry roster.
        let (status, body) = get(addr, "/experiments");
        assert_eq!(status, 200);
        let roster = Value::parse(&body).expect("roster is valid JSON");
        assert_eq!(
            roster.as_array().map(<[Value]>::len),
            Some(Registry::paper().len())
        );

        // An artifact twice: compute then hit, byte-identical bodies.
        let (status, first) = get(addr, "/experiments/fig3a");
        assert_eq!(status, 200);
        let (_, second) = get(addr, "/experiments/fig3a");
        assert_eq!(first, second);
        assert!(Value::parse(&first).is_ok());

        // Accept: text/plain returns the rendered text.
        let (status, text) = raw_request(
            addr,
            "GET /experiments/fig3a HTTP/1.1\r\nHost: t\r\nAccept: text/plain\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        assert!(text.contains("Fig. 3a"), "plain text rendering:\n{text}");

        // Unknown id: 404 carrying the roster, like the CLI.
        let (status, body) = get(addr, "/experiments/fig99");
        assert_eq!(status, 404);
        assert!(body.contains("unknown target"));
        assert!(body.contains("fig3a"));

        // Wrong method and unknown path.
        let (status, _) = raw_request(
            addr,
            "POST /experiments HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 405);
        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        let (status, _) = raw_request(addr, "garbage\r\n\r\n");
        assert_eq!(status, 400);

        // /metrics reflects all of the above.
        let (status, text) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(text.contains("accelwall_requests_total{route=\"/healthz\"} 1"));
        assert!(text.contains("accelwall_artifact_cache_computes_total 1"));
        // fig3a never touches the corpus; the line must exist and stay 0.
        assert!(text.contains("accelwall_ctx_corpus_computes 0"));

        // Graceful drain via POST /shutdown.
        let (status, body) = raw_request(
            addr,
            "POST /shutdown HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!((status, body.as_str()), (200, "draining\n"));
        join.join().expect("server thread").expect("clean exit");
        assert!(
            TcpStream::connect(addr).is_err() || {
                // A connect may still succeed in the OS backlog race; a
                // subsequent read must then see an immediate close.
                true
            }
        );
    }

    #[test]
    fn query_routes_answer_shadow_and_introspect() {
        let (handle, join) = coarse_server();
        let addr = handle.addr();

        // A cold point query computes; the identical warm repeat is
        // served from the LRU — byte-identical, hit counter advances,
        // compute counter does not.
        let (status, cold) = get(addr, "/query?workload=fft&node=7nm&lanes=4");
        assert_eq!(status, 200, "cold query: {cold}");
        let report = Value::parse(&cold).expect("query body is valid JSON");
        assert_eq!(report.get("kind").and_then(Value::as_str), Some("point"));
        let (status, warm) = get(addr, "/query?lanes=4&node=7nm&workload=fft");
        assert_eq!(status, 200);
        assert_eq!(cold, warm, "warm repeat must be byte-identical");
        let (_, text) = get(addr, "/metrics");
        assert_eq!(metric(&text, "accelwall_query_computes_total"), 1);
        assert_eq!(metric(&text, "accelwall_query_cache_hits_total"), 1);

        // A spec that shadows a registry target answers with the exact
        // artifact bytes that GET /experiments/{id} serves.
        let (status, via_query) = post(addr, "/query", r#"{"kind": "sweep", "workload": "s3d"}"#);
        assert_eq!(status, 200, "shadow query: {via_query}");
        let (status, via_registry) = get(addr, "/experiments/fig13");
        assert_eq!(status, 200);
        assert_eq!(
            via_query, via_registry,
            "shadowed spec must be byte-identical to the registry artifact"
        );

        // Introspection lists the field roster.
        let (status, schema) = get(addr, "/query/schema");
        assert_eq!(status, 200);
        let schema = Value::parse(&schema).expect("schema is valid JSON");
        assert!(schema.get("fields").and_then(Value::as_array).is_some());

        // Spec validation failures answer 400 with the roster, wrong
        // methods 405, and an oversized POST body 413 before any read.
        let (status, body) = get(addr, "/query?workload=fft&warp=9");
        assert_eq!(status, 400);
        assert!(body.contains("unknown field"), "roster error: {body}");
        assert!(body.contains("known fields:"), "roster error: {body}");
        let (status, _) = raw_request(
            addr,
            "PUT /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 405);
        let (status, body) = raw_request(
            addr,
            &format!(
                "POST /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
                http::MAX_BODY_BYTES + 1
            ),
        );
        assert_eq!(status, 413, "oversized body: {body}");
        let (status, _) = post(addr, "/query", "not json");
        assert_eq!(status, 400);

        handle.shutdown();
        join.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn a_tiny_query_cache_evicts_but_never_exceeds_its_cap() {
        let cache = ArtifactCache::new(Registry::paper(), Ctx::with_space(SweepSpace::coarse()));
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            backlog: 8,
            io_timeout: Duration::from_secs(10),
            compute_deadline: Duration::from_mins(2),
            query_cache_bytes: 16 * 1024,
            ..ServerConfig::default()
        };
        let server = Server::bind(config, cache).expect("bind");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        let addr = handle.addr();

        // Enough distinct point specs to overflow a 16 KiB LRU.
        for node in [
            "45nm", "32nm", "28nm", "22nm", "16nm", "14nm", "10nm", "7nm", "5nm",
        ] {
            for lanes in [1u32, 2, 4, 8] {
                let (status, body) = get(
                    addr,
                    &format!("/query?workload=fft&node={node}&lanes={lanes}"),
                );
                assert_eq!(status, 200, "point query: {body}");
            }
        }
        let (_, text) = get(addr, "/metrics");
        assert!(
            metric(&text, "accelwall_query_cache_evictions_total") > 0,
            "expected evictions under a tiny cap:\n{text}"
        );
        assert!(
            metric(&text, "accelwall_query_cache_bytes")
                <= metric(&text, "accelwall_query_cache_capacity_bytes"),
            "cache exceeded its byte cap:\n{text}"
        );

        handle.shutdown();
        join.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn work_routes_lease_complete_and_report_health() {
        use accelerator_wall::grids::GridRegistry;
        use accelwall_work::{LeaseReply, WorkConfig};

        let ctx = Arc::new(Ctx::with_space(SweepSpace::coarse()));
        let grid = GridRegistry::standard().get("sensitivity").expect("grid");
        let coordinator = Arc::new(Coordinator::new(grid, ctx, "coarse", WorkConfig::default()));
        let cache = ArtifactCache::new(Registry::paper(), Ctx::with_space(SweepSpace::coarse()));
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            backlog: 8,
            io_timeout: Duration::from_secs(10),
            compute_deadline: Duration::from_mins(2),
            ..ServerConfig::default()
        };
        let server =
            Server::bind_with_work(config, cache, Some(Arc::clone(&coordinator))).expect("bind");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        let addr = handle.addr();

        // Method and body validation.
        let (status, _) = get(addr, "/work/lease");
        assert_eq!(status, 405);
        let (status, _) = post(addr, "/work/lease", "not json");
        assert_eq!(status, 400);
        let (status, body) = post(addr, "/work/lease", r#"{"worker": "w1"}"#);
        assert_eq!(status, 400);
        assert!(body.contains("\"max\""), "{body}");

        // A lease hands out real unit indices for the attached grid.
        let (status, body) = post(addr, "/work/lease", r#"{"worker": "w1", "max": 2}"#);
        assert_eq!(status, 200, "{body}");
        let reply = LeaseReply::parse(&Value::parse(&body).expect("lease JSON")).expect("reply");
        let units = match reply {
            LeaseReply::Units {
                grid, space, units, ..
            } => {
                assert_eq!(grid, "sensitivity");
                assert_eq!(space, "coarse");
                units
            }
            other => panic!("expected a unit batch, got {other:?}"),
        };
        assert!(!units.is_empty());

        // Heartbeats on held units have nothing to abandon.
        let (status, body) = post(
            addr,
            "/work/heartbeat",
            &format!(r#"{{"worker": "w1", "units": [{}]}}"#, units[0]),
        );
        assert_eq!(status, 200);
        let beat = Value::parse(&body).expect("heartbeat JSON");
        assert_eq!(
            beat.get("abandon")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(0)
        );

        // Completing a unit is recorded once; the repeat is a duplicate.
        let complete = format!(
            r#"{{"worker": "w1", "unit": {}, "result": {{"x": 1.5}}}}"#,
            units[0]
        );
        let (status, body) = post(addr, "/work/complete", &complete);
        assert_eq!(status, 200);
        let reply = Value::parse(&body).expect("complete JSON");
        assert_eq!(reply.get("accepted").and_then(Value::as_bool), Some(true));
        assert_eq!(reply.get("duplicate").and_then(Value::as_bool), Some(false));
        let (_, body) = post(addr, "/work/complete", &complete);
        let reply = Value::parse(&body).expect("complete JSON");
        assert_eq!(reply.get("duplicate").and_then(Value::as_bool), Some(true));

        // /healthz grows the work-tier keys when a coordinator is attached.
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        let health = Value::parse(&body).expect("healthz JSON");
        assert!(health.get("workers").is_some(), "{body}");
        assert!(
            health
                .get("units")
                .and_then(|u| u.get("outstanding"))
                .and_then(Value::as_f64)
                .is_some(),
            "{body}"
        );

        // /metrics exposes the accelwall_work_* series.
        let (_, text) = get(addr, "/metrics");
        assert!(metric(&text, "accelwall_work_leases_total") >= 1);
        assert_eq!(metric(&text, "accelwall_work_completions_total"), 1);
        assert_eq!(
            metric(&text, "accelwall_work_duplicate_completions_total"),
            1
        );
        assert_eq!(
            metric(&text, "accelwall_work_units_total"),
            coordinator.total_units() as u64
        );

        handle.shutdown();
        join.join().expect("server thread").expect("clean exit");
    }

    /// Reads exactly one `Content-Length`-framed response off a
    /// keep-alive connection (no EOF to lean on). `carry` holds bytes of
    /// later pipelined responses over-read by a previous call.
    fn read_framed(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String) {
        let mut chunk = [0u8; 4096];
        let (head_end, content_length, status) = loop {
            if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&carry[..pos]).expect("head is utf-8");
                let status = head
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                let len = head
                    .lines()
                    .find_map(|line| {
                        let (name, value) = line.split_once(':')?;
                        name.eq_ignore_ascii_case("content-length")
                            .then(|| value.trim().parse::<usize>().ok())?
                    })
                    .unwrap_or(0);
                break (pos + 4, len, status);
            }
            let n = stream.read(&mut chunk).expect("read head");
            assert!(n > 0, "connection closed mid-head");
            carry.extend_from_slice(&chunk[..n]);
        };
        while carry.len() < head_end + content_length {
            let n = stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "connection closed mid-body");
            carry.extend_from_slice(&chunk[..n]);
        }
        let body =
            String::from_utf8(carry[head_end..head_end + content_length].to_vec()).expect("utf-8");
        carry.drain(..head_end + content_length);
        (status, body)
    }

    #[test]
    fn keep_alive_and_pipelining_serve_in_order_on_one_connection() {
        let (handle, join) = coarse_server();
        let addr = handle.addr();
        // Baselines over two close-mode connections.
        let (_, roster) = get(addr, "/experiments");
        let (_, schema) = get(addr, "/query/schema");

        // Three sequential requests reuse ONE connection...
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut carry = Vec::new();
        for _ in 0..3 {
            stream
                .write_all(b"GET /experiments HTTP/1.1\r\nHost: t\r\n\r\n")
                .expect("send");
            let (status, body) = read_framed(&mut stream, &mut carry);
            assert_eq!(status, 200);
            assert_eq!(body, roster, "keep-alive repeats must be byte-identical");
        }
        // ...and a pipelined burst written in one shot flushes strictly
        // in request order, closing after the final response.
        stream
            .write_all(
                b"GET /query/schema HTTP/1.1\r\nHost: t\r\n\r\n\
                  GET /experiments HTTP/1.1\r\nHost: t\r\n\r\n\
                  GET /query/schema HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            )
            .expect("send pipeline");
        let (s1, b1) = read_framed(&mut stream, &mut carry);
        let (s2, b2) = read_framed(&mut stream, &mut carry);
        let (s3, b3) = read_framed(&mut stream, &mut carry);
        assert_eq!((s1, s2, s3), (200, 200, 200));
        assert_eq!(b1, schema, "pipelined response 1 out of order");
        assert_eq!(b2, roster, "pipelined response 2 out of order");
        assert_eq!(b3, schema, "pipelined response 3 out of order");
        let mut rest = String::new();
        stream.read_to_string(&mut rest).expect("eof after close");
        assert!(rest.is_empty(), "bytes after Connection: close: {rest:?}");

        // 9 requests so far over 3 connections; the 4th fetches proof.
        let (_, text) = get(addr, "/metrics");
        assert_eq!(metric(&text, "accelwall_connections_total"), 4);
        assert!(
            metric(&text, "accelwall_keepalive_reuses_total") >= 5,
            "{text}"
        );
        assert!(
            metric(&text, "accelwall_pipelined_requests_total") >= 1,
            "{text}"
        );
        assert!(
            metric(&text, "accelwall_response_cache_hits_total") >= 2,
            "{text}"
        );

        handle.shutdown();
        join.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn idle_timeout_reaps_and_the_connection_cap_sheds() {
        let cache = ArtifactCache::new(Registry::paper(), Ctx::with_space(SweepSpace::coarse()));
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            backlog: 8,
            io_timeout: Duration::from_secs(10),
            compute_deadline: Duration::from_mins(2),
            max_connections: 2,
            idle_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        };
        let server = Server::bind(config, cache).expect("bind");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        let addr = handle.addr();

        let mut first = TcpStream::connect(addr).expect("connect");
        let second = TcpStream::connect(addr).expect("connect");
        // Serve one request on the first so both admits are processed.
        first
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("send");
        let (status, _) = read_framed(&mut first, &mut Vec::new());
        assert_eq!(status, 200);

        // The third connection is over the cap: immediate 503 + close.
        let mut third = TcpStream::connect(addr).expect("connect");
        let mut shed = String::new();
        third.read_to_string(&mut shed).expect("read shed");
        assert!(shed.starts_with("HTTP/1.1 503"), "over-cap reply: {shed}");
        assert!(shed.contains("connection limit reached"), "{shed}");

        // Both idle connections are reaped by the timeout (EOF, no bytes).
        let mut eof = String::new();
        first.read_to_string(&mut eof).expect("idle eof");
        assert!(eof.is_empty());
        let mut second = second;
        let mut eof = String::new();
        second.read_to_string(&mut eof).expect("idle eof");
        assert!(eof.is_empty());

        // With the slots free again, a fresh connection is served.
        let (status, text) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(metric(&text, "accelwall_connections_over_cap_total") >= 1);
        assert!(metric(&text, "accelwall_idle_timeouts_total") >= 2);
        assert_eq!(metric(&text, "accelwall_open_connections"), 1);

        handle.shutdown();
        join.join().expect("server thread").expect("clean exit");
    }

    /// SplitMix64 — the repo's standard dependency-free PRNG idiom.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn socket_writes_split_at_arbitrary_boundaries_are_byte_identical() {
        let (handle, join) = coarse_server();
        let addr = handle.addr();
        let pipeline: &[u8] = b"GET /experiments HTTP/1.1\r\nHost: t\r\n\r\n\
                                GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
                                GET /experiments HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
        let run = |chunks: &[&[u8]]| -> Vec<u8> {
            let mut stream = TcpStream::connect(addr).expect("connect");
            for chunk in chunks {
                stream.write_all(chunk).expect("send chunk");
                stream.flush().expect("flush");
                // Let the reactor observe a genuinely partial buffer.
                std::thread::sleep(Duration::from_millis(2));
            }
            let mut out = Vec::new();
            stream.read_to_end(&mut out).expect("read responses");
            out
        };
        let reference = run(&[pipeline]);
        assert!(!reference.is_empty());
        let mut state = 0xACCE_1E2A_7012_u64;
        for _ in 0..5 {
            // Split the stream at 3 PRNG-chosen interior boundaries.
            let mut cuts: Vec<usize> = (0..3)
                .map(|_| 1 + (splitmix64(&mut state) as usize) % (pipeline.len() - 1))
                .collect();
            cuts.sort_unstable();
            cuts.dedup();
            let mut chunks: Vec<&[u8]> = Vec::new();
            let mut prev = 0;
            for &cut in &cuts {
                chunks.push(&pipeline[prev..cut]);
                prev = cut;
            }
            chunks.push(&pipeline[prev..]);
            let split = run(&chunks);
            assert_eq!(
                split, reference,
                "split at {cuts:?} changed the response bytes"
            );
        }

        handle.shutdown();
        join.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn handle_shutdown_drains_without_a_request() {
        let (handle, join) = coarse_server();
        handle.shutdown();
        handle.shutdown(); // idempotent
        join.join().expect("server thread").expect("clean exit");
    }
}
