//! Linear-algebra and data-mining kernels: GMM, SMV, and KNN.

use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};

/// Dense matrix multiplication `C = A × B` for `n × n` matrices.
///
/// Each output element is an independent dot product: `n²` parallel lanes
/// of `n` multiplies feeding a log-depth adder tree — the TPU's bread and
/// butter.
///
/// # Panics
///
/// Panics if `n == 0`.
#[allow(clippy::needless_range_loop)] // i/j index two coupled matrices
pub fn build_gmm(n: usize) -> Dfg {
    assert!(n > 0, "matrix dimension must be positive");
    let mut b = DfgBuilder::new(format!("gmm_n{n}"));
    let a: Vec<Vec<NodeId>> = (0..n)
        .map(|i| (0..n).map(|j| b.input(format!("a{i}_{j}"))).collect())
        .collect();
    let bb: Vec<Vec<NodeId>> = (0..n)
        .map(|i| (0..n).map(|j| b.input(format!("b{i}_{j}"))).collect())
        .collect();
    for i in 0..n {
        for j in 0..n {
            let prods: Vec<NodeId> = (0..n)
                .map(|k| b.op(Op::Mul, &[a[i][k], bb[k][j]]))
                .collect();
            let dot = b.reduce(Op::Add, &prods);
            b.output(format!("c{i}_{j}"), dot);
        }
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("gmm graph is structurally valid")
}

/// Reference dense matrix multiply.
pub fn gmm_reference(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut c = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            c[i][j] = (0..n).map(|k| a[i][k] * b[k][j]).sum();
        }
    }
    c
}

/// The deterministic CSR sparsity pattern used by [`build_smv`]: row `i`
/// touches columns `(i·7 + 3·k) mod n` for `k = 0..nnz_per_row`
/// (duplicates collapse).
pub fn smv_pattern(n: usize, nnz_per_row: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|i| {
            let mut cols: Vec<usize> = (0..nnz_per_row).map(|k| (i * 7 + 3 * k) % n).collect();
            cols.sort_unstable();
            cols.dedup();
            cols
        })
        .collect()
}

/// Sparse matrix-vector multiply `y = M · x` in CSR form with the fixed
/// pseudo-random sparsity pattern of [`smv_pattern`]. Nonzero values enter
/// as inputs `m{i}_{j}`, the dense vector as `x{j}`.
///
/// # Panics
///
/// Panics if `n == 0` or `nnz_per_row == 0`.
pub fn build_smv(n: usize, nnz_per_row: usize) -> Dfg {
    assert!(n > 0 && nnz_per_row > 0, "SMV needs nonzero dimensions");
    let mut b = DfgBuilder::new(format!("smv_n{n}_nnz{nnz_per_row}"));
    let x: Vec<NodeId> = (0..n).map(|j| b.input(format!("x{j}"))).collect();
    let pattern = smv_pattern(n, nnz_per_row);
    for (i, cols) in pattern.iter().enumerate() {
        let prods: Vec<NodeId> = cols
            .iter()
            .map(|&j| {
                let m = b.input(format!("m{i}_{j}"));
                b.op(Op::Mul, &[m, x[j]])
            })
            .collect();
        let dot = b.reduce(Op::Add, &prods);
        b.output(format!("y{i}"), dot);
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("smv graph is structurally valid")
}

/// Reference SpMV over the same pattern; `values[i]` pairs with
/// `smv_pattern(n, nnz)[i]`.
pub fn smv_reference(pattern: &[Vec<usize>], values: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    pattern
        .iter()
        .zip(values)
        .map(|(cols, vals)| cols.iter().zip(vals).map(|(&j, v)| v * x[j]).sum())
        .collect()
}

/// 1-nearest-neighbor search: squared Euclidean distances from one query
/// to `m` reference points in `dim` dimensions, then a min-reduction.
/// Outputs the smallest distance (`best`).
///
/// # Panics
///
/// Panics if `m == 0` or `dim == 0`.
pub fn build_knn(m: usize, dim: usize) -> Dfg {
    assert!(m > 0 && dim > 0, "KNN needs points and dimensions");
    let mut b = DfgBuilder::new(format!("knn_m{m}_d{dim}"));
    let q: Vec<NodeId> = (0..dim).map(|d| b.input(format!("q{d}"))).collect();
    let mut dists = Vec::with_capacity(m);
    for i in 0..m {
        let mut sq_terms = Vec::with_capacity(dim);
        for (d, &qd) in q.iter().enumerate() {
            let p = b.input(format!("p{i}_{d}"));
            let diff = b.op(Op::Sub, &[p, qd]);
            sq_terms.push(b.op(Op::Mul, &[diff, diff]));
        }
        dists.push(b.reduce(Op::Add, &sq_terms));
    }
    let best = b.reduce(Op::Min, &dists);
    b.output("best", best);
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("knn graph is structurally valid")
}

/// Reference 1-NN squared distance.
pub fn knn_reference(points: &[Vec<f64>], query: &[f64]) -> f64 {
    points
        .iter()
        .map(|p| {
            p.iter()
                .zip(query)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        })
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn gmm_matches_reference() {
        let n = 4;
        let g = build_gmm(n);
        let a: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| (i * n + j) as f64 * 0.5 - 2.0).collect())
            .collect();
        let m: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i + 2 * j) % 5) as f64 - 1.0).collect())
            .collect();
        let mut inputs = HashMap::new();
        for i in 0..n {
            for j in 0..n {
                inputs.insert(format!("a{i}_{j}"), a[i][j]);
                inputs.insert(format!("b{i}_{j}"), m[i][j]);
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        let c = gmm_reference(&a, &m);
        for i in 0..n {
            for j in 0..n {
                assert!((out[&format!("c{i}_{j}")] - c[i][j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gmm_shape() {
        let n = 6;
        let s = build_gmm(n).stats();
        assert_eq!(s.inputs, 2 * n * n);
        assert_eq!(s.outputs, n * n);
        // n^2 dot products: n muls + (n-1) adds each.
        assert_eq!(s.computes, n * n * (2 * n - 1));
    }

    #[test]
    fn smv_matches_reference() {
        let (n, nnz) = (8, 3);
        let g = build_smv(n, nnz);
        let pattern = smv_pattern(n, nnz);
        let values: Vec<Vec<f64>> = pattern
            .iter()
            .enumerate()
            .map(|(i, cols)| {
                cols.iter()
                    .map(|&j| ((i * 13 + j * 5) % 7) as f64 - 3.0)
                    .collect()
            })
            .collect();
        let x: Vec<f64> = (0..n).map(|j| (j as f64).cos() * 2.0).collect();
        let mut inputs = HashMap::new();
        for (j, &v) in x.iter().enumerate() {
            inputs.insert(format!("x{j}"), v);
        }
        for (i, cols) in pattern.iter().enumerate() {
            for (k, &j) in cols.iter().enumerate() {
                inputs.insert(format!("m{i}_{j}"), values[i][k]);
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        let y = smv_reference(&pattern, &values, &x);
        for (i, yi) in y.iter().enumerate() {
            assert!((out[&format!("y{i}")] - yi).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn smv_pattern_is_deterministic_and_bounded() {
        let p1 = smv_pattern(16, 4);
        let p2 = smv_pattern(16, 4);
        assert_eq!(p1, p2);
        assert!(p1.iter().all(|cols| !cols.is_empty() && cols.len() <= 4));
        assert!(p1.iter().flatten().all(|&j| j < 16));
    }

    #[test]
    fn knn_matches_reference() {
        let (m, dim) = (10, 3);
        let g = build_knn(m, dim);
        let points: Vec<Vec<f64>> = (0..m)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * 3 + d * 7) % 9) as f64 - 4.0)
                    .collect()
            })
            .collect();
        let query: Vec<f64> = vec![0.5, -1.5, 2.0];
        let mut inputs = HashMap::new();
        for (d, &q) in query.iter().enumerate() {
            inputs.insert(format!("q{d}"), q);
        }
        for (i, p) in points.iter().enumerate() {
            for (d, &v) in p.iter().enumerate() {
                inputs.insert(format!("p{i}_{d}"), v);
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        assert!((out["best"] - knn_reference(&points, &query)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmm_zero_panics() {
        let _ = build_gmm(0);
    }
}
