//! `accelwall` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! accelwall <target> [--json]
//! accelwall all
//! accelwall list
//! ```
//!
//! where `<target>` is one of `fig1 fig3a fig3b fig3c fig3d fig4 fig5 fig6
//! fig7 fig8 fig9 fig11 fig12 fig13 fig14 fig15 fig16 table1 table2 table3
//! table4 table5 wall`. Each target prints the same rows/series the paper
//! reports; `--json` emits the series as JSON for external plotting.

use accelerator_wall::prelude::*;
use accelerator_wall::{chipdb, cmos, dfg, studies};
use serde_json::{json, Value};
use std::process::ExitCode;

const TARGETS: &[&str] = &[
    "fig1", "fig2", "fig3a", "fig3b", "fig3c", "fig3d", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "table1", "table2", "table3", "table4",
    "table5", "wall", "beyond", "insights", "dark", "sensitivity", "dot", "roadmap", "report",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let target = args.iter().find(|a| !a.starts_with("--")).cloned();
    match target.as_deref() {
        None | Some("list") => {
            println!("regeneration targets:");
            for t in TARGETS {
                println!("  {t}");
            }
            println!("  all");
            ExitCode::SUCCESS
        }
        Some("all") => {
            for t in TARGETS {
                println!("=== {t} ===");
                if let Err(e) = run(t, json) {
                    eprintln!("{t} failed: {e}");
                    return ExitCode::FAILURE;
                }
                println!();
            }
            ExitCode::SUCCESS
        }
        Some(t) if TARGETS.contains(&t) => match run(t, json) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{t} failed: {e}");
                ExitCode::FAILURE
            }
        },
        Some(t) => {
            eprintln!("unknown target {t:?}; run `accelwall list`");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

fn run(target: &str, json: bool) -> Result<(), AnyError> {
    match target {
        "fig1" => fig1(json),
        "fig2" => fig2(json),
        "fig3a" => fig3a(json),
        "fig3b" => fig3b(json),
        "fig3c" => fig3c(json),
        "fig3d" => fig3d(json),
        "fig4" => fig4(json),
        "fig5" => fig5(json),
        "fig6" => fig67(false, json),
        "fig7" => fig67(true, json),
        "fig8" => fig8(json),
        "fig9" => fig9(json),
        "fig11" => fig11(json),
        "fig12" => fig12(json),
        "fig13" => fig13(json),
        "fig14" => fig14(json),
        "fig15" => fig1516(TargetMetric::Performance, json),
        "fig16" => fig1516(TargetMetric::EnergyEfficiency, json),
        "table1" => table1(json),
        "table2" => table2(json),
        "table3" => table3(json),
        "table4" => table4(json),
        "table5" => table5(json),
        "wall" => wall_summary(json),
        "beyond" => beyond(json),
        "insights" => insights(json),
        "dark" => dark(json),
        "sensitivity" => sensitivity(json),
        "dot" => dot_export(json),
        "roadmap" => roadmap(json),
        "report" => domain_reports(json),
        _ => unreachable!("validated by caller"),
    }
}

fn emit(json: bool, value: Value, render: impl FnOnce()) {
    if json {
        println!("{}", serde_json::to_string_pretty(&value).expect("valid json"));
    } else {
        render();
    }
}

fn series_json(series: &CsrSeries) -> Value {
    json!(series
        .rows
        .iter()
        .map(|r| {
            json!({
                "label": r.label,
                "reported_gain": r.reported_gain,
                "physical_gain": r.physical_gain,
                "csr": r.csr,
            })
        })
        .collect::<Vec<_>>())
}

fn print_series(title: &str, series: &CsrSeries) {
    println!("{title}");
    println!("{:<28} {:>12} {:>12} {:>8}", "chip", "reported(x)", "physical(x)", "CSR");
    for r in &series.rows {
        println!(
            "{:<28} {:>12.2} {:>12.2} {:>8.2}",
            r.label, r.reported_gain, r.physical_gain, r.csr
        );
    }
}

fn fig1(json: bool) -> Result<(), AnyError> {
    let series = studies::bitcoin::fig1_series()?;
    emit(json, series_json(&series), || {
        print_series(
            "Fig. 1 — Bitcoin mining ASIC evolution (vs first 130nm ASIC, SHA256 GH/s/mm2)",
            &series,
        );
        println!(
            "\npeak performance {:.0}x | transistor performance {:.0}x | final CSR {:.2}x",
            series.peak_reported(),
            series.peak_physical(),
            series.rows.last().expect("non-empty").csr
        );
    });
    Ok(())
}

fn fig2(json: bool) -> Result<(), AnyError> {
    use accelerator_wall::csr::StackLayer;
    let value = json!(StackLayer::all()
        .iter()
        .map(|l| json!({
            "layer": l.to_string(),
            "specialization_layer": l.is_specialization_layer(),
            "examples": l.examples(),
            "isolating_study": l.isolating_study(),
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Fig. 2 — abstraction layers of accelerated systems (the specialization stack)");
        for l in StackLayer::all() {
            let tag = if l.is_specialization_layer() { "  [specialization stack]" } else { "" };
            println!("\n{l}{tag}");
            println!("  examples: {}", l.examples().join(", "));
            if let Some(study) = l.isolating_study() {
                println!("  isolated by: {study}");
            }
        }
    });
    Ok(())
}

fn fig3a(json: bool) -> Result<(), AnyError> {
    let data = cmos::fig3a_series();
    let value = json!(data
        .iter()
        .map(|(m, curve)| {
            json!({
                "metric": m.label(),
                "curve": curve.iter().map(|(n, v)| json!({"node": n.to_string(), "value": v})).collect::<Vec<_>>(),
            })
        })
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Fig. 3a — CMOS device scaling (relative)");
        print!("{:<16}", "metric");
        for (node, _) in &data[0].1 {
            print!("{:>8}", node.to_string());
        }
        println!();
        for (metric, curve) in &data {
            print!("{:<16}", metric.label());
            for (_, v) in curve {
                print!("{v:>8.3}");
            }
            println!();
        }
    });
    Ok(())
}

fn fig3b(json: bool) -> Result<(), AnyError> {
    let corpus = CorpusSpec::paper_scale().generate();
    let fit = chipdb::fit::transistor_density_fit(&corpus)?;
    let value = json!({
        "corpus_records": corpus.len(),
        "fitted": {"coefficient": fit.coefficient, "exponent": fit.exponent, "r_squared": fit.r_squared},
        "paper": {"coefficient": 4.99e9, "exponent": 0.877},
    });
    emit(json, value, || {
        println!("Fig. 3b — transistor count vs density factor D = area/node^2");
        println!("corpus: {} synthetic datasheets (1612 CPUs + 1001 GPUs)", corpus.len());
        println!(
            "fitted:  TC(D) = {:.3e} * D^{:.3}   (R^2 = {:.3})",
            fit.coefficient, fit.exponent, fit.r_squared
        );
        println!("paper:   TC(D) = 4.990e9 * D^0.877");
        for d in [0.01, 0.1, 1.0, 10.0, 32.0] {
            println!("  D = {d:>6}: TC = {:.3e}", fit.eval(d));
        }
    });
    Ok(())
}

fn fig3c(json: bool) -> Result<(), AnyError> {
    let corpus = CorpusSpec::paper_scale().generate();
    let mut rows = Vec::new();
    for &group in NodeGroup::all() {
        let published = group.paper_tdp_law();
        let fitted = chipdb::fit::tdp_fit(&corpus, group).ok();
        rows.push((group, published, fitted));
    }
    let value = json!(rows
        .iter()
        .map(|(g, p, f)| {
            json!({
                "group": g.to_string(),
                "paper": {"c": p.coefficient, "e": p.exponent},
                "fitted": f.map(|f| json!({"c": f.coefficient, "e": f.exponent})),
            })
        })
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Fig. 3c — transistors[G] x freq[GHz] = c * TDP^e per node group");
        println!("{:<12} {:>20} {:>24}", "group", "paper c*TDP^e", "corpus-fitted c*TDP^e");
        for (g, p, f) in &rows {
            let fitted = f
                .map(|f| format!("{:.3}*TDP^{:.3}", f.coefficient, f.exponent))
                .unwrap_or_else(|| "(projection only)".to_string());
            println!(
                "{:<12} {:>20} {:>24}",
                g.to_string(),
                format!("{:.2}*TDP^{:.3}", p.coefficient, p.exponent),
                fitted
            );
        }
    });
    Ok(())
}

fn fig3d(json: bool) -> Result<(), AnyError> {
    let rows = fig3d_grid(&PotentialModel::paper());
    let value = json!(rows
        .iter()
        .map(|r| {
            json!({
                "node": r.node.to_string(),
                "die_mm2": r.die_mm2,
                "zone": r.zone.to_string(),
                "throughput_gain": r.throughput_gain,
                "efficiency_gain": r.efficiency_gain,
            })
        })
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Fig. 3d — physical chip gains vs 25mm2/45nm reference (f = 1 GHz)");
        println!(
            "{:>6} {:>8} {:>10} {:>14} {:>14}",
            "node", "die", "zone", "throughput(x)", "efficiency(x)"
        );
        for r in &rows {
            println!(
                "{:>6} {:>8} {:>10} {:>14.1} {:>14.2}",
                r.node.to_string(),
                format!("{}mm2", r.die_mm2),
                r.zone.to_string(),
                r.throughput_gain,
                r.efficiency_gain
            );
        }
    });
    Ok(())
}

fn fig4(json: bool) -> Result<(), AnyError> {
    let perf = studies::video::performance_series()?;
    let ee = studies::video::efficiency_series()?;
    let chips = studies::video::decoder_chips();
    let value = json!({
        "performance": series_json(&perf),
        "efficiency": series_json(&ee),
        "budget": chips.iter().map(|c| json!({
            "label": c.label,
            "node": c.node.to_string(),
            "transistors": c.transistors(),
            "freq_mhz": c.freq_mhz,
        })).collect::<Vec<_>>(),
    });
    emit(json, value, || {
        print_series("Fig. 4a — video decoder ASIC performance (MPixels/s vs ISSCC2006)", &perf);
        println!();
        println!("Fig. 4b — hardware budget");
        println!("{:<14} {:>6} {:>14} {:>10}", "chip", "node", "transistors", "freq MHz");
        for c in &chips {
            let tc = c
                .transistors()
                .map(|t| format!("{:.2e}", t))
                .unwrap_or_else(|| "undisclosed".to_string());
            println!("{:<14} {:>6} {:>14} {:>10.0}", c.label, c.node.to_string(), tc, c.freq_mhz);
        }
        println!();
        print_series("Fig. 4c — video decoder ASIC energy efficiency (MPixels/J)", &ee);
    });
    Ok(())
}

fn fig5(json: bool) -> Result<(), AnyError> {
    let games = studies::gpu::fig5_games();
    let mut panels = Vec::new();
    for game in &games {
        let perf = studies::gpu::performance_series(game)?;
        let ee = studies::gpu::efficiency_series(game)?;
        panels.push((game.title, perf, ee));
    }
    let value = json!(panels
        .iter()
        .map(|(title, perf, ee)| json!({
            "game": title,
            "performance": series_json(perf),
            "efficiency": series_json(ee),
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Fig. 5 — GPU frame rates (Apps 1-5)");
        for (title, perf, ee) in &panels {
            let last_perf = perf.rows.last().expect("non-empty");
            let last_ee = ee.rows.last().expect("non-empty");
            println!(
                "{:<24} perf x{:.2} (CSR {:.2}) | frames/J x{:.2} (CSR {:.2})",
                title, last_perf.reported_gain, last_perf.csr, last_ee.reported_gain, last_ee.csr
            );
        }
    });
    Ok(())
}

fn fig67(efficiency: bool, json: bool) -> Result<(), AnyError> {
    let matrix = studies::gpu::arch_relation_matrix(efficiency)?;
    let rel = matrix.relative_to("Tesla")?;
    let csrs = studies::gpu::arch_csr(efficiency)?;
    let value = json!(rel
        .iter()
        .map(|(arch, gain)| {
            let csr = csrs.iter().find(|(a, _)| a == arch).map(|(_, c)| *c);
            json!({"arch": arch, "gain_vs_tesla": gain, "csr": csr})
        })
        .collect::<Vec<_>>());
    let (fig, what) = if efficiency {
        ("Fig. 7", "energy efficiency")
    } else {
        ("Fig. 6", "throughput")
    };
    emit(json, value, || {
        println!("{fig} — GPU architecture + CMOS scaling: {what} (Eqs. 3-4 relation matrix)");
        println!("{:<14} {:>16} {:>8}", "architecture", "gain vs Tesla", "CSR");
        for (arch, gain) in &rel {
            let csr = csrs
                .iter()
                .find(|(a, _)| a == arch)
                .map(|(_, c)| format!("{c:.2}"))
                .unwrap_or_default();
            println!("{:<14} {:>16.2} {:>8}", arch, gain, csr);
        }
    });
    Ok(())
}

fn fig8(json: bool) -> Result<(), AnyError> {
    use studies::fpga::CnnModel;
    let mut value = serde_json::Map::new();
    let mut text = Vec::new();
    for model in [CnnModel::AlexNet, CnnModel::Vgg16] {
        let perf = studies::fpga::performance_series(model)?;
        let ee = studies::fpga::efficiency_series(model)?;
        value.insert(
            model.to_string(),
            json!({"performance": series_json(&perf), "efficiency": series_json(&ee)}),
        );
        text.push((model, perf, ee));
    }
    emit(json, Value::Object(value), || {
        for (model, perf, ee) in &text {
            print_series(&format!("Fig. 8 — {model} on FPGAs: performance (GOPS gain)"), perf);
            println!(
                "peak perf {:.1}x, peak CSR {:.1}x, best-chip CSR {:.1}x",
                perf.peak_reported(),
                perf.peak_csr(),
                perf.csr_of_best_chip()
            );
            println!("{model} efficiency: peak {:.1}x (GOP/J)", ee.peak_reported());
            println!();
        }
    });
    Ok(())
}

fn fig9(json: bool) -> Result<(), AnyError> {
    let perf = studies::bitcoin::fig9_performance_series()?;
    let ee = studies::bitcoin::fig9_efficiency_series()?;
    let value = json!({"performance": series_json(&perf), "efficiency": series_json(&ee)});
    emit(json, value, || {
        print_series(
            "Fig. 9a — Bitcoin mining, all platforms (GH/s/mm2 vs Athlon 64)",
            &perf,
        );
        println!();
        print_series("Fig. 9b — Bitcoin mining energy efficiency (GH/J)", &ee);
    });
    Ok(())
}

fn fig11(json: bool) -> Result<(), AnyError> {
    let mut b = DfgBuilder::new("fig11");
    let d1 = b.input("d_in1");
    let d2 = b.input("d_in2");
    let d3 = b.input("d_in3");
    let s1a = b.op(Op::Add, &[d1, d2]);
    let s1b = b.op(Op::Div, &[d2, d3]);
    let s2a = b.op(Op::Sub, &[s1a, s1b]);
    let s2b = b.op(Op::Add, &[s1b, d3]);
    b.output("d_out1", s2a);
    b.output("d_out2", s2b);
    let g = b.build()?;
    let s = g.stats();
    let value = json!({
        "vertices": s.vertices, "edges": s.edges, "inputs": s.inputs,
        "outputs": s.outputs, "depth": s.depth, "compute_stages": s.compute_stages,
        "paths": s.path_count.to_string(), "max_working_set": s.max_working_set,
    });
    emit(json, value, || {
        println!("Fig. 11 — example DFG: 3 inputs, 2 computation stages, 2 outputs");
        println!("|V| = {}, |E| = {}, |V_IN| = {}, |V_OUT| = {}", s.vertices, s.edges, s.inputs, s.outputs);
        println!(
            "depth D = {}, compute stages = {}, |P| = {} paths, max|WS_s| = {}",
            s.depth, s.compute_stages, s.path_count, s.max_working_set
        );
    });
    Ok(())
}

fn fig12(json: bool) -> Result<(), AnyError> {
    let g = Workload::S3d.default_instance();
    let s = g.stats();
    let value = json!({
        "workload": "S3D", "vertices": s.vertices, "edges": s.edges,
        "computes": s.computes, "depth": s.depth, "max_stage_width": s.max_stage_width,
    });
    emit(json, value, || {
        println!("Fig. 12 — 3D stencil computation structure (default instance)");
        println!(
            "|V| = {} ({} compute ops), |E| = {}, depth = {}, widest stage = {} concurrent vertices",
            s.vertices, s.computes, s.edges, s.depth, s.max_stage_width
        );
        println!("filtering is independent per lattice point: a maximally parallel kernel");
    });
    Ok(())
}

fn fig13(json: bool) -> Result<(), AnyError> {
    let g = Workload::S3d.default_instance();
    let points = run_sweep(&g, &SweepSpace::table3())?;
    let best = accelerator_wall_best(&points);
    let value = json!({
        "points": points.len(),
        "best_efficiency": best.map(|p| json!({
            "node": p.config.node.to_string(),
            "partition": p.config.partition_factor,
            "simplification": p.config.simplification_degree,
            "runtime_s": p.report.runtime_s,
            "power_w": p.report.power_w(),
        })),
        "scatter": points.iter().step_by(37).map(|p| json!({
            "node": p.config.node.to_string(),
            "partition": p.config.partition_factor,
            "simplification": p.config.simplification_degree,
            "runtime_s": p.report.runtime_s,
            "power_w": p.report.power_w(),
        })).collect::<Vec<_>>(),
    });
    emit(json, value, || {
        println!("Fig. 13 — 3D stencil power/runtime/CMOS sweep ({} design points)", points.len());
        let baseline = points
            .iter()
            .find(|p| {
                p.config.partition_factor == 1
                    && p.config.simplification_degree == 1
                    && p.config.node == TechNode::N45
            })
            .expect("baseline in sweep");
        println!(
            "baseline 45nm P=1 s=1:   runtime {:>10.3e}s  power {:>8.3}W",
            baseline.report.runtime_s,
            baseline.report.power_w()
        );
        if let Some(p) = best {
            println!(
                "best energy efficiency:  runtime {:>10.3e}s  power {:>8.3}W  @ {} P={} s={}",
                p.report.runtime_s,
                p.report.power_w(),
                p.config.node,
                p.config.partition_factor,
                p.config.simplification_degree
            );
        }
        for &node in accelerator_wall::cmos::TechNode::sweep_nodes() {
            let node_best = points
                .iter()
                .filter(|p| p.config.node == node)
                .max_by(|a, b| {
                    a.report
                        .energy_efficiency()
                        .partial_cmp(&b.report.energy_efficiency())
                        .expect("finite")
                })
                .expect("non-empty");
            println!(
                "{:>6}: best-EE point runtime {:>10.3e}s power {:>8.3}W (P={}, s={})",
                node.to_string(),
                node_best.report.runtime_s,
                node_best.report.power_w(),
                node_best.config.partition_factor,
                node_best.config.simplification_degree
            );
        }
    });
    Ok(())
}

fn accelerator_wall_best(
    points: &[accelerator_wall::accelsim::SweepPoint],
) -> Option<&accelerator_wall::accelsim::SweepPoint> {
    accelerator_wall::accelsim::sweep::best_efficiency(points)
}

fn fig14(json: bool) -> Result<(), AnyError> {
    let space = SweepSpace::table3();
    let mut rows = Vec::new();
    for &w in Workload::all() {
        let g = w.default_instance();
        let perf = attribute_gains(&g, Metric::Performance, &space)?;
        let ee = attribute_gains(&g, Metric::EnergyEfficiency, &space)?;
        rows.push((w, perf, ee));
    }
    let contribution_json = |a: &Attribution| {
        json!({
            "total_gain": a.total_gain,
            "csr": a.csr,
            "contributions": a.contributions.iter().map(|c| json!({
                "source": c.source.to_string(), "factor": c.factor, "percent": c.percent,
            })).collect::<Vec<_>>(),
        })
    };
    let value = json!(rows
        .iter()
        .map(|(w, p, e)| json!({
            "workload": w.abbrev(),
            "performance": contribution_json(p),
            "efficiency": contribution_json(e),
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        for (title, pick) in [
            ("Fig. 14a — performance gain attribution", 0usize),
            ("Fig. 14b — energy-efficiency gain attribution", 1),
        ] {
            println!("{title}");
            println!(
                "{:<5} {:>9} {:>7} | {:>7} {:>7} {:>7} {:>7}  (% of log gain)",
                "app", "gain(x)", "CSR", "Part", "Het", "Simp", "CMOS"
            );
            let mut geo_gain = 0.0;
            let mut geo_csr = 0.0;
            for (w, p, e) in &rows {
                let a = if pick == 0 { p } else { e };
                let pct = |src: &str| {
                    a.contributions
                        .iter()
                        .find(|c| c.source.to_string().starts_with(src))
                        .map(|c| c.percent)
                        .unwrap_or(0.0)
                };
                println!(
                    "{:<5} {:>9.1} {:>7.2} | {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
                    w.abbrev(),
                    a.total_gain,
                    a.csr,
                    pct("Partitioning"),
                    pct("Heterogeneity"),
                    pct("Simplification"),
                    pct("CMOS")
                );
                geo_gain += a.total_gain.ln();
                geo_csr += a.csr.ln();
            }
            let n = rows.len() as f64;
            println!(
                "{:<5} {:>9.1} {:>7.2}  (geometric means)",
                "AVG",
                (geo_gain / n).exp(),
                (geo_csr / n).exp()
            );
            println!();
        }
    });
    Ok(())
}

fn fig1516(metric: TargetMetric, json: bool) -> Result<(), AnyError> {
    let fig = match metric {
        TargetMetric::Performance => "Fig. 15",
        TargetMetric::EnergyEfficiency => "Fig. 16",
    };
    let mut walls = Vec::new();
    for &d in Domain::all() {
        walls.push(accelerator_wall(d, metric)?);
    }
    let value = json!(walls
        .iter()
        .map(|w| json!({
            "domain": w.domain.to_string(),
            "unit": w.domain.unit(w.metric),
            "physical_limit": w.physical_limit,
            "current_best": w.current_best,
            "linear_wall": w.linear_wall,
            "log_wall": w.log_wall,
            "further_linear": w.further_linear,
            "further_log": w.further_log,
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("{fig} — accelerator {} projections at the 5nm limit", match metric {
            TargetMetric::Performance => "performance",
            TargetMetric::EnergyEfficiency => "energy-efficiency",
        });
        println!(
            "{:<22} {:>10} {:>12} {:>12} {:>12} {:>16}",
            "domain", "phys lim", "current", "log wall", "linear wall", "headroom(log-lin)"
        );
        for w in &walls {
            println!(
                "{:<22} {:>9.0}x {:>12.3e} {:>12.3e} {:>12.3e} {:>7.1}x-{:.1}x  [{}]",
                w.domain.to_string(),
                w.physical_limit,
                w.current_best,
                w.log_wall,
                w.linear_wall,
                w.further_log,
                w.further_linear,
                w.domain.unit(w.metric)
            );
        }
    });
    Ok(())
}

fn table1(json: bool) -> Result<(), AnyError> {
    let examples = dfg::concepts::tpu_examples();
    let value = json!(examples
        .iter()
        .map(|e| json!({
            "component": e.component.to_string(),
            "concept": e.concept.to_string(),
            "index": e.index,
            "description": e.description,
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Table I — chip specialization concepts, TPU examples (Fig. 10)");
        for e in examples {
            println!(
                "({}) {:<14} x {:<14}: {}",
                e.index, e.component, e.concept, e.description
            );
        }
    });
    Ok(())
}

fn table2(json: bool) -> Result<(), AnyError> {
    let cells = dfg::limits::table2();
    let s3d = Workload::S3d.default_instance().stats();
    let value = json!(cells
        .iter()
        .map(|c| json!({
            "component": c.component.to_string(),
            "concept": c.concept.to_string(),
            "time": c.time.to_string(),
            "space": c.space.to_string(),
            "time_on_s3d": c.time.evaluate(&s3d),
            "space_on_s3d": c.space.evaluate(&s3d),
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Table II — time/space complexity limits of specialization concepts");
        println!(
            "{:<14} {:<15} {:<26} {:<22}",
            "component", "concept", "time", "space"
        );
        for c in &cells {
            println!(
                "{:<14} {:<15} {:<26} {:<22}",
                c.component.to_string(),
                c.concept.to_string(),
                c.time.to_string(),
                c.space.to_string()
            );
        }
        println!("\nevaluated on the S3D instance (|V|={}, |E|={}, D={}):", s3d.vertices, s3d.edges, s3d.depth);
        for c in &cells {
            println!(
                "  {:<14}/{:<15} time {:>12.0}  space {:>12.0}",
                c.component.to_string(),
                c.concept.to_string(),
                c.time.evaluate(&s3d),
                c.space.evaluate(&s3d)
            );
        }
    });
    Ok(())
}

fn table3(json: bool) -> Result<(), AnyError> {
    let space = SweepSpace::table3();
    let value = json!({
        "partition_factors": space.partition_factors,
        "simplification_degrees": space.simplification_degrees,
        "nodes": space.nodes.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
        "points": space.len(),
    });
    emit(json, value, || {
        println!("Table III — CMOS-specialization sweep parameters");
        println!("partitioning factor:   1, 2, 4, ... {}", space.partition_factors.last().expect("non-empty"));
        println!(
            "simplification degree: {}..{}",
            space.simplification_degrees.first().expect("non-empty"),
            space.simplification_degrees.last().expect("non-empty")
        );
        let nodes: Vec<String> = space.nodes.iter().map(|n| n.to_string()).collect();
        println!("CMOS process:          {}", nodes.join(", "));
        println!("total design points:   {}", space.len());
    });
    Ok(())
}

fn table4(json: bool) -> Result<(), AnyError> {
    let value = json!(Workload::all()
        .iter()
        .map(|w| json!({
            "application": w.full_name(),
            "abbrev": w.abbrev(),
            "domain": w.domain(),
            "suite": w.suite(),
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Table IV — evaluated applications and domains");
        println!("{:<36} {:<7} {:<20} {:<12}", "application", "abbrev", "domain", "suite");
        for w in Workload::all() {
            println!(
                "{:<36} {:<7} {:<20} {:<12}",
                w.full_name(),
                w.abbrev(),
                w.domain(),
                w.suite()
            );
        }
    });
    Ok(())
}

fn table5(json: bool) -> Result<(), AnyError> {
    let value = json!(Domain::all()
        .iter()
        .map(|d| {
            let l = d.limits();
            json!({
                "domain": d.to_string(),
                "platform": d.platform(),
                "min_die_mm2": l.min_die_mm2,
                "max_die_mm2": l.max_die_mm2,
                "tdp_w": l.tdp_w,
                "freq_mhz": l.freq_mhz,
            })
        })
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Table V — accelerator wall physical parameters");
        println!(
            "{:<22} {:<9} {:>16} {:>10} {:>10}",
            "domain", "platform", "die min/max mm2", "TDP W", "MHz"
        );
        for d in Domain::all() {
            let l = d.limits();
            println!(
                "{:<22} {:<9} {:>16} {:>10} {:>10}",
                d.to_string(),
                d.platform(),
                format!("{}/{}", l.min_die_mm2, l.max_die_mm2),
                l.tdp_w,
                l.freq_mhz
            );
        }
    });
    Ok(())
}

fn beyond(json: bool) -> Result<(), AnyError> {
    use accelerator_wall::projection::beyond_wall;
    let mut rows = Vec::new();
    for &d in Domain::all() {
        rows.push(beyond_wall(d, TargetMetric::Performance)?);
    }
    let value = json!(rows
        .iter()
        .map(|b| json!({
            "domain": b.domain.to_string(),
            "historical_cagr": b.historical_cagr,
            "csr_cagr": b.csr_cagr,
            "runway_years": {"log": b.runway_years_log, "linear": b.runway_years_linear},
            "required_csr_speedup": b.required_csr_speedup,
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Beyond the wall — performance trajectories in years");
        println!(
            "{:<22} {:>10} {:>10} {:>18} {:>14}",
            "domain", "gain %/yr", "CSR %/yr", "runway (log-lin)", "CSR gap"
        );
        for b in &rows {
            let gap = if b.required_csr_speedup.is_finite() {
                format!("{:.0}x", b.required_csr_speedup)
            } else {
                "inf".to_string()
            };
            println!(
                "{:<22} {:>9.0}% {:>9.0}% {:>8.1}-{:.1} years {:>14}",
                b.domain.to_string(),
                b.historical_cagr * 100.0,
                b.csr_cagr * 100.0,
                b.runway_years_log,
                b.runway_years_linear,
                gap
            );
        }
        println!("
runway: how long the projected headroom lasts at the historical rate;");
        println!("CSR gap: how much faster design skill must improve, post-CMOS, to keep pace.");
    });
    Ok(())
}

fn insights(json: bool) -> Result<(), AnyError> {
    let list = studies::insights::section4e_insights()?;
    let value = json!(list
        .iter()
        .map(|i| json!({
            "title": i.title,
            "claim": i.claim,
            "holds": i.holds,
            "evidence": i.evidence.iter().map(|(l, v)| json!({"label": l, "value": v})).collect::<Vec<_>>(),
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Section IV-E — observations and insights, recomputed:");
        for i in &list {
            println!("
* {} [{}]", i.title, if i.holds { "HOLDS" } else { "VIOLATED" });
            println!("  claim: {}", i.claim);
            for (label, v) in &i.evidence {
                println!("    {label:<40} {v:>10.2}");
            }
        }
    });
    Ok(())
}

fn dark(json: bool) -> Result<(), AnyError> {
    use accelerator_wall::potential::gains::{fig3d_nodes, TdpZone, FIG3D_DIES};
    let model = PotentialModel::paper();
    let mut rows = Vec::new();
    for &node in fig3d_nodes() {
        for &die in &FIG3D_DIES {
            for &zone in TdpZone::all() {
                let spec = ChipSpec::new(node, die, 1.0, zone.budget_w());
                rows.push((node, die, zone, model.dark_fraction(&spec)));
            }
        }
    }
    let value = json!(rows
        .iter()
        .map(|(n, d, z, f)| json!({
            "node": n.to_string(), "die_mm2": d, "zone": z.to_string(), "dark_fraction": f,
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Dark-silicon fractions (share of the die the power budget cannot switch)");
        print!("{:>6} {:>8}", "node", "die");
        for z in TdpZone::all() {
            print!("{:>12}", z.to_string());
        }
        println!();
        for &node in fig3d_nodes() {
            for &die in &FIG3D_DIES {
                print!("{:>6} {:>7}m", node.to_string(), die);
                for &zone in TdpZone::all() {
                    let f = rows
                        .iter()
                        .find(|(n, d, z, _)| *n == node && *d == die && *z == zone)
                        .expect("grid is complete")
                        .3;
                    print!("{:>11.0}%", f * 100.0);
                }
                println!();
            }
        }
    });
    Ok(())
}

fn sensitivity(json: bool) -> Result<(), AnyError> {
    use accelerator_wall::projection::wall_sensitivity;
    let mut all = Vec::new();
    for &d in Domain::all() {
        all.extend(wall_sensitivity(d, TargetMetric::Performance)?);
    }
    let value = json!(all
        .iter()
        .map(|r| json!({
            "domain": r.domain.to_string(),
            "parameter": r.parameter.to_string(),
            "wall_minus": r.wall_minus,
            "wall_base": r.wall_base,
            "wall_plus": r.wall_plus,
            "elasticity": r.elasticity,
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Wall sensitivity to Table V parameters (performance, ±20%)");
        println!(
            "{:<22} {:<11} {:>12} {:>12} {:>12} {:>11}",
            "domain", "parameter", "wall @-20%", "wall @base", "wall @+20%", "elasticity"
        );
        for r in &all {
            println!(
                "{:<22} {:<11} {:>12.3e} {:>12.3e} {:>12.3e} {:>11.2}",
                r.domain.to_string(),
                r.parameter.to_string(),
                r.wall_minus,
                r.wall_base,
                r.wall_plus,
                r.elasticity
            );
        }
    });
    Ok(())
}

fn dot_export(json: bool) -> Result<(), AnyError> {
    // `accelwall dot [WORKLOAD]`: default to the Fig. 11 example graph.
    let which = std::env::args().nth(2).unwrap_or_else(|| "fig11".to_string());
    let graph = if which.eq_ignore_ascii_case("fig11") || which == "dot" || which == "--json" {
        let mut b = DfgBuilder::new("fig11");
        let d1 = b.input("d_in1");
        let d2 = b.input("d_in2");
        let d3 = b.input("d_in3");
        let s1a = b.op(Op::Add, &[d1, d2]);
        let s1b = b.op(Op::Div, &[d2, d3]);
        let s2a = b.op(Op::Sub, &[s1a, s1b]);
        let s2b = b.op(Op::Add, &[s1b, d3]);
        b.output("d_out1", s2a);
        b.output("d_out2", s2b);
        b.build()?
    } else {
        Workload::all()
            .iter()
            .find(|w| w.abbrev().eq_ignore_ascii_case(&which))
            .map(|w| w.default_instance())
            .ok_or_else(|| format!("unknown workload {which:?}; use a Table IV abbreviation"))?
    };
    let dot = graph.to_dot(accelerator_wall::dfg::DotOptions::default());
    if json {
        println!("{}", json!({"name": graph.name(), "dot": dot}));
    } else {
        print!("{dot}");
    }
    Ok(())
}

fn roadmap(json: bool) -> Result<(), AnyError> {
    use accelerator_wall::potential::{physical_roadmap, scaling_end_year};
    let model = PotentialModel::paper();
    let template = ChipSpec::new(TechNode::N45, 100.0, 1.0, 100.0);
    let points = physical_roadmap(&model, &template, 2000, 2030);
    let value = json!(points
        .iter()
        .map(|p| json!({
            "year": p.year,
            "node": p.node.to_string(),
            "throughput_gain": p.throughput_gain,
            "efficiency_gain": p.efficiency_gain,
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!(
            "Physical-gains roadmap for a 100mm2 / 1GHz / 100W chip template              (scaling ends {})",
            scaling_end_year()
        );
        println!("{:>6} {:>7} {:>14} {:>14}", "year", "node", "throughput(x)", "ops/J(x)");
        let mut last_node = None;
        for p in &points {
            let marker = if Some(p.node) != last_node { "<- new node" } else { "" };
            println!(
                "{:>6} {:>7} {:>14.1} {:>14.1}  {marker}",
                p.year,
                p.node.to_string(),
                p.throughput_gain,
                p.efficiency_gain
            );
            last_node = Some(p.node);
        }
    });
    Ok(())
}

fn domain_reports(json: bool) -> Result<(), AnyError> {
    use accelerator_wall::report::DomainReport;
    let reports: Vec<DomainReport> = Domain::all()
        .iter()
        .map(|&d| DomainReport::generate(d))
        .collect::<Result<_, _>>()?;
    let value = json!(reports
        .iter()
        .map(|r| json!({
            "domain": r.domain.to_string(),
            "maturity": r.maturity.to_string(),
            "peak_gain": r.performance_series.peak_reported(),
            "peak_physical": r.performance_series.peak_physical(),
            "performance_headroom": {"log": r.performance_wall.further_log, "linear": r.performance_wall.further_linear},
            "efficiency_headroom": {"log": r.efficiency_wall.further_log, "linear": r.efficiency_wall.further_linear},
            "runway_years": {"log": r.trajectory.runway_years_log, "linear": r.trajectory.runway_years_linear},
            "dominant_constraint": r.dominant_constraint().parameter.to_string(),
            "summary": r.summary(),
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("Domain reports — the full verdict per accelerated domain\n");
        for r in &reports {
            println!("{}\n", r.summary());
        }
    });
    Ok(())
}

fn wall_summary(json: bool) -> Result<(), AnyError> {
    let mut rows = Vec::new();
    for &d in Domain::all() {
        let p = accelerator_wall(d, TargetMetric::Performance)?;
        let e = accelerator_wall(d, TargetMetric::EnergyEfficiency)?;
        rows.push((d, p, e));
    }
    let value = json!(rows
        .iter()
        .map(|(d, p, e)| json!({
            "domain": d.to_string(),
            "performance_headroom": {"log": p.further_log, "linear": p.further_linear},
            "efficiency_headroom": {"log": e.further_log, "linear": e.further_linear},
        }))
        .collect::<Vec<_>>());
    emit(json, value, || {
        println!("The Accelerator Wall — remaining headroom at the end of CMOS scaling (5nm)");
        println!(
            "{:<22} {:>24} {:>24}",
            "domain", "performance (log-lin)", "efficiency (log-lin)"
        );
        for (d, p, e) in &rows {
            println!(
                "{:<22} {:>13.1}x - {:>5.1}x {:>14.1}x - {:>5.1}x",
                d.to_string(),
                p.further_log,
                p.further_linear,
                e.further_log,
                e.further_linear
            );
        }
        println!("\npaper: video 3-130x / 1.2-14x; GPU 1.4-2.5x / 1.4-1.7x;");
        println!("       FPGA CNN 2.1-3.4x / 2.7-3.5x; Bitcoin 2-20x / 1.4-5x");
    });
    Ok(())
}
