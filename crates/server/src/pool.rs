//! A fixed-size, self-healing worker thread pool over an [`mpsc`]
//! channel.
//!
//! The server's reactor thread owns all connection I/O and hands each
//! parsed request to this pool as one compute job. The channel is a
//! [`mpsc::sync_channel`] with a bounded backlog, which is the server's
//! backpressure mechanism: when every worker is busy and the backlog is
//! full, [`ThreadPool::try_execute`] fails immediately and *returns the
//! work item*, so the reactor can answer `503 Service Unavailable` for
//! the rejected request — in pipeline order, on a connection that stays
//! open — instead of queueing unboundedly or dropping it silently.
//!
//! Workers are self-healing: a handler that panics kills its thread, but
//! a sentinel guard notices the unwind, counts it, and spawns a
//! replacement before the old thread finishes dying — pool capacity
//! never silently decays. The count is exposed via
//! [`ThreadPool::with_panic_counter`]'s shared counter (the server's
//! `worker_panics_total` metric): the invariant "containment upstream
//! caught every panic" is `worker_panics_total == 0`, observable rather
//! than assumed.
//!
//! Dropping the pool (or calling [`ThreadPool::join`]) closes the
//! channel; workers — originals and respawns alike — finish the jobs
//! already queued, then exit — that is what makes the server's shutdown
//! a *drain* rather than an abort.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// A fixed set of worker threads applying one handler to queued items.
pub struct ThreadPool<T: Send + 'static> {
    sender: Option<mpsc::SyncSender<T>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared<T>>,
}

impl<T: Send + 'static> std::fmt::Debug for ThreadPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .field("panics", &self.panics())
            .finish_non_exhaustive()
    }
}

/// State every worker (original or respawned) shares.
struct Shared<T> {
    receiver: Mutex<mpsc::Receiver<T>>,
    handler: Box<dyn Fn(T) + Send + Sync>,
    panics: Arc<AtomicU64>,
    /// Replacement workers spawned after panics; drained at shutdown so
    /// the join guarantee covers them too.
    respawned: Mutex<Vec<JoinHandle<()>>>,
    respawn_seq: AtomicUsize,
}

/// Why an item could not be enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// Every worker is busy and the backlog is full (backpressure).
    Saturated,
    /// The pool is shutting down and accepts no new work.
    Closed,
}

/// An item the pool refused, handed back so the caller can shed load.
#[derive(Debug)]
pub struct Rejected<T> {
    /// The item that was not enqueued.
    pub item: T,
    /// Why it was refused.
    pub reason: PoolError,
}

impl<T: Send + 'static> ThreadPool<T> {
    /// Spawns `workers` threads sharing a queue of at most `backlog`
    /// pending items, each applying `handler`. Both counts are clamped
    /// to at least 1.
    pub fn new(
        workers: usize,
        backlog: usize,
        handler: impl Fn(T) + Send + Sync + 'static,
    ) -> ThreadPool<T> {
        ThreadPool::with_panic_counter(workers, backlog, Arc::new(AtomicU64::new(0)), handler)
    }

    /// As [`ThreadPool::new`], but counting worker panics into a counter
    /// the caller keeps (the server wires its metrics' counter in here).
    pub fn with_panic_counter(
        workers: usize,
        backlog: usize,
        panics: Arc<AtomicU64>,
        handler: impl Fn(T) + Send + Sync + 'static,
    ) -> ThreadPool<T> {
        let (sender, receiver) = mpsc::sync_channel::<T>(backlog.max(1));
        let shared = Arc::new(Shared {
            receiver: Mutex::new(receiver),
            handler: Box::new(handler),
            panics,
            respawned: Mutex::new(Vec::new()),
            respawn_seq: AtomicUsize::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("accelwall-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // lint:allow(no-panic-paths): failing to spawn at startup leaves no useful fallback; dying loudly before serving is correct
                    .expect("spawning a worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            shared,
        }
    }

    /// Worker panics observed (and healed) so far.
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Enqueues an item without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item with [`PoolError::Saturated`] when the backlog
    /// is full, or [`PoolError::Closed`] once shutdown began.
    pub fn try_execute(&self, item: T) -> Result<(), Rejected<T>> {
        let Some(sender) = self.sender.as_ref() else {
            return Err(Rejected {
                item,
                reason: PoolError::Closed,
            });
        };
        sender.try_send(item).map_err(|e| match e {
            mpsc::TrySendError::Full(item) => Rejected {
                item,
                reason: PoolError::Saturated,
            },
            mpsc::TrySendError::Disconnected(item) => Rejected {
                item,
                reason: PoolError::Closed,
            },
        })
    }

    /// Closes the queue and blocks until every queued item has been
    /// handled.
    pub fn join(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.sender = None; // close the channel: workers drain then exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Respawned workers register themselves before their dying
        // predecessor exits, so by the time the joins above return the
        // list is complete up to panics *inside this loop* — hence pop
        // until empty rather than a single drain.
        loop {
            let handle = self
                .shared
                .respawned
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop();
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }
    }
}

impl<T: Send + 'static> Drop for ThreadPool<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The loop every worker runs. The receiver lock is held only for the
/// `recv` — the handler runs unlocked, so a panicking handler can never
/// poison the queue for its siblings.
fn worker_loop<T: Send + 'static>(shared: &Arc<Shared<T>>) {
    let sentinel = Sentinel {
        shared: Arc::clone(shared),
        armed: true,
    };
    loop {
        let item = {
            let receiver = shared
                .receiver
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            receiver.recv()
        };
        match item {
            Ok(item) => (shared.handler)(item),
            Err(_) => break, // channel closed and drained
        }
    }
    sentinel.disarm();
}

/// Guard that turns an unwinding worker into a respawn: if the thread
/// dies panicking, `Drop` counts the panic and spawns a replacement; on
/// a clean exit the guard is disarmed first and does nothing.
struct Sentinel<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    armed: bool,
}

impl<T: Send + 'static> Sentinel<T> {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl<T: Send + 'static> Drop for Sentinel<T> {
    fn drop(&mut self) {
        if !self.armed || !std::thread::panicking() {
            return;
        }
        // Relaxed: both are monotonic telemetry counters — nothing is
        // published through them, readers only want an eventual count.
        self.shared.panics.fetch_add(1, Ordering::Relaxed);
        let seq = self.shared.respawn_seq.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(&self.shared);
        let spawned = std::thread::Builder::new()
            .name(format!("accelwall-worker-respawn-{seq}"))
            .spawn(move || worker_loop(&shared));
        // Register the replacement *before* this thread finishes dying,
        // so shutdown's join of the dead worker happens-after the push.
        // If the spawn itself fails (thread exhaustion) there is nothing
        // useful to do from a Drop mid-unwind; capacity degrades by one
        // but the panic is still counted and visible in metrics.
        if let Ok(handle) = spawned {
            self.shared
                .respawned
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(handle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_every_queued_item_before_join_returns() {
        let hits = Arc::new(AtomicUsize::new(0));
        let sink = Arc::clone(&hits);
        let pool = ThreadPool::new(4, 16, move |n: usize| {
            sink.fetch_add(n, Ordering::SeqCst);
        });
        for _ in 0..16 {
            pool.try_execute(1).unwrap();
        }
        pool.join();
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn saturation_returns_the_item_instead_of_queueing() {
        let gate = Arc::new(std::sync::Barrier::new(2));
        let worker_gate = Arc::clone(&gate);
        let pool = ThreadPool::new(1, 1, move |block: bool| {
            if block {
                worker_gate.wait();
            }
        });
        // Occupy the single worker...
        pool.try_execute(true).unwrap();
        // ...and give the queue a moment to hand the item over.
        std::thread::sleep(Duration::from_millis(50));
        // One item fits in the backlog; the next must bounce back.
        let mut bounced = None;
        for _ in 0..2 {
            if let Err(rejected) = pool.try_execute(false) {
                assert_eq!(rejected.reason, PoolError::Saturated);
                bounced = Some(rejected.item);
            }
        }
        assert_eq!(
            bounced,
            Some(false),
            "a full backlog must hand the item back"
        );
        gate.wait();
        pool.join();
    }

    #[test]
    fn a_panicking_handler_respawns_the_worker_and_counts_the_panic() {
        let panics = Arc::new(AtomicU64::new(0));
        let hits = Arc::new(AtomicUsize::new(0));
        let sink = Arc::clone(&hits);
        let pool = ThreadPool::with_panic_counter(1, 16, Arc::clone(&panics), move |n: usize| {
            assert!(n != 0, "injected handler panic");
            sink.fetch_add(n, Ordering::SeqCst);
        });
        // The single worker dies on the first item; the respawned worker
        // must still drain everything behind it.
        pool.try_execute(0).unwrap();
        for _ in 0..8 {
            pool.try_execute(1).unwrap();
        }
        assert_eq!(pool.panics(), panics.load(Ordering::SeqCst));
        pool.join();
        assert_eq!(hits.load(Ordering::SeqCst), 8, "queued items all ran");
        assert_eq!(panics.load(Ordering::SeqCst), 1, "one panic, one respawn");
    }

    #[test]
    fn repeated_panics_keep_healing_the_pool() {
        let panics = Arc::new(AtomicU64::new(0));
        let hits = Arc::new(AtomicUsize::new(0));
        let sink = Arc::clone(&hits);
        let pool = ThreadPool::with_panic_counter(2, 32, Arc::clone(&panics), move |n: usize| {
            assert!(n != 0, "injected handler panic");
            sink.fetch_add(1, Ordering::SeqCst);
        });
        for round in 0..3 {
            pool.try_execute(0).unwrap();
            for _ in 0..4 {
                pool.try_execute(1).unwrap();
            }
            // Let the respawn settle between rounds.
            std::thread::sleep(Duration::from_millis(20 * (round + 1)));
        }
        pool.join();
        assert_eq!(hits.load(Ordering::SeqCst), 12);
        assert_eq!(panics.load(Ordering::SeqCst), 3);
    }
}
