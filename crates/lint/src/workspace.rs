//! Workspace discovery and loading.
//!
//! The linter operates on the checkout, not on compiled artifacts: it
//! walks the workspace root, lexes every `.rs` file, keeps every
//! `Cargo.toml` raw (the `dep-free` rule parses the little TOML it needs
//! itself), and reads `EXPERIMENTS.md` for the `doc-sync` rule and
//! `DESIGN.md` for the `registry-sync` route-table check.
//! Build output (`target/`), VCS metadata, and hidden directories are
//! skipped.

use crate::source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A raw `Cargo.toml`.
#[derive(Debug)]
pub struct Manifest {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// The raw TOML text.
    pub text: String,
}

/// Everything the lints look at, loaded once.
#[derive(Debug)]
pub struct Workspace {
    /// The workspace root directory.
    pub root: PathBuf,
    /// Every lexed `.rs` file, sorted by path.
    pub files: Vec<SourceFile>,
    /// Every `Cargo.toml`, sorted by path.
    pub manifests: Vec<Manifest>,
    /// `EXPERIMENTS.md`, when present.
    pub experiments_md: Option<String>,
    /// `DESIGN.md`, when present.
    pub design_md: Option<String>,
}

impl Workspace {
    /// Walks upward from `start` to the first directory whose
    /// `Cargo.toml` declares `[workspace]`, then loads it.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] when no workspace root exists above `start` or a
    /// file read fails.
    pub fn discover(start: &Path) -> io::Result<Workspace> {
        let mut dir = start.to_path_buf();
        loop {
            let manifest = dir.join("Cargo.toml");
            if manifest.is_file() && fs::read_to_string(&manifest)?.contains("[workspace]") {
                return Workspace::load(&dir);
            }
            if !dir.pop() {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!(
                        "no workspace root (a Cargo.toml with [workspace]) at or above {}",
                        start.display()
                    ),
                ));
            }
        }
    }

    /// Loads the workspace rooted at `root`.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] when a directory or file cannot be read.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let mut manifests = Vec::new();
        walk(root, root, &mut files, &mut manifests)?;
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        manifests.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let experiments_md = fs::read_to_string(root.join("EXPERIMENTS.md")).ok();
        let design_md = fs::read_to_string(root.join("DESIGN.md")).ok();
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            manifests,
            experiments_md,
            design_md,
        })
    }

    /// The files whose path starts with `prefix` (workspace-relative).
    pub fn files_under<'w>(&'w self, prefix: &'w str) -> impl Iterator<Item = &'w SourceFile> {
        self.files.iter().filter(move |f| {
            f.rel_path
                .strip_prefix(prefix)
                .is_some_and(|rest| rest.is_empty() || rest.starts_with('/'))
        })
    }
}

fn walk(
    root: &Path,
    dir: &Path,
    files: &mut Vec<SourceFile>,
    manifests: &mut Vec<Manifest>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            walk(root, &path, files, manifests)?;
        } else if name == "Cargo.toml" {
            manifests.push(Manifest {
                rel_path: rel(root, &path),
                text: fs::read_to_string(&path)?,
            });
        } else if name.ends_with(".rs") {
            let text = fs::read_to_string(&path)?;
            files.push(SourceFile::new(rel(root, &path), path, text));
        }
    }
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Loading this very workspace exercises discovery, lexing, and the
    /// path bookkeeping on real input.
    #[test]
    fn loads_the_enclosing_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let ws = Workspace::discover(here).expect("workspace above crates/lint");
        assert!(ws.root.join("Cargo.toml").is_file());
        assert!(ws
            .files
            .iter()
            .any(|f| f.rel_path == "crates/lint/src/workspace.rs"));
        assert!(ws
            .manifests
            .iter()
            .any(|m| m.rel_path == "crates/lint/Cargo.toml"));
        assert!(!ws.files.iter().any(|f| f.rel_path.starts_with("target/")));
        assert!(ws.experiments_md.is_some());
        assert!(ws.design_md.is_some());
    }

    #[test]
    fn files_under_matches_whole_path_components() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let ws = Workspace::discover(here).expect("workspace above crates/lint");
        assert!(ws.files_under("crates/lint/src").count() >= 3);
        assert_eq!(ws.files_under("crates/li").count(), 0);
    }
}
