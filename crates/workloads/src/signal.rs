//! FFT: radix-2 decimation-in-time butterfly network over complex inputs.
//!
//! The generated DFG is the classic `log2(n)`-stage butterfly lattice:
//! each stage pairs values `(a, b)` with a twiddle factor `w` and computes
//! `a' = a + w·b`, `b' = a - w·b` in expanded real arithmetic (4 multiplies
//! and 6 add/subs per butterfly). Twiddle factors enter as inputs — the DFG
//! formalism has no constant vertices, and treating them as data matches
//! how a streaming FFT engine consumes a twiddle ROM.

use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};

/// Builds the radix-2 DIT FFT network for `n` complex points (`n` a power
/// of two ≥ 2). Inputs: `re{i}`/`im{i}` in natural order and the twiddles
/// `wr{s}_{k}`/`wi{s}_{k}` per stage `s` and butterfly position `k`;
/// outputs `Xre{i}`/`Xim{i}`.
///
/// # Panics
///
/// Panics if `n` is not a power of two or below 2.
pub fn build_fft(n: usize) -> Dfg {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "FFT size must be a power of two >= 2"
    );
    let mut b = DfgBuilder::new(format!("fft_n{n}"));

    // Bit-reversed load order, as the in-place DIT network requires.
    let stages = n.trailing_zeros() as usize;
    let mut re: Vec<NodeId> = Vec::with_capacity(n);
    let mut im: Vec<NodeId> = Vec::with_capacity(n);
    for i in 0..n {
        let src = bit_reverse(i, stages);
        re.push(b.input(format!("re{src}")));
        im.push(b.input(format!("im{src}")));
    }

    for s in 0..stages {
        let half = 1usize << s;
        let span = half << 1;
        let mut k = 0usize;
        for base in (0..n).step_by(span) {
            for j in 0..half {
                let (ia, ib) = (base + j, base + j + half);
                let wr = b.input(format!("wr{s}_{k}"));
                let wi = b.input(format!("wi{s}_{k}"));
                // t = w * b (complex)
                let t_re = {
                    let p1 = b.op(Op::Mul, &[wr, re[ib]]);
                    let p2 = b.op(Op::Mul, &[wi, im[ib]]);
                    b.op(Op::Sub, &[p1, p2])
                };
                let t_im = {
                    let p1 = b.op(Op::Mul, &[wr, im[ib]]);
                    let p2 = b.op(Op::Mul, &[wi, re[ib]]);
                    b.op(Op::Add, &[p1, p2])
                };
                let new_a_re = b.op(Op::Add, &[re[ia], t_re]);
                let new_a_im = b.op(Op::Add, &[im[ia], t_im]);
                let new_b_re = b.op(Op::Sub, &[re[ia], t_re]);
                let new_b_im = b.op(Op::Sub, &[im[ia], t_im]);
                re[ia] = new_a_re;
                im[ia] = new_a_im;
                re[ib] = new_b_re;
                im[ib] = new_b_im;
                k += 1;
            }
        }
    }

    for i in 0..n {
        b.output(format!("Xre{i}"), re[i]);
        b.output(format!("Xim{i}"), im[i]);
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("fft network is structurally valid")
}

/// The twiddle factor the network expects at stage `s`, butterfly `k`
/// (for size-`n` transforms): `exp(-2πi · j / span)` where `j = k mod half`
/// and `span = 2^(s+1)`.
pub fn twiddle(s: usize, k: usize) -> (f64, f64) {
    let half = 1usize << s;
    let span = half << 1;
    let j = k % half;
    let angle = -2.0 * std::f64::consts::PI * j as f64 / span as f64;
    (angle.cos(), angle.sin())
}

/// Reference DFT (O(n²) direct evaluation — unambiguous ground truth).
pub fn dft_reference(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = re.len();
    let mut out_re = vec![0.0; n];
    let mut out_im = vec![0.0; n];
    for (k, (or, oi)) in out_re.iter_mut().zip(out_im.iter_mut()).enumerate() {
        for j in 0..n {
            let angle = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            let (c, s) = (angle.cos(), angle.sin());
            *or += re[j] * c - im[j] * s;
            *oi += re[j] * s + im[j] * c;
        }
    }
    (out_re, out_im)
}

fn bit_reverse(mut x: usize, bits: usize) -> usize {
    let mut r = 0;
    for _ in 0..bits {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn run_fft(n: usize, re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let g = build_fft(n);
        let mut inputs = HashMap::new();
        for i in 0..n {
            inputs.insert(format!("re{i}"), re[i]);
            inputs.insert(format!("im{i}"), im[i]);
        }
        let stages = n.trailing_zeros() as usize;
        for s in 0..stages {
            for k in 0..n / 2 {
                let (wr, wi) = twiddle(s, k);
                inputs.insert(format!("wr{s}_{k}"), wr);
                inputs.insert(format!("wi{s}_{k}"), wi);
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        let xr = (0..n).map(|i| out[&format!("Xre{i}")]).collect();
        let xi = (0..n).map(|i| out[&format!("Xim{i}")]).collect();
        (xr, xi)
    }

    #[test]
    fn fft_matches_direct_dft() {
        for n in [2usize, 4, 8, 16] {
            let re: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).sin() + 0.3).collect();
            let im: Vec<f64> = (0..n).map(|i| (i as f64 * 1.7).cos() - 0.1).collect();
            let (xr, xi) = run_fft(n, &re, &im);
            let (er, ei) = dft_reference(&re, &im);
            for i in 0..n {
                assert!(
                    (xr[i] - er[i]).abs() < 1e-9 && (xi[i] - ei[i]).abs() < 1e-9,
                    "n={n} bin {i}: ({}, {}) vs ({}, {})",
                    xr[i],
                    xi[i],
                    er[i],
                    ei[i]
                );
            }
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let n = 8;
        let mut re = vec![0.0; n];
        re[0] = 1.0;
        let im = vec![0.0; n];
        let (xr, xi) = run_fft(n, &re, &im);
        for i in 0..n {
            assert!((xr[i] - 1.0).abs() < 1e-12 && xi[i].abs() < 1e-12);
        }
    }

    #[test]
    fn network_shape() {
        let n = 16;
        let s = build_fft(n).stats();
        // log2(16) = 4 stages x 8 butterflies x 10 ops.
        assert_eq!(s.computes, 4 * 8 * 10);
        assert_eq!(s.outputs, 2 * n);
        // Each butterfly contributes 3 levels (mul, sub/add of products,
        // then the ± combine): depth = in + 4*3 + out = 14.
        assert_eq!(s.depth, 14);
    }

    #[test]
    fn bit_reverse_involution() {
        for i in 0..16 {
            assert_eq!(bit_reverse(bit_reverse(i, 4), 4), i);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = build_fft(12);
    }
}
