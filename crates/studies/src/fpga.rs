//! FPGA convolutional neural networks (Fig. 8): the algorithm layer.
//!
//! Published FPGA implementations of AlexNet and VGG-16 (FPGA'15 through
//! FPGA'18), reconstructed from the cited papers \[43\]–\[49\]. The study
//! isolates the *algorithm* layer: the devices span only two CMOS nodes
//! (28 nm and 20 nm), so gains beyond the device budget are algorithmic —
//! data layouts, GEMM restructuring, and the Winograd transform.

use crate::Result;
use accelwall_cmos::TechNode;
use accelwall_csr::CsrSeries;

/// Which CNN model an implementation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CnnModel {
    /// AlexNet (2012; ~1.5 GOP per image).
    AlexNet,
    /// VGG-16 (2014; ~31 GOP per image, 3x the weights).
    Vgg16,
}

impl std::fmt::Display for CnnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CnnModel::AlexNet => f.write_str("AlexNet"),
            CnnModel::Vgg16 => f.write_str("VGG-16"),
        }
    }
}

/// One published FPGA CNN implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaImpl {
    /// Venue-year label, as on the Fig. 8 axis.
    pub label: &'static str,
    /// Target model.
    pub model: CnnModel,
    /// FPGA device.
    pub device: &'static str,
    /// Device node.
    pub node: TechNode,
    /// Throughput in GOP/s.
    pub gops: f64,
    /// Board power in watts.
    pub power_w: f64,
    /// LUT utilization in percent.
    pub lut_pct: f64,
    /// DSP utilization in percent.
    pub dsp_pct: f64,
    /// BRAM utilization in percent.
    pub bram_pct: f64,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// Total DSP slices on the device.
    pub device_dsps: f64,
}

impl FpgaImpl {
    /// Energy efficiency in GOP/J.
    pub fn gops_per_joule(&self) -> f64 {
        self.gops / self.power_w
    }

    /// Physical compute budget actually engaged: DSP slices in use times
    /// clock (MAC-slots per second, in DSP-GHz). This is the denominator
    /// of the study's CSR — gains beyond it are algorithmic.
    pub fn physical_budget(&self) -> f64 {
        self.device_dsps * self.dsp_pct / 100.0 * self.freq_mhz / 1e3
    }
}

/// The AlexNet implementations (11 rows, Fig. 8 left column).
pub fn alexnet_impls() -> Vec<FpgaImpl> {
    // (label, device, node, GOPS, W, LUT%, DSP%, BRAM%, MHz, device DSPs)
    #[allow(clippy::type_complexity)] // literal datasheet rows
    let rows: [(&str, &str, TechNode, f64, f64, f64, f64, f64, f64, f64); 11] = [
        (
            "FPGA2015",
            "Virtex-7 VX485T",
            TechNode::N28,
            61.6,
            18.6,
            61.3,
            80.0,
            50.0,
            100.0,
            2800.0,
        ),
        (
            "FPGA2016",
            "Stratix-V GSD8",
            TechNode::N28,
            72.4,
            25.8,
            46.0,
            37.0,
            52.0,
            120.0,
            1963.0,
        ),
        (
            "FPGA2016*",
            "Stratix-V GXA7",
            TechNode::N28,
            114.5,
            19.1,
            58.0,
            100.0,
            61.0,
            150.0,
            256.0,
        ),
        (
            "ICCAD2016",
            "Stratix-V GXA7",
            TechNode::N28,
            134.1,
            20.1,
            81.0,
            100.0,
            70.0,
            150.0,
            256.0,
        ),
        (
            "FPL2016",
            "Zynq XC7Z045",
            TechNode::N28,
            161.9,
            9.4,
            83.0,
            88.0,
            87.0,
            150.0,
            900.0,
        ),
        (
            "ISCA2017",
            "Arria-10 GX1150",
            TechNode::N20,
            360.4,
            35.0,
            52.0,
            49.0,
            61.0,
            240.0,
            1518.0,
        ),
        (
            "ISCA2017*",
            "Arria-10 GX1150",
            TechNode::N20,
            460.5,
            37.0,
            55.0,
            60.0,
            66.0,
            250.0,
            1518.0,
        ),
        (
            "ISCA2017**",
            "Arria-10 GX1150",
            TechNode::N20,
            619.0,
            41.0,
            58.0,
            70.0,
            70.0,
            270.0,
            1518.0,
        ),
        (
            "FPGA2017",
            "KU060",
            TechNode::N20,
            365.0,
            25.0,
            60.0,
            55.0,
            58.0,
            200.0,
            2760.0,
        ),
        (
            "FPGA2017*",
            "Arria-10 GX1150",
            TechNode::N20,
            1382.0,
            44.3,
            58.0,
            97.0,
            61.0,
            303.0,
            1518.0,
        ),
        (
            "FPGA2017**",
            "Arria-10 GX1150",
            TechNode::N20,
            1020.0,
            40.0,
            62.0,
            85.0,
            72.0,
            280.0,
            1518.0,
        ),
    ];
    build(CnnModel::AlexNet, &rows)
}

/// The VGG-16 implementations (9 rows, Fig. 8 right column).
pub fn vgg16_impls() -> Vec<FpgaImpl> {
    #[allow(clippy::type_complexity)] // literal datasheet rows
    let rows: [(&str, &str, TechNode, f64, f64, f64, f64, f64, f64, f64); 9] = [
        (
            "FPGA2016",
            "Zynq XC7Z045",
            TechNode::N28,
            137.0,
            9.6,
            84.0,
            89.0,
            87.0,
            150.0,
            900.0,
        ),
        (
            "FPGA2016*",
            "Stratix-V GSD8",
            TechNode::N28,
            117.8,
            25.8,
            52.0,
            40.0,
            56.0,
            120.0,
            1963.0,
        ),
        (
            "FPGA2016**",
            "Virtex-7 VX690T",
            TechNode::N28,
            202.4,
            26.0,
            55.0,
            78.0,
            67.0,
            150.0,
            3600.0,
        ),
        (
            "ICCAD2016",
            "Arria-10 GX1150",
            TechNode::N20,
            645.3,
            50.0,
            38.0,
            100.0,
            52.0,
            200.0,
            1518.0,
        ),
        (
            "FCCM2017",
            "Virtex-7 VX690T",
            TechNode::N28,
            354.0,
            26.0,
            56.0,
            90.0,
            70.0,
            200.0,
            3600.0,
        ),
        (
            "FPGA2017",
            "Arria-10 GX1150",
            TechNode::N20,
            866.0,
            41.7,
            60.0,
            65.0,
            62.0,
            240.0,
            1518.0,
        ),
        (
            "FPGA2017*",
            "KU060",
            TechNode::N20,
            310.0,
            26.0,
            58.0,
            53.0,
            60.0,
            200.0,
            2760.0,
        ),
        (
            "FPGA2018",
            "Virtex-7 VX690T",
            TechNode::N28,
            570.0,
            35.0,
            70.0,
            101.0,
            83.0,
            200.0,
            3600.0,
        ),
        (
            "FPGA2018*",
            "Arria-10 GX1150",
            TechNode::N20,
            1171.0,
            50.0,
            65.0,
            100.0,
            76.0,
            242.0,
            1518.0,
        ),
    ];
    build(CnnModel::Vgg16, &rows)
}

#[allow(clippy::type_complexity)]
fn build(
    model: CnnModel,
    rows: &[(
        &'static str,
        &'static str,
        TechNode,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
        f64,
    )],
) -> Vec<FpgaImpl> {
    rows.iter()
        .map(
            |&(label, device, node, gops, w, lut, dsp, bram, mhz, dsps)| FpgaImpl {
                label,
                model,
                device,
                node,
                gops,
                power_w: w,
                lut_pct: lut,
                dsp_pct: dsp.min(100.0),
                bram_pct: bram,
                freq_mhz: mhz,
                device_dsps: dsps,
            },
        )
        .collect()
}

/// All implementations for a model.
pub fn impls(model: CnnModel) -> Vec<FpgaImpl> {
    match model {
        CnnModel::AlexNet => alexnet_impls(),
        CnnModel::Vgg16 => vgg16_impls(),
    }
}

/// The Fig. 8a series: throughput gains and CSR, normalized to the
/// weakest implementation of the model.
///
/// ```
/// use accelwall_studies::fpga::{performance_series, CnnModel};
/// let alexnet = performance_series(CnnModel::AlexNet)?;
/// // An emerging domain: CSR still climbs with algorithmic work.
/// assert!(alexnet.peak_csr() > 2.5);
/// # Ok::<(), accelwall_studies::StudyError>(())
/// ```
///
/// # Errors
///
/// Propagates CSR validation errors (impossible on the embedded dataset).
pub fn performance_series(model: CnnModel) -> Result<CsrSeries> {
    let mut rows = impls(model);
    rows.sort_by(|a, b| a.gops.total_cmp(&b.gops));
    Ok(CsrSeries::new(scan_family(
        rows,
        |r| r.gops,
        FpgaImpl::physical_budget,
    ))?)
}

/// Scans one model's (pre-sorted) implementations across the
/// `accelwall-par` pool: each row's reported gain and physical potential
/// against the weakest (first) implementation. Rows land at their index,
/// so the series order matches the serial loop.
fn scan_family(
    rows: Vec<FpgaImpl>,
    reported: fn(&FpgaImpl) -> f64,
    physical: fn(&FpgaImpl) -> f64,
) -> Vec<(&'static str, f64, f64)> {
    accelwall_par::par_map(rows.len(), move |i| {
        let (r, base) = (&rows[i], &rows[0]);
        (
            r.label,
            reported(r) / reported(base),
            physical(r) / physical(base),
        )
    })
}

/// The Fig. 8c series: energy-efficiency gains and CSR. The physical
/// denominator scales the engaged budget by the node's energy advantage.
///
/// # Errors
///
/// Propagates CSR validation errors (impossible on the embedded dataset).
pub fn efficiency_series(model: CnnModel) -> Result<CsrSeries> {
    let mut rows = impls(model);
    rows.sort_by(|a, b| a.gops_per_joule().total_cmp(&b.gops_per_joule()));
    Ok(CsrSeries::new(scan_family(
        rows,
        FpgaImpl::gops_per_joule,
        |r| r.physical_budget() / (r.power_w * r.node.dynamic_energy_rel()),
    ))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_sizes_match_fig8() {
        assert_eq!(alexnet_impls().len(), 11);
        assert_eq!(vgg16_impls().len(), 9);
    }

    #[test]
    fn alexnet_performance_improved_about_24x() {
        // Paper: "AlexNet performance ... improved by about 24x."
        let s = performance_series(CnnModel::AlexNet).unwrap();
        assert!(
            (18.0..30.0).contains(&s.peak_reported()),
            "AlexNet perf gain {:.1}",
            s.peak_reported()
        );
    }

    #[test]
    fn vgg_performance_improved_about_9x() {
        // Paper: "VGG-16 improved by about 9x."
        let s = performance_series(CnnModel::Vgg16).unwrap();
        assert!(
            (7.0..13.0).contains(&s.peak_reported()),
            "VGG perf gain {:.1}",
            s.peak_reported()
        );
    }

    #[test]
    fn efficiency_gains_14x_and_7x() {
        // Paper: AlexNet EE ~14x, VGG-16 EE ~7x.
        let alex = efficiency_series(CnnModel::AlexNet).unwrap();
        assert!(
            (8.0..18.0).contains(&alex.peak_reported()),
            "AlexNet EE {:.1}",
            alex.peak_reported()
        );
        let vgg = efficiency_series(CnnModel::Vgg16).unwrap();
        assert!(
            (4.0..10.0).contains(&vgg.peak_reported()),
            "VGG EE {:.1}",
            vgg.peak_reported()
        );
    }

    #[test]
    fn csr_improves_in_the_emerging_domain() {
        // Paper: "CSR improved by up to 6x in both models" — the
        // counter-phenomenon to the mature domains.
        for model in [CnnModel::AlexNet, CnnModel::Vgg16] {
            let s = performance_series(model).unwrap();
            assert!(
                s.peak_csr() > 2.5,
                "{model}: peak CSR {:.1} should show algorithmic gains",
                s.peak_csr()
            );
        }
    }

    #[test]
    fn best_chip_csr_trails_peak_csr() {
        // Paper: "for the best performing FPGAs in each model CSR did not
        // improve while absolute performance increased" — the top chip
        // wins on budget, not algorithm.
        for model in [CnnModel::AlexNet, CnnModel::Vgg16] {
            let s = performance_series(model).unwrap();
            assert!(
                s.csr_of_best_chip() < s.peak_csr(),
                "{model}: best-chip CSR {:.1} vs peak {:.1}",
                s.csr_of_best_chip(),
                s.peak_csr()
            );
        }
    }

    #[test]
    fn winograd_row_has_the_algorithmic_edge() {
        // FPGA2017* is the Winograd-transform implementation [47]: its
        // GOPS per engaged DSP-GHz should beat the plain GEMM designs.
        let alex = alexnet_impls();
        let winograd = alex.iter().find(|r| r.label == "FPGA2017*").unwrap();
        let plain = alex.iter().find(|r| r.label == "FPGA2016").unwrap();
        let density = |r: &FpgaImpl| r.gops / r.physical_budget();
        assert!(density(winograd) > 3.0 * density(plain));
    }

    #[test]
    fn vgg_stresses_resources_harder() {
        // Paper: VGG's 3x model size and 20x ops/image stress FPGA
        // resources; its implementations run at >= the BRAM pressure of
        // AlexNet's on average.
        let avg =
            |v: &[FpgaImpl], f: fn(&FpgaImpl) -> f64| v.iter().map(f).sum::<f64>() / v.len() as f64;
        let alex = alexnet_impls();
        let vgg = vgg16_impls();
        assert!(avg(&vgg, |r| r.bram_pct) >= avg(&alex, |r| r.bram_pct) - 5.0);
    }

    #[test]
    fn only_28_and_20_nm_devices() {
        for r in alexnet_impls().iter().chain(vgg16_impls().iter()) {
            assert!(
                r.node == TechNode::N28 || r.node == TechNode::N20,
                "{}: {}",
                r.label,
                r.node
            );
        }
    }
}
