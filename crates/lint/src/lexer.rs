//! A small hand-rolled Rust lexer.
//!
//! The lints in this crate need just enough token structure to tell code
//! from strings and comments, to find method-call and macro-invocation
//! patterns, and to anchor every finding to a line and column. A full
//! parser would be overkill (and would drag in a dependency, which the
//! `dep-free` lint itself forbids), so this module tokenizes the
//! mechanical subset of Rust the rules rely on:
//!
//! * identifiers (including raw `r#ident`) and lifetimes,
//! * string literals: plain, raw (`r"…"`, `r#"…"#`), byte, and chars,
//! * numeric literals, with a float/integer distinction for the
//!   `float-hygiene` rule,
//! * line and nested block comments, kept as tokens so the
//!   `// lint:allow(...)` escape hatch can be read back out,
//! * punctuation, with the handful of two-character operators the rules
//!   match on (`==`, `!=`, `::`, `->`) pre-combined.
//!
//! Positions are 1-based lines and columns, counted in characters, so a
//! finding renders as the `path:line:col` form editors jump to.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `r#type`).
    Ident,
    /// A lifetime such as `'static`.
    Lifetime,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A floating-point literal (`1.5`, `2e9`, `0.877_f64`).
    Float,
    /// A string literal of any flavor (plain, raw, byte), quotes included
    /// in the span but not in `text`.
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A `//` comment, text excluding the slashes' newline.
    LineComment,
    /// A `/* ... */` comment (nesting handled), delimiters included.
    BlockComment,
    /// Punctuation; multi-character only for `==`, `!=`, `::`, `->`.
    Punct,
}

/// One lexed token with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// The token text. For [`TokenKind::Str`] this is the *content*
    /// (delimiters stripped, escapes left as written); for everything
    /// else it is the raw source slice.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub col: usize,
}

impl Token {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// Whether this token is a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes Rust source, keeping comments.
///
/// The lexer is total: unrecognized bytes become one-character
/// [`TokenKind::Punct`] tokens rather than errors, because a linter must
/// keep scanning whatever it is fed. Unterminated strings and comments
/// swallow the rest of the file (matching how rustc would recover) —
/// the `cargo build` gate, not the linter, owns rejecting such files.
pub fn tokenize(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    tokens: Vec<Token>,
    source: std::marker::PhantomData<&'a ()>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            source: std::marker::PhantomData,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize, col: usize) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(line, col),
                '"' => self.string(line, col),
                'r' | 'b' => {
                    if self.raw_or_byte_prefix(line, col) {
                        // handled as a literal
                    } else {
                        self.ident(line, col);
                    }
                }
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c if c == '_' || c.is_alphabetic() => self.ident(line, col),
                _ => self.punct(line, col),
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line, col);
    }

    fn block_comment(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            if c == '/' && self.peek_at(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek_at(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line, col);
    }

    /// Plain `"..."` strings; escapes are skipped, not interpreted.
    fn string(&mut self, line: usize, col: usize) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    text.push(c);
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// Handles `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'`, and raw idents
    /// (`r#ident`). Returns `false` when the `r`/`b` starts a plain
    /// identifier instead.
    fn raw_or_byte_prefix(&mut self, line: usize, col: usize) -> bool {
        let first = self.peek();
        let mut ahead = 1;
        if first == Some('b') && self.peek_at(1) == Some('r') {
            ahead = 2;
        }
        // Count the hashes after the prefix.
        let mut hashes = 0;
        while self.peek_at(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        let raw = ahead == 2 || first == Some('r');
        match self.peek_at(ahead + hashes) {
            Some('"') if raw => {
                for _ in 0..=(ahead + hashes) {
                    self.bump();
                }
                self.raw_string_body(hashes, line, col);
                true
            }
            Some('"') if first == Some('b') && ahead == 1 && hashes == 0 => {
                self.bump(); // the b
                self.string(line, col);
                true
            }
            Some('\'') if first == Some('b') && ahead == 1 && hashes == 0 => {
                self.bump(); // the b
                self.char_or_lifetime(line, col);
                true
            }
            Some(c) if raw && hashes == 1 && (c == '_' || c.is_alphabetic()) => {
                // Raw identifier r#ident: lex as one Ident token.
                self.bump();
                self.bump();
                let mut text = String::from("r#");
                while let Some(c) = self.peek() {
                    if c == '_' || c.is_alphanumeric() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Ident, text, line, col);
                true
            }
            _ => false,
        }
    }

    fn raw_string_body(&mut self, hashes: usize, line: usize, col: usize) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek() == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    self.push(TokenKind::Str, text, line, col);
                    return;
                }
                text.push('"');
                for _ in 0..matched {
                    text.push('#');
                }
            } else {
                text.push(c);
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime): a lifetime is a
    /// quote followed by an identifier *not* closed by another quote.
    fn char_or_lifetime(&mut self, line: usize, col: usize) {
        let next = self.peek_at(1);
        let next2 = self.peek_at(2);
        let is_lifetime = matches!(next, Some(c) if c == '_' || c.is_alphabetic())
            && next2 != Some('\'')
            && next != Some('\\');
        if is_lifetime {
            self.bump(); // quote
            let mut text = String::from("'");
            while let Some(c) = self.peek() {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line, col);
            return;
        }
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\'' => break,
                '\\' => {
                    text.push(c);
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Char, text, line, col);
    }

    fn number(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        let mut is_float = false;
        // Hex/octal/binary literals are always integers.
        if self.peek() == Some('0') && matches!(self.peek_at(1), Some('x' | 'o' | 'b')) {
            for _ in 0..2 {
                if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Int, text, line, col);
            return;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // A fractional part: a dot followed by a digit (not `..` or a
        // method call like `1.max(2)`).
        if self.peek() == Some('.') && matches!(self.peek_at(1), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            text.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // An exponent.
        if matches!(self.peek(), Some('e' | 'E')) {
            let sign = matches!(self.peek_at(1), Some('+' | '-'));
            let digit_at = if sign { 2 } else { 1 };
            if matches!(self.peek_at(digit_at), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                for _ in 0..digit_at {
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // A type suffix (`1.5f64`, `3usize`) — `f` suffixes mean float.
        if matches!(self.peek(), Some(c) if c == '_' || c.is_alphabetic()) {
            let mut suffix = String::new();
            while let Some(c) = self.peek() {
                if c == '_' || c.is_alphanumeric() {
                    suffix.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            if suffix.starts_with('f') {
                is_float = true;
            }
            text.push_str(&suffix);
        }
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, text, line, col);
    }

    fn ident(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    /// The two-character operators the lints match on are combined;
    /// everything else is a single character.
    fn punct(&mut self, line: usize, col: usize) {
        let Some(c) = self.bump() else {
            return;
        };
        let pair = self.peek().map(|n| (c, n));
        let combined = matches!(pair, Some(('=' | '!', '=') | (':', ':') | ('-', '>')));
        // `=> `, `<=`, `>=` must NOT combine into `==`/`!=`; the match
        // above only pairs the exact operators the rules consume.
        let mut text = String::from(c);
        if combined {
            if let Some(n) = self.bump() {
                text.push(n);
            }
        }
        self.push(TokenKind::Punct, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let toks = kinds("let x = 4.2 + foo::bar(1);");
        assert!(toks.contains(&(TokenKind::Ident, "let".into())));
        assert!(toks.contains(&(TokenKind::Float, "4.2".into())));
        assert!(toks.contains(&(TokenKind::Punct, "::".into())));
        assert!(toks.contains(&(TokenKind::Int, "1".into())));
    }

    #[test]
    fn float_vs_int_classification() {
        assert_eq!(kinds("1")[0].0, TokenKind::Int);
        assert_eq!(kinds("1.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("2e9")[0].0, TokenKind::Float);
        assert_eq!(kinds("1E-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("3f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("0xFF")[0].0, TokenKind::Int);
        assert_eq!(kinds("1_000u64")[0].0, TokenKind::Int);
        // A method call on an integer is not a float.
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Int, "1".into()));
        assert_eq!(toks[2], (TokenKind::Ident, "max".into()));
    }

    #[test]
    fn operators_combine_exactly_where_needed() {
        let toks = kinds("a == b != c <= d => e -> f");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "<", "=", "=", ">", "->"]);
    }

    #[test]
    fn strings_hide_their_contents_from_the_token_stream() {
        // The unwrap inside the string must not produce an Ident token.
        let toks = tokenize(r#"let s = "x.unwrap()"; s.len()"#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = tokenize("let s = r#\"quote \" inside\"#; x");
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(s.text, "quote \" inside");
        assert!(toks.iter().any(|t| t.is_ident("x")));
        // br strings and plain r strings too.
        let toks = tokenize(r#"br"bytes" r"raw" b"byte""#);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 3);
    }

    #[test]
    fn raw_idents_lex_as_idents() {
        let toks = tokenize("let r#type = 1;");
        assert!(toks.iter().any(|t| t.is_ident("r#type")));
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let toks = tokenize("x // lint:allow(rule): why\n/* block\n * bit */ y");
        let line = toks.iter().find(|t| t.kind == TokenKind::LineComment);
        assert!(line.unwrap().text.contains("lint:allow(rule)"));
        let block = toks.iter().find(|t| t.kind == TokenKind::BlockComment);
        assert!(block.unwrap().text.contains("block"));
        assert!(toks.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = tokenize("/* outer /* inner */ still */ tail");
        assert!(toks.iter().any(|t| t.is_ident("tail")));
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::BlockComment)
                .count(),
            1
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "x"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "\\n"));
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let toks = tokenize("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn escaped_quote_does_not_end_a_string() {
        let toks = tokenize(r#""a\"b" end"#);
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert_eq!(toks[0].text, r#"a\"b"#);
        assert!(toks[1].is_ident("end"));
    }
}
