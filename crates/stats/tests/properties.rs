//! Randomized-property tests for the statistics substrate, driven by the
//! crate's own deterministic [`Rng`] (the offline environments this repo
//! builds in have no registry access, so no proptest).

use accelwall_stats::pareto::dominates;
use accelwall_stats::{
    geomean, mean, pareto_frontier, Linear, LogLinear, Polynomial, PowerLaw, Rng,
};

const CASES: u64 = 200;

fn finite_vec(rng: &mut Rng, len: std::ops::Range<usize>) -> Vec<f64> {
    let n = rng.range(len.start as u64, len.end as u64) as usize;
    (0..n).map(|_| rng.uniform(-1e6, 1e6)).collect()
}

fn positive_vec(rng: &mut Rng, len: std::ops::Range<usize>) -> Vec<f64> {
    let n = rng.range(len.start as u64, len.end as u64) as usize;
    (0..n).map(|_| rng.log_uniform(1e-3, 1e6)).collect()
}

#[test]
fn mean_bounded_by_min_max() {
    let mut rng = Rng::seed(0x57A7_0001);
    for _ in 0..CASES {
        let v = finite_vec(&mut rng, 1..64);
        let m = mean(&v).unwrap();
        let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }
}

#[test]
fn geomean_bounded_by_arithmetic_mean() {
    // AM-GM inequality.
    let mut rng = Rng::seed(0x57A7_0002);
    for _ in 0..CASES {
        let v = positive_vec(&mut rng, 1..64);
        let g = geomean(&v).unwrap();
        let a = mean(&v).unwrap();
        assert!(g <= a * (1.0 + 1e-9));
    }
}

#[test]
fn geomean_of_reciprocals_is_reciprocal() {
    let mut rng = Rng::seed(0x57A7_0003);
    for _ in 0..CASES {
        let v = positive_vec(&mut rng, 1..32);
        let recip: Vec<f64> = v.iter().map(|x| 1.0 / x).collect();
        let g = geomean(&v).unwrap();
        let gr = geomean(&recip).unwrap();
        assert!((g * gr - 1.0).abs() < 1e-6);
    }
}

#[test]
fn linear_fit_recovers_exact_lines() {
    let mut rng = Rng::seed(0x57A7_0004);
    for _ in 0..CASES {
        let slope = rng.uniform(-100.0, 100.0);
        let intercept = rng.uniform(-100.0, 100.0);
        let n = rng.range(3, 32) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(-1e3, 1e3)).collect();
        // Require at least two distinct x values.
        if !xs.iter().any(|&x| (x - xs[0]).abs() > 1e-3) {
            continue;
        }
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let f = Linear::fit(&xs, &ys).unwrap();
        assert!((f.slope - slope).abs() < 1e-4 * (1.0 + slope.abs()));
        assert!((f.intercept - intercept).abs() < 1e-3 * (1.0 + intercept.abs()));
    }
}

#[test]
fn power_law_fit_recovers_exact_laws() {
    let mut rng = Rng::seed(0x57A7_0005);
    for _ in 0..CASES {
        let coef = rng.log_uniform(1e-3, 1e3);
        let expo = rng.uniform(-3.0, 3.0);
        let n = rng.range(3, 32) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.log_uniform(1e-2, 1e3)).collect();
        if !xs.iter().any(|&x| (x / xs[0]).ln().abs() > 1e-2) {
            continue;
        }
        let law = PowerLaw::new(coef, expo);
        let ys: Vec<f64> = xs.iter().map(|&x| law.eval(x)).collect();
        let fit = PowerLaw::fit(&xs, &ys).unwrap();
        assert!((fit.coefficient / coef - 1.0).abs() < 1e-5);
        assert!((fit.exponent - expo).abs() < 1e-5);
    }
}

#[test]
fn log_linear_fit_recovers_exact_models() {
    let mut rng = Rng::seed(0x57A7_0006);
    for _ in 0..CASES {
        let slope = rng.uniform(-100.0, 100.0);
        let intercept = rng.uniform(-100.0, 100.0);
        let n = rng.range(3, 32) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.log_uniform(1e-2, 1e3)).collect();
        if !xs.iter().any(|&x| (x / xs[0]).ln().abs() > 1e-2) {
            continue;
        }
        let ys: Vec<f64> = xs.iter().map(|x| slope * x.ln() + intercept).collect();
        let f = LogLinear::fit(&xs, &ys).unwrap();
        assert!((f.slope - slope).abs() < 1e-4 * (1.0 + slope.abs()));
    }
}

#[test]
fn polynomial_interpolates_through_distinct_points() {
    let mut rng = Rng::seed(0x57A7_0007);
    for _ in 0..CASES {
        let n = rng.range(4, 8) as usize;
        let mut xs: Vec<f64> = (0..n).map(|_| rng.uniform(-50.0, 50.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("draws are finite"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 0.5);
        if xs.len() < 4 {
            continue;
        }
        let ys: Vec<f64> = xs.iter().map(|x| x * x * x - 2.0 * x + 1.0).collect();
        let p = Polynomial::fit(&xs, &ys, 3).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            assert!((p.eval(x) - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }
}

#[test]
fn pareto_frontier_is_dominance_free_subset() {
    let mut rng = Rng::seed(0x57A7_0008);
    for _ in 0..CASES {
        let xs = positive_vec(&mut rng, 1..64);
        let n = xs.len();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x * 7919.0).sin().abs() * 100.0 + 1.0)
            .collect();
        let front = pareto_frontier(&xs, &ys).unwrap();
        assert!(!front.is_empty());
        assert!(front.len() <= n);
        // Frontier points come from the input.
        for p in &front {
            assert_eq!(xs[p.index], p.x);
            assert_eq!(ys[p.index], p.y);
        }
        // No input point strictly dominates any frontier point.
        for p in &front {
            for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
                if i != p.index {
                    assert!(
                        !dominates((x, y), (p.x, p.y)),
                        "frontier point {p:?} dominated by input ({x}, {y})"
                    );
                }
            }
        }
        // Staircase shape.
        for w in front.windows(2) {
            assert!(w[0].x < w[1].x);
            assert!(w[0].y < w[1].y);
        }
    }
}

#[test]
fn pareto_frontier_invariant_under_shuffle() {
    let mut rng = Rng::seed(0x57A7_0009);
    for _ in 0..CASES {
        let xs = positive_vec(&mut rng, 2..32);
        let ys: Vec<f64> = xs.iter().map(|x| (x * 13.0).cos().abs() + 0.1).collect();
        let f1 = pareto_frontier(&xs, &ys).unwrap();
        let mut rev_x: Vec<f64> = xs.clone();
        let mut rev_y: Vec<f64> = ys.clone();
        rev_x.reverse();
        rev_y.reverse();
        let f2 = pareto_frontier(&rev_x, &rev_y).unwrap();
        let a: Vec<(f64, f64)> = f1.iter().map(|p| (p.x, p.y)).collect();
        let b: Vec<(f64, f64)> = f2.iter().map(|p| (p.x, p.y)).collect();
        assert_eq!(a, b);
    }
}
