//! `accelwall-lint` — a dependency-free static analyzer for the
//! workspace's own invariants.
//!
//! The reproduction's credibility rests on properties the paper's models
//! silently assume — compute-once artifact resolution, an acyclic
//! experiment dependency graph, NaN-free log-log regressions — plus repo
//! policies (zero external dependencies, no panic paths outside tests)
//! that earlier PRs established only by convention. This crate turns
//! those conventions into a machine-checked gate, mirroring the design
//! of the experiment pipeline it polices:
//!
//! * [`lexer`] — a hand-rolled, line/column-tracking Rust tokenizer that
//!   understands strings, raw strings, comments, and (via [`source`])
//!   `#[cfg(test)]` / `mod tests` scopes;
//! * [`parser`] + [`ast`] — a recursive-descent parser over the code
//!   tokens producing a lightweight item tree (fns, impls, consts,
//!   use-paths) plus call/method-chain extraction, so semantic rules
//!   reason about *which* function and *which* receiver, not just which
//!   token;
//! * [`symbols`] — a per-crate symbol index (struct-field and
//!   const/static types, per-file `use` maps) distilled from the trees;
//! * [`workspace`] — loads every `.rs` file, `Cargo.toml`, and
//!   `EXPERIMENTS.md` under the workspace root;
//! * [`Lint`] + [`LintRegistry`] — a pluggable rule trait and the
//!   standard roster, exactly like `Experiment` + `Registry::paper()`;
//! * [`rules`] — the eleven shipped rules (see
//!   [`LintRegistry::standard`]), from token-level policy checks to the
//!   parser-backed `atomic-ordering`, `lock-order`, `determinism`, and
//!   `bounded-channel` concurrency rules.
//!
//! Findings can be silenced, one site at a time, with a justified
//! escape hatch: `// lint:allow(<rule>): <why this site is safe>`.
//! An allow without a justification, naming an unknown rule, or
//! suppressing nothing is itself a finding, so the escape hatches stay
//! as reviewable as the violations they cover.
//!
//! The same engine backs three gates: the `accelwall lint [--json]` CLI
//! subcommand, the `tests/lint.rs` integration test asserting the tree
//! is clean, and the CI `lint` job.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod source;
pub mod symbols;
pub mod workspace;

use accelerator_wall::json::Value;
use std::fmt;

pub use source::SourceFile;
pub use workspace::Workspace;

/// One rule violation, anchored to a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (its [`Lint::name`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line; 0 when the finding concerns the file (or roster) as
    /// a whole.
    pub line: usize,
    /// 1-based column; 0 when unanchored.
    pub col: usize,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}:{}: ", self.path, self.line, self.col)?;
        } else {
            write!(f, "{}: ", self.path)?;
        }
        write!(f, "[{}] {}", self.rule, self.message)
    }
}

/// A pluggable invariant check.
///
/// Implementations look at the whole [`Workspace`] and return raw
/// findings; `lint:allow` suppression and allow-comment auditing are
/// applied centrally by [`LintRegistry::run`], so individual rules stay
/// oblivious to the escape-hatch mechanics.
pub trait Lint {
    /// The kebab-case rule name used in output and `lint:allow(...)`.
    fn name(&self) -> &'static str;

    /// One line describing the invariant the rule enforces.
    fn description(&self) -> &'static str;

    /// Scans the workspace and reports every violation.
    fn check(&self, ws: &Workspace) -> Vec<Finding>;
}

/// The rule a lint-allow audit finding is reported under.
pub const ALLOW_AUDIT_RULE: &str = "lint-allow";

/// The allow-audit rule's description, for the roster listing.
pub const ALLOW_AUDIT_DESCRIPTION: &str =
    "every lint:allow names a known rule, carries a justification, and suppresses something";

/// An ordered collection of lints — the analyzer's `Registry::paper()`.
pub struct LintRegistry {
    lints: Vec<Box<dyn Lint>>,
    /// Every rule name ever registered here, surviving [`select`]
    /// filtering — so allow-comment auditing still recognizes allows
    /// for rules that exist but were not asked to run.
    ///
    /// [`select`]: LintRegistry::select
    recognized: Vec<&'static str>,
}

impl fmt::Debug for LintRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LintRegistry")
            .field(
                "rules",
                &self.lints.iter().map(|l| l.name()).collect::<Vec<_>>(),
            )
            .field("recognized", &self.recognized)
            .finish()
    }
}

impl Default for LintRegistry {
    fn default() -> LintRegistry {
        LintRegistry::standard()
    }
}

impl LintRegistry {
    /// An empty registry, for composing a custom rule set.
    pub fn new() -> LintRegistry {
        LintRegistry {
            lints: Vec::new(),
            recognized: Vec::new(),
        }
    }

    /// Every shipped rule, in reporting order.
    pub fn standard() -> LintRegistry {
        let mut r = LintRegistry::new();
        r.register(Box::new(rules::panic_paths::NoPanicPaths));
        r.register(Box::new(rules::dep_free::DepFree));
        r.register(Box::new(rules::registry_sync::RegistrySync));
        r.register(Box::new(rules::float_hygiene::FloatHygiene));
        r.register(Box::new(rules::no_exit::NoExitInLib));
        r.register(Box::new(rules::doc_sync::DocSync));
        r.register(Box::new(rules::fault_sites::FaultSites));
        r.register(Box::new(rules::atomic_ordering::AtomicOrdering));
        r.register(Box::new(rules::lock_order::LockOrder));
        r.register(Box::new(rules::determinism::Determinism));
        r.register(Box::new(rules::bounded_channel::BoundedChannel));
        r
    }

    /// Adds a rule to the roster.
    pub fn register(&mut self, lint: Box<dyn Lint>) {
        self.recognized.push(lint.name());
        self.lints.push(lint);
    }

    /// Restricts the roster to the named rules (the CLI's `--rule`),
    /// preserving reporting order and the full-roster knowledge used by
    /// allow auditing. Rejects unknown names with the known roster.
    pub fn select(mut self, rules: &[String]) -> Result<LintRegistry, String> {
        for rule in rules {
            if !self.knows(rule) {
                return Err(format!(
                    "unknown rule {:?}; known rules: {}",
                    rule,
                    self.recognized.join(" ")
                ));
            }
        }
        self.lints.retain(|l| rules.iter().any(|r| r == l.name()));
        Ok(self)
    }

    /// Iterates the registered rules.
    pub fn lints(&self) -> impl Iterator<Item = &dyn Lint> {
        self.lints.iter().map(Box::as_ref)
    }

    /// Whether `rule` names a recognized lint (or the allow-audit
    /// rule). Rules filtered out by [`select`](LintRegistry::select)
    /// stay recognized.
    pub fn knows(&self, rule: &str) -> bool {
        rule == ALLOW_AUDIT_RULE || self.recognized.contains(&rule)
    }

    /// Runs every rule over the workspace, applies justified
    /// `lint:allow` suppressions, and audits the allow comments
    /// themselves (unknown rule, missing justification, suppressing
    /// nothing — each is a finding under [`ALLOW_AUDIT_RULE`]).
    pub fn run(&self, ws: &Workspace) -> Report {
        let mut findings = Vec::new();
        let mut used = Vec::new(); // (path, allow line, rule) triples
        for lint in self.lints() {
            for finding in lint.check(ws) {
                let allow = ws
                    .files
                    .iter()
                    .find(|f| f.rel_path == finding.path)
                    .and_then(|f| f.allow_for(finding.rule, finding.line));
                match allow {
                    Some(a) if !a.justification.is_empty() => {
                        used.push((finding.path.clone(), a.line, finding.rule));
                    }
                    _ => findings.push(finding),
                }
            }
        }
        // Audit the escape hatches.
        for f in &ws.files {
            for a in &f.allows {
                if !self.knows(&a.rule) {
                    findings.push(Finding {
                        rule: ALLOW_AUDIT_RULE,
                        path: f.rel_path.clone(),
                        line: a.line,
                        col: 0,
                        message: format!(
                            "lint:allow names unknown rule {:?}; known rules: {}",
                            a.rule,
                            self.recognized.join(" ")
                        ),
                    });
                } else if a.justification.is_empty() {
                    findings.push(Finding {
                        rule: ALLOW_AUDIT_RULE,
                        path: f.rel_path.clone(),
                        line: a.line,
                        col: 0,
                        message: format!(
                            "lint:allow({}) must carry a justification: \
                             `// lint:allow({}): <why this site is safe>`",
                            a.rule, a.rule
                        ),
                    });
                } else if self.lints.iter().any(|l| l.name() == a.rule)
                    && !used
                        .iter()
                        .any(|(p, l, r)| *p == f.rel_path && *l == a.line && *r == a.rule)
                {
                    // Only rules that actually ran can prove an allow
                    // unused — a `select()`-filtered run stays quiet
                    // about allows for the rules it skipped.
                    findings.push(Finding {
                        rule: ALLOW_AUDIT_RULE,
                        path: f.rel_path.clone(),
                        line: a.line,
                        col: 0,
                        message: format!(
                            "lint:allow({}) suppresses nothing here; remove the stale comment",
                            a.rule
                        ),
                    });
                }
            }
        }
        findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
        });
        Report {
            findings,
            rules: self
                .lints()
                .map(|l| (l.name(), l.description()))
                .chain(std::iter::once((ALLOW_AUDIT_RULE, ALLOW_AUDIT_DESCRIPTION)))
                .collect(),
            files_scanned: ws.files.len() + ws.manifests.len(),
        }
    }
}

/// The outcome of one [`LintRegistry::run`].
#[derive(Debug)]
pub struct Report {
    /// Surviving findings, sorted by path, line, column, rule.
    pub findings: Vec<Finding>,
    /// The `(name, description)` roster of rules that ran.
    pub rules: Vec<(&'static str, &'static str)>,
    /// How many source files and manifests were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the workspace passed every rule.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The machine-readable findings document (`accelwall lint --json`).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("clean", Value::from(self.is_clean())),
            ("files_scanned", Value::from(self.files_scanned)),
            ("finding_count", Value::from(self.findings.len())),
            (
                "rules",
                Value::array(self.rules.iter().map(|(name, description)| {
                    Value::object([
                        ("name", Value::from(*name)),
                        ("description", Value::from(*description)),
                    ])
                })),
            ),
            (
                "findings",
                Value::array(self.findings.iter().map(|f| {
                    Value::object([
                        ("rule", Value::from(f.rule)),
                        ("path", Value::from(f.path.as_str())),
                        ("line", Value::from(f.line)),
                        ("column", Value::from(f.col)),
                        ("message", Value::from(f.message.as_str())),
                    ])
                })),
            ),
        ])
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        if self.is_clean() {
            writeln!(
                f,
                "lint clean: {} rules over {} files, 0 findings",
                self.rules.len(),
                self.files_scanned
            )
        } else {
            writeln!(
                f,
                "lint failed: {} finding(s) from {} rules over {} files",
                self.findings.len(),
                self.rules.len(),
                self.files_scanned
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_rule_names_are_unique_and_kebab() {
        let r = LintRegistry::standard();
        let names: Vec<&str> = r.lints().map(Lint::name).collect();
        assert_eq!(names.len(), 11);
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate rule names");
        for (name, lint) in names.iter().zip(r.lints()) {
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{name} is not kebab-case"
            );
            assert!(!lint.description().is_empty(), "{name} lacks a description");
        }
        assert!(r.knows("no-panic-paths"));
        assert!(r.knows("atomic-ordering"));
        assert!(r.knows(ALLOW_AUDIT_RULE));
        assert!(!r.knows("no-such-rule"));
    }

    #[test]
    fn select_filters_but_still_recognizes_the_full_roster() {
        let r = LintRegistry::standard()
            .select(&["determinism".to_string(), "lock-order".to_string()])
            .unwrap();
        let names: Vec<&str> = r.lints().map(Lint::name).collect();
        assert_eq!(names, ["lock-order", "determinism"], "reporting order kept");
        assert!(r.knows("float-hygiene"), "filtered rules stay recognized");
    }

    #[test]
    fn select_rejects_unknown_rules_with_the_roster() {
        let err = LintRegistry::standard()
            .select(&["no-such-rule".to_string()])
            .unwrap_err();
        assert!(err.contains("unknown rule \"no-such-rule\""), "{err}");
        assert!(err.contains("atomic-ordering"), "{err}");
    }

    #[test]
    fn finding_display_is_editor_clickable() {
        let f = Finding {
            rule: "no-panic-paths",
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            col: 13,
            message: "boom".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:7:13: [no-panic-paths] boom"
        );
        let roster_level = Finding {
            line: 0,
            col: 0,
            ..f
        };
        assert_eq!(
            roster_level.to_string(),
            "crates/x/src/lib.rs: [no-panic-paths] boom"
        );
    }
}
