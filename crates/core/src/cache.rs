//! [`Ctx`]: memoized shared inputs for the experiment pipeline.
//!
//! Several paper targets start from the same expensive computations: the
//! synthetic datasheet corpus (Figs. 3b/3c), the fitted transistor-count
//! law (Fig. 3b), the calibrated potential model (Fig. 3d, dark silicon,
//! the roadmap), and the per-workload Table III sweeps (Figs. 13/14). A
//! `Ctx` computes each of these exactly once per process — concurrent
//! callers block on the same [`OnceLock`] rather than recomputing — and
//! counts computes vs. requests so tests can assert the "at most once"
//! guarantee instead of trusting it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use accelwall_accelsim::{run_sweep_lowered, SweepPoint, SweepSpace};
use accelwall_chipdb::{fit, ChipRecord, CorpusSpec};
use accelwall_dfg::{Dfg, Program};
use accelwall_potential::PotentialModel;
use accelwall_stats::PowerLaw;
use accelwall_workloads::Workload;

use crate::error::{Error, Result, ResultExt};

/// Memoizing context shared by every experiment in one pipeline run.
///
/// Cheap to create; all caches fill lazily on first use. Thread-safe:
/// experiments running in parallel share one `Ctx` by reference.
#[derive(Debug)]
pub struct Ctx {
    sweep_space: SweepSpace,
    corpus: OnceLock<Vec<ChipRecord>>,
    density_fit: OnceLock<Result<PowerLaw>>,
    model: OnceLock<PotentialModel>,
    sweeps: Vec<OnceLock<Result<Vec<SweepPoint>>>>,
    dfgs: Vec<OnceLock<Dfg>>,
    programs: Vec<OnceLock<Arc<Program>>>,
    corpus_computes: AtomicUsize,
    corpus_requests: AtomicUsize,
    fit_computes: AtomicUsize,
    fit_requests: AtomicUsize,
    model_computes: AtomicUsize,
    model_requests: AtomicUsize,
    sweep_computes: AtomicUsize,
    sweep_requests: AtomicUsize,
    dfg_computes: AtomicUsize,
    dfg_requests: AtomicUsize,
    lowerings: AtomicUsize,
    program_requests: AtomicUsize,
    program_nodes: AtomicUsize,
    program_edges: AtomicUsize,
    program_bytes: AtomicUsize,
}

/// A snapshot of the compute/request counters of a [`Ctx`].
///
/// `*_computes` counts how many times the underlying input was actually
/// built; `*_requests` counts accessor calls. The pipeline invariant is
/// `corpus_computes <= 1`, `fit_computes <= 1`, `model_computes <= 1`,
/// and `sweep_computes <= ` number of distinct workloads, regardless of
/// request counts or thread interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtxCounters {
    /// Times the datasheet corpus was generated.
    pub corpus_computes: usize,
    /// Times [`Ctx::corpus`] was called.
    pub corpus_requests: usize,
    /// Times the transistor-count law was fitted.
    pub fit_computes: usize,
    /// Times [`Ctx::density_fit`] was called.
    pub fit_requests: usize,
    /// Times the potential model was built.
    pub model_computes: usize,
    /// Times [`Ctx::potential_model`] was called.
    pub model_requests: usize,
    /// Workload sweeps actually simulated.
    pub sweep_computes: usize,
    /// Times [`Ctx::sweep`] was called.
    pub sweep_requests: usize,
    /// Workload DFGs actually built.
    pub dfg_computes: usize,
    /// Times [`Ctx::dfg`] was called.
    pub dfg_requests: usize,
    /// Graphs actually lowered to bytecode programs. The pipeline
    /// invariant is one lowering per distinct workload regardless of how
    /// many sweep points or toggle chains consume the program.
    pub lowerings: usize,
    /// Times [`Ctx::program`] was called.
    pub program_requests: usize,
    /// Total vertices across all lowered programs.
    pub program_nodes: usize,
    /// Total edges across all lowered programs.
    pub program_edges: usize,
    /// Total heap bytes across all lowered programs.
    pub program_bytes: usize,
}

impl Ctx {
    /// A context sweeping the full Table III grid (what the CLI uses).
    pub fn new() -> Ctx {
        Ctx::with_space(SweepSpace::table3())
    }

    /// A context sweeping a custom grid (tests use the coarse grid to
    /// keep the Fig. 13/14 paths fast).
    pub fn with_space(sweep_space: SweepSpace) -> Ctx {
        Ctx {
            sweep_space,
            corpus: OnceLock::new(),
            density_fit: OnceLock::new(),
            model: OnceLock::new(),
            sweeps: Workload::all().iter().map(|_| OnceLock::new()).collect(),
            dfgs: Workload::all().iter().map(|_| OnceLock::new()).collect(),
            programs: Workload::all().iter().map(|_| OnceLock::new()).collect(),
            corpus_computes: AtomicUsize::new(0),
            corpus_requests: AtomicUsize::new(0),
            fit_computes: AtomicUsize::new(0),
            fit_requests: AtomicUsize::new(0),
            model_computes: AtomicUsize::new(0),
            model_requests: AtomicUsize::new(0),
            sweep_computes: AtomicUsize::new(0),
            sweep_requests: AtomicUsize::new(0),
            dfg_computes: AtomicUsize::new(0),
            dfg_requests: AtomicUsize::new(0),
            lowerings: AtomicUsize::new(0),
            program_requests: AtomicUsize::new(0),
            program_nodes: AtomicUsize::new(0),
            program_edges: AtomicUsize::new(0),
            program_bytes: AtomicUsize::new(0),
        }
    }

    /// The design-space grid this context sweeps workloads over.
    pub fn sweep_space(&self) -> &SweepSpace {
        &self.sweep_space
    }

    /// The paper-scale synthetic datasheet corpus (2613 chips).
    pub fn corpus(&self) -> &[ChipRecord] {
        self.corpus_requests.fetch_add(1, Ordering::Relaxed);
        self.corpus.get_or_init(|| {
            self.corpus_computes.fetch_add(1, Ordering::Relaxed);
            CorpusSpec::paper_scale().generate()
        })
    }

    /// The Fig. 3b transistor-count law fitted to [`Ctx::corpus`].
    ///
    /// # Errors
    ///
    /// Returns the (memoized) fit failure if the corpus is degenerate.
    pub fn density_fit(&self) -> Result<PowerLaw> {
        self.fit_requests.fetch_add(1, Ordering::Relaxed);
        self.density_fit
            .get_or_init(|| {
                self.fit_computes.fetch_add(1, Ordering::Relaxed);
                fit::transistor_density_fit(self.corpus())
                    .context("fitting the Fig. 3b transistor-count law")
            })
            .clone()
    }

    /// The paper-calibrated CMOS potential model (Fig. 3d and onward).
    pub fn potential_model(&self) -> &PotentialModel {
        self.model_requests.fetch_add(1, Ordering::Relaxed);
        self.model.get_or_init(|| {
            self.model_computes.fetch_add(1, Ordering::Relaxed);
            PotentialModel::paper()
        })
    }

    /// The memoized [`run_sweep_lowered`] of `workload` over
    /// [`Ctx::sweep_space`]. The sweep shares the workload's cached
    /// bytecode program ([`Ctx::program`]) — one lowering covers every
    /// grid point.
    ///
    /// # Errors
    ///
    /// Returns the (memoized) simulation failure for invalid spaces.
    pub fn sweep(&self, workload: Workload) -> Result<&[SweepPoint]> {
        self.sweep_requests.fetch_add(1, Ordering::Relaxed);
        let slot = Workload::all()
            .iter()
            .position(|&w| w == workload)
            .and_then(|i| self.sweeps.get(i))
            .ok_or_else(|| Error::UnknownWorkload {
                name: format!("{workload:?}"),
            })?;
        slot.get_or_init(|| {
            self.sweep_computes.fetch_add(1, Ordering::Relaxed);
            self.program(workload).and_then(|program| {
                run_sweep_lowered(&program, &self.sweep_space)
                    .context(format!("sweeping {}", workload.abbrev()))
            })
        })
        .as_ref()
        .map(Vec::as_slice)
        .map_err(Clone::clone)
    }

    /// The memoized DFG lowering of `workload` (its default instance).
    /// Shared by the sweep and attribution paths so the graph is built
    /// once per process instead of once per caller.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownWorkload`] for a workload outside the roster.
    pub fn dfg(&self, workload: Workload) -> Result<&Dfg> {
        self.dfg_requests.fetch_add(1, Ordering::Relaxed);
        let slot = Workload::all()
            .iter()
            .position(|&w| w == workload)
            .and_then(|i| self.dfgs.get(i))
            .ok_or_else(|| Error::UnknownWorkload {
                name: format!("{workload:?}"),
            })?;
        Ok(slot.get_or_init(|| {
            self.dfg_computes.fetch_add(1, Ordering::Relaxed);
            workload.default_instance()
        }))
    }

    /// The memoized bytecode lowering of `workload`'s DFG, shared behind
    /// an [`Arc`] so the sweep, the scheduler, and the attribution toggle
    /// chain all run over one flat program per workload. The `lowerings`
    /// counter (and the `/metrics` gauge it feeds) makes the
    /// once-per-workload invariant observable.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownWorkload`] for a workload outside the roster.
    pub fn program(&self, workload: Workload) -> Result<Arc<Program>> {
        self.program_requests.fetch_add(1, Ordering::Relaxed);
        let slot = Workload::all()
            .iter()
            .position(|&w| w == workload)
            .and_then(|i| self.programs.get(i))
            .ok_or_else(|| Error::UnknownWorkload {
                name: format!("{workload:?}"),
            })?;
        let dfg = self.dfg(workload)?;
        Ok(slot
            .get_or_init(|| {
                self.lowerings.fetch_add(1, Ordering::Relaxed);
                let program = Arc::new(dfg.lower());
                self.program_nodes
                    .fetch_add(program.vertex_count(), Ordering::Relaxed);
                self.program_edges
                    .fetch_add(program.edge_count(), Ordering::Relaxed);
                self.program_bytes
                    .fetch_add(program.size_bytes(), Ordering::Relaxed);
                program
            })
            .clone())
    }

    /// Snapshot of the compute/request counters.
    pub fn counters(&self) -> CtxCounters {
        CtxCounters {
            corpus_computes: self.corpus_computes.load(Ordering::Relaxed),
            corpus_requests: self.corpus_requests.load(Ordering::Relaxed),
            fit_computes: self.fit_computes.load(Ordering::Relaxed),
            fit_requests: self.fit_requests.load(Ordering::Relaxed),
            model_computes: self.model_computes.load(Ordering::Relaxed),
            model_requests: self.model_requests.load(Ordering::Relaxed),
            sweep_computes: self.sweep_computes.load(Ordering::Relaxed),
            sweep_requests: self.sweep_requests.load(Ordering::Relaxed),
            dfg_computes: self.dfg_computes.load(Ordering::Relaxed),
            dfg_requests: self.dfg_requests.load(Ordering::Relaxed),
            lowerings: self.lowerings.load(Ordering::Relaxed),
            program_requests: self.program_requests.load(Ordering::Relaxed),
            program_nodes: self.program_nodes.load(Ordering::Relaxed),
            program_edges: self.program_edges.load(Ordering::Relaxed),
            program_bytes: self.program_bytes.load(Ordering::Relaxed),
        }
    }
}

impl Default for Ctx {
    fn default() -> Ctx {
        Ctx::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_generated_once_across_repeat_requests() {
        let ctx = Ctx::with_space(SweepSpace::coarse());
        let n1 = ctx.corpus().len();
        let n2 = ctx.corpus().len();
        assert_eq!(n1, n2);
        let c = ctx.counters();
        assert_eq!(c.corpus_computes, 1);
        assert_eq!(c.corpus_requests, 2);
    }

    #[test]
    fn density_fit_reuses_the_corpus_and_memoizes() {
        let ctx = Ctx::with_space(SweepSpace::coarse());
        let a = ctx.density_fit().unwrap();
        let b = ctx.density_fit().unwrap();
        assert_eq!(a, b);
        let c = ctx.counters();
        assert_eq!(c.fit_computes, 1);
        assert_eq!(c.fit_requests, 2);
        // The fit pulled the corpus through the memoized accessor.
        assert_eq!(c.corpus_computes, 1);
    }

    #[test]
    fn sweeps_memoize_per_workload() {
        let ctx = Ctx::with_space(SweepSpace::coarse());
        let a = ctx.sweep(Workload::Red).unwrap().len();
        let b = ctx.sweep(Workload::Red).unwrap().len();
        let c = ctx.sweep(Workload::Trd).unwrap().len();
        assert_eq!(a, b);
        assert_eq!(a, SweepSpace::coarse().len());
        assert_eq!(c, SweepSpace::coarse().len());
        let counters = ctx.counters();
        assert_eq!(counters.sweep_computes, 2);
        assert_eq!(counters.sweep_requests, 3);
    }

    #[test]
    fn programs_lower_once_per_workload() {
        let ctx = Ctx::with_space(SweepSpace::coarse());
        let a = ctx.program(Workload::Red).unwrap();
        let b = ctx.program(Workload::Red).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second request must hit the cache");
        // The sweep pulls the same shared program.
        ctx.sweep(Workload::Red).unwrap();
        ctx.sweep(Workload::Red).unwrap();
        let c = ctx.counters();
        assert_eq!(c.lowerings, 1);
        assert_eq!(c.program_requests, 3);
        assert_eq!(c.dfg_computes, 1);
        assert_eq!(c.program_nodes, a.vertex_count());
        assert_eq!(c.program_edges, a.edge_count());
        assert_eq!(c.program_bytes, a.size_bytes());
    }

    #[test]
    fn concurrent_requests_still_compute_once() {
        let ctx = Ctx::with_space(SweepSpace::coarse());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    ctx.corpus();
                    ctx.potential_model();
                    ctx.sweep(Workload::Red).unwrap();
                });
            }
        });
        let c = ctx.counters();
        assert_eq!(c.corpus_computes, 1);
        assert_eq!(c.model_computes, 1);
        assert_eq!(c.sweep_computes, 1);
        assert_eq!(c.corpus_requests, 8);
    }
}
