//! CMOS-layer experiment: the device-scaling curves of Fig. 3a.

use super::{out, outln};
use crate::cache::Ctx;
use crate::error::Result;
use crate::experiment::{Artifact, Experiment};
use crate::json::Value;

/// Fig. 3a — relative CMOS device scaling per node.
pub struct Fig3a;

impl Experiment for Fig3a {
    fn id(&self) -> &'static str {
        "fig3a"
    }

    fn description(&self) -> &'static str {
        "CMOS device scaling curves"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let data = accelwall_cmos::fig3a_series();
        let json = data
            .iter()
            .map(|(m, curve)| {
                Value::object([
                    ("metric", Value::from(m.label())),
                    (
                        "curve",
                        curve
                            .iter()
                            .map(|(n, v)| {
                                Value::object([
                                    ("node", Value::from(n.to_string())),
                                    ("value", Value::from(*v)),
                                ])
                            })
                            .collect(),
                    ),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(text, "Fig. 3a — CMOS device scaling (relative)");
        if let Some((_, first_curve)) = data.first() {
            out!(text, "{:<16}", "metric");
            for (node, _) in first_curve {
                out!(text, "{:>8}", node.to_string());
            }
            outln!(text);
        }
        for (metric, curve) in &data {
            out!(text, "{:<16}", metric.label());
            for (_, v) in curve {
                out!(text, "{v:>8.3}");
            }
            outln!(text);
        }
        Ok(Artifact::new(json, text))
    }
}
