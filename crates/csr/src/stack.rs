//! The specialization stack (Fig. 2): the abstraction layers of an
//! accelerator-centric architecture.
//!
//! The paper contrasts the traditional layer cake (application, algorithm,
//! language, OS, ISA, RTL, gates, devices, technology) with its taxonomy
//! for accelerated systems: a fixed computation domain on top, a fixed
//! physical layer at the bottom, and four *specialization* layers in
//! between whose co-optimization is what CSR measures (Eq. 1's
//! `CSR(Alg, Fwk, Plt, Eng)`).

use std::fmt;

/// The layers of an accelerator-centric architecture, top to bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StackLayer {
    /// The computation domain — fixed; what the gain is measured on
    /// (e.g. deep learning, graph processing).
    ComputationDomain,
    /// Algorithm (e.g. AlexNet, VGG, BFS, PageRank).
    Algorithm,
    /// Programming framework (e.g. CUDA, OpenCL, HLS).
    ProgrammingFramework,
    /// Accelerator platform (e.g. ASIC, FPGA, GPU).
    AcceleratorPlatform,
    /// Chip engineering (microarchitecture, circuits, methodologies,
    /// CAD tools).
    ChipEngineering,
    /// Physical properties — fixed budget (e.g. 45 nm CMOS, 100 mm² die).
    Physical,
}

impl StackLayer {
    /// All layers, top to bottom, as drawn in Fig. 2.
    pub fn all() -> &'static [StackLayer] {
        const ALL: [StackLayer; 6] = [
            StackLayer::ComputationDomain,
            StackLayer::Algorithm,
            StackLayer::ProgrammingFramework,
            StackLayer::AcceleratorPlatform,
            StackLayer::ChipEngineering,
            StackLayer::Physical,
        ];
        &ALL
    }

    /// Whether the layer belongs to the *specialization stack* — the
    /// dashed box of Fig. 2, i.e. the arguments of Eq. 1's CSR.
    pub fn is_specialization_layer(self) -> bool {
        !matches!(self, StackLayer::ComputationDomain | StackLayer::Physical)
    }

    /// The paper's Fig. 2 examples for this layer.
    pub fn examples(self) -> &'static [&'static str] {
        match self {
            StackLayer::ComputationDomain => &["Deep Learning", "Graph Processing"],
            StackLayer::Algorithm => &["AlexNet", "VGG", "LSTM", "BFS", "PageRank"],
            StackLayer::ProgrammingFramework => &["CUDA", "OpenCL", "HLS"],
            StackLayer::AcceleratorPlatform => &["ASIC", "FPGA", "GPU"],
            StackLayer::ChipEngineering => &[
                "Microarchitecture",
                "Circuits",
                "Design Methodologies",
                "CAD Tools",
            ],
            StackLayer::Physical => &["45nm CMOS", "100mm2 Die"],
        }
    }

    /// Which case study isolates this layer's contribution (Section IV).
    pub fn isolating_study(self) -> Option<&'static str> {
        match self {
            StackLayer::Algorithm => Some("FPGA CNNs (Fig. 8)"),
            StackLayer::ProgrammingFramework | StackLayer::ChipEngineering => {
                Some("GPU architectures (Figs. 6-7)")
            }
            StackLayer::AcceleratorPlatform => Some("Bitcoin miners (Fig. 9)"),
            StackLayer::ComputationDomain | StackLayer::Physical => None,
        }
    }
}

impl fmt::Display for StackLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StackLayer::ComputationDomain => "Computation Domain (fixed)",
            StackLayer::Algorithm => "Algorithm",
            StackLayer::ProgrammingFramework => "Programming Framework",
            StackLayer::AcceleratorPlatform => "Accelerator Platform",
            StackLayer::ChipEngineering => "Chip Engineering",
            StackLayer::Physical => "Physical Properties (fixed budget)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_layers_top_to_bottom() {
        let layers = StackLayer::all();
        assert_eq!(layers.len(), 6);
        assert_eq!(layers[0], StackLayer::ComputationDomain);
        assert_eq!(layers[5], StackLayer::Physical);
        assert!(layers.windows(2).all(|w| w[0] < w[1]), "drawn order");
    }

    #[test]
    fn exactly_four_specialization_layers() {
        // Eq. 1: CSR(Alg, Fwk, Plt, Eng) — four free layers.
        let free: Vec<_> = StackLayer::all()
            .iter()
            .filter(|l| l.is_specialization_layer())
            .collect();
        assert_eq!(free.len(), 4);
    }

    #[test]
    fn every_specialization_layer_has_an_isolating_study() {
        for layer in StackLayer::all() {
            assert_eq!(
                layer.isolating_study().is_some(),
                layer.is_specialization_layer(),
                "{layer}"
            );
        }
    }

    #[test]
    fn examples_match_fig2() {
        assert!(StackLayer::AcceleratorPlatform.examples().contains(&"ASIC"));
        assert!(StackLayer::ProgrammingFramework
            .examples()
            .contains(&"CUDA"));
        assert!(StackLayer::Physical.examples().contains(&"45nm CMOS"));
    }
}
