//! Randomized tests over randomly generated dataflow graphs, driven by
//! the deterministic [`Rng`] from `accelwall-stats`.

use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};
use accelwall_stats::Rng;
use std::collections::HashMap;

/// Ops safe for the interpreter on arbitrary positive inputs (no division
/// by values that can be zero, no bit ops that lose f64 exactness).
const SAFE_OPS: [Op; 8] = [
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Min,
    Op::Max,
    Op::Abs,
    Op::Neg,
    Op::Copy,
];

const CASES: u64 = 128;

/// A recipe for one random DAG: `(inputs, ops)` where each op is
/// `(op selector, operand selectors)`; operands index *already existing*
/// nodes, so the graph is a DAG by construction — mirroring the builder's
/// own guarantee.
fn arb_graph(rng: &mut Rng) -> (usize, Vec<(u8, u8, u8, u8)>) {
    let inputs = rng.range(1, 8) as usize;
    let n_ops = rng.range(1, 60) as usize;
    let ops = (0..n_ops)
        .map(|_| {
            (
                rng.below(256) as u8,
                rng.below(256) as u8,
                rng.below(256) as u8,
                rng.below(256) as u8,
            )
        })
        .collect();
    (inputs, ops)
}

fn build(inputs: usize, ops: &[(u8, u8, u8, u8)]) -> Dfg {
    let mut b = DfgBuilder::new("random");
    let mut nodes: Vec<NodeId> = (0..inputs).map(|i| b.input(format!("x{i}"))).collect();
    for &(op_sel, a_sel, b_sel, c_sel) in ops {
        let op = SAFE_OPS[op_sel as usize % SAFE_OPS.len()];
        let pick = |sel: u8, n: usize| sel as usize % n;
        let n = nodes.len();
        let operands: Vec<NodeId> = match op.arity() {
            1 => vec![nodes[pick(a_sel, n)]],
            2 => vec![nodes[pick(a_sel, n)], nodes[pick(b_sel, n)]],
            _ => vec![
                nodes[pick(a_sel, n)],
                nodes[pick(b_sel, n)],
                nodes[pick(c_sel, n)],
            ],
        };
        nodes.push(b.op(op, &operands));
    }
    // Expose the last few nodes as outputs so everything upstream counts.
    let tail = nodes.len().saturating_sub(3);
    for (k, &n) in nodes[tail..].iter().enumerate() {
        b.output(format!("o{k}"), n);
    }
    b.build().expect("random graphs are valid by construction")
}

#[test]
fn stats_invariants_hold() {
    let mut rng = Rng::seed(0xDF60_0001);
    for _ in 0..CASES {
        let (inputs, ops) = arb_graph(&mut rng);
        let g = build(inputs, &ops);
        let s = g.stats();
        // Partition of the vertex set.
        assert_eq!(s.inputs + s.computes + s.outputs, s.vertices);
        // Depth is bounded by the vertex count and is at least in->out.
        assert!(s.depth >= 2);
        assert!(s.depth <= s.vertices);
        // Edges: each compute has arity edges, each output one.
        assert!(s.edges >= s.computes + s.outputs);
        // Paths reach every output.
        assert!(s.path_count >= s.outputs as u128);
        // Working sets cannot exceed live values, which cannot exceed |V|.
        assert!(s.max_working_set <= s.vertices);
        assert!(s.max_stage_width <= s.vertices);
    }
}

#[test]
fn stages_partition_the_graph() {
    let mut rng = Rng::seed(0xDF60_0002);
    for _ in 0..CASES {
        let (inputs, ops) = arb_graph(&mut rng);
        let g = build(inputs, &ops);
        let total: usize = g.stages().iter().map(Vec::len).sum();
        assert_eq!(total, g.vertex_count());
        // Every node's operands live at strictly lower levels.
        let levels = g.asap_levels();
        for id in g.ids() {
            for op in &g.node(id).operands {
                assert!(levels[op.index()] < levels[id.index()]);
            }
        }
    }
}

#[test]
fn interpreter_is_deterministic_and_total() {
    let mut rng = Rng::seed(0xDF60_0003);
    for _ in 0..CASES {
        let (inputs, ops) = arb_graph(&mut rng);
        let seed = rng.range(1, 1000) as u32;
        let g = build(inputs, &ops);
        let vals: HashMap<String, f64> = (0..inputs)
            .map(|i| (format!("x{i}"), f64::from(seed + i as u32) * 0.37 + 1.0))
            .collect();
        let a = g.evaluate(&vals);
        let b = g.evaluate(&vals);
        assert_eq!(&a, &b);
        if let Ok(out) = a {
            assert!(!out.is_empty());
            assert!(out.values().all(|v| v.is_finite()));
        }
    }
}

#[test]
fn copy_chains_do_not_change_depth_semantics() {
    // Appending a Copy to an output's source adds exactly one level.
    let mut rng = Rng::seed(0xDF60_0004);
    for _ in 0..CASES {
        let (inputs, ops) = arb_graph(&mut rng);
        let g = build(inputs, &ops);
        let d1 = g.depth();
        let mut b = DfgBuilder::new("wrapped");
        let mut nodes: Vec<NodeId> = (0..inputs).map(|i| b.input(format!("x{i}"))).collect();
        for &(op_sel, a_sel, b_sel, c_sel) in &ops {
            let op = SAFE_OPS[op_sel as usize % SAFE_OPS.len()];
            let pick = |sel: u8, n: usize| sel as usize % n;
            let n = nodes.len();
            let operands: Vec<NodeId> = match op.arity() {
                1 => vec![nodes[pick(a_sel, n)]],
                2 => vec![nodes[pick(a_sel, n)], nodes[pick(b_sel, n)]],
                _ => vec![
                    nodes[pick(a_sel, n)],
                    nodes[pick(b_sel, n)],
                    nodes[pick(c_sel, n)],
                ],
            };
            nodes.push(b.op(op, &operands));
        }
        let tail = nodes.len().saturating_sub(3);
        for (k, &n) in nodes[tail..].iter().enumerate() {
            let c = b.op(Op::Copy, &[n]);
            b.output(format!("o{k}"), c);
        }
        let wrapped = b.build().unwrap();
        assert_eq!(wrapped.depth(), d1 + 1);
    }
}

#[test]
fn working_sets_bound_stage_widths_of_live_values() {
    let mut rng = Rng::seed(0xDF60_0005);
    for _ in 0..CASES {
        let (inputs, ops) = arb_graph(&mut rng);
        let g = build(inputs, &ops);
        let ws = g.working_sets();
        // The final working set (before outputs) covers the output sources.
        assert!(ws.iter().all(|&w| w <= g.vertex_count()));
    }
}

#[test]
fn random_graphs_also_schedule() {
    // Deterministic corner: a handful of fixed recipes must pass through
    // the simulator stack (exercised more heavily in accelsim's tests).
    let g = build(4, &[(0, 0, 1, 2), (2, 3, 2, 1), (1, 4, 4, 0), (7, 5, 0, 0)]);
    assert!(g.stats().computes >= 4);
}
