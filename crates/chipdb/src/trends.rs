//! Corpus-level scaling trends: Moore's law, made checkable.
//!
//! The paper's premise is the *slowdown* of transistor scaling. This
//! module fits the classical exponential trends over a datasheet corpus —
//! transistor count vs. year (Moore's law) and switching capacity vs.
//! year — so the premise itself is measurable on the data the potential
//! model is built from, and so projections can be sanity-checked against
//! the historical doubling time.

use crate::ChipRecord;
use accelwall_stats::{Linear, Result, StatsError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Records per chunk of the parallel frontier accumulation. The merge
/// (per-year max) is exact and associative, so this constant only
/// shapes scheduling — any value yields the identical frontier.
const TREND_CHUNK: usize = 256;

/// Builds the per-year frontier `year -> max value(record)` with the
/// accumulation split across chunks and tree-reduced.
fn year_frontier<F>(corpus: &[ChipRecord], value: F) -> BTreeMap<u32, f64>
where
    F: Fn(&ChipRecord) -> f64,
{
    let pairs: Arc<Vec<(u32, f64)>> = Arc::new(corpus.iter().map(|r| (r.year, value(r))).collect());
    accelwall_par::par_map_reduce(
        pairs.len(),
        TREND_CHUNK,
        move |range| {
            let mut frontier = BTreeMap::new();
            for &(year, v) in &pairs[range] {
                let e = frontier.entry(year).or_insert(0.0f64);
                *e = e.max(v);
            }
            frontier
        },
        |mut left, right| {
            for (year, v) in right {
                let e = left.entry(year).or_insert(0.0f64);
                *e = e.max(v);
            }
            left
        },
    )
    .unwrap_or_default()
}

/// An exponential trend `value = a · 2^((year − year₀) / doubling_years)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialTrend {
    /// Years per doubling.
    pub doubling_years: f64,
    /// Compound annual growth rate (0.41 ≈ Moore's classical 2 years).
    pub cagr: f64,
    /// Coefficient of determination of the log-space fit.
    pub r_squared: f64,
}

/// Fits the transistor-count-vs-year trend over a corpus.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] for corpora with fewer than two
/// distinct years, and propagates other fit errors.
pub fn moores_law(corpus: &[ChipRecord]) -> Result<ExponentialTrend> {
    // Use the per-year *maximum* transistor count: Moore's law tracks the
    // frontier, not the median product.
    fit_exponential(
        year_frontier(corpus, |r| r.transistors)
            .into_iter()
            .map(|(y, tc)| (f64::from(y), tc))
            .collect(),
    )
}

/// Fits the switching-capacity (transistors × GHz) frontier vs. year.
///
/// # Errors
///
/// Same as [`moores_law`].
pub fn capacity_trend(corpus: &[ChipRecord]) -> Result<ExponentialTrend> {
    fit_exponential(
        year_frontier(corpus, ChipRecord::switching_capacity)
            .into_iter()
            .map(|(y, c)| (f64::from(y), c))
            .collect(),
    )
}

fn fit_exponential(points: Vec<(f64, f64)>) -> Result<ExponentialTrend> {
    if points.len() < 2 {
        return Err(StatsError::NotEnoughData {
            provided: points.len(),
            required: 2,
        });
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1.max(1e-12).log2()).collect();
    let fit = Linear::fit(&xs, &ys)?;
    if fit.slope <= 0.0 {
        return Err(StatsError::DomainViolation {
            what: "trend is not growing; no doubling time exists",
        });
    }
    Ok(ExponentialTrend {
        doubling_years: 1.0 / fit.slope,
        cagr: 2f64.powf(fit.slope) - 1.0,
        r_squared: fit.r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusSpec;

    #[test]
    fn corpus_recovers_a_moore_like_doubling_time() {
        // The synthetic corpus spans 180 nm (1999) to 12 nm (2018); its
        // frontier should double every ~1.5-3.5 years, bracketing the
        // classical 2-year cadence.
        let corpus = CorpusSpec::paper_scale().generate();
        let trend = moores_law(&corpus).unwrap();
        assert!(
            (1.2..3.5).contains(&trend.doubling_years),
            "doubling every {:.2} years",
            trend.doubling_years
        );
        assert!(trend.r_squared > 0.7, "r2 {}", trend.r_squared);
    }

    #[test]
    fn capacity_and_transistor_trends_are_commensurate() {
        // Switching capacity compounds transistor count with the (slowing)
        // frequency gains, so its CAGR sits above the transistor CAGR but
        // within a factor of two — not on a runaway trajectory of its own.
        let corpus = CorpusSpec::paper_scale().generate();
        let tc = moores_law(&corpus).unwrap();
        let cap = capacity_trend(&corpus).unwrap();
        assert!(
            cap.cagr > tc.cagr * 0.8,
            "cap {:.2} vs tc {:.2}",
            cap.cagr,
            tc.cagr
        );
        assert!(
            cap.cagr < tc.cagr * 2.0,
            "cap {:.2} vs tc {:.2}",
            cap.cagr,
            tc.cagr
        );
    }

    #[test]
    fn synthetic_exact_exponential_recovered() {
        let points: Vec<(f64, f64)> = (0..10)
            .map(|i| (2000.0 + i as f64, 1e6 * 2f64.powf(i as f64 / 2.0)))
            .collect();
        let t = fit_exponential(points).unwrap();
        assert!((t.doubling_years - 2.0).abs() < 1e-9);
        assert!((t.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn declining_trend_rejected() {
        let points: Vec<(f64, f64)> = (0..5)
            .map(|i| (2000.0 + i as f64, 1e6 / (i + 1) as f64))
            .collect();
        assert!(matches!(
            fit_exponential(points),
            Err(StatsError::DomainViolation { .. })
        ));
    }

    #[test]
    fn tiny_corpus_rejected() {
        assert!(moores_law(&[]).is_err());
    }
}
