//! The CMOS potential model (paper Section III).
//!
//! This is the paper's central analytical instrument: an
//! application-independent estimate of what a chip's *physics* alone can
//! deliver — how many transistors fit on the die (Fig. 3b), how many of
//! them a power budget lets switch (Fig. 3c), and therefore the chip's
//! CMOS-driven throughput and energy-efficiency potential (Fig. 3d). Every
//! case study divides a chip's *reported* gain by this *physical* gain to
//! isolate the Chip Specialization Return.
//!
//! Inputs, as in the paper: CMOS node, die size (or transistor count),
//! operating frequency, and TDP.
//!
//! # Example
//!
//! ```
//! use accelwall_cmos::TechNode;
//! use accelwall_potential::{ChipSpec, PotentialModel};
//!
//! let model = PotentialModel::paper();
//! let baseline = PotentialModel::reference_spec(); // 25 mm², 45 nm, 1 GHz
//! let big5nm = ChipSpec::new(TechNode::N5, 800.0, 1.0, 800.0);
//!
//! // Under an 800 W envelope the 800 mm² 5 nm chip delivers ~300x the
//! // baseline throughput (the paper's Fig. 3d headline)...
//! let gain = model.throughput_gain(&big5nm, &baseline);
//! assert!((240.0..360.0).contains(&gain));
//!
//! // ...roughly 70% below its ~1000x area-limited potential.
//! let unconstrained = model.area_limited_transistors(&big5nm)
//!     / model.area_limited_transistors(&baseline);
//! assert!((800.0..1200.0).contains(&unconstrained));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gains;
pub mod model;
pub mod roadmap;

pub use gains::{fig3d_grid, Fig3dRow, TdpZone};
pub use model::{ChipSpec, PotentialModel};
pub use roadmap::{physical_roadmap, scaling_end_year, RoadmapPoint};

use std::error::Error;
use std::fmt;

/// Errors produced when constructing a potential model from data.
#[derive(Debug, Clone, PartialEq)]
pub enum PotentialError {
    /// The corpus fit for the transistor-count law failed.
    DensityFit(accelwall_stats::StatsError),
    /// A chip specification was physically meaningless.
    InvalidSpec {
        /// Which field was invalid.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PotentialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PotentialError::DensityFit(e) => write!(f, "density-law fit failed: {e}"),
            PotentialError::InvalidSpec { field, value } => {
                write!(f, "invalid chip spec: {field} = {value}")
            }
        }
    }
}

impl Error for PotentialError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PotentialError::DensityFit(e) => Some(e),
            PotentialError::InvalidSpec { .. } => None,
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PotentialError>;
