//! The shipped lint rules.
//!
//! Each rule is one module with one [`crate::Lint`] implementation plus
//! its own fixture tests. The roster lives in
//! [`crate::LintRegistry::standard`]; to add a rule, follow the
//! "Static analysis" section of `DESIGN.md`.

pub mod atomic_ordering;
pub mod bounded_channel;
pub mod dep_free;
pub mod determinism;
pub mod doc_sync;
pub mod fault_sites;
pub mod float_hygiene;
pub mod lock_order;
pub mod no_exit;
pub mod panic_paths;
pub mod registry_sync;

#[cfg(test)]
pub(crate) mod testutil {
    use crate::source::SourceFile;
    use crate::workspace::{Manifest, Workspace};
    use std::path::{Path, PathBuf};

    /// A synthetic in-memory workspace built from `(path, source)` pairs.
    pub fn workspace(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::from("/fixture"),
            files: files
                .iter()
                .map(|(rel, src)| {
                    SourceFile::new(
                        (*rel).to_string(),
                        Path::new("/fixture").join(rel),
                        (*src).to_string(),
                    )
                })
                .collect(),
            manifests: Vec::new(),
            experiments_md: None,
            design_md: None,
        }
    }

    /// Same, with manifests and an EXPERIMENTS.md.
    pub fn workspace_full(
        files: &[(&str, &str)],
        manifests: &[(&str, &str)],
        experiments_md: Option<&str>,
    ) -> Workspace {
        let mut ws = workspace(files);
        ws.manifests = manifests
            .iter()
            .map(|(rel, text)| Manifest {
                rel_path: (*rel).to_string(),
                text: (*text).to_string(),
            })
            .collect();
        ws.experiments_md = experiments_md.map(str::to_string);
        ws
    }
}
