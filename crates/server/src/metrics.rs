//! Server-side observability: request counters, latency sums, and a
//! Prometheus-style text rendering.
//!
//! The `/metrics` route combines three layers of counters:
//!
//! 1. per-route request counts and latency sums plus per-status response
//!    counts and an in-flight gauge (the atomics in [`Metrics`]);
//! 2. the artifact cache's request/hit/compute counters
//!    ([`accelerator_wall::artifacts::CacheStats`]);
//! 3. the shared-input [`Ctx`](accelerator_wall::cache::Ctx) counters
//!    ([`CtxCounters`]) — the same numbers the pipeline's golden tests
//!    assert on, so "the corpus was built at most once over the whole
//!    server lifetime" is observable from the outside — including
//!    `accelwall_dfg_lowerings_total` and the program size gauges
//!    (`accelwall_dfg_program_{nodes,edges,bytes}`), which prove each
//!    workload graph was lowered to bytecode exactly once;
//! 4. failure-containment counters: `worker_panics_total` (pool workers
//!    that died panicking and were respawned — stays 0 while the cache's
//!    `catch_unwind` containment holds), the cache's retry / contained
//!    panic / compute-timeout counters, and — when a fault plan is armed
//!    via `ACCELWALL_FAULTS` — one `accelwall_fault_injections_total`
//!    line per armed site, so chaos tests assert injection coverage from
//!    the same endpoint operators scrape;
//! 5. compute-pool gauges from `accelwall-par`: `accelwall_par_workers`
//!    (live pool threads), `accelwall_par_jobs_total` (parallel jobs
//!    run), and `accelwall_par_steals_total` (chunk batches taken by a
//!    worker rather than the submitting thread) — how much intra-
//!    experiment parallelism the serving process is actually getting;
//! 6. when a distributed-work coordinator is attached
//!    ([`accelwall_work::WorkStats`]), the `accelwall_work_*` series:
//!    unit progress gauges plus the lease / completion / re-issue /
//!    hedge / quarantine counters chaos tests assert on.
//!
//! 7. connection-reactor counters: connections admitted / open,
//!    keep-alive reuses, pipelined requests, idle-timeout reaps,
//!    over-cap sheds, event-loop iterations, and the pre-serialized
//!    response cache's hit/miss/eviction/byte series
//!    ([`RespCacheStats`]) — the numbers the serve bench and the CI
//!    keep-alive smoke assert on.
//!
//! Route labels are normalized (`/experiments/fig14` reports as
//! `/experiments/{id}`) so label cardinality stays bounded no matter
//! what paths clients probe.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use accelerator_wall::artifacts::CacheStats;
use accelerator_wall::cache::CtxCounters;
use accelwall_query::QueryStats;
use accelwall_work::WorkStats;

use crate::respcache::RespCacheStats;

/// The server's route space, used as the bounded metrics label set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`.
    Healthz,
    /// `GET /experiments`.
    Experiments,
    /// `GET /experiments/{id}` (any id, known or not).
    Experiment,
    /// `GET /query` and `POST /query` (ad-hoc what-if specs).
    Query,
    /// `GET /query/schema`.
    QuerySchema,
    /// `GET /metrics`.
    Metrics,
    /// `POST /shutdown`.
    Shutdown,
    /// `POST /work/lease` (worker asks the coordinator for units).
    WorkLease,
    /// `POST /work/complete` (worker returns one unit's result).
    WorkComplete,
    /// `POST /work/heartbeat` (worker extends its leases).
    WorkHeartbeat,
    /// Anything else, including unparseable requests.
    Other,
}

impl Route {
    /// Every route, in rendering order.
    pub const ALL: [Route; 11] = [
        Route::Healthz,
        Route::Experiments,
        Route::Experiment,
        Route::Query,
        Route::QuerySchema,
        Route::Metrics,
        Route::Shutdown,
        Route::WorkLease,
        Route::WorkComplete,
        Route::WorkHeartbeat,
        Route::Other,
    ];

    /// The normalized label rendered into metrics.
    pub fn label(self) -> &'static str {
        match self {
            Route::Healthz => "/healthz",
            Route::Experiments => "/experiments",
            Route::Experiment => "/experiments/{id}",
            Route::Query => "/query",
            Route::QuerySchema => "/query/schema",
            Route::Metrics => "/metrics",
            Route::Shutdown => "/shutdown",
            Route::WorkLease => "/work/lease",
            Route::WorkComplete => "/work/complete",
            Route::WorkHeartbeat => "/work/heartbeat",
            Route::Other => "other",
        }
    }
}

#[derive(Debug, Default)]
struct RouteStats {
    requests: AtomicU64,
    latency_ns: AtomicU64,
}

/// All server-side counters, shared across workers by reference.
#[derive(Debug, Default)]
pub struct Metrics {
    per_route: [RouteStats; Route::ALL.len()],
    responses: Mutex<Vec<(u16, u64)>>,
    in_flight: AtomicUsize,
    rejected: AtomicU64,
    connections: AtomicU64,
    open_connections: AtomicUsize,
    keepalive_reuses: AtomicU64,
    pipelined: AtomicU64,
    idle_timeouts: AtomicU64,
    over_cap: AtomicU64,
    reactor_polls: AtomicU64,
    /// Shared with the worker pool (see
    /// [`ThreadPool::with_panic_counter`](crate::pool::ThreadPool::with_panic_counter)),
    /// which increments it when a worker dies panicking and is respawned.
    worker_panics: Arc<AtomicU64>,
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one finished request: route, response status, wall time.
    pub fn observe(&self, route: Route, status: u16, elapsed: Duration) {
        let stats = &self.per_route[Route::ALL.iter().position(|&r| r == route).unwrap_or(0)];
        stats.requests.fetch_add(1, Ordering::Relaxed);
        stats
            .latency_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        let mut responses = self
            .responses
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match responses.iter_mut().find(|(s, _)| *s == status) {
            Some((_, n)) => *n += 1,
            None => {
                responses.push((status, 1));
                responses.sort_unstable();
            }
        }
    }

    /// Marks a connection rejected by backpressure (503 before routing).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection admitted by the reactor.
    pub fn record_connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        self.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one admitted connection closing (any reason).
    pub fn record_connection_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a request served on an already-used connection — the
    /// keep-alive payoff the serve bench and CI smoke assert on.
    pub fn record_keepalive_reuse(&self) {
        self.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request parsed while earlier ones on the same
    /// connection were still outstanding (true pipelining).
    pub fn record_pipelined(&self) {
        self.pipelined.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection reaped by the idle/stall timeout.
    pub fn record_idle_timeout(&self) {
        self.idle_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed by the concurrent-connection cap.
    pub fn record_over_cap(&self) {
        self.over_cap.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one reactor event-loop iteration.
    pub fn record_reactor_poll(&self) {
        self.reactor_polls.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections admitted so far (the CI smoke compares this against
    /// requests served to prove keep-alive reuse).
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Keep-alive reuses recorded so far.
    pub fn keepalive_reuses(&self) -> u64 {
        self.keepalive_reuses.load(Ordering::Relaxed)
    }

    /// The worker-panic counter, cloned into the pool at construction so
    /// respawns show up here without a callback.
    pub fn worker_panics_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.worker_panics)
    }

    /// Pool workers that died panicking (each one was respawned).
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Raises the in-flight gauge for the lifetime of the returned guard.
    pub fn track_in_flight(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { metrics: self }
    }

    /// The current in-flight gauge value.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Renders every counter in Prometheus text exposition format,
    /// folding in the artifact-cache, shared-input, and query-engine
    /// counters plus — when a distributed-work coordinator is attached —
    /// the `accelwall_work_*` series.
    pub fn render(
        &self,
        cache: CacheStats,
        ctx: CtxCounters,
        query: &QueryStats,
        resp: &RespCacheStats,
        work: Option<&WorkStats>,
    ) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("# TYPE accelwall_requests_total counter\n");
        for (route, stats) in Route::ALL.iter().zip(&self.per_route) {
            let _ = writeln!(
                out,
                "accelwall_requests_total{{route=\"{}\"}} {}",
                route.label(),
                stats.requests.load(Ordering::Relaxed)
            );
        }
        out.push_str("# TYPE accelwall_request_latency_seconds_sum counter\n");
        for (route, stats) in Route::ALL.iter().zip(&self.per_route) {
            let _ = writeln!(
                out,
                "accelwall_request_latency_seconds_sum{{route=\"{}\"}} {}",
                route.label(),
                stats.latency_ns.load(Ordering::Relaxed) as f64 / 1e9
            );
        }
        out.push_str("# TYPE accelwall_responses_total counter\n");
        for (status, count) in self
            .responses
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            let _ = writeln!(
                out,
                "accelwall_responses_total{{status=\"{status}\"}} {count}"
            );
        }
        out.push_str("# TYPE accelwall_in_flight_requests gauge\n");
        let _ = writeln!(
            out,
            "accelwall_in_flight_requests {}",
            self.in_flight.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE accelwall_connections_rejected_total counter\n");
        let _ = writeln!(
            out,
            "accelwall_connections_rejected_total {}",
            self.rejected.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE accelwall_connections counter\n");
        for (name, value) in [
            (
                "connections_total",
                self.connections.load(Ordering::Relaxed),
            ),
            (
                "keepalive_reuses_total",
                self.keepalive_reuses.load(Ordering::Relaxed),
            ),
            (
                "pipelined_requests_total",
                self.pipelined.load(Ordering::Relaxed),
            ),
            (
                "idle_timeouts_total",
                self.idle_timeouts.load(Ordering::Relaxed),
            ),
            (
                "connections_over_cap_total",
                self.over_cap.load(Ordering::Relaxed),
            ),
            (
                "reactor_polls_total",
                self.reactor_polls.load(Ordering::Relaxed),
            ),
        ] {
            let _ = writeln!(out, "accelwall_{name} {value}");
        }
        out.push_str("# TYPE accelwall_open_connections gauge\n");
        let _ = writeln!(
            out,
            "accelwall_open_connections {}",
            self.open_connections.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE accelwall_response_cache counter\n");
        for (name, value) in [
            ("hits_total", resp.hits),
            ("misses_total", resp.misses),
            ("insertions_total", resp.insertions),
            ("evictions_total", resp.evictions),
        ] {
            let _ = writeln!(out, "accelwall_response_cache_{name} {value}");
        }
        out.push_str("# TYPE accelwall_response_cache_bytes gauge\n");
        let _ = writeln!(out, "accelwall_response_cache_bytes {}", resp.bytes);
        out.push_str("# TYPE accelwall_response_cache_entries gauge\n");
        let _ = writeln!(out, "accelwall_response_cache_entries {}", resp.entries);
        out.push_str("# TYPE accelwall_response_cache_capacity_bytes gauge\n");
        let _ = writeln!(
            out,
            "accelwall_response_cache_capacity_bytes {}",
            resp.capacity_bytes
        );
        out.push_str("# TYPE accelwall_artifact_cache counter\n");
        let _ = writeln!(
            out,
            "accelwall_artifact_cache_requests_total {}",
            cache.requests
        );
        let _ = writeln!(out, "accelwall_artifact_cache_hits_total {}", cache.hits);
        let _ = writeln!(
            out,
            "accelwall_artifact_cache_misses_total {}",
            cache.misses()
        );
        let _ = writeln!(
            out,
            "accelwall_artifact_cache_computes_total {}",
            cache.computes
        );
        let _ = writeln!(
            out,
            "accelwall_artifact_cache_retries_total {}",
            cache.retries
        );
        let _ = writeln!(
            out,
            "accelwall_artifact_cache_panics_contained_total {}",
            cache.panics_contained
        );
        let _ = writeln!(
            out,
            "accelwall_artifact_cache_compute_timeouts_total {}",
            cache.timeouts
        );
        out.push_str("# TYPE accelwall_query counter\n");
        for (name, value) in [
            ("cache_hits_total", query.cache.hits),
            ("cache_misses_total", query.cache.misses),
            ("cache_insertions_total", query.cache.insertions),
            ("cache_evictions_total", query.cache.evictions),
            ("cache_oversize_total", query.cache.oversize),
            ("computes_total", query.computes),
            ("shed_total", query.shed),
        ] {
            let _ = writeln!(out, "accelwall_query_{name} {value}");
        }
        out.push_str("# TYPE accelwall_query_cache_bytes gauge\n");
        let _ = writeln!(out, "accelwall_query_cache_bytes {}", query.cache.bytes);
        out.push_str("# TYPE accelwall_query_cache_entries gauge\n");
        let _ = writeln!(out, "accelwall_query_cache_entries {}", query.cache.entries);
        out.push_str("# TYPE accelwall_query_cache_capacity_bytes gauge\n");
        let _ = writeln!(
            out,
            "accelwall_query_cache_capacity_bytes {}",
            query.cache.capacity_bytes
        );
        out.push_str("# TYPE accelwall_query_in_flight_cost gauge\n");
        let _ = writeln!(out, "accelwall_query_in_flight_cost {}", query.in_flight);
        out.push_str("# TYPE accelwall_worker_panics_total counter\n");
        let _ = writeln!(
            out,
            "accelwall_worker_panics_total {}",
            self.worker_panics.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE accelwall_faults_armed gauge\n");
        let _ = writeln!(
            out,
            "accelwall_faults_armed {}",
            u8::from(accelwall_faults::is_armed())
        );
        if accelwall_faults::is_armed() {
            out.push_str("# TYPE accelwall_fault_injections_total counter\n");
            for site in accelwall_faults::report() {
                let _ = writeln!(
                    out,
                    "accelwall_fault_injections_total{{site=\"{}\",kind=\"{}\"}} {}",
                    site.site, site.kind, site.fired
                );
            }
        }
        out.push_str("# TYPE accelwall_ctx counter\n");
        for (name, value) in [
            ("corpus_computes", ctx.corpus_computes),
            ("corpus_requests", ctx.corpus_requests),
            ("fit_computes", ctx.fit_computes),
            ("fit_requests", ctx.fit_requests),
            ("model_computes", ctx.model_computes),
            ("model_requests", ctx.model_requests),
            ("sweep_computes", ctx.sweep_computes),
            ("sweep_requests", ctx.sweep_requests),
            ("dfg_computes", ctx.dfg_computes),
            ("dfg_requests", ctx.dfg_requests),
            ("program_requests", ctx.program_requests),
        ] {
            let _ = writeln!(out, "accelwall_ctx_{name} {value}");
        }
        out.push_str("# TYPE accelwall_dfg_lowerings_total counter\n");
        let _ = writeln!(out, "accelwall_dfg_lowerings_total {}", ctx.lowerings);
        out.push_str("# TYPE accelwall_dfg_program_nodes gauge\n");
        let _ = writeln!(out, "accelwall_dfg_program_nodes {}", ctx.program_nodes);
        out.push_str("# TYPE accelwall_dfg_program_edges gauge\n");
        let _ = writeln!(out, "accelwall_dfg_program_edges {}", ctx.program_edges);
        out.push_str("# TYPE accelwall_dfg_program_bytes gauge\n");
        let _ = writeln!(out, "accelwall_dfg_program_bytes {}", ctx.program_bytes);
        out.push_str("# TYPE accelwall_par_workers gauge\n");
        let _ = writeln!(out, "accelwall_par_workers {}", accelwall_par::workers());
        out.push_str("# TYPE accelwall_par_jobs_total counter\n");
        let _ = writeln!(
            out,
            "accelwall_par_jobs_total {}",
            accelwall_par::jobs_total()
        );
        out.push_str("# TYPE accelwall_par_steals_total counter\n");
        let _ = writeln!(
            out,
            "accelwall_par_steals_total {}",
            accelwall_par::steals_total()
        );
        if let Some(work) = work {
            out.push_str("# TYPE accelwall_work gauge\n");
            for (name, value) in [
                ("units_total", work.units_total),
                ("units_done", work.units_done),
                ("units_outstanding", work.units_outstanding),
                ("workers_alive", work.workers_alive),
                ("workers_quarantined", work.workers_quarantined),
            ] {
                let _ = writeln!(out, "accelwall_work_{name} {value}");
            }
            out.push_str("# TYPE accelwall_work counter\n");
            for (name, value) in [
                ("leases_total", work.leases_total),
                ("completions_total", work.completions_total),
                (
                    "duplicate_completions_total",
                    work.duplicate_completions_total,
                ),
                ("reissues_total", work.reissues_total),
                ("hedges_total", work.hedges_total),
                ("heartbeats_total", work.heartbeats_total),
                ("unit_failures_total", work.unit_failures_total),
                ("local_units_total", work.local_units_total),
            ] {
                let _ = writeln!(out, "accelwall_work_{name} {value}");
            }
        }
        out
    }
}

/// RAII guard decrementing the in-flight gauge on drop.
#[derive(Debug)]
pub struct InFlightGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_stats() -> CacheStats {
        CacheStats {
            requests: 3,
            hits: 2,
            computes: 1,
            retries: 4,
            panics_contained: 5,
            timeouts: 6,
        }
    }

    fn empty_ctx() -> CtxCounters {
        CtxCounters {
            corpus_computes: 1,
            corpus_requests: 4,
            fit_computes: 0,
            fit_requests: 0,
            model_computes: 1,
            model_requests: 2,
            sweep_computes: 0,
            sweep_requests: 0,
            dfg_computes: 0,
            dfg_requests: 0,
            lowerings: 3,
            program_requests: 7,
            program_nodes: 1200,
            program_edges: 2400,
            program_bytes: 65536,
        }
    }

    #[test]
    fn observe_accumulates_per_route_and_per_status() {
        let m = Metrics::new();
        m.observe(Route::Healthz, 200, Duration::from_millis(2));
        m.observe(Route::Healthz, 200, Duration::from_millis(3));
        m.observe(Route::Experiment, 404, Duration::from_millis(1));
        let text = m.render(
            empty_stats(),
            empty_ctx(),
            &QueryStats::default(),
            &RespCacheStats::default(),
            None,
        );
        assert!(text.contains("accelwall_requests_total{route=\"/healthz\"} 2"));
        assert!(text.contains("accelwall_requests_total{route=\"/experiments/{id}\"} 1"));
        assert!(text.contains("accelwall_responses_total{status=\"200\"} 2"));
        assert!(text.contains("accelwall_responses_total{status=\"404\"} 1"));
        assert!(text.contains("accelwall_request_latency_seconds_sum{route=\"/healthz\"} 0.005"));
    }

    #[test]
    fn in_flight_gauge_tracks_guard_lifetime() {
        let m = Metrics::new();
        assert_eq!(m.in_flight(), 0);
        {
            let _a = m.track_in_flight();
            let _b = m.track_in_flight();
            assert_eq!(m.in_flight(), 2);
        }
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn render_folds_in_cache_and_ctx_counters() {
        let m = Metrics::new();
        m.record_rejected();
        let text = m.render(
            empty_stats(),
            empty_ctx(),
            &QueryStats::default(),
            &RespCacheStats::default(),
            None,
        );
        assert!(text.contains("accelwall_connections_rejected_total 1"));
        assert!(text.contains("accelwall_artifact_cache_hits_total 2"));
        assert!(text.contains("accelwall_artifact_cache_misses_total 1"));
        assert!(text.contains("accelwall_artifact_cache_retries_total 4"));
        assert!(text.contains("accelwall_artifact_cache_panics_contained_total 5"));
        assert!(text.contains("accelwall_artifact_cache_compute_timeouts_total 6"));
        assert!(text.contains("accelwall_ctx_corpus_computes 1"));
        assert!(text.contains("accelwall_ctx_sweep_requests 0"));
        assert!(text.contains("accelwall_ctx_dfg_computes 0"));
        assert!(text.contains("accelwall_ctx_program_requests 7"));
        assert!(text.contains("accelwall_dfg_lowerings_total 3"));
        assert!(text.contains("accelwall_dfg_program_nodes 1200"));
        assert!(text.contains("accelwall_dfg_program_edges 2400"));
        assert!(text.contains("accelwall_dfg_program_bytes 65536"));
    }

    #[test]
    fn render_exposes_the_compute_pool_series() {
        let text = Metrics::new().render(
            empty_stats(),
            empty_ctx(),
            &QueryStats::default(),
            &RespCacheStats::default(),
            None,
        );
        for series in [
            "accelwall_par_workers ",
            "accelwall_par_jobs_total ",
            "accelwall_par_steals_total ",
        ] {
            assert!(text.contains(series), "missing {series}");
        }
    }

    #[test]
    fn worker_panic_counter_is_shared_with_the_pool_side() {
        let m = Metrics::new();
        assert_eq!(m.worker_panics(), 0);
        // The pool holds a clone and increments it on respawn; simulate.
        m.worker_panics_counter().fetch_add(2, Ordering::SeqCst);
        assert_eq!(m.worker_panics(), 2);
        let text = m.render(
            empty_stats(),
            empty_ctx(),
            &QueryStats::default(),
            &RespCacheStats::default(),
            None,
        );
        assert!(text.contains("accelwall_worker_panics_total 2"));
        // No plan is armed in unit tests: the gauge says so and no
        // injection lines render.
        assert!(text.contains("accelwall_faults_armed 0"));
        assert!(!text.contains("accelwall_fault_injections_total"));
    }

    #[test]
    fn reactor_and_response_cache_series_render() {
        let m = Metrics::new();
        m.record_connection_opened();
        m.record_connection_opened();
        m.record_connection_closed();
        m.record_keepalive_reuse();
        m.record_pipelined();
        m.record_idle_timeout();
        m.record_over_cap();
        m.record_reactor_poll();
        assert_eq!(m.connections(), 2);
        assert_eq!(m.keepalive_reuses(), 1);
        let resp = RespCacheStats {
            hits: 9,
            misses: 3,
            insertions: 3,
            evictions: 1,
            entries: 2,
            bytes: 4096,
            capacity_bytes: 65536,
        };
        let text = m.render(
            empty_stats(),
            empty_ctx(),
            &QueryStats::default(),
            &resp,
            None,
        );
        assert!(text.contains("accelwall_connections_total 2"));
        assert!(text.contains("accelwall_open_connections 1"));
        assert!(text.contains("accelwall_keepalive_reuses_total 1"));
        assert!(text.contains("accelwall_pipelined_requests_total 1"));
        assert!(text.contains("accelwall_idle_timeouts_total 1"));
        assert!(text.contains("accelwall_connections_over_cap_total 1"));
        assert!(text.contains("accelwall_reactor_polls_total 1"));
        assert!(text.contains("accelwall_response_cache_hits_total 9"));
        assert!(text.contains("accelwall_response_cache_misses_total 3"));
        assert!(text.contains("accelwall_response_cache_evictions_total 1"));
        assert!(text.contains("accelwall_response_cache_bytes 4096"));
        assert!(text.contains("accelwall_response_cache_capacity_bytes 65536"));
    }

    #[test]
    fn work_series_render_only_when_a_coordinator_is_attached() {
        let m = Metrics::new();
        let without = m.render(
            empty_stats(),
            empty_ctx(),
            &QueryStats::default(),
            &RespCacheStats::default(),
            None,
        );
        assert!(!without.contains("accelwall_work_"));
        let stats = WorkStats {
            units_total: 8,
            units_done: 5,
            units_outstanding: 3,
            workers_alive: 2,
            workers_quarantined: 1,
            leases_total: 9,
            completions_total: 5,
            duplicate_completions_total: 1,
            reissues_total: 2,
            hedges_total: 1,
            heartbeats_total: 12,
            unit_failures_total: 2,
            local_units_total: 0,
        };
        let with = m.render(
            empty_stats(),
            empty_ctx(),
            &QueryStats::default(),
            &RespCacheStats::default(),
            Some(&stats),
        );
        assert!(with.contains("accelwall_work_units_total 8"));
        assert!(with.contains("accelwall_work_units_outstanding 3"));
        assert!(with.contains("accelwall_work_workers_quarantined 1"));
        assert!(with.contains("accelwall_work_reissues_total 2"));
        assert!(with.contains("accelwall_work_hedges_total 1"));
        assert!(with.contains("accelwall_work_duplicate_completions_total 1"));
    }
}
