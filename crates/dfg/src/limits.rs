//! Table II: the theoretical time/space complexity limits of the three
//! chip-specialization concepts applied to the three processing components.
//!
//! Section V-B derives, for each (concept, component) pair, the asymptotic
//! limit of the corresponding hardware structure in terms of DFG
//! quantities: `|V|`, `|E|`, `|V_IN|`, `|V_OUT|`, depth `D`, and the
//! largest working set `max|WS_s|`. This module encodes those bounds
//! symbolically — so they can be printed exactly as the paper's Table II —
//! and numerically, by evaluating the symbolic term on a concrete graph's
//! [`DfgStats`].

use crate::analysis::DfgStats;
use crate::concepts::{Component, SpecializationConcept};
use std::fmt;

/// A symbolic complexity term over the paper's DFG quantities.
#[derive(Debug, Clone, PartialEq)]
pub enum Complexity {
    /// Constant: Θ(1).
    One,
    /// Θ(|V|).
    V,
    /// Θ(|E|).
    E,
    /// Θ(D).
    D,
    /// Θ(|V_IN|).
    VIn,
    /// Θ(max|WS_s|).
    MaxWs,
    /// Θ(log(max|WS_s|)).
    LogMaxWs,
    /// Θ(2^|V_IN| · |V_OUT|) — the exhaustive lookup-table "super node".
    ExpInTimesOut,
    /// Product of two terms.
    Product(Box<Complexity>, Box<Complexity>),
}

impl Complexity {
    /// Convenience product constructor.
    pub fn product(a: Complexity, b: Complexity) -> Complexity {
        Complexity::Product(Box::new(a), Box::new(b))
    }

    /// Evaluates the term on a concrete graph's statistics. Logarithms are
    /// natural-log clamped below at 1 (a 1-entry working set still needs a
    /// wire); the exponential term saturates at `f64::MAX`.
    pub fn evaluate(&self, stats: &DfgStats) -> f64 {
        match self {
            Complexity::One => 1.0,
            Complexity::V => stats.vertices as f64,
            Complexity::E => stats.edges as f64,
            Complexity::D => stats.depth as f64,
            Complexity::VIn => stats.inputs as f64,
            Complexity::MaxWs => stats.max_working_set as f64,
            Complexity::LogMaxWs => (stats.max_working_set.max(2) as f64).ln().max(1.0),
            Complexity::ExpInTimesOut => {
                let bits = stats.inputs as f64;
                if bits > 1000.0 {
                    f64::MAX
                } else {
                    2f64.powf(bits) * stats.outputs as f64
                }
            }
            Complexity::Product(a, b) => a.evaluate(stats) * b.evaluate(stats),
        }
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn inner(c: &Complexity, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match c {
                Complexity::One => write!(f, "1"),
                Complexity::V => write!(f, "|V|"),
                Complexity::E => write!(f, "|E|"),
                Complexity::D => write!(f, "D"),
                Complexity::VIn => write!(f, "|V_IN|"),
                Complexity::MaxWs => write!(f, "max|WS_s|"),
                Complexity::LogMaxWs => write!(f, "log(max|WS_s|)"),
                Complexity::ExpInTimesOut => write!(f, "2^|V_IN|·|V_OUT|"),
                Complexity::Product(a, b) => {
                    inner(a, f)?;
                    write!(f, "·")?;
                    inner(b, f)
                }
            }
        }
        write!(f, "Θ(")?;
        inner(self, f)?;
        write!(f, ")")
    }
}

/// The time and space limit of one Table II cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptLimit {
    /// Which concept the limit describes.
    pub concept: SpecializationConcept,
    /// Which processing component it is applied to.
    pub component: Component,
    /// Asymptotic time limit.
    pub time: Complexity,
    /// Asymptotic space limit.
    pub space: Complexity,
}

/// Returns the Table II limit for a (concept, component) pair.
///
/// ```
/// use accelwall_dfg::{concept_limit, Component, SpecializationConcept};
///
/// let l = concept_limit(SpecializationConcept::Heterogeneity, Component::Computation);
/// assert_eq!(l.time.to_string(), "Θ(|V_IN|)");
/// assert_eq!(l.space.to_string(), "Θ(2^|V_IN|·|V_OUT|)");
/// ```
pub fn concept_limit(concept: SpecializationConcept, component: Component) -> ConceptLimit {
    use Complexity as C;
    use Component::{Communication, Computation, Memory};
    use SpecializationConcept::{Heterogeneity, Partitioning, Simplification};
    let (time, space) = match (component, concept) {
        // Memory row.
        (Memory, Simplification) => (C::product(C::V, C::LogMaxWs), C::MaxWs),
        (Memory, Heterogeneity) => (C::D, C::E),
        (Memory, Partitioning) => (C::product(C::D, C::LogMaxWs), C::MaxWs),
        // Communication row.
        (Communication, Simplification) => (C::E, C::V),
        (Communication, Heterogeneity) => (C::D, C::E),
        (Communication, Partitioning) => (C::D, C::MaxWs),
        // Computation row.
        (Computation, Simplification) => (C::E, C::One),
        (Computation, Heterogeneity) => (C::VIn, C::ExpInTimesOut),
        (Computation, Partitioning) => (C::D, C::MaxWs),
    };
    ConceptLimit {
        concept,
        component,
        time,
        space,
    }
}

/// All nine Table II cells, row-major (memory, communication, computation)
/// × (simplification, heterogeneity, partitioning).
pub fn table2() -> Vec<ConceptLimit> {
    Component::all()
        .iter()
        .flat_map(|&component| {
            SpecializationConcept::all()
                .iter()
                .map(move |&concept| concept_limit(concept, component))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, Op};

    fn stats() -> DfgStats {
        let mut b = DfgBuilder::new("t");
        let xs: Vec<_> = (0..8).map(|i| b.input(format!("x{i}"))).collect();
        let r = b.reduce(Op::Add, &xs);
        b.output("o", r);
        b.build().unwrap().stats()
    }

    #[test]
    fn table_has_nine_cells() {
        let t = table2();
        assert_eq!(t.len(), 9);
        let distinct: std::collections::HashSet<_> = t
            .iter()
            .map(|l| (format!("{:?}", l.concept), format!("{:?}", l.component)))
            .collect();
        assert_eq!(distinct.len(), 9);
    }

    #[test]
    fn memory_simplification_formula() {
        let l = concept_limit(SpecializationConcept::Simplification, Component::Memory);
        assert_eq!(l.time.to_string(), "Θ(|V|·log(max|WS_s|))");
        assert_eq!(l.space.to_string(), "Θ(max|WS_s|)");
        let s = stats();
        let t = l.time.evaluate(&s);
        assert!((t - s.vertices as f64 * (s.max_working_set as f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn computation_heterogeneity_is_exponential_in_inputs() {
        let l = concept_limit(SpecializationConcept::Heterogeneity, Component::Computation);
        let s = stats(); // 8 inputs, 1 output
        assert_eq!(l.space.evaluate(&s), 256.0);
        assert_eq!(l.time.evaluate(&s), 8.0);
    }

    #[test]
    fn computation_simplification_constant_space() {
        let l = concept_limit(
            SpecializationConcept::Simplification,
            Component::Computation,
        );
        assert_eq!(l.space, Complexity::One);
        assert_eq!(l.space.evaluate(&stats()), 1.0);
        assert_eq!(l.time, Complexity::E);
    }

    #[test]
    fn partitioning_time_is_depth_everywhere() {
        for &component in Component::all() {
            let l = concept_limit(SpecializationConcept::Partitioning, component);
            let time = l.time.to_string();
            assert!(
                time.starts_with("Θ(D"),
                "{component:?} partitioning time should be depth-bound: {time}"
            );
        }
    }

    #[test]
    fn heterogeneity_trades_space_for_depth_time() {
        // For memory and communication, heterogeneity reaches Θ(D) time at
        // Θ(|E|) space — strictly more space than partitioning's working-set
        // bound on graphs with reconvergent fan-in.
        for &component in &[Component::Memory, Component::Communication] {
            let het = concept_limit(SpecializationConcept::Heterogeneity, component);
            assert_eq!(het.time, Complexity::D);
            assert_eq!(het.space, Complexity::E);
        }
    }

    #[test]
    fn exponential_term_saturates() {
        let mut s = stats();
        s.inputs = 5000;
        let l = concept_limit(SpecializationConcept::Heterogeneity, Component::Computation);
        assert_eq!(l.space.evaluate(&s), f64::MAX);
    }

    #[test]
    fn display_round_trips_all_cells() {
        for cell in table2() {
            let t = cell.time.to_string();
            let s = cell.space.to_string();
            assert!(t.starts_with("Θ(") && t.ends_with(')'));
            assert!(s.starts_with("Θ(") && s.ends_with(')'));
        }
    }
}
