//! Case-study experiments: the empirical figures of Sections II and IV
//! (Bitcoin, video decoders, GPUs, FPGA CNNs) and the §IV-E insights.

use accelwall_studies::{bitcoin, fpga, gpu, insights, video};

use super::{outln, push_series, series_json};
use crate::cache::Ctx;
use crate::error::Result;
use crate::experiment::{Artifact, Experiment};
use crate::json::Value;

/// Fig. 1 — Bitcoin mining ASIC evolution.
pub struct Fig1;

impl Experiment for Fig1 {
    fn id(&self) -> &'static str {
        "fig1"
    }

    fn description(&self) -> &'static str {
        "Bitcoin mining ASIC evolution (GH/s/mm2 CSR series)"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let series = bitcoin::fig1_series()?;
        let mut text = String::new();
        push_series(
            &mut text,
            "Fig. 1 — Bitcoin mining ASIC evolution (vs first 130nm ASIC, SHA256 GH/s/mm2)",
            &series,
        );
        if let Some(last) = series.rows.last() {
            outln!(text);
            outln!(
                text,
                "peak performance {:.0}x | transistor performance {:.0}x | final CSR {:.2}x",
                series.peak_reported(),
                series.peak_physical(),
                last.csr
            );
        }
        Ok(Artifact::new(series_json(&series), text))
    }
}

/// Fig. 4 — video decoder ASICs: performance, hardware budget,
/// efficiency.
pub struct Fig4;

impl Experiment for Fig4 {
    fn id(&self) -> &'static str {
        "fig4"
    }

    fn description(&self) -> &'static str {
        "video decoder ASICs: performance, budget, efficiency"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let perf = video::performance_series()?;
        let ee = video::efficiency_series()?;
        let chips = video::decoder_chips();
        let json = Value::object([
            ("performance", series_json(&perf)),
            ("efficiency", series_json(&ee)),
            (
                "budget",
                chips
                    .iter()
                    .map(|c| {
                        Value::object([
                            ("label", Value::from(c.label)),
                            ("node", Value::from(c.node.to_string())),
                            ("transistors", Value::from(c.transistors())),
                            ("freq_mhz", Value::from(c.freq_mhz)),
                        ])
                    })
                    .collect(),
            ),
        ]);
        let mut text = String::new();
        push_series(
            &mut text,
            "Fig. 4a — video decoder ASIC performance (MPixels/s vs ISSCC2006)",
            &perf,
        );
        outln!(text);
        outln!(text, "Fig. 4b — hardware budget");
        outln!(
            text,
            "{:<14} {:>6} {:>14} {:>10}",
            "chip",
            "node",
            "transistors",
            "freq MHz"
        );
        for c in &chips {
            let tc = c
                .transistors()
                .map_or_else(|| "undisclosed".to_string(), |t| format!("{t:.2e}"));
            outln!(
                text,
                "{:<14} {:>6} {:>14} {:>10.0}",
                c.label,
                c.node.to_string(),
                tc,
                c.freq_mhz
            );
        }
        outln!(text);
        push_series(
            &mut text,
            "Fig. 4c — video decoder ASIC energy efficiency (MPixels/J)",
            &ee,
        );
        Ok(Artifact::new(json, text))
    }
}

/// Fig. 5 — GPU frame-rate gains across five games.
pub struct Fig5;

impl Experiment for Fig5 {
    fn id(&self) -> &'static str {
        "fig5"
    }

    fn description(&self) -> &'static str {
        "GPU frame rates across five games"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let games = gpu::fig5_games();
        let mut panels = Vec::new();
        for game in &games {
            let perf = gpu::performance_series(game)?;
            let ee = gpu::efficiency_series(game)?;
            panels.push((game.title, perf, ee));
        }
        let json = panels
            .iter()
            .map(|(title, perf, ee)| {
                Value::object([
                    ("game", Value::from(*title)),
                    ("performance", series_json(perf)),
                    ("efficiency", series_json(ee)),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(text, "Fig. 5 — GPU frame rates (Apps 1-5)");
        for (title, perf, ee) in &panels {
            if let (Some(last_perf), Some(last_ee)) = (perf.rows.last(), ee.rows.last()) {
                outln!(
                    text,
                    "{:<24} perf x{:.2} (CSR {:.2}) | frames/J x{:.2} (CSR {:.2})",
                    title,
                    last_perf.reported_gain,
                    last_perf.csr,
                    last_ee.reported_gain,
                    last_ee.csr
                );
            }
        }
        Ok(Artifact::new(json, text))
    }
}

/// Fig. 8 — CNN accelerators on FPGAs (AlexNet and VGG16).
pub struct Fig8;

impl Experiment for Fig8 {
    fn id(&self) -> &'static str {
        "fig8"
    }

    fn description(&self) -> &'static str {
        "CNNs on FPGAs: AlexNet and VGG16 series"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        use fpga::CnnModel;
        let mut pairs = Vec::new();
        let mut models = Vec::new();
        for model in [CnnModel::AlexNet, CnnModel::Vgg16] {
            let perf = fpga::performance_series(model)?;
            let ee = fpga::efficiency_series(model)?;
            pairs.push((
                model.to_string(),
                Value::object([
                    ("performance", series_json(&perf)),
                    ("efficiency", series_json(&ee)),
                ]),
            ));
            models.push((model, perf, ee));
        }
        let mut text = String::new();
        for (model, perf, ee) in &models {
            push_series(
                &mut text,
                &format!("Fig. 8 — {model} on FPGAs: performance (GOPS gain)"),
                perf,
            );
            outln!(
                text,
                "peak perf {:.1}x, peak CSR {:.1}x, best-chip CSR {:.1}x",
                perf.peak_reported(),
                perf.peak_csr(),
                perf.csr_of_best_chip()
            );
            outln!(
                text,
                "{model} efficiency: peak {:.1}x (GOP/J)",
                ee.peak_reported()
            );
            outln!(text);
        }
        Ok(Artifact::new(Value::object(pairs), text))
    }
}

/// Fig. 9 — Bitcoin mining across CPU/GPU/FPGA/ASIC platforms.
pub struct Fig9;

impl Experiment for Fig9 {
    fn id(&self) -> &'static str {
        "fig9"
    }

    fn description(&self) -> &'static str {
        "Bitcoin mining across platforms"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let perf = bitcoin::fig9_performance_series()?;
        let ee = bitcoin::fig9_efficiency_series()?;
        let json = Value::object([
            ("performance", series_json(&perf)),
            ("efficiency", series_json(&ee)),
        ]);
        let mut text = String::new();
        push_series(
            &mut text,
            "Fig. 9a — Bitcoin mining, all platforms (GH/s/mm2 vs Athlon 64)",
            &perf,
        );
        outln!(text);
        push_series(
            &mut text,
            "Fig. 9b — Bitcoin mining energy efficiency (GH/J)",
            &ee,
        );
        Ok(Artifact::new(json, text))
    }
}

/// Section IV-E — the paper's observations, recomputed from the data.
pub struct Insights;

impl Experiment for Insights {
    fn id(&self) -> &'static str {
        "insights"
    }

    fn description(&self) -> &'static str {
        "Section IV-E observations, recomputed"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let list = insights::section4e_insights()?;
        let json = list
            .iter()
            .map(|i| {
                Value::object([
                    ("title", Value::from(i.title)),
                    ("claim", Value::from(i.claim)),
                    ("holds", Value::from(i.holds)),
                    (
                        "evidence",
                        i.evidence
                            .iter()
                            .map(|(l, v)| {
                                Value::object([
                                    ("label", Value::from(l.as_str())),
                                    ("value", Value::from(*v)),
                                ])
                            })
                            .collect(),
                    ),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(
            text,
            "Section IV-E — observations and insights, recomputed:"
        );
        for i in &list {
            outln!(text);
            outln!(
                text,
                "* {} [{}]",
                i.title,
                if i.holds { "HOLDS" } else { "VIOLATED" }
            );
            outln!(text, "  claim: {}", i.claim);
            for (label, v) in &i.evidence {
                outln!(text, "    {label:<40} {v:>10.2}");
            }
        }
        Ok(Artifact::new(json, text))
    }
}
