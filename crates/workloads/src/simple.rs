//! The SHOC microbenchmarks: Triad (TRD) and Reduction (RED).

use accelwall_dfg::{Dfg, DfgBuilder, Op};

/// STREAM-style triad: `out[i] = b[i] + s · c[i]` over `n` elements.
///
/// The canonical bandwidth-bound kernel: `n` independent multiply-add
/// lanes, depth 2, no reconvergence — maximal partitioning headroom.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn build_triad(n: usize) -> Dfg {
    assert!(n > 0, "triad needs at least one element");
    let mut b = DfgBuilder::new(format!("trd_n{n}"));
    let s = b.input("s");
    for i in 0..n {
        let bi = b.input(format!("b{i}"));
        let ci = b.input(format!("c{i}"));
        let m = b.op(Op::Mul, &[s, ci]);
        let a = b.op(Op::Add, &[bi, m]);
        b.output(format!("a{i}"), a);
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("triad graph is structurally valid")
}

/// Reference triad kernel.
pub fn triad_reference(s: f64, bs: &[f64], cs: &[f64]) -> Vec<f64> {
    bs.iter().zip(cs).map(|(b, c)| b + s * c).collect()
}

/// Parallel sum reduction of `n` inputs through a balanced adder tree.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn build_reduction(n: usize) -> Dfg {
    assert!(n > 0, "reduction needs at least one element");
    let mut b = DfgBuilder::new(format!("red_n{n}"));
    let xs: Vec<_> = (0..n).map(|i| b.input(format!("x{i}"))).collect();
    let sum = b.reduce(Op::Add, &xs);
    b.output("sum", sum);
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("reduction graph is structurally valid")
}

/// Reference reduction kernel.
pub fn reduction_reference(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn triad_matches_reference() {
        let n = 16;
        let g = build_triad(n);
        let s = 2.5;
        let bs: Vec<f64> = (0..n).map(|i| i as f64 * 0.75).collect();
        let cs: Vec<f64> = (0..n).map(|i| (i as f64 - 3.0) * 1.25).collect();
        let mut inputs = HashMap::from([("s".to_string(), s)]);
        for i in 0..n {
            inputs.insert(format!("b{i}"), bs[i]);
            inputs.insert(format!("c{i}"), cs[i]);
        }
        let out = g.evaluate(&inputs).unwrap();
        let expected = triad_reference(s, &bs, &cs);
        for (i, e) in expected.iter().enumerate() {
            assert!((out[&format!("a{i}")] - e).abs() < 1e-12);
        }
    }

    #[test]
    fn triad_shape() {
        let s = build_triad(64).stats();
        assert_eq!(s.inputs, 129);
        assert_eq!(s.outputs, 64);
        assert_eq!(s.computes, 128);
        assert_eq!(s.depth, 4); // input, mul, add, output
    }

    #[test]
    fn reduction_matches_reference() {
        let n = 37; // deliberately not a power of two
        let g = build_reduction(n);
        let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let inputs: HashMap<String, f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &v)| (format!("x{i}"), v))
            .collect();
        let out = g.evaluate(&inputs).unwrap();
        assert!((out["sum"] - reduction_reference(&xs)).abs() < 1e-9);
    }

    #[test]
    fn reduction_depth_is_logarithmic() {
        let s = build_reduction(128).stats();
        assert_eq!(s.computes, 127);
        // in, 7 adder levels, out.
        assert_eq!(s.depth, 9);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_size_panics() {
        let _ = build_reduction(0);
    }
}
