//! NWN: Needleman-Wunsch global sequence alignment.
//!
//! The dynamic-programming recurrence
//! `H[i][j] = max(H[i-1][j-1] + s(i,j), H[i-1][j] + gap, H[i][j-1] + gap)`
//! produces the classic anti-diagonal *wavefront* dependence structure:
//! parallelism grows along the diagonal and the depth is `m + n` — the
//! antithesis of the embarrassingly parallel kernels, which is exactly why
//! the paper includes it.

use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};

/// Builds the NW scoring DFG for sequences of length `m` and `n`.
///
/// Inputs: the substitution scores `s{i}_{j}` (for 1-based cell `(i, j)`),
/// the gap penalty `gap`, and the precomputed boundary rows/columns
/// `h0_{j}` / `h{i}_0`. Output: the full scoring-matrix corner `score`
/// (= `H[m][n]`) plus the final row `hrow{j}` for traceback consumers.
///
/// # Panics
///
/// Panics if `m == 0` or `n == 0`.
#[allow(clippy::needless_range_loop)] // wavefront indexes the DP matrix
pub fn build(m: usize, n: usize) -> Dfg {
    assert!(m > 0 && n > 0, "sequences must be non-empty");
    let mut b = DfgBuilder::new(format!("nwn_{m}x{n}"));
    let gap = b.input("gap");
    // Boundary conditions as inputs (H[0][j] and H[i][0]).
    let mut h: Vec<Vec<NodeId>> = vec![vec![gap; n + 1]; m + 1];
    for (j, cell) in h[0].iter_mut().enumerate() {
        *cell = b.input(format!("h0_{j}"));
    }
    for i in 1..=m {
        h[i][0] = b.input(format!("h{i}_0"));
    }
    for i in 1..=m {
        for j in 1..=n {
            let s = b.input(format!("s{i}_{j}"));
            let diag = b.op(Op::Add, &[h[i - 1][j - 1], s]);
            let up = b.op(Op::Add, &[h[i - 1][j], gap]);
            let left = b.op(Op::Add, &[h[i][j - 1], gap]);
            let m1 = b.op(Op::Max, &[diag, up]);
            h[i][j] = b.op(Op::Max, &[m1, left]);
        }
    }
    for j in 1..=n {
        b.output(format!("hrow{j}"), h[m][j]);
    }
    b.output("score", h[m][n]);
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("nwn graph is structurally valid")
}

/// Reference NW scoring matrix; returns `H` of shape `(m+1) × (n+1)`.
pub fn nw_reference(scores: &[Vec<f64>], gap: f64) -> Vec<Vec<f64>> {
    let m = scores.len();
    let n = scores[0].len();
    let mut h = vec![vec![0.0; n + 1]; m + 1];
    for (j, cell) in h[0].iter_mut().enumerate() {
        *cell = gap * j as f64;
    }
    for i in 1..=m {
        h[i][0] = gap * i as f64;
        for j in 1..=n {
            h[i][j] = (h[i - 1][j - 1] + scores[i - 1][j - 1])
                .max(h[i - 1][j] + gap)
                .max(h[i][j - 1] + gap);
        }
    }
    h
}

/// Match/mismatch substitution score for two residues.
pub fn substitution(a: u8, c: u8, match_score: f64, mismatch: f64) -> f64 {
    if a == c {
        match_score
    } else {
        mismatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn matches_reference_alignment() {
        let (m, n) = (6, 5);
        let gap = -2.0;
        let a = b"GATTAC";
        let c = b"GCATG";
        let scores: Vec<Vec<f64>> = (0..m)
            .map(|i| {
                (0..n)
                    .map(|j| substitution(a[i], c[j], 3.0, -1.0))
                    .collect()
            })
            .collect();
        let g = build(m, n);
        let mut inputs = HashMap::from([("gap".to_string(), gap)]);
        for j in 0..=n {
            inputs.insert(format!("h0_{j}"), gap * j as f64);
        }
        for i in 1..=m {
            inputs.insert(format!("h{i}_0"), gap * i as f64);
        }
        for i in 1..=m {
            for j in 1..=n {
                inputs.insert(format!("s{i}_{j}"), scores[i - 1][j - 1]);
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        let h = nw_reference(&scores, gap);
        assert!((out["score"] - h[m][n]).abs() < 1e-12);
        for j in 1..=n {
            assert!((out[&format!("hrow{j}")] - h[m][j]).abs() < 1e-12);
        }
    }

    #[test]
    fn wavefront_depth_scales_with_m_plus_n() {
        // The DP chain forces depth ~ 3*(m+n): each cell adds two max
        // levels and an add level along the critical path.
        let s8 = build(8, 8).stats();
        let s4 = build(4, 4).stats();
        assert!(
            s8.depth > s4.depth + 8,
            "depth {} vs {}",
            s8.depth,
            s4.depth
        );
    }

    #[test]
    fn wavefront_serializes_the_critical_path() {
        // Unlike the stencils (constant depth regardless of grid size),
        // the DP chain threads through every cell on the main diagonal:
        // at least 3 dependent ops per diagonal step.
        let s = build(8, 8).stats();
        assert!(
            s.depth > 3 * 8,
            "depth {} too shallow for a wavefront",
            s.depth
        );
    }
}
