//! One benchmark group per evaluation figure: each benchmark regenerates
//! the figure's data series end to end, so `cargo bench` both times the
//! analysis stack and proves every figure still reproduces.

use accelerator_wall::prelude::*;
use accelerator_wall::{cmos, studies};
use accelwall_bench::harness::Criterion;
use accelwall_bench::{criterion_group, criterion_main};
use std::hint::black_box;

fn fig01_bitcoin_evolution(c: &mut Criterion) {
    c.bench_function("fig01_bitcoin_evolution", |b| {
        b.iter(|| {
            let s = studies::bitcoin::fig1_series().unwrap();
            assert!(s.peak_reported() > 300.0);
            black_box(s.peak_csr())
        });
    });
}

fn fig03a_device_scaling(c: &mut Criterion) {
    c.bench_function("fig03a_device_scaling", |b| {
        b.iter(|| black_box(cmos::fig3a_series().len()));
    });
}

fn fig03b_transistor_fit(c: &mut Criterion) {
    // Corpus generation + log-log regression over 2613 records.
    c.bench_function("fig03b_transistor_fit", |b| {
        b.iter(|| {
            let corpus = CorpusSpec::paper_scale().generate();
            let fit = accelerator_wall::chipdb::fit::transistor_density_fit(&corpus).unwrap();
            assert!((fit.exponent - 0.877).abs() < 0.05);
            black_box(fit.coefficient)
        });
    });
}

fn fig03c_tdp_fit(c: &mut Criterion) {
    let corpus = CorpusSpec::paper_scale().generate();
    c.bench_function("fig03c_tdp_fit", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &group in NodeGroup::all() {
                if let Ok(fit) = accelerator_wall::chipdb::fit::tdp_fit(&corpus, group) {
                    acc += fit.exponent;
                }
            }
            black_box(acc)
        });
    });
}

fn fig03d_chip_gains(c: &mut Criterion) {
    let model = PotentialModel::paper();
    c.bench_function("fig03d_chip_gains", |b| {
        b.iter(|| {
            let rows = fig3d_grid(&model);
            assert_eq!(rows.len(), 144);
            black_box(rows.last().unwrap().throughput_gain)
        });
    });
}

fn fig04_video_decoders(c: &mut Criterion) {
    c.bench_function("fig04_video_decoders", |b| {
        b.iter(|| {
            let p = studies::video::performance_series().unwrap();
            let e = studies::video::efficiency_series().unwrap();
            black_box(p.peak_reported() + e.peak_reported())
        });
    });
}

fn fig05_gpu_frames(c: &mut Criterion) {
    c.bench_function("fig05_gpu_frames", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for game in studies::gpu::fig5_games() {
                acc += studies::gpu::performance_series(&game)
                    .unwrap()
                    .peak_reported();
                acc += studies::gpu::efficiency_series(&game)
                    .unwrap()
                    .peak_reported();
            }
            black_box(acc)
        });
    });
}

fn fig06_07_arch_matrix(c: &mut Criterion) {
    c.bench_function("fig06_07_arch_matrix", |b| {
        b.iter(|| {
            let perf = studies::gpu::arch_relation_matrix(false).unwrap();
            let ee = studies::gpu::arch_relation_matrix(true).unwrap();
            assert_eq!(perf.architectures().len(), 10);
            black_box(ee.gain("Pascal", "Tesla").unwrap())
        });
    });
}

fn fig08_fpga_cnn(c: &mut Criterion) {
    use studies::fpga::CnnModel;
    c.bench_function("fig08_fpga_cnn", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for model in [CnnModel::AlexNet, CnnModel::Vgg16] {
                acc += studies::fpga::performance_series(model).unwrap().peak_csr();
                acc += studies::fpga::efficiency_series(model).unwrap().peak_csr();
            }
            black_box(acc)
        });
    });
}

fn fig09_bitcoin_platforms(c: &mut Criterion) {
    c.bench_function("fig09_bitcoin_platforms", |b| {
        b.iter(|| {
            let p = studies::bitcoin::fig9_performance_series().unwrap();
            let e = studies::bitcoin::fig9_efficiency_series().unwrap();
            assert!(p.peak_reported() > 1e5);
            black_box(e.peak_reported())
        });
    });
}

fn fig13_stencil_sweep(c: &mut Criterion) {
    let dfg = Workload::S3d.default_instance();
    let space = SweepSpace::table3();
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.bench_function("fig13_stencil_sweep", |b| {
        b.iter(|| {
            let points = run_sweep(&dfg, &space).unwrap();
            assert_eq!(points.len(), 1820);
            black_box(points.len())
        });
    });
    group.finish();
}

fn fig14_attribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    group.bench_function("fig14_attribution_coarse", |b| {
        b.iter(|| black_box(accelwall_bench::fig14_grid(&SweepSpace::coarse())));
    });
    group.finish();
}

fn fig15_16_projections(c: &mut Criterion) {
    c.bench_function("fig15_perf_projection", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &d in Domain::all() {
                acc += accelerator_wall(d, TargetMetric::Performance)
                    .unwrap()
                    .linear_wall;
            }
            black_box(acc)
        });
    });
    c.bench_function("fig16_ee_projection", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &d in Domain::all() {
                acc += accelerator_wall(d, TargetMetric::EnergyEfficiency)
                    .unwrap()
                    .log_wall;
            }
            black_box(acc)
        });
    });
}

/// Shared fast-bench configuration: the regeneration paths are
/// deterministic analytics, so a handful of samples with short warmup
/// measures them faithfully while keeping `cargo bench` CI-friendly.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = figures;
    config = fast();
    targets = fig01_bitcoin_evolution,
    fig03a_device_scaling,
    fig03b_transistor_fit,
    fig03c_tdp_fit,
    fig03d_chip_gains,
    fig04_video_decoders,
    fig05_gpu_frames,
    fig06_07_arch_matrix,
    fig08_fpga_cnn,
    fig09_bitcoin_platforms,
    fig13_stencil_sweep,
    fig14_attribution,
    fig15_16_projections
}
criterion_main!(figures);
