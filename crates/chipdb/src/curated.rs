//! A curated table of well-known real chips.
//!
//! Independent spot checks for the synthetic corpus: these are famous,
//! publicly documented parts whose die size, transistor count, TDP, and
//! node are widely reported. The unit tests verify that the paper's
//! published Fig. 3b law predicts their transistor counts to within the
//! scatter visible in the figure (about a factor of three either way).

use crate::{ChipKind, ChipRecord};
use accelwall_cmos::TechNode;

/// Rows: (name, kind, node, die mm², transistors, TDP W, MHz, year).
#[allow(clippy::type_complexity)] // literal datasheet rows
const CURATED: &[(&str, ChipKind, TechNode, f64, f64, f64, f64, u32)] = &[
    // CPUs.
    (
        "Athlon 64 3400+",
        ChipKind::Cpu,
        TechNode::N130,
        193.0,
        105.9e6,
        89.0,
        2400.0,
        2003,
    ),
    (
        "Pentium 4 Northwood",
        ChipKind::Cpu,
        TechNode::N130,
        146.0,
        55.0e6,
        68.0,
        2800.0,
        2002,
    ),
    (
        "Core 2 Duo E6600",
        ChipKind::Cpu,
        TechNode::N65,
        143.0,
        291.0e6,
        65.0,
        2400.0,
        2006,
    ),
    (
        "Phenom X4 9950",
        ChipKind::Cpu,
        TechNode::N65,
        285.0,
        450.0e6,
        140.0,
        2600.0,
        2008,
    ),
    (
        "Core i7-920",
        ChipKind::Cpu,
        TechNode::N45,
        263.0,
        731.0e6,
        130.0,
        2660.0,
        2008,
    ),
    (
        "Core i7-2600K",
        ChipKind::Cpu,
        TechNode::N32,
        216.0,
        1.16e9,
        95.0,
        3400.0,
        2011,
    ),
    (
        "FX-8350",
        ChipKind::Cpu,
        TechNode::N32,
        315.0,
        1.2e9,
        125.0,
        4000.0,
        2012,
    ),
    (
        "Core i7-4770K",
        ChipKind::Cpu,
        TechNode::N22,
        177.0,
        1.4e9,
        84.0,
        3500.0,
        2013,
    ),
    (
        "Core i7-6700K",
        ChipKind::Cpu,
        TechNode::N14,
        122.0,
        1.75e9,
        91.0,
        4000.0,
        2015,
    ),
    (
        "Ryzen 7 1800X",
        ChipKind::Cpu,
        TechNode::N14,
        213.0,
        4.8e9,
        95.0,
        3600.0,
        2017,
    ),
    (
        "Xeon Platinum 8180",
        ChipKind::Cpu,
        TechNode::N14,
        694.0,
        8.0e9,
        205.0,
        2500.0,
        2017,
    ),
    // GPUs.
    (
        "GeForce 8800 GTX (G80)",
        ChipKind::Gpu,
        TechNode::N90,
        484.0,
        681.0e6,
        155.0,
        575.0,
        2006,
    ),
    (
        "GeForce GTX 280 (GT200)",
        ChipKind::Gpu,
        TechNode::N65,
        576.0,
        1.4e9,
        236.0,
        602.0,
        2008,
    ),
    (
        "Radeon HD 5870 (Cypress)",
        ChipKind::Gpu,
        TechNode::N40,
        334.0,
        2.15e9,
        188.0,
        850.0,
        2009,
    ),
    (
        "GeForce GTX 480 (GF100)",
        ChipKind::Gpu,
        TechNode::N40,
        529.0,
        3.0e9,
        250.0,
        700.0,
        2010,
    ),
    (
        "GeForce GTX 680 (GK104)",
        ChipKind::Gpu,
        TechNode::N28,
        294.0,
        3.54e9,
        195.0,
        1006.0,
        2012,
    ),
    (
        "Radeon R9 290X (Hawaii)",
        ChipKind::Gpu,
        TechNode::N28,
        438.0,
        6.2e9,
        290.0,
        1000.0,
        2013,
    ),
    (
        "GeForce GTX 980 (GM204)",
        ChipKind::Gpu,
        TechNode::N28,
        398.0,
        5.2e9,
        165.0,
        1126.0,
        2014,
    ),
    (
        "GeForce GTX Titan X (GM200)",
        ChipKind::Gpu,
        TechNode::N28,
        601.0,
        8.0e9,
        250.0,
        1000.0,
        2015,
    ),
    (
        "Radeon RX 480 (Polaris 10)",
        ChipKind::Gpu,
        TechNode::N14,
        232.0,
        5.7e9,
        150.0,
        1266.0,
        2016,
    ),
    (
        "GeForce GTX 1080 (GP104)",
        ChipKind::Gpu,
        TechNode::N16,
        314.0,
        7.2e9,
        180.0,
        1607.0,
        2016,
    ),
    (
        "Tesla P100 (GP100)",
        ChipKind::Gpu,
        TechNode::N16,
        610.0,
        15.3e9,
        300.0,
        1328.0,
        2016,
    ),
    (
        "Titan V (GV100)",
        ChipKind::Gpu,
        TechNode::N12,
        815.0,
        21.1e9,
        250.0,
        1200.0,
        2017,
    ),
];

/// Returns the curated real-chip table.
pub fn curated_chips() -> Vec<ChipRecord> {
    CURATED
        .iter()
        .map(|&(name, kind, node, area, tc, tdp, mhz, year)| ChipRecord {
            name: name.to_string(),
            kind,
            node,
            die_area_mm2: area,
            transistors: tc,
            tdp_w: tdp,
            freq_mhz: mhz,
            year,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{transistor_density_fit, PAPER_TC_LAW};

    #[test]
    fn table_is_nonempty_and_distinct() {
        let chips = curated_chips();
        assert!(chips.len() >= 20);
        let names: std::collections::HashSet<_> = chips.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names.len(), chips.len());
    }

    #[test]
    fn paper_law_predicts_curated_counts_within_scatter() {
        // Fig. 3b shows roughly half a decade of scatter around the fit;
        // accept a factor of 3.5 either way for individual chips.
        for chip in curated_chips() {
            let predicted = PAPER_TC_LAW.eval(chip.density_factor());
            let ratio = chip.transistors / predicted;
            assert!(
                (1.0 / 3.5..=3.5).contains(&ratio),
                "{}: predicted {predicted:.2e}, actual {:.2e} (ratio {ratio:.2})",
                chip.name,
                chip.transistors
            );
        }
    }

    #[test]
    fn fitting_real_chips_lands_near_paper_exponent() {
        // 23 famous chips are a coarse sample, but the fitted exponent
        // should land in the same sub-linear regime as the paper's 0.877.
        let fit = transistor_density_fit(&curated_chips()).unwrap();
        assert!(
            (0.7..1.05).contains(&fit.exponent),
            "exponent {}",
            fit.exponent
        );
    }

    #[test]
    fn newer_chips_have_more_transistors_per_area() {
        let chips = curated_chips();
        let old = chips.iter().find(|c| c.name.contains("Athlon")).unwrap();
        let new = chips.iter().find(|c| c.name.contains("Titan V")).unwrap();
        let old_density = old.transistors / old.die_area_mm2;
        let new_density = new.transistors / new.die_area_mm2;
        assert!(new_density / old_density > 20.0);
    }
}
