//! SHA-256 — the Bitcoin mining kernel, as an extension workload.
//!
//! The paper's Bitcoin study (Figs. 1 and 9) treats miners empirically;
//! this module makes their *computation* available to the simulator: the
//! full SHA-256 compression function as a dataflow graph — 64 rounds of
//! 32-bit adds, rotates, and bitwise choice/majority logic plus the
//! message-schedule expansion. Together with the miner dataset it enables
//! a cross-validation experiment (see `examples/sha256_miner_model.rs`):
//! does simulating this DFG across the miner nodes reproduce the
//! empirically observed per-area gains?
//!
//! Conventions: all words are 32-bit values carried in `f64`s (exact);
//! modular addition is an `Add` followed by an `And` with the `mask32`
//! input; round constants `k{t}` and shift amounts `c{n}` enter as inputs,
//! like every other constant in this DFG formalism.

use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};
use std::collections::HashMap;

/// SHA-256 round constants.
// FIPS 180-4 writes these without digit separators; keep them verbatim
// so they can be eyeball-diffed against the spec.
#[allow(clippy::unreadable_literal)]
pub const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 initial hash values.
#[allow(clippy::unreadable_literal)]
pub const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// The distinct shift amounts SHA-256 uses (rotations contribute both
/// `n` and `32 - n`), deduplicated and sorted.
fn shift_amounts() -> Vec<u32> {
    let mut set: Vec<u32> = [2u32, 3, 6, 7, 10, 11, 13, 15, 17, 18, 19, 22, 25]
        .iter()
        .flat_map(|&n| [n, 32 - n])
        .collect();
    set.sort_unstable();
    set.dedup();
    set
}

struct Words {
    mask32: NodeId,
    shifts: HashMap<u32, NodeId>,
}

impl Words {
    fn shift(&self, n: u32) -> NodeId {
        self.shifts[&n]
    }
}

fn add32(b: &mut DfgBuilder, w: &Words, x: NodeId, y: NodeId) -> NodeId {
    let sum = b.op(Op::Add, &[x, y]);
    b.op(Op::And, &[sum, w.mask32])
}

fn rotr(b: &mut DfgBuilder, w: &Words, x: NodeId, n: u32) -> NodeId {
    let right = b.op(Op::Shr, &[x, w.shift(n)]);
    let left = b.op(Op::Shl, &[x, w.shift(32 - n)]);
    let left = b.op(Op::And, &[left, w.mask32]);
    b.op(Op::Or, &[right, left])
}

fn shr(b: &mut DfgBuilder, w: &Words, x: NodeId, n: u32) -> NodeId {
    b.op(Op::Shr, &[x, w.shift(n)])
}

fn xor3(b: &mut DfgBuilder, x: NodeId, y: NodeId, z: NodeId) -> NodeId {
    let xy = b.op(Op::Xor, &[x, y]);
    b.op(Op::Xor, &[xy, z])
}

/// Builds the SHA-256 compression DFG over one 512-bit block with the
/// given number of `rounds` (64 = full SHA-256).
///
/// Inputs: message words `m0..m15`, chaining values `h0..h7`, round
/// constants `k0..k{rounds-1}`, the 32-bit mask `mask32`, and shift
/// amounts `c{n}`. Outputs: the updated chaining values `out0..out7`.
///
/// # Panics
///
/// Panics if `rounds` is 0 or exceeds 64.
pub fn build(rounds: usize) -> Dfg {
    assert!((1..=64).contains(&rounds), "SHA-256 has 1..=64 rounds");
    let mut b = DfgBuilder::new(format!("sha256_r{rounds}"));
    let mask32 = b.input("mask32");
    let mut shifts = HashMap::new();
    for n in shift_amounts() {
        shifts.insert(n, b.input(format!("c{n}")));
    }
    let w = Words { mask32, shifts };

    // Message schedule.
    let mut sched: Vec<NodeId> = (0..16).map(|i| b.input(format!("m{i}"))).collect();
    for t in 16..rounds {
        let s0 = {
            let r7 = rotr(&mut b, &w, sched[t - 15], 7);
            let r18 = rotr(&mut b, &w, sched[t - 15], 18);
            let s3 = shr(&mut b, &w, sched[t - 15], 3);
            xor3(&mut b, r7, r18, s3)
        };
        let s1 = {
            let r17 = rotr(&mut b, &w, sched[t - 2], 17);
            let r19 = rotr(&mut b, &w, sched[t - 2], 19);
            let s10 = shr(&mut b, &w, sched[t - 2], 10);
            xor3(&mut b, r17, r19, s10)
        };
        let a1 = add32(&mut b, &w, sched[t - 16], s0);
        let a2 = add32(&mut b, &w, a1, sched[t - 7]);
        let wt = add32(&mut b, &w, a2, s1);
        sched.push(wt);
    }

    // Working state.
    let iv: Vec<NodeId> = (0..8).map(|i| b.input(format!("h{i}"))).collect();
    let ks: Vec<NodeId> = (0..rounds).map(|t| b.input(format!("k{t}"))).collect();
    let (mut a, mut bb, mut c, mut d, mut e, mut f, mut g, mut h) =
        (iv[0], iv[1], iv[2], iv[3], iv[4], iv[5], iv[6], iv[7]);

    for t in 0..rounds {
        let sigma1 = {
            let r6 = rotr(&mut b, &w, e, 6);
            let r11 = rotr(&mut b, &w, e, 11);
            let r25 = rotr(&mut b, &w, e, 25);
            xor3(&mut b, r6, r11, r25)
        };
        let ch = {
            let ef = b.op(Op::And, &[e, f]);
            let ne = b.op(Op::Not, &[e]);
            let neg = b.op(Op::And, &[ne, g]);
            b.op(Op::Xor, &[ef, neg])
        };
        let t1 = {
            let x = add32(&mut b, &w, h, sigma1);
            let x = add32(&mut b, &w, x, ch);
            let x = add32(&mut b, &w, x, ks[t]);
            add32(&mut b, &w, x, sched[t])
        };
        let sigma0 = {
            let r2 = rotr(&mut b, &w, a, 2);
            let r13 = rotr(&mut b, &w, a, 13);
            let r22 = rotr(&mut b, &w, a, 22);
            xor3(&mut b, r2, r13, r22)
        };
        let maj = {
            let ab = b.op(Op::And, &[a, bb]);
            let ac = b.op(Op::And, &[a, c]);
            let bc = b.op(Op::And, &[bb, c]);
            xor3(&mut b, ab, ac, bc)
        };
        let t2 = add32(&mut b, &w, sigma0, maj);

        h = g;
        g = f;
        f = e;
        e = add32(&mut b, &w, d, t1);
        d = c;
        c = bb;
        bb = a;
        a = add32(&mut b, &w, t1, t2);
    }

    // Final chaining addition.
    for (i, (&ivw, &sw)) in iv.iter().zip([a, bb, c, d, e, f, g, h].iter()).enumerate() {
        let out = add32(&mut b, &w, ivw, sw);
        b.output(format!("out{i}"), out);
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("sha-256 graph is structurally valid")
}

/// The input map for evaluating the DFG: message words, chaining values,
/// and all constants.
pub fn inputs(message: &[u32; 16], chain: &[u32; 8], rounds: usize) -> HashMap<String, f64> {
    let mut m = HashMap::new();
    m.insert("mask32".to_string(), f64::from(u32::MAX));
    for n in shift_amounts() {
        m.insert(format!("c{n}"), f64::from(n));
    }
    for (i, &w) in message.iter().enumerate() {
        m.insert(format!("m{i}"), f64::from(w));
    }
    for (i, &h) in chain.iter().enumerate() {
        m.insert(format!("h{i}"), f64::from(h));
    }
    for (t, &k) in K.iter().take(rounds).enumerate() {
        m.insert(format!("k{t}"), f64::from(k));
    }
    m
}

/// Builds the Bitcoin mining double-SHA256 structure: two chained
/// 64-round compressions, as a miner core evaluates per nonce (the second
/// compression hashes the first digest padded to a block). The digest of
/// stage one feeds message words `m0..m7` of stage two; padding words are
/// inputs (`pad8..pad15`), chaining values are the standard IV.
///
/// The resulting graph has twice the depth of a single compression — the
/// structural reason mining cores pipeline two hash engines back to back.
pub fn build_double() -> Dfg {
    let mut b = DfgBuilder::new("sha256d");
    let mask32 = b.input("mask32");
    let mut shifts = HashMap::new();
    for n in shift_amounts() {
        shifts.insert(n, b.input(format!("c{n}")));
    }
    let w = Words { mask32, shifts };

    let stage = |b: &mut DfgBuilder,
                 w: &Words,
                 sched_init: Vec<NodeId>,
                 iv: Vec<NodeId>,
                 ks: &[NodeId]|
     -> Vec<NodeId> {
        let mut sched = sched_init;
        for t in 16..64 {
            let s0 = {
                let r7 = rotr(b, w, sched[t - 15], 7);
                let r18 = rotr(b, w, sched[t - 15], 18);
                let s3 = shr(b, w, sched[t - 15], 3);
                xor3(b, r7, r18, s3)
            };
            let s1 = {
                let r17 = rotr(b, w, sched[t - 2], 17);
                let r19 = rotr(b, w, sched[t - 2], 19);
                let s10 = shr(b, w, sched[t - 2], 10);
                xor3(b, r17, r19, s10)
            };
            let a1 = add32(b, w, sched[t - 16], s0);
            let a2 = add32(b, w, a1, sched[t - 7]);
            let wt = add32(b, w, a2, s1);
            sched.push(wt);
        }
        let (mut a, mut bb, mut c, mut d, mut e, mut f, mut g, mut h) =
            (iv[0], iv[1], iv[2], iv[3], iv[4], iv[5], iv[6], iv[7]);
        for t in 0..64 {
            let sigma1 = {
                let r6 = rotr(b, w, e, 6);
                let r11 = rotr(b, w, e, 11);
                let r25 = rotr(b, w, e, 25);
                xor3(b, r6, r11, r25)
            };
            let ch = {
                let ef = b.op(Op::And, &[e, f]);
                let ne = b.op(Op::Not, &[e]);
                let neg = b.op(Op::And, &[ne, g]);
                b.op(Op::Xor, &[ef, neg])
            };
            let t1 = {
                let x = add32(b, w, h, sigma1);
                let x = add32(b, w, x, ch);
                let x = add32(b, w, x, ks[t]);
                add32(b, w, x, sched[t])
            };
            let sigma0 = {
                let r2 = rotr(b, w, a, 2);
                let r13 = rotr(b, w, a, 13);
                let r22 = rotr(b, w, a, 22);
                xor3(b, r2, r13, r22)
            };
            let maj = {
                let ab = b.op(Op::And, &[a, bb]);
                let ac = b.op(Op::And, &[a, c]);
                let bc = b.op(Op::And, &[bb, c]);
                xor3(b, ab, ac, bc)
            };
            let t2 = add32(b, w, sigma0, maj);
            h = g;
            g = f;
            f = e;
            e = add32(b, w, d, t1);
            d = c;
            c = bb;
            bb = a;
            a = add32(b, w, t1, t2);
        }
        iv.iter()
            .zip([a, bb, c, d, e, f, g, h])
            .map(|(&ivw, sw)| add32(b, w, ivw, sw))
            .collect()
    };

    let m1: Vec<NodeId> = (0..16).map(|i| b.input(format!("m{i}"))).collect();
    let iv1: Vec<NodeId> = (0..8).map(|i| b.input(format!("h{i}"))).collect();
    let ks: Vec<NodeId> = (0..64).map(|t| b.input(format!("k{t}"))).collect();
    let digest1 = stage(&mut b, &w, m1, iv1.clone(), &ks);

    let mut m2 = digest1;
    for i in 8..16 {
        m2.push(b.input(format!("pad{i}")));
    }
    let digest2 = stage(&mut b, &w, m2, iv1, &ks);
    for (i, &d) in digest2.iter().enumerate() {
        b.output(format!("out{i}"), d);
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("sha256d graph is structurally valid")
}

/// Reference double SHA-256 over one block: compress, pad the digest to a
/// block, compress again (chaining both stages from the same `chain`).
pub fn double_reference(message: &[u32; 16], chain: &[u32; 8]) -> [u32; 8] {
    let first = compress_reference(message, chain, 64);
    let mut second_block = [0u32; 16];
    second_block[..8].copy_from_slice(&first);
    second_block[8] = 0x8000_0000;
    second_block[15] = 256; // 8 words of message
    compress_reference(&second_block, chain, 64)
}

/// Reference SHA-256 compression function with `rounds` rounds.
pub fn compress_reference(message: &[u32; 16], chain: &[u32; 8], rounds: usize) -> [u32; 8] {
    let mut w = [0u32; 64];
    w[..16].copy_from_slice(message);
    for t in 16..rounds {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }
    let mut s = *chain;
    for t in 0..rounds {
        let sigma1 = s[4].rotate_right(6) ^ s[4].rotate_right(11) ^ s[4].rotate_right(25);
        let ch = (s[4] & s[5]) ^ (!s[4] & s[6]);
        let t1 = s[7]
            .wrapping_add(sigma1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let sigma0 = s[0].rotate_right(2) ^ s[0].rotate_right(13) ^ s[0].rotate_right(22);
        let maj = (s[0] & s[1]) ^ (s[0] & s[2]) ^ (s[1] & s[2]);
        let t2 = sigma0.wrapping_add(maj);
        s = [
            t1.wrapping_add(t2),
            s[0],
            s[1],
            s[2],
            t1.wrapping_add(s[3]),
            s[4],
            s[5],
            s[6],
        ];
    }
    let mut out = [0u32; 8];
    for i in 0..8 {
        out[i] = chain[i].wrapping_add(s[i]);
    }
    out
}

/// Full single-block SHA-256 of a short (< 56 byte) message: pads per
/// FIPS 180-4 and compresses once. Returns the 8-word digest.
pub fn sha256_short(data: &[u8]) -> [u32; 8] {
    assert!(data.len() < 56, "single-block helper");
    let mut block = [0u8; 64];
    block[..data.len()].copy_from_slice(data);
    block[data.len()] = 0x80;
    let bits = (data.len() as u64) * 8;
    block[56..].copy_from_slice(&bits.to_be_bytes());
    let mut words = [0u32; 16];
    for (i, w) in words.iter_mut().enumerate() {
        // lint:allow(no-panic-paths): the slice is exactly 4 bytes by construction of the range
        *w = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"));
    }
    compress_reference(&words, &H0, 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_dfg(message: &[u32; 16], chain: &[u32; 8], rounds: usize) -> [u32; 8] {
        let g = build(rounds);
        let out = g.evaluate(&inputs(message, chain, rounds)).unwrap();
        let mut digest = [0u32; 8];
        for (i, d) in digest.iter_mut().enumerate() {
            *d = out[&format!("out{i}")] as u32;
        }
        digest
    }

    #[test]
    #[allow(clippy::unreadable_literal)] // digits verbatim from FIPS 180-4
    fn fips_vector_abc() {
        // SHA-256("abc") = ba7816bf 8f01cfea 414140de 5dae2223
        //                  b00361a3 96177a9c b410ff61 f20015ad
        let expected: [u32; 8] = [
            0xba7816bf, 0x8f01cfea, 0x414140de, 0x5dae2223, 0xb00361a3, 0x96177a9c, 0xb410ff61,
            0xf20015ad,
        ];
        assert_eq!(sha256_short(b"abc"), expected);
    }

    #[test]
    #[allow(clippy::unreadable_literal)] // digits verbatim from FIPS 180-4
    fn fips_vector_empty() {
        // SHA-256("") = e3b0c442 98fc1c14 9afbf4c8 996fb924 ...
        let d = sha256_short(b"");
        assert_eq!(d[0], 0xe3b0c442);
        assert_eq!(d[7], 0x7852b855);
    }

    #[test]
    fn dfg_matches_reference_full_rounds() {
        // Build the "abc" padded block and compress through the DFG.
        let mut block = [0u8; 64];
        block[..3].copy_from_slice(b"abc");
        block[3] = 0x80;
        block[56..].copy_from_slice(&(24u64).to_be_bytes());
        let mut words = [0u32; 16];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
        }
        assert_eq!(run_dfg(&words, &H0, 64), sha256_short(b"abc"));
    }

    #[test]
    fn dfg_matches_reference_partial_rounds() {
        let message: [u32; 16] = core::array::from_fn(|i| (i as u32).wrapping_mul(0x9e37_79b9));
        for rounds in [1usize, 8, 16, 17, 32, 48] {
            assert_eq!(
                run_dfg(&message, &H0, rounds),
                compress_reference(&message, &H0, rounds),
                "rounds = {rounds}"
            );
        }
    }

    #[test]
    fn double_sha_matches_reference() {
        let message: [u32; 16] = core::array::from_fn(|i| (i as u32).wrapping_mul(0x0123_4567));
        let g = build_double();
        let mut ins = inputs(&message, &H0, 64);
        // Second-stage padding: digest (8 words) + 0x80... + length 256.
        let mut pad = [0u32; 16];
        pad[8] = 0x8000_0000;
        pad[15] = 256;
        for (i, &p) in pad.iter().enumerate().skip(8) {
            ins.insert(format!("pad{i}"), f64::from(p));
        }
        let out = g.evaluate(&ins).unwrap();
        let expected = double_reference(&message, &H0);
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(out[&format!("out{i}")] as u32, e, "word {i}");
        }
    }

    #[test]
    fn double_sha_doubles_the_pipeline_depth() {
        let single = build(64).stats();
        let double = build_double().stats();
        assert!(double.depth as f64 > 1.8 * single.depth as f64);
        assert!(double.computes > 2 * single.computes - 200);
    }

    #[test]
    fn graph_is_bitwise_dominated() {
        // A mining core is adds and boolean lattice: no multipliers.
        let g = build(64);
        let has_mul = g.compute_ids().iter().any(|&id| {
            matches!(
                g.node(id).kind,
                accelwall_dfg::NodeKind::Compute(Op::Mul | Op::Div)
            )
        });
        assert!(!has_mul);
        let s = g.stats();
        assert!(
            s.computes > 2000,
            "full SHA-256 is a big graph: {}",
            s.computes
        );
        // The round recurrence serializes: depth scales with rounds.
        assert!(s.depth > 300, "depth {}", s.depth);
    }

    #[test]
    fn round_chain_limits_parallelism() {
        // Unlike the stencils, doubling rounds roughly doubles depth.
        let d16 = build(16).stats().depth;
        let d32 = build(32).stats().depth;
        let d64 = build(64).stats().depth;
        assert!(d32 as f64 > 1.6 * d16 as f64);
        assert!(d64 as f64 > 1.6 * d32 as f64);
    }
}
