//! ASIC video decoders (Fig. 4): the specialization stack end to end.
//!
//! Twelve fabricated decoder chips, ISSCC 2006 through JSSC 2017,
//! reconstructed from the published papers the study cites \[27\]–\[38\].
//! Performance is decoding throughput (MPixels/s), efficiency is
//! MPixels/J; the hardware budget is reported as NAND-gate logic plus
//! on-chip SRAM, from which transistor counts are estimated exactly as the
//! paper does (4 transistors per NAND gate, 6 per SRAM bit).

use crate::Result;
use accelwall_cmos::TechNode;
use accelwall_csr::CsrSeries;

/// One published decoder ASIC.
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderChip {
    /// Venue-year label, as on the Fig. 4 axis.
    pub label: &'static str,
    /// Process node.
    pub node: TechNode,
    /// Decoding throughput in MPixels/s.
    pub mpixels_per_s: f64,
    /// Core power in milliwatts.
    pub power_mw: f64,
    /// Logic complexity in kilo NAND gates.
    pub logic_kgates: f64,
    /// On-chip SRAM in kilobytes (`None` when the paper did not disclose
    /// it — those chips are omitted from the Fig. 4b budget panel).
    pub sram_kb: Option<f64>,
    /// Core clock in MHz.
    pub freq_mhz: f64,
    /// Die (core) area in mm².
    pub die_mm2: f64,
}

impl DecoderChip {
    /// Estimated transistors: 4 per NAND gate + 6 per SRAM bit.
    /// Returns `None` when the SRAM size was not disclosed.
    pub fn transistors(&self) -> Option<f64> {
        self.sram_kb
            .map(|kb| self.logic_kgates * 1e3 * 4.0 + kb * 1024.0 * 8.0 * 6.0)
    }

    /// Energy efficiency in MPixels/J.
    pub fn mpixels_per_joule(&self) -> f64 {
        self.mpixels_per_s / (self.power_mw * 1e-3)
    }
}

/// The twelve-chip dataset, in chronological order.
pub fn decoder_chips() -> Vec<DecoderChip> {
    // (label, node, MPix/s, mW, kgates, SRAM KB, MHz, die mm²)
    // Sources: [27] Lin ISSCC'06 H.264 HDTV; [28] Chien ISSCC'07
    // multi-standard; [29] Zhou VLSI'09 1080p60; [30] Chuang ISSCC'10
    // quad-HD/3D; [31] Zhou JSSC'11 530 MPix/s; [32] Tsung ISSCC'11 3DTV
    // STB; [33] Zhou ISSCC'12 Super Hi-Vision; [34] Tikekar ISSCC'13 HEVC;
    // [35] Ju ESSCIRC'14 0.2 nJ/pixel; [36] Ju JSSC'16 codec LSI;
    // [37] Ju ESSCIRC'16 VP9; [38] Zhou JSSC'17 8K HEVC.
    #[allow(clippy::type_complexity)] // literal datasheet rows
    let rows: [(&str, TechNode, f64, f64, f64, Option<f64>, f64, f64); 12] = [
        (
            "ISSCC2006",
            TechNode::N180,
            30.0,
            180.0,
            160.0,
            Some(4.5),
            120.0,
            7.0,
        ),
        (
            "ISSCC2007",
            TechNode::N130,
            62.0,
            71.0,
            252.0,
            Some(9.0),
            135.0,
            8.0,
        ),
        (
            "VLSI2009",
            TechNode::N90,
            124.0,
            60.0,
            314.0,
            Some(30.0),
            150.0,
            6.0,
        ),
        (
            "ISSCC2010",
            TechNode::N65,
            249.0,
            59.5,
            414.0,
            Some(74.0),
            180.0,
            7.0,
        ),
        (
            "JSSC2011",
            TechNode::N90,
            530.0,
            198.0,
            662.0,
            Some(80.0),
            200.0,
            10.0,
        ),
        (
            "ISSCC2011",
            TechNode::N40,
            1106.0,
            170.0,
            1000.0,
            Some(140.0),
            270.0,
            12.0,
        ),
        (
            "ISSCC2012",
            TechNode::N65,
            1750.0,
            410.0,
            1300.0,
            Some(450.0),
            280.0,
            21.0,
        ),
        (
            "ISSCC2013",
            TechNode::N40,
            249.0,
            76.0,
            446.0,
            None,
            200.0,
            1.77,
        ),
        (
            "ESSCIRC2014",
            TechNode::N28,
            498.0,
            100.0,
            880.0,
            Some(164.0),
            300.0,
            4.0,
        ),
        (
            "JSSC2016",
            TechNode::N28,
            498.0,
            250.0,
            1200.0,
            Some(210.0),
            330.0,
            5.0,
        ),
        (
            "ESSCIRC2016",
            TechNode::N28,
            498.0,
            95.0,
            940.0,
            None,
            310.0,
            2.6,
        ),
        (
            "JSSC2017",
            TechNode::N40,
            1990.0,
            690.0,
            2900.0,
            Some(450.0),
            400.0,
            16.0,
        ),
    ];
    rows.iter()
        .map(
            |&(label, node, mpix, mw, kgates, sram, mhz, die)| DecoderChip {
                label,
                node,
                mpixels_per_s: mpix,
                power_mw: mw,
                logic_kgates: kgates,
                sram_kb: sram,
                freq_mhz: mhz,
                die_mm2: die,
            },
        )
        .collect()
}

/// Physical throughput potential of a decoder relative to the 2006
/// baseline: transistors × clock, scaled — the paper's "more processing
/// elements in parallel, clocked faster" argument. Chips without a
/// disclosed SRAM budget fall back to logic-gate transistors alone.
fn physical_perf(chip: &DecoderChip) -> f64 {
    let transistors = chip
        .transistors()
        .unwrap_or(chip.logic_kgates * 1e3 * 4.0 * 1.6); // typical SRAM share
    transistors * chip.freq_mhz
}

/// Physical efficiency potential: operations per joule scale with the
/// reciprocal of the node's dynamic energy per operation.
fn physical_ee(chip: &DecoderChip) -> f64 {
    1.0 / chip.node.dynamic_energy_rel()
}

/// The Fig. 4a series: throughput gains and CSR, normalized to the
/// ISSCC 2006 baseline.
///
/// ```
/// let series = accelwall_studies::video::performance_series()?;
/// // Decoding throughput improved by up to ~64x (paper's headline)...
/// assert!(series.peak_reported() > 50.0);
/// // ...yet the best chip's CSR never cleared 1.0.
/// assert!(series.csr_of_best_chip() <= 1.0);
/// # Ok::<(), accelwall_studies::StudyError>(())
/// ```
///
/// # Errors
///
/// Propagates CSR validation errors (impossible on the embedded dataset).
pub fn performance_series() -> Result<CsrSeries> {
    Ok(CsrSeries::new(scan_family(
        |c| c.mpixels_per_s,
        physical_perf,
    ))?)
}

/// Scans the decoder family across the `accelwall-par` pool: each row's
/// reported gain and physical potential against the ISSCC 2006 baseline.
/// Rows land at their chip index, so the series order matches the
/// serial loop.
fn scan_family(
    reported: fn(&DecoderChip) -> f64,
    physical: fn(&DecoderChip) -> f64,
) -> Vec<(&'static str, f64, f64)> {
    let chips = decoder_chips();
    accelwall_par::par_map(chips.len(), move |i| {
        let (c, base) = (&chips[i], &chips[0]);
        (
            c.label,
            reported(c) / reported(base),
            physical(c) / physical(base),
        )
    })
}

/// The Fig. 4c series: energy-efficiency gains and CSR, normalized to the
/// ISSCC 2006 baseline.
///
/// # Errors
///
/// Propagates CSR validation errors (impossible on the embedded dataset).
pub fn efficiency_series() -> Result<CsrSeries> {
    Ok(CsrSeries::new(scan_family(
        DecoderChip::mpixels_per_joule,
        physical_ee,
    ))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_chips_in_chronology() {
        let chips = decoder_chips();
        assert_eq!(chips.len(), 12);
        assert_eq!(chips[0].label, "ISSCC2006");
        assert_eq!(chips[11].label, "JSSC2017");
    }

    #[test]
    fn throughput_improved_about_64x() {
        // Paper: "absolute decoding throughput improved by rates of up
        // to 64x."
        let s = performance_series().unwrap();
        assert!(
            (50.0..80.0).contains(&s.peak_reported()),
            "peak perf {:.1}",
            s.peak_reported()
        );
    }

    #[test]
    fn efficiency_improved_about_34x() {
        // Paper: "throughput per energy improved by up to 34x."
        let s = efficiency_series().unwrap();
        assert!(
            (25.0..45.0).contains(&s.peak_reported()),
            "peak EE {:.1}",
            s.peak_reported()
        );
    }

    #[test]
    fn best_chips_gained_no_specialization_return() {
        // Paper: "for the best performing ASICs, chip specialization did
        // not improve, and even got worse since CSR was less than one."
        let s = performance_series().unwrap();
        assert!(
            s.csr_of_best_chip() <= 1.0,
            "best-chip CSR {:.2}",
            s.csr_of_best_chip()
        );
    }

    #[test]
    fn jssc2017_transistor_budget_about_36x() {
        // Paper: "JSSC2017 has ~36x more transistors" than the baseline.
        let chips = decoder_chips();
        let ratio = chips[11].transistors().unwrap() / chips[0].transistors().unwrap();
        assert!((28.0..45.0).contains(&ratio), "transistor ratio {ratio:.1}");
    }

    #[test]
    fn physical_layer_outpaced_specialization() {
        // The study's conclusion: the physical layer had a higher impact
        // than the specialization-stack layers.
        let s = performance_series().unwrap();
        let best = s
            .rows
            .iter()
            .max_by(|a, b| a.reported_gain.partial_cmp(&b.reported_gain).unwrap())
            .unwrap();
        assert!(best.physical_gain > best.reported_gain);
    }

    #[test]
    fn undisclosed_sram_handled() {
        let chips = decoder_chips();
        let hidden: Vec<_> = chips.iter().filter(|c| c.sram_kb.is_none()).collect();
        assert_eq!(hidden.len(), 2);
        for c in hidden {
            assert!(c.transistors().is_none());
        }
    }

    #[test]
    fn frequencies_rise_with_node_generation() {
        // Fig. 4b: clocks climb from ~120 MHz to ~400 MHz.
        let chips = decoder_chips();
        assert!(chips[0].freq_mhz < 150.0);
        assert!(chips[11].freq_mhz >= 350.0);
    }
}
