//! The DFG data structure: typed nodes, ordered operand edges.

use std::fmt;

/// Identifier of a node within one [`Dfg`]. Ids are dense and ascend in
/// construction order, which is also a topological order (operands must
/// exist before their consumers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Primitive operations a compute vertex can perform.
///
/// The set covers everything the 16 Table IV workloads need: arithmetic,
/// comparisons and selection (sorting networks, KNN), bitwise logic and
/// rotations (AES, SHA-like kernels), and the transcendental units
/// (`Sigmoid` for RBM's activation, `Sqrt` for distances). `Lut` models an
/// arbitrary byte-indexed table lookup (AES S-box) — the "super node"
/// extreme of computation heterogeneity discussed in Section V-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Addition.
    Add,
    /// Subtraction (left minus right).
    Sub,
    /// Multiplication.
    Mul,
    /// Division (left over right).
    Div,
    /// Remainder (left modulo right).
    Mod,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
    /// Absolute value.
    Abs,
    /// Negation.
    Neg,
    /// Square root.
    Sqrt,
    /// Bitwise AND (operands truncated to u64).
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT (on the low 32 bits).
    Not,
    /// Left shift (left by right bits, mod 64).
    Shl,
    /// Logical right shift.
    Shr,
    /// Less-than comparison, producing 1.0 or 0.0.
    CmpLt,
    /// Equality comparison, producing 1.0 or 0.0.
    CmpEq,
    /// Ternary select: `cond != 0 ? a : b`.
    Select,
    /// Logistic sigmoid (RBM activation).
    Sigmoid,
    /// Byte-indexed lookup in a 256-entry table identified by `table`.
    Lut {
        /// Which registered table to index.
        table: u8,
    },
    /// Identity / register copy.
    Copy,
}

impl Op {
    /// Number of operands the operation requires.
    pub fn arity(self) -> usize {
        match self {
            Op::Abs | Op::Neg | Op::Sqrt | Op::Not | Op::Sigmoid | Op::Lut { .. } | Op::Copy => 1,
            Op::Select => 3,
            _ => 2,
        }
    }

    /// Whether the unit is "complex" (multi-cycle in typical FU libraries).
    pub fn is_complex(self) -> bool {
        matches!(
            self,
            Op::Mul | Op::Div | Op::Mod | Op::Sqrt | Op::Sigmoid | Op::Lut { .. }
        )
    }
}

/// The paper's vertex taxonomy: inputs, outputs, and computation nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// An input variable (no incoming edges), with its name.
    Input(String),
    /// A computation vertex applying `Op` to its operands.
    Compute(Op),
    /// An output variable (no outgoing edges), with its name; forwards the
    /// value of its single operand.
    Output(String),
}

/// One vertex plus its ordered operand list.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// What the vertex is.
    pub kind: NodeKind,
    /// Ordered operands (empty for inputs, one for outputs).
    pub operands: Vec<NodeId>,
}

/// An immutable dataflow graph. Construct through
/// [`DfgBuilder`](crate::DfgBuilder).
#[derive(Debug, Clone, PartialEq)]
pub struct Dfg {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) tables: Vec<[u8; 256]>,
}

impl Dfg {
    /// The graph's name (workload identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, id order (a topological order).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id comes from a different graph and is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Iterator over node ids in topological order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Ids of the input vertices (`V_IN`).
    pub fn input_ids(&self) -> Vec<NodeId> {
        self.filter_ids(|k| matches!(k, NodeKind::Input(_)))
    }

    /// Ids of the output vertices (`V_OUT`).
    pub fn output_ids(&self) -> Vec<NodeId> {
        self.filter_ids(|k| matches!(k, NodeKind::Output(_)))
    }

    /// Ids of the computation vertices (`V_CMP`).
    pub fn compute_ids(&self) -> Vec<NodeId> {
        self.filter_ids(|k| matches!(k, NodeKind::Compute(_)))
    }

    /// Total vertex count `|V|`.
    pub fn vertex_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total edge count `|E|` (sum of operand-list lengths).
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.operands.len()).sum()
    }

    /// The lookup table registered under `table`, if any.
    pub fn table(&self, table: u8) -> Option<&[u8; 256]> {
        self.tables.get(table as usize)
    }

    fn filter_ids(&self, pred: impl Fn(&NodeKind) -> bool) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| pred(&n.kind))
            .map(|(i, _)| NodeId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;

    #[test]
    fn arities() {
        assert_eq!(Op::Add.arity(), 2);
        assert_eq!(Op::Sqrt.arity(), 1);
        assert_eq!(Op::Select.arity(), 3);
        assert_eq!(Op::Lut { table: 0 }.arity(), 1);
    }

    #[test]
    fn complex_units() {
        assert!(Op::Mul.is_complex());
        assert!(Op::Div.is_complex());
        assert!(!Op::Add.is_complex());
        assert!(!Op::Xor.is_complex());
    }

    #[test]
    fn vertex_sets_partition_nodes() {
        let mut b = DfgBuilder::new("t");
        let a = b.input("a");
        let c = b.op(Op::Neg, &[a]);
        b.output("o", c);
        let g = b.build().unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(
            g.input_ids().len() + g.compute_ids().len() + g.output_ids().len(),
            g.vertex_count()
        );
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.name(), "t");
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(4).to_string(), "n4");
    }
}
