//! The accelerator wall (Section VII, Figs. 15–16, Table V).
//!
//! For each evaluated domain the paper collects (physical capability,
//! observed gain) points, extracts the Pareto frontier, fits the Linear
//! (Eq. 5) and Logarithmic (Eq. 6) projection models, and evaluates both
//! at the physical capability of a final-node (5 nm) chip built with the
//! Table V parameters — the *accelerator wall*: the best gain attainable
//! after CMOS stops scaling.
//!
//! Physical capability is measured with the axis each domain's chips
//! actually bind on: small ASICs (video decoders, miners) are
//! silicon-area-limited, so their axis is switched transistors per second
//! (density × speed); big hot dies (GPUs, FPGA boards) are power-limited,
//! so their axis is the Fig. 3c TDP-capped switching budget. EXPERIMENTS.md
//! records where our walls land relative to the paper's annotations.
//!
//! # Example
//!
//! ```
//! use accelwall_projection::{accelerator_wall, Domain, TargetMetric};
//!
//! let wall = accelerator_wall(Domain::BitcoinMining, TargetMetric::Performance).unwrap();
//! // Paper: Bitcoin mining has 2-20x of further performance headroom.
//! assert!(wall.further_log >= 1.0);
//! assert!(wall.further_linear <= 25.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod beyond;
pub mod domains;
pub mod sensitivity;
pub mod wall;

pub use beyond::{beyond_wall, BeyondWall};
pub use domains::{Domain, DomainLimits, TargetMetric};
pub use sensitivity::{wall_sensitivity, Parameter, Sensitivity};
pub use wall::{accelerator_wall, project, ProjectionInput, WallProjection};

use std::error::Error;
use std::fmt;

/// Errors produced by the projection analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjectionError {
    /// The underlying statistics failed (degenerate frontier and the
    /// like).
    Stats(accelwall_stats::StatsError),
    /// A study dataset failed to produce gains.
    Study(String),
    /// The physical limit fell below the observed capability range, so
    /// extrapolation is meaningless.
    LimitInsideData {
        /// The physical limit requested.
        limit: f64,
        /// The largest observed capability.
        observed_max: f64,
    },
}

impl fmt::Display for ProjectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectionError::Stats(e) => write!(f, "projection statistics failed: {e}"),
            ProjectionError::Study(s) => write!(f, "study data unavailable: {s}"),
            ProjectionError::LimitInsideData {
                limit,
                observed_max,
            } => write!(
                f,
                "physical limit {limit} does not exceed observed capability {observed_max}"
            ),
        }
    }
}

impl Error for ProjectionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProjectionError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<accelwall_stats::StatsError> for ProjectionError {
    fn from(e: accelwall_stats::StatsError) -> Self {
        ProjectionError::Stats(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ProjectionError>;
