//! SAD: sum of absolute differences — the motion-estimation inner kernel
//! (PARSEC's x264 hotspot).

use accelwall_dfg::{Dfg, DfgBuilder, Op};

/// SAD between a `rows × cols` current block (`c{r}_{c}`) and reference
/// block (`r{r}_{c}`): per-pixel subtract + absolute value feeding one
/// adder tree; output `sad`.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn build_sad(rows: usize, cols: usize) -> Dfg {
    assert!(rows > 0 && cols > 0, "SAD block must be non-empty");
    let mut b = DfgBuilder::new(format!("sad_{rows}x{cols}"));
    let mut terms = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let cur = b.input(format!("c{r}_{c}"));
            let refp = b.input(format!("r{r}_{c}"));
            let d = b.op(Op::Sub, &[cur, refp]);
            terms.push(b.op(Op::Abs, &[d]));
        }
    }
    let sum = b.reduce(Op::Add, &terms);
    b.output("sad", sum);
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("sad graph is structurally valid")
}

/// Reference SAD.
pub fn sad_reference(current: &[f64], reference: &[f64]) -> f64 {
    current
        .iter()
        .zip(reference)
        .map(|(c, r)| (c - r).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn sad_matches_reference() {
        let (rows, cols) = (4, 4);
        let g = build_sad(rows, cols);
        let cur: Vec<f64> = (0..rows * cols).map(|i| (i % 256) as f64).collect();
        let refb: Vec<f64> = (0..rows * cols)
            .map(|i| ((i * 31 + 5) % 256) as f64)
            .collect();
        let mut inputs = HashMap::new();
        for r in 0..rows {
            for c in 0..cols {
                inputs.insert(format!("c{r}_{c}"), cur[r * cols + c]);
                inputs.insert(format!("r{r}_{c}"), refb[r * cols + c]);
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        assert!((out["sad"] - sad_reference(&cur, &refb)).abs() < 1e-9);
    }

    #[test]
    fn identical_blocks_have_zero_sad() {
        let g = build_sad(2, 2);
        let mut inputs = HashMap::new();
        for r in 0..2 {
            for c in 0..2 {
                inputs.insert(format!("c{r}_{c}"), 9.0);
                inputs.insert(format!("r{r}_{c}"), 9.0);
            }
        }
        assert_eq!(g.evaluate(&inputs).unwrap()["sad"], 0.0);
    }

    #[test]
    fn shape_counts() {
        let s = build_sad(4, 4).stats();
        assert_eq!(s.inputs, 32);
        // 16 subs + 16 abs + 15 adds.
        assert_eq!(s.computes, 47);
        assert_eq!(s.outputs, 1);
    }
}
