//! `accelwall` — regenerate every table and figure of the paper, or
//! serve them over HTTP.
//!
//! Usage:
//!
//! ```text
//! accelwall <target> [--json]
//! accelwall all [--json] [--quick] [--threads N]
//! accelwall dot [WORKLOAD] [--json]
//! accelwall list [--json]
//! accelwall query [--schema] [--field value ...]
//! accelwall serve [--addr HOST:PORT] [--workers N] [--deadline-ms N] [--threads N]
//! accelwall work --grid ID [--quick] [--addr HOST:PORT] [--lease-ms N]
//!                [--work-deadline-ms N] [--expect-workers N] [--threads N]
//! accelwall work --join HOST:PORT [--threads N]
//! accelwall lint [--json] [--rule NAME ...] [--list-rules]
//! ```
//!
//! The target roster is owned by [`Registry::paper`]; this binary is a
//! thin driver around it. `list` prints every registered target with its
//! description (`--json` emits the same roster document the server's
//! `GET /experiments` route returns), `all` runs the whole registry in
//! dependency order with independent experiments executing in parallel,
//! and `--json` swaps the text rendering for the experiment's JSON
//! artifact. With `all`, `--json` emits one JSON document keyed by
//! experiment id. `serve` starts the long-lived artifact server
//! (`accelwall-server`): one process-lifetime cache, every artifact
//! computed at most once, `POST /shutdown` for a graceful drain.
//! `lint` runs the workspace invariant checker (`accelwall-lint`) over
//! the enclosing checkout and exits non-zero on any finding.
//! `--list-rules` prints the rule roster; `--rule NAME` (repeatable)
//! restricts the run to the named rules, rejecting unknown names with
//! the full roster — the same strictness as an unknown target.
//!
//! `serve` also reads the `ACCELWALL_FAULTS` environment variable: a
//! fault-plan spec (`fig3b:err:2,table5:hang:500ms`, see the
//! `accelwall-faults` crate) armed before the listener starts, so chaos
//! tests can provoke failures deterministically. Site names are
//! validated against the registry roster plus the static probe sites —
//! a typo fails startup with the full accepted-site list, exactly like
//! an unknown target.
//!
//! `work` is the fault-tolerant distributed tier (`accelwall-work`, see
//! DESIGN.md "Distributed execution"). With `--grid ID` it coordinates:
//! the named grid (`all`, `sweep`, `corpus`, `sensitivity`, `studies`)
//! is sharded into numbered units served over `/work/*` routes on the
//! embedded server, workers lease/compute/heartbeat until the fold
//! finishes, and the assembled JSON document lands on stdout —
//! byte-identical to the same grid computed locally. Banners and the
//! reissue/hedge summary go to stderr so stdout stays parseable. With
//! `--join HOST:PORT` the same binary runs as a worker against a
//! coordinator. With no workers (or after `--work-deadline-ms`), the
//! coordinator cuts over to the in-process pool, so a distributed run
//! degrades gracefully to `accelwall all`-style local compute. `--quick`
//! swaps in the coarse sweep space (also honored by `all`, keeping the
//! byte-identity comparison cheap for chaos tests).
//!
//! `query` answers one ad-hoc what-if spec through `accelwall-query` —
//! the same typed spec, validation, and executor behind the server's
//! `/query` routes — and prints the JSON body. Its arguments are
//! `--field value` pairs over the query schema (`--schema` prints it),
//! e.g. `accelwall query --workload fft --node 7nm --lanes 4`.
//!
//! Unknown targets *and* unknown flags both fail with a roster-style
//! error listing everything that would have been accepted.
//!
//! `--threads N` pins the size of the shared `accelwall-par` compute
//! pool (the `ACCELWALL_THREADS` environment variable does the same;
//! the flag wins). It applies to the two commands that run the compute
//! kernels: `all` and `serve`. The pool is sized once per process, so
//! the flag must be — and is — applied before any experiment runs.

use accelerator_wall::error::Error;
use accelerator_wall::experiments::dfg::dot_artifact;
use accelerator_wall::json::Value;
use accelerator_wall::prelude::{ArtifactCache, Ctx, Registry, SweepSpace};
use accelwall_server::{Server, ServerConfig};
use std::io::Write;
use std::process::ExitCode;

/// Every flag the CLI accepts, with its value shape — the "roster" the
/// unknown-flag error prints, mirroring the unknown-target error.
const KNOWN_FLAGS: &[(&str, &str)] = &[
    ("--json", "emit the JSON artifact instead of text"),
    ("--addr", "HOST:PORT the server binds (serve and work)"),
    ("--workers", "worker thread count (serve only)"),
    ("--deadline-ms", "compute deadline before 504 (serve only)"),
    ("--threads", "compute-pool thread count (all, serve, work)"),
    ("--quick", "use the coarse sweep space (all and work)"),
    ("--grid", "grid id the coordinator shards (work only)"),
    ("--join", "coordinator HOST:PORT to work for (work only)"),
    ("--lease-ms", "lease TTL before re-issue (work coordinator)"),
    (
        "--work-deadline-ms",
        "cut over to local compute after N ms (work coordinator)",
    ),
    (
        "--expect-workers",
        "workers to wait for before the local fallback (work coordinator)",
    ),
    (
        "--rule",
        "run only the named lint rule, repeatable (lint only)",
    ),
    ("--list-rules", "print the lint rule roster (lint only)"),
];

/// Parsed command line: positionals plus validated flags.
#[derive(Debug, Default)]
struct Args {
    target: Option<String>,
    operand: Option<String>,
    json: bool,
    addr: Option<String>,
    workers: Option<usize>,
    deadline_ms: Option<u64>,
    threads: Option<usize>,
    quick: bool,
    grid: Option<String>,
    join: Option<String>,
    lease_ms: Option<u64>,
    work_deadline_ms: Option<u64>,
    expect_workers: Option<usize>,
    rules: Vec<String>,
    list_rules: bool,
}

fn parse_args(raw: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args::default();
    let mut raw = raw.peekable();
    let mut positionals = Vec::new();
    while let Some(arg) = raw.next() {
        if let Some(flag) = arg.strip_prefix("--") {
            let (name, inline) = match flag.split_once('=') {
                Some((name, value)) => (name, Some(value.to_string())),
                None => (flag, None),
            };
            let mut value_for = |what: &str| {
                inline
                    .clone()
                    .or_else(|| raw.next())
                    .ok_or_else(|| format!("flag --{name} needs a value ({what})"))
            };
            match name {
                "json" => {
                    if inline.is_some() {
                        return Err("flag --json takes no value".to_string());
                    }
                    args.json = true;
                }
                "addr" => args.addr = Some(value_for("HOST:PORT")?),
                "workers" => {
                    let value = value_for("a thread count")?;
                    let workers: usize = value.parse().map_err(|_| {
                        format!("--workers needs a positive integer, got {value:?}")
                    })?;
                    if workers == 0 {
                        return Err("--workers must be at least 1".to_string());
                    }
                    args.workers = Some(workers);
                }
                "threads" => {
                    let value = value_for("a thread count")?;
                    let threads: usize = value.parse().map_err(|_| {
                        format!("--threads needs a positive integer, got {value:?}")
                    })?;
                    if threads == 0 {
                        return Err("--threads must be at least 1".to_string());
                    }
                    args.threads = Some(threads);
                }
                "quick" => {
                    if inline.is_some() {
                        return Err("flag --quick takes no value".to_string());
                    }
                    args.quick = true;
                }
                "grid" => args.grid = Some(value_for("a grid id")?),
                "join" => args.join = Some(value_for("HOST:PORT")?),
                "lease-ms" => {
                    let value = value_for("milliseconds")?;
                    let ms: u64 = value.parse().map_err(|_| {
                        format!("--lease-ms needs a positive integer, got {value:?}")
                    })?;
                    if ms == 0 {
                        return Err("--lease-ms must be at least 1".to_string());
                    }
                    args.lease_ms = Some(ms);
                }
                "work-deadline-ms" => {
                    let value = value_for("milliseconds")?;
                    let ms: u64 = value.parse().map_err(|_| {
                        format!("--work-deadline-ms needs a positive integer, got {value:?}")
                    })?;
                    if ms == 0 {
                        return Err("--work-deadline-ms must be at least 1".to_string());
                    }
                    args.work_deadline_ms = Some(ms);
                }
                "expect-workers" => {
                    let value = value_for("a worker count")?;
                    let n: usize = value
                        .parse()
                        .map_err(|_| format!("--expect-workers needs an integer, got {value:?}"))?;
                    args.expect_workers = Some(n);
                }
                "rule" => args.rules.push(value_for("a rule name")?),
                "list-rules" => {
                    if inline.is_some() {
                        return Err("flag --list-rules takes no value".to_string());
                    }
                    args.list_rules = true;
                }
                "deadline-ms" => {
                    let value = value_for("milliseconds")?;
                    let ms: u64 = value.parse().map_err(|_| {
                        format!("--deadline-ms needs a positive integer, got {value:?}")
                    })?;
                    if ms == 0 {
                        return Err("--deadline-ms must be at least 1".to_string());
                    }
                    args.deadline_ms = Some(ms);
                }
                _ => {
                    let known = KNOWN_FLAGS
                        .iter()
                        .map(|(f, _)| *f)
                        .collect::<Vec<_>>()
                        .join(" ");
                    return Err(format!("unknown flag \"--{name}\"; known flags: {known}"));
                }
            }
        } else {
            positionals.push(arg);
        }
    }
    let mut positionals = positionals.into_iter();
    args.target = positionals.next();
    args.operand = positionals.next();
    if let Some(extra) = positionals.next() {
        return Err(format!("unexpected extra argument {extra:?}"));
    }
    // Flag/command compatibility, so typos fail loudly instead of
    // silently doing the default thing.
    let is_serve = args.target.as_deref() == Some("serve");
    let is_work = args.target.as_deref() == Some("work");
    if !is_serve && (args.workers.is_some() || args.deadline_ms.is_some()) {
        return Err("--workers and --deadline-ms only apply to `accelwall serve`".to_string());
    }
    if !is_serve && !is_work && args.addr.is_some() {
        return Err("--addr only applies to `accelwall serve` and `accelwall work`".to_string());
    }
    if is_serve && args.json {
        return Err("--json does not apply to `accelwall serve`".to_string());
    }
    if !is_work
        && (args.grid.is_some()
            || args.join.is_some()
            || args.lease_ms.is_some()
            || args.work_deadline_ms.is_some()
            || args.expect_workers.is_some())
    {
        return Err(
            "--grid, --join, --lease-ms, --work-deadline-ms, and --expect-workers only apply to `accelwall work`"
                .to_string(),
        );
    }
    if is_work {
        match (&args.grid, &args.join) {
            (Some(_), Some(_)) => {
                return Err("--grid and --join are mutually exclusive".to_string())
            }
            (None, None) => {
                return Err(
                    "`accelwall work` needs --grid ID (coordinate) or --join HOST:PORT (work)"
                        .to_string(),
                )
            }
            _ => {}
        }
        if args.join.is_some()
            && (args.addr.is_some()
                || args.lease_ms.is_some()
                || args.work_deadline_ms.is_some()
                || args.expect_workers.is_some()
                || args.quick
                || args.json)
        {
            return Err(
                "a worker takes only --join and --threads; the coordinator owns the other work flags"
                    .to_string(),
            );
        }
    }
    if args.quick && !is_work && args.target.as_deref() != Some("all") {
        return Err("--quick only applies to `accelwall all` and `accelwall work`".to_string());
    }
    let computes = matches!(args.target.as_deref(), Some("serve" | "all" | "work"));
    if args.threads.is_some() && !computes {
        return Err(
            "--threads only applies to `accelwall all`, `accelwall serve`, and `accelwall work`"
                .to_string(),
        );
    }
    let is_lint = args.target.as_deref() == Some("lint");
    if !is_lint && (!args.rules.is_empty() || args.list_rules) {
        return Err("--rule and --list-rules only apply to `accelwall lint`".to_string());
    }
    if args.list_rules && !args.rules.is_empty() {
        return Err("--list-rules and --rule are mutually exclusive".to_string());
    }
    if args.operand.is_some() && !matches!(args.target.as_deref(), Some("dot")) {
        return Err(format!(
            "target {:?} takes no operand",
            args.target.as_deref().unwrap_or("")
        ));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `query` takes `--field value` pairs over the query schema, not the
    // fixed flag roster above — route it before the strict parser.
    if raw.first().map(String::as_str) == Some("query") {
        return query(&raw[1..]);
    }
    let args = match parse_args(raw.into_iter()) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            eprintln!("run `accelwall list` for targets and flags");
            return ExitCode::FAILURE;
        }
    };
    // Pin the compute pool before anything can start it; after the first
    // parallel kernel runs, the pool size is frozen for the process.
    if let Some(threads) = args.threads {
        accelwall_par::set_threads(threads);
    }
    let registry = Registry::paper();
    match args.target.as_deref() {
        None | Some("list") => {
            if args.json {
                println!("{}", registry.roster_json().pretty());
            } else {
                println!("regeneration targets:");
                for e in registry.experiments() {
                    println!("  {:<12} {}", e.id(), e.description());
                }
                println!("  {:<12} run every target above", "all");
                println!("  {:<12} answer an ad-hoc what-if spec", "query");
                println!("  {:<12} serve artifacts over HTTP", "serve");
                println!("  {:<12} coordinate or join a distributed sweep", "work");
                println!("  {:<12} check workspace invariants", "lint");
            }
            ExitCode::SUCCESS
        }
        Some("all") => run_all(&registry, args.json, args.quick),
        Some("serve") => serve(registry, &args),
        Some("work") => work(registry, &args),
        Some("lint") => lint(&args),
        Some("dot") => {
            // `dot` keeps its positional operand: any Table IV
            // abbreviation, defaulting to the Fig. 11 example graph.
            let which = args.operand.unwrap_or_else(|| "fig11".to_string());
            match dot_artifact(&which) {
                Ok(artifact) => {
                    if args.json {
                        println!("{}", artifact.json.pretty());
                    } else {
                        print!("{}", artifact.text);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("dot failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(t) => match registry.get(t) {
            Ok(experiment) => match experiment.run(&Ctx::new()) {
                Ok(artifact) => {
                    if args.json {
                        println!("{}", artifact.json.pretty());
                    } else {
                        print!("{}", artifact.text);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{t} failed: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e @ Error::UnknownExperiment { .. }) => {
                eprintln!("{e}");
                eprintln!("run `accelwall list` for descriptions");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
    }
}

/// Answers one ad-hoc query spec and prints the JSON body.
///
/// Arguments are `--field value` pairs (or `--field=value`) over the
/// query schema; `--schema` prints that schema instead. Validation is
/// the spec's own: an unknown field or out-of-roster value fails with
/// the full accepted list, exactly like an unknown target. Retryable
/// failures (shedding, injected faults) exit non-zero with the reason.
fn query(raw: &[String]) -> ExitCode {
    use accelwall_query::{QueryEngine, QuerySpec};
    if raw.iter().any(|a| a == "--schema") {
        if raw.len() > 1 {
            eprintln!("--schema takes no other arguments");
            return ExitCode::FAILURE;
        }
        println!("{}", QueryEngine::schema().pretty());
        return ExitCode::SUCCESS;
    }
    let mut pairs = Vec::new();
    let mut args = raw.iter();
    while let Some(arg) = args.next() {
        let Some(flag) = arg.strip_prefix("--") else {
            eprintln!("query arguments are --field value pairs, got {arg:?}");
            eprintln!("run `accelwall query --schema` for the field roster");
            return ExitCode::FAILURE;
        };
        let (name, value) = match flag.split_once('=') {
            Some((name, value)) => (name.to_string(), value.to_string()),
            None => match args.next() {
                Some(value) => (flag.to_string(), value.clone()),
                None => {
                    eprintln!("flag --{flag} needs a value");
                    return ExitCode::FAILURE;
                }
            },
        };
        pairs.push((name, value));
    }
    let spec = match QuerySpec::from_pairs(&pairs) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("run `accelwall query --schema` for the field roster");
            return ExitCode::FAILURE;
        }
    };
    let cache = ArtifactCache::new(Registry::paper(), Ctx::new());
    let engine = QueryEngine::new(std::sync::Arc::new(cache), 0);
    match engine.answer(&spec) {
        Ok(body) => {
            print!("{}", String::from_utf8_lossy(&body));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("query failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the workspace invariant checker over the enclosing checkout.
///
/// The workspace root is discovered by walking upward from the current
/// directory, so `accelwall lint` works from any subdirectory of the
/// repo; a run outside any checkout fails with the discovery error.
/// `--list-rules` prints the roster instead; `--rule NAME` restricts
/// the run, rejecting unknown names with the known roster.
fn lint(args: &Args) -> ExitCode {
    use accelwall_lint::{LintRegistry, ALLOW_AUDIT_DESCRIPTION, ALLOW_AUDIT_RULE};
    let registry = LintRegistry::standard();
    if args.list_rules {
        let roster: Vec<(&str, &str)> = registry
            .lints()
            .map(|l| (l.name(), l.description()))
            .chain(std::iter::once((ALLOW_AUDIT_RULE, ALLOW_AUDIT_DESCRIPTION)))
            .collect();
        if args.json {
            let doc = Value::array(roster.iter().map(|(name, description)| {
                Value::object([
                    ("name", Value::from(*name)),
                    ("description", Value::from(*description)),
                ])
            }));
            println!("{}", doc.pretty());
        } else {
            println!("lint rules:");
            for (name, description) in roster {
                println!("  {name:<16} {description}");
            }
        }
        return ExitCode::SUCCESS;
    }
    let registry = if args.rules.is_empty() {
        registry
    } else {
        match registry.select(&args.rules) {
            Ok(registry) => registry,
            Err(message) => {
                eprintln!("{message}");
                eprintln!("run `accelwall lint --list-rules` for descriptions");
                return ExitCode::FAILURE;
            }
        }
    };
    let report = std::env::current_dir()
        .and_then(|dir| accelwall_lint::Workspace::discover(&dir))
        .map(|ws| registry.run(&ws));
    match report {
        Ok(report) => {
            if args.json {
                println!("{}", report.to_json().pretty());
            } else {
                print!("{report}");
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses and arms the `ACCELWALL_FAULTS` plan, if the variable is set.
///
/// Site names are validated against the registry's experiment ids plus
/// the static probe-site roster; a bad spec or unknown site fails
/// startup with the full accepted list, mirroring the unknown-target
/// error. Returns the armed plan's canonical summary for the banner.
fn arm_faults(registry: &Registry) -> Result<Option<String>, String> {
    let spec = match std::env::var(accelwall_faults::ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => spec,
        _ => return Ok(None),
    };
    let plan = accelwall_faults::FaultPlan::parse(&spec)
        .map_err(|e| format!("{} is invalid: {e}", accelwall_faults::ENV_VAR))?;
    plan.validate_sites(&registry.ids())
        .map_err(|e| format!("{} is invalid: {e}", accelwall_faults::ENV_VAR))?;
    let summary = plan.summary();
    accelwall_faults::arm(plan)
        .map_err(|e| format!("{} could not be armed: {e}", accelwall_faults::ENV_VAR))?;
    Ok(Some(summary))
}

/// Starts the long-lived artifact server and blocks until it drains.
fn serve(registry: Registry, args: &Args) -> ExitCode {
    let config = ServerConfig {
        addr: args
            .addr
            .clone()
            .unwrap_or_else(|| ServerConfig::default().addr),
        workers: args
            .workers
            .unwrap_or_else(|| ServerConfig::default().workers),
        compute_deadline: args.deadline_ms.map_or_else(
            || ServerConfig::default().compute_deadline,
            std::time::Duration::from_millis,
        ),
        ..ServerConfig::default()
    };
    let workers = config.workers;
    let armed = match arm_faults(&registry) {
        Ok(armed) => armed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let cache = ArtifactCache::new(registry, Ctx::new());
    let server = match Server::bind(config, cache) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve failed to bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // One parseable line so scripts (and the integration tests) can
    // discover the resolved port when binding to port 0. Keep it FIRST:
    // the fault banner below must never displace it.
    println!(
        "accelwall serve listening on http://{} ({workers} workers)",
        server.local_addr()
    );
    if let Some(plan) = armed {
        println!("accelwall serve armed fault plan: {plan}");
    }
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => {
            println!("accelwall serve drained cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the distributed work tier: coordinator mode with `--grid`,
/// worker mode with `--join`.
///
/// The coordinator binds the artifact server with the `/work/*` routes
/// active, serves leases until every unit is folded (cutting over to
/// the in-process pool when no workers show up or the work deadline
/// passes), prints the assembled JSON document on stdout, and reports
/// the address banner plus the reissue/hedge summary on stderr. A
/// worker loops lease → compute → complete against the coordinator and
/// exits when told `done` (or when the coordinator goes away).
fn work(registry: Registry, args: &Args) -> ExitCode {
    use accelerator_wall::grids::GridRegistry;
    use accelwall_work::{run_worker, Coordinator, WorkConfig, WorkerConfig};
    use std::sync::Arc;
    use std::time::Duration;

    let armed = match arm_faults(&registry) {
        Ok(armed) => armed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(join) = &args.join {
        let config = WorkerConfig::new(join.clone());
        eprintln!(
            "accelwall work worker {} joining http://{join}",
            config.name
        );
        if let Some(plan) = armed {
            eprintln!("accelwall work armed fault plan: {plan}");
        }
        return match run_worker(&config) {
            Ok(report) => {
                eprintln!(
                    "accelwall work worker {} done leased={} computed={} failed={} abandoned={}",
                    config.name, report.leased, report.computed, report.failed, report.abandoned
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("work worker failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let grid_id = args.grid.as_deref().unwrap_or_default();
    let grid = match GridRegistry::standard().get(grid_id) {
        Ok(grid) => grid,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let (ctx, space) = if args.quick {
        (Ctx::with_space(SweepSpace::coarse()), "coarse")
    } else {
        (Ctx::new(), "table3")
    };
    let mut config = WorkConfig::default();
    if let Some(ms) = args.lease_ms {
        config.lease_ttl = Duration::from_millis(ms);
    }
    if let Some(ms) = args.work_deadline_ms {
        config.work_deadline = Some(Duration::from_millis(ms));
    }
    if let Some(n) = args.expect_workers {
        config.expect_workers = n;
    }
    let coordinator = Arc::new(Coordinator::new(grid, Arc::new(ctx), space, config));
    let server_config = ServerConfig {
        addr: args
            .addr
            .clone()
            .unwrap_or_else(|| "127.0.0.1:8390".to_string()),
        ..ServerConfig::default()
    };
    let cache = ArtifactCache::new(registry, Ctx::new());
    let server = match Server::bind_with_work(server_config, cache, Some(Arc::clone(&coordinator)))
    {
        Ok(server) => server,
        Err(e) => {
            eprintln!("work failed to bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // One parseable stderr line so scripts and the chaos tests can
    // discover the resolved port when binding to port 0; stdout is
    // reserved for the assembled JSON document.
    eprintln!(
        "accelwall work coordinating http://{} grid={} units={}",
        server.local_addr(),
        coordinator.grid_id(),
        coordinator.total_units()
    );
    if let Some(plan) = armed {
        eprintln!("accelwall work armed fault plan: {plan}");
    }
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());
    let outcome = coordinator.run();
    handle.shutdown();
    let joined = server_thread.join();
    let stats = coordinator.stats();
    match outcome {
        Ok(doc) => {
            println!("{}", doc.pretty());
            eprintln!(
                "accelwall work done units={} reissues={} hedges={} duplicates={} local={}",
                stats.units_done,
                stats.reissues_total,
                stats.hedges_total,
                stats.duplicate_completions_total,
                stats.local_units_total
            );
            match joined {
                Ok(Ok(())) => ExitCode::SUCCESS,
                Ok(Err(e)) => {
                    eprintln!("work server failed: {e}");
                    ExitCode::FAILURE
                }
                Err(_) => {
                    eprintln!("work server thread panicked");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("work failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the whole registry against one shared memoizing [`Ctx`]:
/// independent experiments execute concurrently, and every shared input
/// (corpus, potential model, per-workload sweeps) is computed once.
/// `quick` swaps in the coarse sweep space — the same space a `--quick`
/// work coordinator tells its workers to build, keeping the two
/// byte-comparable.
fn run_all(registry: &Registry, json: bool, quick: bool) -> ExitCode {
    let ctx = if quick {
        Ctx::with_space(SweepSpace::coarse())
    } else {
        Ctx::new()
    };
    let results = match registry.run_all(&ctx) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("scheduling failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    if json {
        let doc = Value::object(results.iter().map(|(id, r)| {
            let v = match r {
                Ok(artifact) => artifact.json.clone(),
                Err(e) => {
                    failed = true;
                    Value::object([("error", Value::from(e.to_string()))])
                }
            };
            (*id, v)
        }));
        println!("{}", doc.pretty());
    } else {
        for (id, r) in &results {
            println!("=== {id} ===");
            match r {
                Ok(artifact) => print!("{}", artifact.text),
                Err(e) => {
                    failed = true;
                    eprintln!("{id} failed: {e}");
                }
            }
            println!();
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
