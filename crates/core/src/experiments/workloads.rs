//! Workload-roster experiment: the evaluated applications of Table IV.

use accelwall_workloads::Workload;

use super::outln;
use crate::cache::Ctx;
use crate::error::Result;
use crate::experiment::{Artifact, Experiment};
use crate::json::Value;

/// Table IV — evaluated applications and domains.
pub struct Table4;

impl Experiment for Table4 {
    fn id(&self) -> &'static str {
        "table4"
    }

    fn description(&self) -> &'static str {
        "evaluated applications and domains"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let json = Workload::all()
            .iter()
            .map(|w| {
                Value::object([
                    ("application", Value::from(w.full_name())),
                    ("abbrev", Value::from(w.abbrev())),
                    ("domain", Value::from(w.domain())),
                    ("suite", Value::from(w.suite())),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(text, "Table IV — evaluated applications and domains");
        outln!(
            text,
            "{:<36} {:<7} {:<20} {:<12}",
            "application",
            "abbrev",
            "domain",
            "suite"
        );
        for w in Workload::all() {
            outln!(
                text,
                "{:<36} {:<7} {:<20} {:<12}",
                w.full_name(),
                w.abbrev(),
                w.domain(),
                w.suite()
            );
        }
        Ok(Artifact::new(json, text))
    }
}
