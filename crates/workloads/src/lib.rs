//! The 16 Table IV benchmark applications as dataflow-graph generators.
//!
//! The paper's design-space exploration (Section VI) runs Aladdin over
//! accelerator benchmarks drawn from MachSuite, SHOC, CortexSuite, and
//! PARSEC. Aladdin consumes each benchmark as a dynamic dependence graph;
//! this crate builds those graphs from scratch — each generator constructs
//! the *real* dependence structure of its algorithm (FFT butterfly
//! networks, Needleman-Wunsch wavefronts, CSR sparse dot products, AES
//! S-box rounds, ...), parameterized by problem size.
//!
//! Every module also ships a plain-software *reference kernel* and a test
//! that interprets the generated DFG (via [`accelwall_dfg::Dfg::evaluate`])
//! and checks it computes exactly what the reference computes — functional
//! validation of the dependence structure.
//!
//! # Example
//!
//! ```
//! use accelwall_workloads::Workload;
//!
//! let dfg = Workload::Fft.default_instance();
//! let stats = dfg.stats();
//! assert!(stats.computes > 100);
//! assert_eq!(Workload::Fft.abbrev(), "FFT");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aes;
pub mod conv;
pub mod graphs;
pub mod linalg;
pub mod mdy;
pub mod nwn;
pub mod rbm;
pub mod sha;
pub mod signal;
pub mod simple;
pub mod sorting;
pub mod stencil;
pub mod video;

use accelwall_dfg::Dfg;
use std::fmt;

/// The 16 evaluated applications of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Advanced Encryption Standard (MachSuite) — cryptography.
    Aes,
    /// Breadth-First Search (MachSuite) — graph processing.
    Bfs,
    /// Fast Fourier Transform (MachSuite) — signal processing.
    Fft,
    /// General Matrix Multiplication (MachSuite) — linear algebra.
    Gmm,
    /// Molecular Dynamics (SHOC) — molecular dynamics.
    Mdy,
    /// K-Nearest Neighbors (MachSuite) — data mining.
    Knn,
    /// Needleman-Wunsch (MachSuite) — bioinformatics.
    Nwn,
    /// Restricted Boltzmann Machine (CortexSuite) — machine learning.
    Rbm,
    /// Reduction (SHOC) — microbenchmarking.
    Red,
    /// Sum of Absolute Differences (PARSEC) — video processing.
    Sad,
    /// Merge Sort (MachSuite) — algorithms.
    Srt,
    /// Sparse Matrix-Vector Multiply (MachSuite) — linear algebra.
    Smv,
    /// Single-Source Shortest Path (internal) — graph processing.
    Ssp,
    /// 2D Stencil (MachSuite) — image processing.
    S2d,
    /// 3D Stencil (MachSuite) — image processing.
    S3d,
    /// Triad (SHOC) — microbenchmarking.
    Trd,
}

impl Workload {
    /// All 16 workloads, Table IV order.
    pub fn all() -> &'static [Workload] {
        const ALL: [Workload; 16] = [
            Workload::Aes,
            Workload::Bfs,
            Workload::Fft,
            Workload::Gmm,
            Workload::Mdy,
            Workload::Knn,
            Workload::Nwn,
            Workload::Rbm,
            Workload::Red,
            Workload::Sad,
            Workload::Srt,
            Workload::Smv,
            Workload::Ssp,
            Workload::S2d,
            Workload::S3d,
            Workload::Trd,
        ];
        &ALL
    }

    /// Table IV abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Workload::Aes => "AES",
            Workload::Bfs => "BFS",
            Workload::Fft => "FFT",
            Workload::Gmm => "GMM",
            Workload::Mdy => "MDY",
            Workload::Knn => "KNN",
            Workload::Nwn => "NWN",
            Workload::Rbm => "RBM",
            Workload::Red => "RED",
            Workload::Sad => "SAD",
            Workload::Srt => "SRT",
            Workload::Smv => "SMV",
            Workload::Ssp => "SSP",
            Workload::S2d => "S2D",
            Workload::S3d => "S3D",
            Workload::Trd => "TRD",
        }
    }

    /// Full application name, as in Table IV.
    pub fn full_name(self) -> &'static str {
        match self {
            Workload::Aes => "Advanced Encryption Standard",
            Workload::Bfs => "Breadth-First Search",
            Workload::Fft => "Fast Fourier Transform",
            Workload::Gmm => "General Matrix Multiplication",
            Workload::Mdy => "Molecular Dynamics",
            Workload::Knn => "K-Nearest Neighbors",
            Workload::Nwn => "Needleman-Wunsch",
            Workload::Rbm => "Restricted Boltzmann machine",
            Workload::Red => "Reduction",
            Workload::Sad => "Sum of Absolute Differences",
            Workload::Srt => "Merge Sort",
            Workload::Smv => "Sparse Matrix-Vector Multiply",
            Workload::Ssp => "Single Source, Shortest Path",
            Workload::S2d => "2D Stencil",
            Workload::S3d => "3D Stencil",
            Workload::Trd => "Triad",
        }
    }

    /// Application domain, as in Table IV.
    pub fn domain(self) -> &'static str {
        match self {
            Workload::Aes => "Cryptography",
            Workload::Bfs | Workload::Ssp => "Graph Processing",
            Workload::Fft => "Signal Processing",
            Workload::Gmm | Workload::Smv => "Linear Algebra",
            Workload::Mdy => "Molecular Dynamics",
            Workload::Knn => "Data Mining",
            Workload::Nwn => "Bioinformatics",
            Workload::Rbm => "Machine Learning",
            Workload::Red | Workload::Trd => "Microbenchmarking",
            Workload::Sad => "Video Processing",
            Workload::Srt => "Algorithms",
            Workload::S2d | Workload::S3d => "Image Processing",
        }
    }

    /// Benchmark suite of origin, as cited in Table IV.
    pub fn suite(self) -> &'static str {
        match self {
            Workload::Mdy | Workload::Red | Workload::Trd => "SHOC",
            Workload::Rbm => "CortexSuite",
            Workload::Sad => "PARSEC",
            Workload::Ssp => "Internal",
            _ => "MachSuite",
        }
    }

    /// Builds the workload's DFG at the default instance size used by the
    /// design-space sweep: large enough to expose the algorithm's
    /// parallelism structure, small enough to schedule in microseconds.
    pub fn default_instance(self) -> Dfg {
        self.instance(InstanceSize::Default)
    }

    /// Builds the workload's DFG at a chosen problem size.
    pub fn instance(self, size: InstanceSize) -> Dfg {
        use InstanceSize::{Default, Large, Small};
        match (self, size) {
            (Workload::Aes, Small) => aes::build(1),
            (Workload::Aes, Default) => aes::build(2),
            (Workload::Aes, Large) => aes::build(10),
            (Workload::Bfs, Small) => graphs::build_bfs(8, 2),
            (Workload::Bfs, Default) => graphs::build_bfs(16, 4),
            (Workload::Bfs, Large) => graphs::build_bfs(48, 8),
            (Workload::Fft, Small) => signal::build_fft(8),
            (Workload::Fft, Default) => signal::build_fft(16),
            (Workload::Fft, Large) => signal::build_fft(64),
            (Workload::Gmm, Small) => linalg::build_gmm(4),
            (Workload::Gmm, Default) => linalg::build_gmm(6),
            (Workload::Gmm, Large) => linalg::build_gmm(12),
            (Workload::Mdy, Small) => mdy::build(4),
            (Workload::Mdy, Default) => mdy::build(8),
            (Workload::Mdy, Large) => mdy::build(16),
            (Workload::Knn, Small) => linalg::build_knn(8, 3),
            (Workload::Knn, Default) => linalg::build_knn(24, 4),
            (Workload::Knn, Large) => linalg::build_knn(96, 8),
            (Workload::Nwn, Small) => nwn::build(4, 4),
            (Workload::Nwn, Default) => nwn::build(8, 8),
            (Workload::Nwn, Large) => nwn::build(20, 20),
            (Workload::Rbm, Small) => rbm::build(6, 4),
            (Workload::Rbm, Default) => rbm::build(12, 8),
            (Workload::Rbm, Large) => rbm::build(32, 24),
            (Workload::Red, Small) => simple::build_reduction(32),
            (Workload::Red, Default) => simple::build_reduction(128),
            (Workload::Red, Large) => simple::build_reduction(1024),
            (Workload::Sad, Small) => video::build_sad(2, 2),
            (Workload::Sad, Default) => video::build_sad(4, 4),
            (Workload::Sad, Large) => video::build_sad(16, 16),
            (Workload::Srt, Small) => sorting::build_bitonic(8),
            (Workload::Srt, Default) => sorting::build_bitonic(16),
            (Workload::Srt, Large) => sorting::build_bitonic(64),
            (Workload::Smv, Small) => linalg::build_smv(8, 3),
            (Workload::Smv, Default) => linalg::build_smv(16, 4),
            (Workload::Smv, Large) => linalg::build_smv(64, 8),
            (Workload::Ssp, Small) => graphs::build_ssp(6, 2),
            (Workload::Ssp, Default) => graphs::build_ssp(12, 3),
            (Workload::Ssp, Large) => graphs::build_ssp(32, 6),
            (Workload::S2d, Small) => stencil::build_2d(4, 4),
            (Workload::S2d, Default) => stencil::build_2d(8, 8),
            (Workload::S2d, Large) => stencil::build_2d(20, 20),
            (Workload::S3d, Small) => stencil::build_3d(3, 3, 3),
            (Workload::S3d, Default) => stencil::build_3d(4, 4, 4),
            (Workload::S3d, Large) => stencil::build_3d(7, 7, 7),
            (Workload::Trd, Small) => simple::build_triad(16),
            (Workload::Trd, Default) => simple::build_triad(64),
            (Workload::Trd, Large) => simple::build_triad(512),
        }
    }
}

/// Problem-size tiers for [`Workload::instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceSize {
    /// Smallest structurally interesting instance (fast tests).
    Small,
    /// The sweep default.
    Default,
    /// A scaled-up instance for scaling studies.
    Large,
}

impl InstanceSize {
    /// All tiers, ascending.
    pub fn all() -> &'static [InstanceSize] {
        const ALL: [InstanceSize; 3] = [
            InstanceSize::Small,
            InstanceSize::Default,
            InstanceSize::Large,
        ];
        &ALL
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_workloads() {
        assert_eq!(Workload::all().len(), 16);
        let abbrevs: std::collections::HashSet<_> =
            Workload::all().iter().map(|w| w.abbrev()).collect();
        assert_eq!(abbrevs.len(), 16);
    }

    #[test]
    fn all_default_instances_build_and_are_nontrivial() {
        for &w in Workload::all() {
            let g = w.default_instance();
            let s = g.stats();
            assert!(s.computes >= 16, "{w}: only {} compute nodes", s.computes);
            assert!(s.outputs >= 1, "{w}: no outputs");
            assert!(s.depth >= 3, "{w}: depth {}", s.depth);
        }
    }

    #[test]
    fn table_iv_metadata_is_complete() {
        for &w in Workload::all() {
            assert!(!w.full_name().is_empty());
            assert!(!w.domain().is_empty());
            assert!(!w.suite().is_empty());
        }
        assert_eq!(Workload::Ssp.suite(), "Internal");
        assert_eq!(Workload::Sad.suite(), "PARSEC");
    }

    #[test]
    fn display_is_abbrev() {
        assert_eq!(Workload::S3d.to_string(), "S3D");
    }

    #[test]
    fn instances_scale_monotonically() {
        for &w in Workload::all() {
            let small = w.instance(InstanceSize::Small).stats();
            let default = w.instance(InstanceSize::Default).stats();
            let large = w.instance(InstanceSize::Large).stats();
            assert!(
                small.computes < default.computes && default.computes < large.computes,
                "{w}: {} / {} / {}",
                small.computes,
                default.computes,
                large.computes
            );
        }
    }

    #[test]
    fn large_instances_stay_tractable() {
        for &w in Workload::all() {
            let s = w.instance(InstanceSize::Large).stats();
            assert!(
                s.vertices < 200_000,
                "{w}: {} vertices is too big for the sweep",
                s.vertices
            );
        }
    }
}
