//! Structural invariants of the embedded study datasets — the checks a
//! reviewer would run against the raw tables.

use accelwall_studies::{bitcoin, fpga, gpu, video};

#[test]
fn video_dataset_invariants() {
    let chips = video::decoder_chips();
    let labels: std::collections::HashSet<_> = chips.iter().map(|c| c.label).collect();
    assert_eq!(labels.len(), chips.len(), "venue labels are unique");
    for c in &chips {
        assert!(c.mpixels_per_s > 0.0 && c.power_mw > 0.0, "{}", c.label);
        assert!(c.freq_mhz >= 100.0 && c.freq_mhz <= 500.0, "{}", c.label);
        assert!(c.die_mm2 > 1.0 && c.die_mm2 < 30.0, "{}", c.label);
        assert!(c.logic_kgates >= 100.0, "{}", c.label);
        if let Some(t) = c.transistors() {
            assert!(t > 5e5 && t < 1e8, "{}: {t:e}", c.label);
        }
        // Energy efficiency is physically bounded: < 10 GPixels/J even for
        // the best 28 nm decoder.
        assert!(c.mpixels_per_joule() < 1e4, "{}", c.label);
    }
}

#[test]
fn gpu_dataset_invariants() {
    let chips = gpu::gpu_chips();
    let names: std::collections::HashSet<_> = chips.iter().map(|g| g.name).collect();
    assert_eq!(names.len(), chips.len());
    for g in &chips {
        assert!(g.transistors > 5e8 && g.transistors < 3e10, "{}", g.name);
        assert!(g.tdp_w > 50.0 && g.tdp_w < 400.0, "{}", g.name);
        assert!(g.freq_mhz > 400.0 && g.freq_mhz < 2000.0, "{}", g.name);
        assert!((2007..=2017).contains(&g.year), "{}", g.name);
        // Physical potential is TDP-capped: switched silicon can exceed
        // the budget but the potential cannot.
        if let Some(group) = accelwall_chipdb::NodeGroup::of(g.node) {
            assert!(
                g.physical_throughput() <= group.paper_tdp_law().eval(g.tdp_w) + 1e-9,
                "{}",
                g.name
            );
        }
    }
    // Benchmarked frame rates are positive and era-consistent.
    for game in gpu::games() {
        for g in &chips {
            if let Some(fps) = gpu::frame_rate(g, &game) {
                assert!(fps > 1.0 && fps < 2000.0, "{} on {}", g.name, game.title);
                assert!(g.year >= game.since);
            }
        }
    }
}

#[test]
fn fpga_dataset_invariants() {
    for rows in [fpga::alexnet_impls(), fpga::vgg16_impls()] {
        let labels: std::collections::HashSet<_> = rows.iter().map(|r| r.label).collect();
        assert_eq!(labels.len(), rows.len());
        for r in &rows {
            assert!(r.gops > 10.0 && r.gops < 5000.0, "{}", r.label);
            assert!(r.power_w > 5.0 && r.power_w < 60.0, "{}", r.label);
            for pct in [r.lut_pct, r.dsp_pct, r.bram_pct] {
                assert!((0.0..=100.0).contains(&pct), "{}", r.label);
            }
            assert!(r.freq_mhz >= 100.0 && r.freq_mhz <= 310.0, "{}", r.label);
            assert!(r.physical_budget() > 0.0, "{}", r.label);
            // No design can exceed ~4 useful ops per DSP-cycle even with
            // Winograd and logic-mapped MACs folded in. (physical_budget is
            // in DSP-GHz = giga DSP-cycles per second, gops in GOP/s, so
            // the ratio is ops per DSP-cycle.)
            assert!(
                r.gops / r.physical_budget() < 4.0,
                "{}: {} GOPS on {} DSP-GHz",
                r.label,
                r.gops,
                r.physical_budget()
            );
        }
    }
}

#[test]
fn bitcoin_dataset_invariants() {
    let miners = bitcoin::miners();
    let names: std::collections::HashSet<_> = miners.iter().map(|m| m.name).collect();
    assert_eq!(names.len(), miners.len());
    for m in &miners {
        assert!(m.ghash_per_s > 0.0, "{}", m.name);
        assert!(m.power_w > 0.5 && m.power_w < 400.0, "{}", m.name);
        assert!((2009..=2017).contains(&m.intro.0), "{}", m.name);
        assert!((1..=12).contains(&m.intro.1), "{}", m.name);
    }
    // Efficiency strictly orders the platforms at their best.
    let best_of = |p| {
        miners
            .iter()
            .filter(|m| m.platform == p)
            .map(accelwall_studies::bitcoin::Miner::ghash_per_joule)
            .fold(0.0, f64::max)
    };
    use bitcoin::Platform::*;
    assert!(best_of(Gpu) > best_of(Cpu) * 10.0);
    assert!(best_of(Fpga) > best_of(Gpu) * 2.0);
    assert!(best_of(Asic) > best_of(Fpga) * 50.0);
}

#[test]
fn all_series_rows_are_finite_and_positive() {
    let series = [
        video::performance_series().unwrap(),
        video::efficiency_series().unwrap(),
        bitcoin::fig1_series().unwrap(),
        bitcoin::fig9_performance_series().unwrap(),
        bitcoin::fig9_efficiency_series().unwrap(),
        fpga::performance_series(fpga::CnnModel::AlexNet).unwrap(),
        fpga::efficiency_series(fpga::CnnModel::Vgg16).unwrap(),
    ];
    for s in &series {
        for row in &s.rows {
            assert!(row.reported_gain.is_finite() && row.reported_gain > 0.0);
            assert!(row.physical_gain.is_finite() && row.physical_gain > 0.0);
            assert!(row.csr.is_finite() && row.csr > 0.0);
        }
    }
}
