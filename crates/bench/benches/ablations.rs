//! Ablation benchmarks for the design choices called out in DESIGN.md.
//!
//! Each ablation both times the variant and *prints* the quantitative
//! comparison once, so `cargo bench` doubles as the ablation report:
//!
//! * `attribution_order` — is the fixed Fig. 14 toggle order stable, or
//!   does a Shapley-style average over orders tell a different story?
//! * `budget_models` — how much does ignoring the TDP cap change the
//!   potential model's conclusions (the Fig. 3d collapse)?
//! * `dark_silicon_leakage` — the efficiency cost of leaking dark silicon.
//! * `projection_models` — linear vs logarithmic wall sensitivity.

use accelerator_wall::accelsim::attribution::Metric;
use accelerator_wall::prelude::*;
use accelwall_bench::harness::Criterion;
use accelwall_bench::{criterion_group, criterion_main};
use std::hint::black_box;
use std::sync::Once;

static REPORT: Once = Once::new();

fn attribution_order(c: &mut Criterion) {
    // The fixed order measures partitioning first. The reverse order
    // (CMOS first) is the strongest alternative; if both attribute the
    // same dominant source, the fixed order is stable.
    let dfg = Workload::S3d.default_instance();
    let space = SweepSpace::table3();
    REPORT.call_once(|| {
        let a = attribute_gains(&dfg, Metric::Performance, &space).unwrap();
        let dominant = a
            .contributions
            .iter()
            .max_by(|x, y| x.percent.partial_cmp(&y.percent).unwrap())
            .unwrap();
        // Reverse-order proxy: measure the partitioning factor last by
        // comparing the full optimum against the optimum with P forced
        // to 1 — its marginal contribution.
        let best = a.best_config;
        let no_part =
            DesignConfig::new(best.node, 1, best.simplification_degree, best.heterogeneity);
        let full = simulate(&dfg, &best).unwrap().throughput();
        let without = simulate(&dfg, &no_part).unwrap().throughput();
        let marginal = full / without;
        println!(
            "[ablation attribution_order] S3D perf: first-order factor {:.1}x, \
             last-order (marginal) factor {:.1}x, dominant source {}",
            a.contributions[0].factor, marginal, dominant.source
        );
        assert!(
            marginal > 2.0,
            "partitioning stays a major factor in either order"
        );
    });
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("attribution_fixed_order", |b| {
        b.iter(|| {
            black_box(
                attribute_gains(&dfg, Metric::Performance, &SweepSpace::coarse())
                    .unwrap()
                    .total_gain,
            )
        });
    });
    group.finish();
}

fn budget_models(c: &mut Criterion) {
    // Area-only vs TDP-capped potential: the Fig. 3d headline collapse.
    let model = PotentialModel::paper();
    let baseline = PotentialModel::reference_spec();
    let spec = ChipSpec::new(TechNode::N5, 800.0, 1.0, 800.0);
    let area_only =
        model.area_limited_transistors(&spec) / model.area_limited_transistors(&baseline);
    let capped = model.throughput_gain(&spec, &baseline);
    println!(
        "[ablation budget_models] 800mm2@5nm: area-only {area_only:.0}x vs TDP-capped {capped:.0}x \
         ({:.0}% collapse)",
        (1.0 - capped / area_only) * 100.0
    );
    c.bench_function("ablation/budget_both_models", |b| {
        b.iter(|| {
            black_box(
                model.area_limited_transistors(&spec) + model.power_limited_transistors(&spec),
            )
        });
    });
}

fn dark_silicon_leakage(c: &mut Criterion) {
    let mut with = PotentialModel::paper();
    with.dark_silicon_leakage = true;
    let mut without = PotentialModel::paper();
    without.dark_silicon_leakage = false;
    let baseline = PotentialModel::reference_spec();
    let spec = ChipSpec::new(TechNode::N5, 800.0, 1.0, 100.0);
    println!(
        "[ablation dark_silicon_leakage] 800mm2@5nm@100W efficiency gain: \
         with dark leakage {:.1}x, without {:.1}x",
        with.efficiency_gain(&spec, &baseline),
        without.efficiency_gain(&spec, &baseline)
    );
    c.bench_function("ablation/dark_silicon_toggle", |b| {
        b.iter(|| black_box(with.energy_efficiency(&spec) + without.energy_efficiency(&spec)));
    });
}

fn projection_models(c: &mut Criterion) {
    println!("[ablation projection_models] wall sensitivity, linear vs log:");
    for &d in Domain::all() {
        let w = accelerator_wall(d, TargetMetric::Performance).unwrap();
        println!(
            "  {:<22} linear {:.2e} vs log {:.2e} ({}, ratio {:.1})",
            d.to_string(),
            w.linear_wall,
            w.log_wall,
            d.unit(TargetMetric::Performance),
            w.linear_wall / w.log_wall
        );
    }
    c.bench_function("ablation/projection_models", |b| {
        b.iter(|| black_box(accelwall_bench::all_walls()));
    });
}

fn scheduler_fidelity(c: &mut Criterion) {
    // Analytical bound vs cycle-accurate list schedule, per workload.
    use accelerator_wall::accelsim::{schedule, simulate};
    println!("[ablation scheduler_fidelity] bound vs list-scheduled cycles (P=64, s=1):");
    let config = DesignConfig::new(TechNode::N45, 64, 1, false);
    let mut worst: f64 = 1.0;
    for &w in Workload::all() {
        let dfg = w.default_instance();
        let bound = simulate(&dfg, &config).unwrap().cycles;
        let actual = schedule(&dfg, &config).unwrap().makespan as f64;
        worst = worst.max(actual / bound);
        println!(
            "  {:<4} bound {bound:>8.0}  scheduled {actual:>8.0}  ratio {:.2}",
            w.abbrev(),
            actual / bound
        );
    }
    println!("  worst-case fidelity ratio: {worst:.2} (Graham guarantees <= 2)");
    let dfg = Workload::S3d.default_instance();
    let mut group = c.benchmark_group("ablation");
    group.bench_function("scheduler_list_s3d", |b| {
        b.iter(|| black_box(schedule(&dfg, &config).unwrap().makespan));
    });
    group.bench_function("scheduler_bound_s3d", |b| {
        b.iter(|| black_box(simulate(&dfg, &config).unwrap().cycles));
    });
    group.finish();
}

/// Shared fast-bench configuration: the regeneration paths are
/// deterministic analytics, so a handful of samples with short warmup
/// measures them faithfully while keeping `cargo bench` CI-friendly.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = ablations;
    config = fast();
    targets = attribution_order,
    budget_models,
    dark_silicon_leakage,
    projection_models,
    scheduler_fidelity
}
criterion_main!(ablations);
