//! Dataflow-graph formalism for the Accelerator Wall reproduction.
//!
//! Section V of the paper models the target computation as a dataflow graph
//! (DFG): a directed acyclic graph whose vertices are input variables,
//! computation operations, and output variables, limited only by inherent
//! data dependencies — not by any implementation medium. On this object the
//! paper defines the quantities its limit study needs (Fig. 11):
//!
//! * `V_IN` / `V_OUT` / `V_CMP` — input, output, and compute vertex sets,
//! * computation *paths* — input-to-output routes through the graph,
//! * the *depth* `D` — length of the longest computation path,
//! * per-stage *working sets* `WS_s` — the variables processed together,
//!
//! and derives the Table II time/space complexity limits of the three
//! specialization concepts (simplification, partitioning, heterogeneity)
//! applied to the three processing components (memory, communication,
//! computation).
//!
//! The graph is built through [`DfgBuilder`], which guarantees acyclicity by
//! construction (operands must already exist). Built graphs are *lowered*
//! ([`Dfg::lower`]) into an immutable structure-of-arrays bytecode
//! [`Program`] — flat CSR edge tables, precomputed levels and heights,
//! input/output slot maps — which is the representation every hot
//! consumer (the interpreter, the scheduler, the design-space sweep)
//! runs on. A register-machine interpreter ([`Program::evaluate`] /
//! [`Program::run`]) executes programs on `f64` values so workload
//! generators can be validated against reference software kernels.
//!
//! # Example: the Fig. 11 graph
//!
//! Three inputs, two computation stages, two outputs:
//!
//! ```
//! use accelwall_dfg::{DfgBuilder, Op};
//!
//! let mut b = DfgBuilder::new("fig11");
//! let d1 = b.input("d_in1");
//! let d2 = b.input("d_in2");
//! let d3 = b.input("d_in3");
//! let s1a = b.op(Op::Add, &[d1, d2]);
//! let s1b = b.op(Op::Div, &[d2, d3]);
//! let s2a = b.op(Op::Sub, &[s1a, s1b]);
//! let s2b = b.op(Op::Add, &[s1b, d3]);
//! b.output("d_out1", s2a);
//! b.output("d_out2", s2b);
//! let g = b.build().unwrap();
//!
//! let stats = g.stats();
//! assert_eq!(stats.inputs, 3);
//! assert_eq!(stats.outputs, 2);
//! assert_eq!(stats.compute_stages, 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod builder;
pub mod concepts;
pub mod dot;
pub mod graph;
pub mod interp;
pub mod limits;
pub mod lower;
pub mod program;

pub use analysis::DfgStats;
pub use builder::DfgBuilder;
pub use concepts::{Component, SpecializationConcept};
pub use dot::DotOptions;
pub use graph::{Dfg, NodeId, NodeKind, Op};
pub use limits::{concept_limit, Complexity, ConceptLimit};
pub use program::{Program, VertexClass};

use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum DfgError {
    /// An operation was given the wrong number of operands.
    ArityMismatch {
        /// The operation.
        op: Op,
        /// Operands supplied.
        given: usize,
        /// Operands required.
        required: usize,
    },
    /// A node id did not belong to the graph under construction.
    UnknownNode(usize),
    /// Two inputs or two outputs share a name.
    DuplicateName(String),
    /// The graph has no outputs (nothing to compute).
    NoOutputs,
    /// An input value was missing at evaluation time.
    MissingInput(String),
    /// Evaluation produced a non-finite value (for example division by
    /// zero), at the named node.
    NonFiniteValue {
        /// Node at which evaluation broke down.
        node: usize,
    },
    /// An output vertex was used as an operand, or an input marked as
    /// output — a structural violation of the paper's vertex taxonomy.
    TaxonomyViolation(&'static str),
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::ArityMismatch {
                op,
                given,
                required,
            } => {
                write!(f, "{op:?} takes {required} operands, got {given}")
            }
            DfgError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            DfgError::DuplicateName(name) => write!(f, "duplicate variable name {name:?}"),
            DfgError::NoOutputs => write!(f, "graph defines no outputs"),
            DfgError::MissingInput(name) => write!(f, "missing input value {name:?}"),
            DfgError::NonFiniteValue { node } => {
                write!(f, "evaluation produced a non-finite value at node {node}")
            }
            DfgError::TaxonomyViolation(what) => write!(f, "taxonomy violation: {what}"),
        }
    }
}

impl Error for DfgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DfgError>;
