//! Property-based tests for the statistics substrate.

use accelwall_stats::pareto::dominates;
use accelwall_stats::{geomean, mean, pareto_frontier, Linear, LogLinear, Polynomial, PowerLaw};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len)
}

fn positive_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1e-3f64..1e6, len)
}

proptest! {
    #[test]
    fn mean_bounded_by_min_max(v in finite_vec(1..64)) {
        let m = mean(&v).unwrap();
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn geomean_bounded_by_arithmetic_mean(v in positive_vec(1..64)) {
        // AM-GM inequality.
        let g = geomean(&v).unwrap();
        let a = mean(&v).unwrap();
        prop_assert!(g <= a * (1.0 + 1e-9));
    }

    #[test]
    fn geomean_of_reciprocals_is_reciprocal(v in positive_vec(1..32)) {
        let recip: Vec<f64> = v.iter().map(|x| 1.0 / x).collect();
        let g = geomean(&v).unwrap();
        let gr = geomean(&recip).unwrap();
        prop_assert!((g * gr - 1.0).abs() < 1e-6);
    }

    #[test]
    fn linear_fit_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        xs in prop::collection::vec(-1e3f64..1e3, 3..32),
    ) {
        // Require at least two distinct x values.
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-3));
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let f = Linear::fit(&xs, &ys).unwrap();
        prop_assert!((f.slope - slope).abs() < 1e-4 * (1.0 + slope.abs()));
        prop_assert!((f.intercept - intercept).abs() < 1e-3 * (1.0 + intercept.abs()));
    }

    #[test]
    fn power_law_fit_recovers_exact_laws(
        coef in 1e-3f64..1e3,
        expo in -3.0f64..3.0,
        xs in prop::collection::vec(1e-2f64..1e3, 3..32),
    ) {
        prop_assume!(xs.iter().any(|&x| (x / xs[0]).ln().abs() > 1e-2));
        let law = PowerLaw::new(coef, expo);
        let ys: Vec<f64> = xs.iter().map(|&x| law.eval(x)).collect();
        let fit = PowerLaw::fit(&xs, &ys).unwrap();
        prop_assert!((fit.coefficient / coef - 1.0).abs() < 1e-5);
        prop_assert!((fit.exponent - expo).abs() < 1e-5);
    }

    #[test]
    fn log_linear_fit_recovers_exact_models(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        xs in prop::collection::vec(1e-2f64..1e3, 3..32),
    ) {
        prop_assume!(xs.iter().any(|&x| (x / xs[0]).ln().abs() > 1e-2));
        let ys: Vec<f64> = xs.iter().map(|x: &f64| slope * x.ln() + intercept).collect();
        let f = LogLinear::fit(&xs, &ys).unwrap();
        prop_assert!((f.slope - slope).abs() < 1e-4 * (1.0 + slope.abs()));
    }

    #[test]
    fn polynomial_interpolates_through_distinct_points(
        mut xs in prop::collection::vec(-50.0f64..50.0, 4..8),
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 0.5);
        prop_assume!(xs.len() >= 4);
        let ys: Vec<f64> = xs.iter().map(|x| x * x * x - 2.0 * x + 1.0).collect();
        let p = Polynomial::fit(&xs, &ys, 3).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            prop_assert!((p.eval(x) - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn pareto_frontier_is_dominance_free_subset(
        xs in positive_vec(1..64),
    ) {
        let n = xs.len();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 7919.0).sin().abs() * 100.0 + 1.0).collect();
        let front = pareto_frontier(&xs, &ys).unwrap();
        prop_assert!(!front.is_empty());
        prop_assert!(front.len() <= n);
        // Frontier points come from the input.
        for p in &front {
            prop_assert_eq!(xs[p.index], p.x);
            prop_assert_eq!(ys[p.index], p.y);
        }
        // No input point strictly dominates any frontier point.
        for p in &front {
            for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
                if i != p.index {
                    prop_assert!(!dominates((x, y), (p.x, p.y)),
                        "frontier point {:?} dominated by input ({x}, {y})", p);
                }
            }
        }
        // Staircase shape.
        for w in front.windows(2) {
            prop_assert!(w[0].x < w[1].x);
            prop_assert!(w[0].y < w[1].y);
        }
    }

    #[test]
    fn pareto_frontier_invariant_under_shuffle(xs in positive_vec(2..32)) {
        let ys: Vec<f64> = xs.iter().map(|x| (x * 13.0).cos().abs() + 0.1).collect();
        let f1 = pareto_frontier(&xs, &ys).unwrap();
        let mut rev_x: Vec<f64> = xs.clone();
        let mut rev_y: Vec<f64> = ys.clone();
        rev_x.reverse();
        rev_y.reverse();
        let f2 = pareto_frontier(&rev_x, &rev_y).unwrap();
        let a: Vec<(f64, f64)> = f1.iter().map(|p| (p.x, p.y)).collect();
        let b: Vec<(f64, f64)> = f2.iter().map(|p| (p.x, p.y)).collect();
        prop_assert_eq!(a, b);
    }
}
