//! The lease coordinator: shards one grid into numbered units, leases
//! them to workers, survives worker failure, and folds the results.
//!
//! One mutex guards the whole lease table ([`State`]); a condvar wakes
//! the [`Coordinator::run`] driver on completions. Every unit walks the
//! lease state machine:
//!
//! ```text
//! pending ──lease──▶ leased ──complete(ok)──▶ done
//!    ▲                  │ │
//!    │◀─deadline miss───┘ └──complete(err)──▶ backoff ──elapsed──▶ pending
//! ```
//!
//! Failure handling is split between the unit and the worker. A failed
//! unit re-enters `pending` only after a capped decorrelated-jitter
//! backoff ([`decorrelated_backoff`]), so a deterministic failure
//! cannot hot-loop. A worker that fails
//! [`WorkConfig::failure_threshold`] units in a row trips a circuit
//! breaker and is quarantined — its lease requests answer `wait` until
//! the quarantine lapses. Stragglers are hedged: an idle worker with
//! nothing pending is handed a second copy of the slowest outstanding
//! unit; whichever completion lands first wins and the other is counted
//! as a duplicate.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use accelerator_wall::cache::Ctx;
use accelerator_wall::grids::Grid;
use accelerator_wall::json::Value;
use accelwall_faults::InjectedFault;
use accelwall_stats::rng::{decorrelated_backoff, Rng};

use crate::protocol::{
    CompleteReply, CompleteRequest, HeartbeatReply, HeartbeatRequest, LeaseReply,
};
use crate::WorkError;

/// Tuning knobs for the coordinator's robustness machinery.
#[derive(Debug, Clone)]
pub struct WorkConfig {
    /// How long a lease lasts without a heartbeat before it expires and
    /// the unit is re-issued.
    pub lease_ttl: Duration,
    /// Most units granted per lease request.
    pub batch: usize,
    /// Consecutive unit failures that quarantine a worker.
    pub failure_threshold: u32,
    /// How long a quarantined worker sits out.
    pub quarantine_for: Duration,
    /// Base of the failed-unit re-lease backoff.
    pub reissue_base: Duration,
    /// Cap of the failed-unit re-lease backoff.
    pub reissue_cap: Duration,
    /// How long a unit must be outstanding before an idle worker may be
    /// handed a hedge copy.
    pub hedge_after: Duration,
    /// Most simultaneous holders of one unit (primary + hedges).
    pub max_holders: usize,
    /// Failures after which a unit is declared deterministic-broken and
    /// the whole run fails instead of re-issuing forever.
    pub max_unit_failures: u32,
    /// Workers the driver waits for before it may conclude the fleet is
    /// absent; `0` means "don't wait — fall back to local compute as
    /// soon as the startup grace lapses with nobody connected".
    pub expect_workers: usize,
    /// How long the driver gives the fleet to appear (or reappear)
    /// before degrading to local compute.
    pub startup_grace: Duration,
    /// Hard wall-clock budget for the distributed phase; once elapsed
    /// the driver finishes every remaining unit locally.
    pub work_deadline: Option<Duration>,
    /// Driver tick and the `wait` retry hint floor.
    pub poll: Duration,
}

impl Default for WorkConfig {
    fn default() -> WorkConfig {
        WorkConfig {
            lease_ttl: Duration::from_secs(10),
            batch: 2,
            failure_threshold: 3,
            quarantine_for: Duration::from_secs(30),
            reissue_base: Duration::from_millis(50),
            reissue_cap: Duration::from_secs(2),
            hedge_after: Duration::from_secs(3),
            max_holders: 2,
            max_unit_failures: 8,
            expect_workers: 0,
            startup_grace: Duration::from_secs(2),
            work_deadline: None,
            poll: Duration::from_millis(25),
        }
    }
}

/// One live lease on a unit.
#[derive(Debug)]
struct Holder {
    worker: String,
    issued: Instant,
    deadline: Instant,
}

/// One unit's place in the lease state machine.
#[derive(Debug, Default)]
struct Unit {
    done: bool,
    holders: Vec<Holder>,
    /// Re-lease embargo after a failure; `None` = leasable now.
    not_before: Option<Instant>,
    /// Previous backoff, the seed of the next decorrelated draw.
    prev_backoff: Duration,
    failures: u32,
}

/// Per-worker health the circuit breaker runs on.
#[derive(Debug)]
struct WorkerHealth {
    last_seen: Instant,
    consecutive_failures: u32,
    quarantined_until: Option<Instant>,
}

struct State {
    units: Vec<Unit>,
    results: Vec<Option<Value>>,
    workers: BTreeMap<String, WorkerHealth>,
    done_count: usize,
    fatal: Option<WorkError>,
    /// Jitter stream for re-lease backoff draws. Seeded from the
    /// process id, not the clock, so runs stay reproducible under a
    /// pinned environment.
    jitter: Rng,
}

/// A point-in-time snapshot of the work tier, rendered by `/metrics`
/// and `/healthz`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Units the grid decomposes into.
    pub units_total: u64,
    /// Units completed (by workers or local fallback).
    pub units_done: u64,
    /// Units not yet done.
    pub units_outstanding: u64,
    /// Workers seen within the liveness window and not quarantined.
    pub workers_alive: u64,
    /// Workers currently quarantined by the circuit breaker.
    pub workers_quarantined: u64,
    /// Leases granted, hedges included.
    pub leases_total: u64,
    /// First-wins unit completions recorded.
    pub completions_total: u64,
    /// Completions for already-done units (hedge or re-issue races).
    pub duplicate_completions_total: u64,
    /// Units returned to `pending` after lease expiry or failure.
    pub reissues_total: u64,
    /// Hedge copies handed to idle workers.
    pub hedges_total: u64,
    /// Heartbeats received.
    pub heartbeats_total: u64,
    /// Unit failures reported by workers.
    pub unit_failures_total: u64,
    /// Units the coordinator computed itself (fallback or deadline
    /// cutover).
    pub local_units_total: u64,
}

/// The lease coordinator for one grid run. Shared between the HTTP
/// routes (lease/complete/heartbeat) and the [`Coordinator::run`]
/// driver via an `Arc`.
pub struct Coordinator {
    grid: Arc<dyn Grid>,
    ctx: Arc<Ctx>,
    space: &'static str,
    config: WorkConfig,
    total: usize,
    state: Mutex<State>,
    progress: Condvar,
    // All eight counters are monotonic telemetry read by /metrics;
    // Relaxed everywhere — no other state is published through them.
    leases: AtomicU64,
    completions: AtomicU64,
    duplicates: AtomicU64,
    reissues: AtomicU64,
    hedges: AtomicU64,
    heartbeats: AtomicU64,
    unit_failures: AtomicU64,
    local_units: AtomicU64,
}

impl Coordinator {
    /// Builds a coordinator for one grid under `ctx`'s sweep space.
    /// `space` is the marker workers rebuild their `Ctx` from, so it
    /// must describe `ctx` (`"coarse"` or `"table3"`).
    pub fn new(
        grid: Arc<dyn Grid>,
        ctx: Arc<Ctx>,
        space: &'static str,
        config: WorkConfig,
    ) -> Coordinator {
        let total = grid.len(&ctx);
        let mut units = Vec::with_capacity(total);
        units.resize_with(total, Unit::default);
        Coordinator {
            grid,
            ctx,
            space,
            config,
            total,
            state: Mutex::new(State {
                units,
                results: (0..total).map(|_| None).collect(),
                workers: BTreeMap::new(),
                done_count: 0,
                fatal: None,
                jitter: Rng::seed(u64::from(std::process::id()) ^ 0x9e37_79b9_7f4a_7c15),
            }),
            progress: Condvar::new(),
            leases: AtomicU64::new(0),
            completions: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            reissues: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            heartbeats: AtomicU64::new(0),
            unit_failures: AtomicU64::new(0),
            local_units: AtomicU64::new(0),
        }
    }

    /// The id of the grid being coordinated.
    pub fn grid_id(&self) -> &'static str {
        self.grid.id()
    }

    /// The sweep-space marker workers must build their `Ctx` with.
    pub fn space(&self) -> &'static str {
        self.space
    }

    /// Units the grid decomposes into.
    pub fn total_units(&self) -> usize {
        self.total
    }

    fn locked(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Drops every lease whose deadline has passed. A unit whose last
    /// holder expires returns to `pending` and counts as a re-issue.
    fn expire_leases(&self, state: &mut State, now: Instant) {
        let mut expired_units = 0u64;
        for unit in &mut state.units {
            if unit.done || unit.holders.is_empty() {
                continue;
            }
            let before = unit.holders.len();
            unit.holders.retain(|h| h.deadline > now);
            if before > unit.holders.len() && unit.holders.is_empty() {
                expired_units += 1;
            }
        }
        if expired_units > 0 {
            // Relaxed: monotonic telemetry counter.
            self.reissues.fetch_add(expired_units, Ordering::Relaxed);
        }
    }

    fn touch(state: &mut State, worker: &str, now: Instant) {
        state
            .workers
            .entry(worker.to_string())
            .and_modify(|h| h.last_seen = now)
            .or_insert(WorkerHealth {
                last_seen: now,
                consecutive_failures: 0,
                quarantined_until: None,
            });
    }

    /// Grants a batch of units to `worker`, hedging stragglers when
    /// nothing is pending. Probes the `work-lease` fault site first.
    ///
    /// # Errors
    ///
    /// [`InjectedFault`] when an armed `work-lease:err` rule fires; the
    /// server answers 500 and the worker retries with backoff.
    pub fn lease(&self, worker: &str, max: usize) -> Result<LeaseReply, InjectedFault> {
        accelwall_faults::probe(accelwall_faults::sites::WORK_LEASE)?;
        let now = Instant::now();
        let mut state = self.locked();
        self.expire_leases(&mut state, now);
        Self::touch(&mut state, worker, now);
        if state.done_count == self.total {
            return Ok(LeaseReply::Done);
        }
        if let Some(until) = state.workers[worker].quarantined_until {
            if until > now {
                return Ok(LeaseReply::Wait { retry: until - now });
            }
        }
        let max = max.clamp(1, self.config.batch.max(1));
        let deadline = now + self.config.lease_ttl;
        let mut granted = Vec::new();
        for (index, unit) in state.units.iter_mut().enumerate() {
            if granted.len() == max {
                break;
            }
            if unit.done || !unit.holders.is_empty() {
                continue;
            }
            if unit.not_before.is_some_and(|t| t > now) {
                continue;
            }
            unit.holders.push(Holder {
                worker: worker.to_string(),
                issued: now,
                deadline,
            });
            granted.push(index);
        }
        if granted.is_empty() {
            // Nothing pending: this worker is idle, so hedge the
            // slowest outstanding units (oldest lease first).
            let mut stragglers: Vec<(Instant, usize)> = state
                .units
                .iter()
                .enumerate()
                .filter(|(_, u)| {
                    !u.done
                        && !u.holders.is_empty()
                        && u.holders.len() < self.config.max_holders
                        && u.holders.iter().all(|h| h.worker != worker)
                })
                .filter_map(|(i, u)| {
                    let oldest = u.holders.iter().map(|h| h.issued).min()?;
                    (oldest + self.config.hedge_after <= now).then_some((oldest, i))
                })
                .collect();
            stragglers.sort();
            for (_, index) in stragglers.into_iter().take(max) {
                state.units[index].holders.push(Holder {
                    worker: worker.to_string(),
                    issued: now,
                    deadline,
                });
                granted.push(index);
                // Relaxed: monotonic telemetry counter.
                self.hedges.fetch_add(1, Ordering::Relaxed);
            }
        }
        if granted.is_empty() {
            // Everything is leased out, embargoed, or hedged to the
            // hilt; tell the worker when it is worth asking again.
            let soonest = state
                .units
                .iter()
                .filter(|u| !u.done)
                .filter_map(|u| {
                    u.not_before
                        .filter(|t| *t > now)
                        .or_else(|| u.holders.iter().map(|h| h.deadline).min())
                })
                .min();
            let retry = soonest
                .map_or(self.config.poll, |t| t.saturating_duration_since(now))
                .clamp(self.config.poll, self.config.lease_ttl);
            return Ok(LeaseReply::Wait { retry });
        }
        // Relaxed: monotonic telemetry counter.
        self.leases
            .fetch_add(granted.len() as u64, Ordering::Relaxed);
        Ok(LeaseReply::Units {
            grid: self.grid.id().to_string(),
            space: self.space.to_string(),
            ttl: self.config.lease_ttl,
            units: granted,
        })
    }

    /// Records one unit outcome. First completion wins; duplicates (from
    /// hedges or re-issue races) are acknowledged and discarded, which
    /// is sound because units are idempotent. Probes the
    /// `work-complete` fault site first.
    ///
    /// # Errors
    ///
    /// [`InjectedFault`] when an armed `work-complete:err` rule fires —
    /// the completion is dropped on the floor and the worker's
    /// idempotent re-send must recover it.
    pub fn complete(&self, request: &CompleteRequest) -> Result<CompleteReply, InjectedFault> {
        accelwall_faults::probe(accelwall_faults::sites::WORK_COMPLETE)?;
        let now = Instant::now();
        let mut state = self.locked();
        Self::touch(&mut state, &request.worker, now);
        if request.unit >= self.total {
            return Ok(CompleteReply {
                accepted: false,
                duplicate: false,
                done: state.done_count == self.total,
            });
        }
        if state.units[request.unit].done {
            // Relaxed: monotonic telemetry counter.
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            return Ok(CompleteReply {
                accepted: true,
                duplicate: true,
                done: state.done_count == self.total,
            });
        }
        match &request.outcome {
            Ok(result) => {
                state.results[request.unit] = Some(result.clone());
                let unit = &mut state.units[request.unit];
                unit.done = true;
                unit.holders.clear();
                state.done_count += 1;
                if let Some(health) = state.workers.get_mut(&request.worker) {
                    health.consecutive_failures = 0;
                }
                // Relaxed: monotonic telemetry counter.
                self.completions.fetch_add(1, Ordering::Relaxed);
                let done = state.done_count == self.total;
                if done {
                    self.progress.notify_all();
                }
                Ok(CompleteReply {
                    accepted: true,
                    duplicate: false,
                    done,
                })
            }
            Err(error) => {
                // Relaxed: monotonic telemetry counters.
                self.unit_failures.fetch_add(1, Ordering::Relaxed);
                self.reissues.fetch_add(1, Ordering::Relaxed);
                let base = self.config.reissue_base;
                let cap = self.config.reissue_cap;
                let unit = &mut state.units[request.unit];
                unit.failures += 1;
                unit.holders.retain(|h| h.worker != request.worker);
                let failures = unit.failures;
                let prev = unit.prev_backoff;
                let backoff = decorrelated_backoff(&mut state.jitter, base, cap, prev);
                let unit = &mut state.units[request.unit];
                unit.prev_backoff = backoff;
                unit.not_before = Some(now + backoff);
                if let Some(health) = state.workers.get_mut(&request.worker) {
                    health.consecutive_failures += 1;
                    if health.consecutive_failures >= self.config.failure_threshold {
                        health.quarantined_until = Some(now + self.config.quarantine_for);
                    }
                }
                if failures >= self.config.max_unit_failures {
                    state.fatal = Some(WorkError::Unit {
                        unit: request.unit,
                        error: error.clone(),
                    });
                    self.progress.notify_all();
                }
                Ok(CompleteReply {
                    accepted: true,
                    duplicate: false,
                    done: false,
                })
            }
        }
    }

    /// Extends the worker's leases and tells it which units to abandon
    /// (completed elsewhere, or no longer held after an expiry).
    pub fn heartbeat(&self, request: &HeartbeatRequest) -> HeartbeatReply {
        // Relaxed: monotonic telemetry counter.
        self.heartbeats.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let mut state = self.locked();
        Self::touch(&mut state, &request.worker, now);
        let deadline = now + self.config.lease_ttl;
        let mut abandon = Vec::new();
        for &index in &request.units {
            let Some(unit) = state.units.get_mut(index) else {
                abandon.push(index);
                continue;
            };
            if unit.done {
                abandon.push(index);
                continue;
            }
            match unit.holders.iter_mut().find(|h| h.worker == request.worker) {
                Some(holder) => holder.deadline = deadline,
                None => abandon.push(index),
            }
        }
        HeartbeatReply {
            abandon,
            done: state.done_count == self.total,
        }
    }

    /// A point-in-time snapshot for `/metrics` and `/healthz`.
    pub fn stats(&self) -> WorkStats {
        let now = Instant::now();
        let state = self.locked();
        let liveness = self.config.lease_ttl * 2;
        let quarantined = state
            .workers
            .values()
            .filter(|h| h.quarantined_until.is_some_and(|t| t > now))
            .count() as u64;
        let alive = state
            .workers
            .values()
            .filter(|h| {
                h.last_seen + liveness >= now && h.quarantined_until.is_none_or(|t| t <= now)
            })
            .count() as u64;
        // Relaxed: monotonic telemetry counters.
        WorkStats {
            units_total: self.total as u64,
            units_done: state.done_count as u64,
            units_outstanding: (self.total - state.done_count) as u64,
            workers_alive: alive,
            workers_quarantined: quarantined,
            leases_total: self.leases.load(Ordering::Relaxed),
            completions_total: self.completions.load(Ordering::Relaxed),
            duplicate_completions_total: self.duplicates.load(Ordering::Relaxed),
            reissues_total: self.reissues.load(Ordering::Relaxed),
            hedges_total: self.hedges.load(Ordering::Relaxed),
            heartbeats_total: self.heartbeats.load(Ordering::Relaxed),
            unit_failures_total: self.unit_failures.load(Ordering::Relaxed),
            local_units_total: self.local_units.load(Ordering::Relaxed),
        }
    }

    /// Whether the driver should stop waiting on the fleet and finish
    /// the rest locally.
    fn should_cut_over(&self, state: &State, started: Instant, now: Instant) -> bool {
        if self
            .config
            .work_deadline
            .is_some_and(|d| now.saturating_duration_since(started) >= d)
        {
            return true;
        }
        if now.saturating_duration_since(started) < self.config.startup_grace {
            return false;
        }
        let liveness = self.config.lease_ttl * 2;
        let live = state
            .workers
            .values()
            .filter(|h| h.last_seen + liveness >= now)
            .count();
        if live > 0 {
            return false;
        }
        // Nobody is alive. With an expectation set, keep waiting until
        // the expected fleet has at least shown up once; after that,
        // a dead fleet degrades to local compute like an absent one.
        self.config.expect_workers == 0 || state.workers.len() >= self.config.expect_workers
    }

    /// Computes every not-yet-done unit on the in-process pool and
    /// stores the results first-wins against concurrent completions.
    fn complete_locally(&self, todo: Vec<usize>) -> Result<(), WorkError> {
        if todo.is_empty() {
            return Ok(());
        }
        let grid = Arc::clone(&self.grid);
        let ctx = Arc::clone(&self.ctx);
        let indices = todo.clone();
        let computed = accelwall_par::par_map(todo.len(), move |k| {
            let index = indices[k];
            (index, grid.compute(&ctx, index))
        });
        let mut state = self.locked();
        for (index, outcome) in computed {
            match outcome {
                Ok(result) => {
                    if state.units[index].done {
                        // Relaxed: monotonic telemetry counter.
                        self.duplicates.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    state.results[index] = Some(result);
                    let unit = &mut state.units[index];
                    unit.done = true;
                    unit.holders.clear();
                    state.done_count += 1;
                    // Relaxed: monotonic telemetry counter.
                    self.local_units.fetch_add(1, Ordering::Relaxed);
                }
                Err(error) => {
                    // The local pool is the path of last resort; a
                    // failure here is deterministic, not transient.
                    return Err(WorkError::Grid(error));
                }
            }
        }
        Ok(())
    }

    /// Drives the run to completion: waits on worker progress, expires
    /// leases, degrades to local compute when the fleet is absent or
    /// the deadline lapses, and assembles the folded document.
    ///
    /// # Errors
    ///
    /// [`WorkError::Unit`] when a unit exhausts its failure budget,
    /// [`WorkError::Grid`] when the local fallback itself fails.
    pub fn run(&self) -> Result<Value, WorkError> {
        let started = Instant::now();
        let mut state = self.locked();
        loop {
            if let Some(fatal) = &state.fatal {
                return Err(fatal.clone());
            }
            if state.done_count == self.total {
                break;
            }
            let now = Instant::now();
            self.expire_leases(&mut state, now);
            if self.should_cut_over(&state, started, now) {
                let todo: Vec<usize> = state
                    .units
                    .iter()
                    .enumerate()
                    .filter(|(_, u)| !u.done)
                    .map(|(i, _)| i)
                    .collect();
                drop(state);
                self.complete_locally(todo)?;
                state = self.locked();
                continue;
            }
            let (guard, _) = self
                .progress
                .wait_timeout(state, self.config.poll)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
        let mut ordered = Vec::with_capacity(self.total);
        for (index, slot) in state.results.iter_mut().enumerate() {
            match slot.take() {
                Some(result) => ordered.push(result),
                None => {
                    return Err(WorkError::Protocol {
                        what: format!("unit {index} marked done without a stored result"),
                    })
                }
            }
        }
        drop(state);
        Ok(self.grid.assemble(ordered))
    }
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("grid", &self.grid.id())
            .field("space", &self.space)
            .field("total", &self.total)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic grid: unit `i` computes `i * 10`, assembly
    /// sums everything.
    struct TestGrid {
        units: usize,
    }

    impl Grid for TestGrid {
        fn id(&self) -> &'static str {
            "test"
        }
        fn description(&self) -> &'static str {
            "test grid"
        }
        fn len(&self, _ctx: &Ctx) -> usize {
            self.units
        }
        fn compute(&self, _ctx: &Ctx, unit: usize) -> accelerator_wall::error::Result<Value> {
            Ok(Value::from(unit * 10))
        }
        fn assemble(&self, units: Vec<Value>) -> Value {
            let sum: f64 = units.iter().filter_map(Value::as_f64).sum();
            Value::object([
                ("units", Value::from(units.len())),
                ("sum", Value::from(sum)),
            ])
        }
    }

    fn coordinator(units: usize, config: WorkConfig) -> Coordinator {
        let ctx = Arc::new(Ctx::with_space(
            accelerator_wall::accelsim::SweepSpace::coarse(),
        ));
        Coordinator::new(Arc::new(TestGrid { units }), ctx, "coarse", config)
    }

    fn quick_config() -> WorkConfig {
        WorkConfig {
            lease_ttl: Duration::from_millis(60),
            batch: 2,
            reissue_base: Duration::from_millis(1),
            reissue_cap: Duration::from_millis(4),
            hedge_after: Duration::from_millis(20),
            startup_grace: Duration::from_millis(40),
            poll: Duration::from_millis(5),
            ..WorkConfig::default()
        }
    }

    fn units_of(reply: LeaseReply) -> Vec<usize> {
        match reply {
            LeaseReply::Units { units, .. } => units,
            other => panic!("expected units, got {other:?}"),
        }
    }

    fn complete_ok(c: &Coordinator, worker: &str, unit: usize) -> CompleteReply {
        c.complete(&CompleteRequest {
            worker: worker.into(),
            unit,
            outcome: Ok(Value::from(unit * 10)),
        })
        .unwrap()
    }

    #[test]
    fn leases_cover_the_grid_and_completions_finish_it() {
        let c = coordinator(4, quick_config());
        let first = units_of(c.lease("w1", 8).unwrap());
        assert_eq!(first, vec![0, 1], "batch cap bounds the grant");
        let second = units_of(c.lease("w2", 2).unwrap());
        assert_eq!(second, vec![2, 3]);
        for &u in first.iter().chain(&second) {
            let reply = complete_ok(&c, "w", u);
            assert!(reply.accepted && !reply.duplicate);
        }
        assert_eq!(c.lease("w1", 1).unwrap(), LeaseReply::Done);
        let stats = c.stats();
        assert_eq!(stats.units_done, 4);
        assert_eq!(stats.completions_total, 4);
        assert_eq!(stats.units_outstanding, 0);
    }

    #[test]
    fn an_expired_lease_reissues_the_unit() {
        let mut config = quick_config();
        config.lease_ttl = Duration::from_millis(10);
        let c = coordinator(1, config);
        assert_eq!(units_of(c.lease("w1", 1).unwrap()), vec![0]);
        std::thread::sleep(Duration::from_millis(25));
        // w1 went silent past its deadline: the unit re-issues to w2.
        assert_eq!(units_of(c.lease("w2", 1).unwrap()), vec![0]);
        assert!(c.stats().reissues_total >= 1);
        // The late w1 completion still wins nothing: w2 finished first.
        complete_ok(&c, "w2", 0);
        let late = complete_ok(&c, "w1", 0);
        assert!(late.duplicate);
        assert_eq!(c.stats().duplicate_completions_total, 1);
    }

    #[test]
    fn heartbeats_extend_leases_and_flag_abandoned_units() {
        let mut config = quick_config();
        config.lease_ttl = Duration::from_millis(50);
        let c = coordinator(2, config);
        let units = units_of(c.lease("w1", 2).unwrap());
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(20));
            let reply = c.heartbeat(&HeartbeatRequest {
                worker: "w1".into(),
                units: units.clone(),
            });
            assert!(reply.abandon.is_empty(), "live lease flagged abandoned");
        }
        // 80ms elapsed > ttl: without the heartbeats the lease would
        // have expired. Now complete one unit elsewhere's-first to see
        // it flagged.
        complete_ok(&c, "w9", 0);
        let reply = c.heartbeat(&HeartbeatRequest {
            worker: "w1".into(),
            units: units.clone(),
        });
        assert_eq!(reply.abandon, vec![0]);
        assert_eq!(c.stats().reissues_total, 0, "no lease ever expired");
    }

    #[test]
    fn consecutive_failures_quarantine_the_worker_and_backoff_embargoes_the_unit() {
        let mut config = quick_config();
        config.failure_threshold = 2;
        config.quarantine_for = Duration::from_mins(1);
        let c = coordinator(3, config);
        let units = units_of(c.lease("w1", 2).unwrap());
        for &u in &units {
            let reply = c
                .complete(&CompleteRequest {
                    worker: "w1".into(),
                    unit: u,
                    outcome: Err("boom".into()),
                })
                .unwrap();
            assert!(reply.accepted);
        }
        // Two consecutive failures at threshold 2: quarantined.
        match c.lease("w1", 1).unwrap() {
            LeaseReply::Wait { retry } => assert!(retry > Duration::from_secs(30)),
            other => panic!("expected quarantine wait, got {other:?}"),
        }
        let stats = c.stats();
        assert_eq!(stats.workers_quarantined, 1);
        assert_eq!(stats.unit_failures_total, 2);
        assert!(stats.reissues_total >= 2);
        // A healthy worker still gets the untouched unit immediately,
        // and the failed ones after their backoff embargo lapses.
        let granted = units_of(c.lease("w2", 3).unwrap());
        assert!(granted.contains(&2));
        std::thread::sleep(Duration::from_millis(10));
        let more = units_of(c.lease("w3", 3).unwrap());
        assert!(!more.is_empty(), "embargoed units never came back");
    }

    #[test]
    fn a_unit_exhausting_its_failure_budget_fails_the_run() {
        let mut config = quick_config();
        config.max_unit_failures = 1;
        config.failure_threshold = 100;
        let c = coordinator(1, config);
        let _ = c.lease("w1", 1).unwrap();
        let _ = c
            .complete(&CompleteRequest {
                worker: "w1".into(),
                unit: 0,
                outcome: Err("deterministic".into()),
            })
            .unwrap();
        match c.run() {
            Err(WorkError::Unit { unit, error }) => {
                assert_eq!(unit, 0);
                assert_eq!(error, "deterministic");
            }
            other => panic!("expected unit failure, got {other:?}"),
        }
    }

    #[test]
    fn an_idle_worker_hedges_the_slowest_outstanding_unit() {
        let mut config = quick_config();
        config.hedge_after = Duration::ZERO;
        config.batch = 4;
        let c = coordinator(1, config);
        assert_eq!(units_of(c.lease("w1", 1).unwrap()), vec![0]);
        // Nothing pending for w2: it is handed a hedge copy of w1's
        // unit instead of idling.
        assert_eq!(units_of(c.lease("w2", 1).unwrap()), vec![0]);
        assert_eq!(c.stats().hedges_total, 1);
        // A third worker cannot pile on: max_holders caps the copies.
        match c.lease("w3", 1).unwrap() {
            LeaseReply::Wait { .. } => {}
            other => panic!("expected wait at holder cap, got {other:?}"),
        }
        // First completion wins; the loser is a duplicate.
        assert!(!complete_ok(&c, "w2", 0).duplicate);
        assert!(complete_ok(&c, "w1", 0).duplicate);
    }

    #[test]
    fn run_falls_back_to_local_compute_with_no_workers() {
        let mut config = quick_config();
        config.startup_grace = Duration::from_millis(1);
        let c = coordinator(5, config);
        let doc = c.run().unwrap();
        assert_eq!(doc.get("units").and_then(Value::as_f64), Some(5.0));
        assert_eq!(doc.get("sum").and_then(Value::as_f64), Some(100.0));
        let stats = c.stats();
        assert_eq!(stats.local_units_total, 5);
        assert_eq!(stats.workers_alive, 0);
    }

    #[test]
    fn run_with_a_live_worker_thread_folds_worker_results() {
        let mut config = quick_config();
        config.expect_workers = 1;
        config.batch = 3;
        let c = Arc::new(coordinator(6, config));
        let driver = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || c.run())
        };
        // A worker fleet of one, driven directly against the API.
        loop {
            match c.lease("w1", 3).unwrap() {
                LeaseReply::Done => break,
                LeaseReply::Wait { retry } => {
                    std::thread::sleep(retry.min(Duration::from_millis(5)));
                }
                LeaseReply::Units { units, .. } => {
                    for u in units {
                        complete_ok(&c, "w1", u);
                    }
                }
            }
        }
        let doc = driver.join().unwrap().unwrap();
        assert_eq!(doc.get("sum").and_then(Value::as_f64), Some(150.0));
        let stats = c.stats();
        assert_eq!(stats.completions_total, 6);
        assert_eq!(
            stats.local_units_total, 0,
            "fallback ran despite a live fleet"
        );
    }
}
