//! MDY: molecular dynamics — Lennard-Jones pairwise forces (SHOC md).
//!
//! All-pairs force accumulation over `n` particles in 3D. Per pair:
//! displacement, squared distance, a reciprocal, the LJ force factor
//! `f = r⁻⁶ · (r⁻⁶ − c) · r⁻²`, and a fused multiply-accumulate into each
//! axis — a mix of cheap adds, expensive divides, and deep reconvergence
//! that stresses the simulator's heterogeneous FU costs.

use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};

/// Builds the all-pairs LJ force DFG for `n` particles.
///
/// Inputs: positions `x{i}`/`y{i}`/`z{i}` and the potential constant `c`
/// (0.5 for the standard reduced-unit LJ kernel). Outputs: force vectors
/// `fx{i}`/`fy{i}`/`fz{i}`.
///
/// # Panics
///
/// Panics if `n < 2` (no pairs to integrate).
pub fn build(n: usize) -> Dfg {
    assert!(n >= 2, "molecular dynamics needs at least two particles");
    let mut b = DfgBuilder::new(format!("mdy_n{n}"));
    let c = b.input("c");
    let xs: Vec<NodeId> = (0..n).map(|i| b.input(format!("x{i}"))).collect();
    let ys: Vec<NodeId> = (0..n).map(|i| b.input(format!("y{i}"))).collect();
    let zs: Vec<NodeId> = (0..n).map(|i| b.input(format!("z{i}"))).collect();

    for i in 0..n {
        let mut fx_terms = Vec::new();
        let mut fy_terms = Vec::new();
        let mut fz_terms = Vec::new();
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = b.op(Op::Sub, &[xs[i], xs[j]]);
            let dy = b.op(Op::Sub, &[ys[i], ys[j]]);
            let dz = b.op(Op::Sub, &[zs[i], zs[j]]);
            let dx2 = b.op(Op::Mul, &[dx, dx]);
            let dy2 = b.op(Op::Mul, &[dy, dy]);
            let dz2 = b.op(Op::Mul, &[dz, dz]);
            let r2 = b.reduce(Op::Add, &[dx2, dy2, dz2]);
            let inv_r2 = {
                let one = b.op(Op::Div, &[r2, r2]); // exact 1.0 for r2 != 0
                b.op(Op::Div, &[one, r2])
            };
            let inv_r4 = b.op(Op::Mul, &[inv_r2, inv_r2]);
            let inv_r6 = b.op(Op::Mul, &[inv_r4, inv_r2]);
            let shifted = b.op(Op::Sub, &[inv_r6, c]);
            let lj = b.op(Op::Mul, &[inv_r6, shifted]);
            let force = b.op(Op::Mul, &[lj, inv_r2]);
            fx_terms.push(b.op(Op::Mul, &[force, dx]));
            fy_terms.push(b.op(Op::Mul, &[force, dy]));
            fz_terms.push(b.op(Op::Mul, &[force, dz]));
        }
        let fx = b.reduce(Op::Add, &fx_terms);
        let fy = b.reduce(Op::Add, &fy_terms);
        let fz = b.reduce(Op::Add, &fz_terms);
        b.output(format!("fx{i}"), fx);
        b.output(format!("fy{i}"), fy);
        b.output(format!("fz{i}"), fz);
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("mdy graph is structurally valid")
}

/// Reference all-pairs LJ force computation.
pub fn md_reference(pos: &[(f64, f64, f64)], c: f64) -> Vec<(f64, f64, f64)> {
    let n = pos.len();
    let mut forces = vec![(0.0, 0.0, 0.0); n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = pos[i].0 - pos[j].0;
            let dy = pos[i].1 - pos[j].1;
            let dz = pos[i].2 - pos[j].2;
            let r2 = dx * dx + dy * dy + dz * dz;
            let inv_r2 = 1.0 / r2;
            let inv_r6 = inv_r2 * inv_r2 * inv_r2;
            let force = inv_r6 * (inv_r6 - c) * inv_r2;
            forces[i].0 += force * dx;
            forces[i].1 += force * dy;
            forces[i].2 += force * dz;
        }
    }
    forces
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn positions(n: usize) -> Vec<(f64, f64, f64)> {
        (0..n)
            .map(|i| {
                (
                    (i as f64 * 1.3).sin() * 2.0 + i as f64,
                    (i as f64 * 0.7).cos() * 1.5,
                    i as f64 * 0.5 - 1.0,
                )
            })
            .collect()
    }

    #[test]
    fn matches_reference_forces() {
        let n = 6;
        let c = 0.5;
        let pos = positions(n);
        let g = build(n);
        let mut inputs = HashMap::from([("c".to_string(), c)]);
        for (i, &(x, y, z)) in pos.iter().enumerate() {
            inputs.insert(format!("x{i}"), x);
            inputs.insert(format!("y{i}"), y);
            inputs.insert(format!("z{i}"), z);
        }
        let out = g.evaluate(&inputs).unwrap();
        let expected = md_reference(&pos, c);
        for (i, &(fx, fy, fz)) in expected.iter().enumerate() {
            assert!((out[&format!("fx{i}")] - fx).abs() < 1e-9, "fx{i}");
            assert!((out[&format!("fy{i}")] - fy).abs() < 1e-9, "fy{i}");
            assert!((out[&format!("fz{i}")] - fz).abs() < 1e-9, "fz{i}");
        }
    }

    #[test]
    fn newtons_third_law_for_two_particles() {
        let pos = vec![(0.0, 0.0, 0.0), (1.1, 0.3, -0.4)];
        let f = md_reference(&pos, 0.5);
        assert!((f[0].0 + f[1].0).abs() < 1e-12);
        assert!((f[0].1 + f[1].1).abs() < 1e-12);
        assert!((f[0].2 + f[1].2).abs() < 1e-12);
    }

    #[test]
    fn kernel_mixes_cheap_and_expensive_units() {
        let g = build(4);
        let divs = g
            .compute_ids()
            .iter()
            .filter(|&&id| matches!(g.node(id).kind, accelwall_dfg::NodeKind::Compute(Op::Div)))
            .count();
        // Two divides per ordered pair (the reciprocal construction).
        assert_eq!(divs, 2 * 4 * 3);
    }
}
